//! Cross-crate integration tests: the full Algorithm-1 path from raw trace
//! generation through training and evaluation, for every model family.

use cloudtrace::{ContainerConfig, MachineConfig, WorkloadClass};
use models::{
    ArimaConfig, ArimaForecaster, GbtConfig, GbtForecaster, NaiveForecaster, NeuralTrainSpec,
    RptcnConfig, RptcnForecaster,
};
use rptcn::{prepare, run_model, PipelineConfig, Scenario};
use timeseries::TimeSeriesFrame;

fn container_frame(seed: u64) -> TimeSeriesFrame {
    cloudtrace::container::generate_container(
        &ContainerConfig::new(WorkloadClass::HighDynamic, 1200, seed).with_diurnal_period(400),
    )
}

fn quick_cfg(scenario: Scenario) -> PipelineConfig {
    PipelineConfig {
        scenario,
        window: 16,
        ..Default::default()
    }
}

#[test]
fn full_pipeline_all_scenarios_with_gbt() {
    let frame = container_frame(1);
    for scenario in Scenario::ALL {
        let data = prepare(&frame, &quick_cfg(scenario)).unwrap();
        let mut model = GbtForecaster::new(GbtConfig {
            n_rounds: 30,
            ..Default::default()
        });
        let run = run_model(&mut model, &data);
        assert!(run.test_metrics.mse.is_finite(), "{scenario}: bad mse");
        assert!(run.test_metrics.mse > 0.0);
        assert_eq!(run.truth.len(), data.test.len());
    }
}

#[test]
fn trained_models_beat_the_mean_predictor() {
    // R² > 0 means better than predicting the training mean — a weak but
    // unambiguous bar every real model must clear on an AR-ish trace.
    let frame = container_frame(2);
    let data = prepare(&frame, &quick_cfg(Scenario::Mul)).unwrap();
    let mut gbt = GbtForecaster::new(GbtConfig {
        n_rounds: 40,
        ..Default::default()
    });
    let run = run_model(&mut gbt, &data);
    assert!(run.test_metrics.r2 > 0.0, "GBT r2 {}", run.test_metrics.r2);

    let uni = prepare(&frame, &quick_cfg(Scenario::Uni)).unwrap();
    let mut arima = ArimaForecaster::new(ArimaConfig::default());
    let run = run_model(&mut arima, &uni);
    assert!(
        run.test_metrics.r2 > 0.0,
        "ARIMA r2 {}",
        run.test_metrics.r2
    );
}

#[test]
fn rptcn_trains_end_to_end() {
    // A 1200-sample regime-switching trace has heavy occupancy shift
    // between the chronological splits, so this quick-config test asserts
    // training behaviour (convergence, finiteness, sane outputs) rather
    // than a beat-persistence bar; `tests/table2_shape.rs` holds the
    // accuracy-shape assertions at realistic sizes.
    let frame = container_frame(3);
    let data = prepare(&frame, &quick_cfg(Scenario::MulExp)).unwrap();
    let mut model = RptcnForecaster::new(RptcnConfig {
        channels: 8,
        levels: 3,
        fc_dim: 16,
        spec: NeuralTrainSpec {
            epochs: 12,
            learning_rate: 2e-3,
            ..Default::default()
        },
        ..Default::default()
    });
    let run = run_model(&mut model, &data);
    assert!(run.fit.train_loss.iter().all(|l| l.is_finite()));
    assert!(
        run.fit.final_train_loss() < run.fit.train_loss[0] * 0.6,
        "training barely converged: {:?} -> {:?}",
        run.fit.train_loss[0],
        run.fit.final_train_loss()
    );
    // Clamped predictions stay in the physical range.
    assert!(run.predictions.iter().all(|p| (0.0..=1.2).contains(p)));
    assert!(run.test_metrics.mse < 0.1, "mse {}", run.test_metrics.mse);

    let mut naive = NaiveForecaster::new();
    let naive_run = run_model(&mut naive, &data);
    assert!(naive_run.test_metrics.mse.is_finite());
}

#[test]
fn machine_and_container_pipelines_share_the_same_code_path() {
    let machine = cloudtrace::machine::generate_machine(
        &MachineConfig::new(1200, 4).with_diurnal_period(400),
    );
    let container = container_frame(4);
    for frame in [machine, container] {
        let data = prepare(&frame, &quick_cfg(Scenario::Mul)).unwrap();
        assert_eq!(data.selected[0], "cpu_util_percent");
        assert_eq!(data.selected.len(), 4);
        let mut model = NaiveForecaster::new();
        let run = run_model(&mut model, &data);
        assert!(run.test_metrics.mse.is_finite());
    }
}

#[test]
fn predictions_respect_chronology() {
    // Retraining on a longer prefix must not change earlier test targets:
    // guards against accidental shuffling or leakage in the split.
    let frame = container_frame(5);
    let d1 = prepare(&frame, &quick_cfg(Scenario::Uni)).unwrap();
    let longer = frame.slice_rows(0, frame.len()).unwrap();
    let d2 = prepare(&longer, &quick_cfg(Scenario::Uni)).unwrap();
    assert_eq!(d1.test.y.as_slice(), d2.test.y.as_slice());
}

#[test]
fn csv_roundtrip_feeds_the_pipeline() {
    // Export a generated trace, reload it, and run the pipeline on the
    // reloaded copy — the downstream-user path for real trace files.
    let frame = container_frame(6);
    let dir = std::env::temp_dir().join("rptcn_e2e_csv");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("container.csv");
    frame.write_csv(&path).unwrap();
    let reloaded = TimeSeriesFrame::read_csv(&path).unwrap();
    let data = prepare(&reloaded, &quick_cfg(Scenario::Mul)).unwrap();
    let mut model = GbtForecaster::new(GbtConfig {
        n_rounds: 10,
        ..Default::default()
    });
    let run = run_model(&mut model, &data);
    assert!(run.test_metrics.mse.is_finite());
    std::fs::remove_file(&path).ok();
}
