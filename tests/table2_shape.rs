//! Slow "shape" tests asserting the qualitative Table II findings hold on
//! the synthetic trace with small-but-real trainings. Run with
//! `cargo test --release -- --ignored` (they are ignored by default so the
//! ordinary test cycle stays fast).

use cloudtrace::{ContainerConfig, WorkloadClass};
use models::{
    GbtConfig, GbtForecaster, LstmConfig, LstmForecaster, NeuralTrainSpec, RptcnConfig,
    RptcnForecaster,
};
use rptcn::{prepare, run_model, PipelineConfig, Scenario};

fn frame(seed: u64) -> timeseries::TimeSeriesFrame {
    cloudtrace::container::generate_container(
        &ContainerConfig::new(WorkloadClass::HighDynamic, 2000, seed).with_diurnal_period(600),
    )
}

fn spec(seed: u64) -> NeuralTrainSpec {
    NeuralTrainSpec {
        epochs: 20,
        learning_rate: 2e-3,
        seed,
        ..Default::default()
    }
}

#[test]
#[ignore = "trains real models; run with --ignored --release"]
fn multivariate_input_helps_lstm() {
    // Table II: LSTM's container MSE falls from 2.84 (Uni) to 0.43 (Mul).
    let f = frame(11);
    let uni = prepare(
        &f,
        &PipelineConfig {
            scenario: Scenario::Uni,
            ..Default::default()
        },
    )
    .unwrap();
    let mul = prepare(
        &f,
        &PipelineConfig {
            scenario: Scenario::Mul,
            ..Default::default()
        },
    )
    .unwrap();
    let run_lstm = |data| {
        let mut m = LstmForecaster::new(LstmConfig {
            spec: NeuralTrainSpec {
                learning_rate: 1e-3,
                ..spec(1)
            },
            ..Default::default()
        });
        run_model(&mut m, data).test_metrics.mse
    };
    let uni_mse = run_lstm(&uni);
    let mul_mse = run_lstm(&mul);
    assert!(
        mul_mse < uni_mse * 1.2,
        "multivariate input did not help LSTM: uni {uni_mse:.5} vs mul {mul_mse:.5}"
    );
}

#[test]
#[ignore = "trains real models; run with --ignored --release"]
fn rptcn_is_competitive_with_gbt_on_mulexp() {
    // Table II containers/Mul-Exp: RPTCN 0.2963 vs XGBoost 0.3274 (MSE).
    // On synthetic data we assert the weaker, robust form: RPTCN is within
    // 30% of the boosted trees and both beat the Mul (unexpanded) RPTCN run
    // or at least stay in its league.
    let f = frame(12);
    let mulexp = prepare(
        &f,
        &PipelineConfig {
            scenario: Scenario::MulExp,
            ..Default::default()
        },
    )
    .unwrap();
    let mut rptcn = RptcnForecaster::new(RptcnConfig {
        spec: spec(2),
        ..Default::default()
    });
    let rptcn_mse = run_model(&mut rptcn, &mulexp).test_metrics.mse;
    let mut gbt = GbtForecaster::new(GbtConfig::default());
    let gbt_mse = run_model(&mut gbt, &mulexp).test_metrics.mse;
    assert!(
        rptcn_mse < gbt_mse * 1.3,
        "RPTCN ({rptcn_mse:.5}) far behind XGBoost ({gbt_mse:.5}) on Mul-Exp"
    );
}

#[test]
#[ignore = "trains real models; run with --ignored --release"]
fn rptcn_tracks_mutation_better_than_lstm() {
    // Fig. 8's claim, quantified: lower post-mutation MAE for RPTCN.
    let window = 30usize;
    let steps = 2000usize;
    let n_windows = steps - window;
    let (_, valid_end) = timeseries::SplitRatios::PAPER.boundaries(n_windows);
    let mutation_at = valid_end + window + 150;
    let f = cloudtrace::machine::generate_machine(
        &cloudtrace::MachineConfig::new(steps, 77)
            .with_mean_util(0.3)
            .with_diurnal_period(600)
            .with_mutation(mutation_at, 0.35),
    );
    let data = prepare(
        &f,
        &PipelineConfig {
            scenario: Scenario::MulExp,
            ..Default::default()
        },
    )
    .unwrap();

    let post_mae = |pred: &[f32], truth: &[f32]| {
        // Find the jump in the test truth and measure MAE after it.
        let jump = truth
            .windows(2)
            .enumerate()
            .max_by(|a, b| {
                (a.1[1] - a.1[0])
                    .abs()
                    .partial_cmp(&(b.1[1] - b.1[0]).abs())
                    .unwrap()
            })
            .map(|(i, _)| i + 1)
            .unwrap();
        timeseries::metrics::mae(&truth[jump + 5..], &pred[jump + 5..])
    };

    let mut rptcn = RptcnForecaster::new(RptcnConfig {
        spec: spec(3),
        ..Default::default()
    });
    let r = run_model(&mut rptcn, &data);
    let rptcn_post = post_mae(&r.predictions, &r.truth);

    let mut lstm = LstmForecaster::new(LstmConfig {
        spec: NeuralTrainSpec {
            learning_rate: 1e-3,
            ..spec(3)
        },
        ..Default::default()
    });
    let l = run_model(&mut lstm, &data);
    let lstm_post = post_mae(&l.predictions, &l.truth);

    assert!(
        rptcn_post < lstm_post * 1.2,
        "RPTCN post-mutation MAE {rptcn_post:.5} not competitive with LSTM {lstm_post:.5}"
    );
}
