//! Quickstart: generate a synthetic high-dynamic container trace, run the
//! paper's Algorithm-1 pipeline (clean → normalise → PCC screen → expand →
//! window), train RPTCN and report test accuracy against a persistence
//! baseline.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use cloudtrace::{ContainerConfig, WorkloadClass};
use models::{NaiveForecaster, NeuralTrainSpec, RptcnConfig, RptcnForecaster};
use rptcn::{prepare, run_model, PipelineConfig, Scenario};

fn main() {
    // 1. A container's monitoring history: 8 indicators, 10 s samples.
    let frame = cloudtrace::container::generate_container(
        &ContainerConfig::new(WorkloadClass::HighDynamic, 2500, 42).with_diurnal_period(720),
    );
    println!(
        "generated container trace: {} samples x {} indicators",
        frame.len(),
        frame.num_columns()
    );

    // 2. Algorithm 1, steps 1-5: the Mul-Exp scenario of the paper.
    let cfg = PipelineConfig {
        scenario: Scenario::MulExp,
        window: 30,
        ..Default::default()
    };
    let data = prepare(&frame, &cfg).expect("pipeline");
    println!(
        "kept indicators {:?}; {} features after horizontal expansion",
        data.selected,
        data.train.num_features()
    );
    println!(
        "windows: {} train / {} valid / {} test",
        data.train.len(),
        data.valid.len(),
        data.test.len()
    );

    // 3. Train RPTCN (TCN + FC + attention) with early stopping.
    let mut model = RptcnForecaster::new(RptcnConfig {
        spec: NeuralTrainSpec {
            epochs: 20,
            learning_rate: 2e-3,
            ..Default::default()
        },
        ..Default::default()
    });
    let run = run_model(&mut model, &data);
    println!(
        "RPTCN: test MSE {:.4}x1e-2, MAE {:.4}x1e-2 ({} epochs, early-stopped: {})",
        run.test_metrics.mse * 100.0,
        run.test_metrics.mae * 100.0,
        run.fit.train_loss.len(),
        run.fit.stopped_early
    );

    // 4. Sanity floor: persistence.
    let naive_run = run_model(&mut NaiveForecaster::new(), &data);
    println!(
        "Naive: test MSE {:.4}x1e-2, MAE {:.4}x1e-2",
        naive_run.test_metrics.mse * 100.0,
        naive_run.test_metrics.mae * 100.0
    );

    // 5. A forecast in raw utilisation units for the next interval.
    let last_pred = run.predictions.last().copied().unwrap_or(0.0);
    let raw = data.denormalize("cpu_util_percent", &[last_pred]);
    println!("next-interval CPU forecast: {:.1}%", raw[0] * 100.0);
}
