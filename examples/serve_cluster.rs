//! Distributed serving demo: a [`net::FleetRouter`] places entities
//! across two [`net::NodeServer`]s over the length-prefixed wire
//! protocol, streams live traffic, then grows the fleet by one node
//! (warm state migration), drains a node gracefully, and prints the
//! topology journal the tier kept along the way.
//!
//! ```sh
//! cargo run --release --example serve_cluster
//! ```

use std::time::Duration;

use net::{FleetRouter, NodeConfig, NodeServer, RouterConfig};
use serve::{PredictionService, ServiceConfig};

const ENTITIES: usize = 96;
const ROUNDS: usize = 8;

fn start_node() -> NodeServer {
    let service = PredictionService::new(ServiceConfig {
        shards: 2,
        queue_capacity: 1024,
        refit_workers: 0,
        refit_every: 0,
        score_on_ingest: false,
        ..Default::default()
    })
    .expect("node service starts");
    NodeServer::start(NodeConfig::default(), service).expect("node starts")
}

fn sample(idx: usize, round: usize) -> Vec<f32> {
    vec![0.40 + 0.002 * (idx % 11) as f32 + 0.015 * round as f32]
}

fn ingest_round(router: &mut FleetRouter, ids: &[String], round: usize) {
    let batch: Vec<(String, Vec<f32>)> = ids
        .iter()
        .enumerate()
        .map(|(i, id)| (id.clone(), sample(i, round)))
        .collect();
    let report = router.ingest_batch(&batch).expect("ingest routes");
    assert_eq!(report.accepted as usize, ids.len(), "{:?}", report.errors);
}

fn forecast_all(router: &mut FleetRouter, ids: &[String]) -> usize {
    router
        .forecast_batch(ids)
        .into_iter()
        .filter(|(_, r)| r.is_ok())
        .count()
}

fn main() {
    // Two serving nodes on ephemeral localhost ports; the router talks to
    // them exclusively through the versioned binary wire protocol.
    let nodes = [start_node(), start_node()];
    let mut router = FleetRouter::new(RouterConfig {
        request_timeout: Duration::from_secs(5),
        bulk_timeout: Duration::from_secs(60),
        seed: 7,
        bootstrap_len: 64,
        window: 12,
        ..Default::default()
    });
    for (i, n) in nodes.iter().enumerate() {
        router
            .add_node(&format!("n{i}"), &n.addr().to_string())
            .expect("node joins fleet");
        println!("node n{i} listening on {}", n.addr());
    }

    // Seed the fleet: the router sends Seed frames, each node bootstraps
    // its entities deterministically (same seed → same series anywhere).
    let ids: Vec<String> = (0..ENTITIES).map(|i| format!("svc-{i:03}")).collect();
    let installed = router.seed_entities(&ids).expect("seed succeeds");
    println!("seeded {installed} entities across {} nodes", nodes.len());

    println!("\nstreaming {ROUNDS} rounds of live samples...");
    for round in 0..ROUNDS / 2 {
        ingest_round(&mut router, &ids, round);
    }
    println!(
        "  mid-stream forecast fan-out: {}/{} ok",
        forecast_all(&mut router, &ids),
        ids.len()
    );

    // Grow the fleet: a third node joins and takes over its consistent-
    // hash share via Checkpoint → Restore → Evict, with full model state.
    let newcomer = start_node();
    router
        .add_node("n2", &newcomer.addr().to_string())
        .expect("join succeeds");
    println!(
        "\nnode n2 joined on {}; {} entities migrated warm",
        newcomer.addr(),
        router.registry().counter("router_migrated").get()
    );

    for round in ROUNDS / 2..ROUNDS {
        ingest_round(&mut router, &ids, round);
    }
    println!(
        "  post-join forecast fan-out: {}/{} ok",
        forecast_all(&mut router, &ids),
        ids.len()
    );

    // Shrink gracefully: drain n0 — it checkpoints every entity it owns,
    // hands the states to the ring successors, and leaves the fleet.
    let moved = router.drain_node("n0").expect("drain succeeds");
    println!("\ndrained n0: {moved} entities handed over warm");
    println!(
        "  post-drain forecast fan-out: {}/{} ok (failovers: {})",
        forecast_all(&mut router, &ids),
        ids.len(),
        router.registry().counter("router_failed_over").get()
    );

    println!("\nfleet topology: {:?}", router.nodes());
    println!("\ntopology journal:");
    for e in router.journal().events() {
        println!(
            "  at={}ms kind={} entity={} {}",
            e.at_nanos / 1_000_000,
            e.kind.name(),
            e.entity.as_deref().unwrap_or("-"),
            e.detail
        );
    }

    router.shutdown_fleet();
    println!("\nfleet shut down cleanly");
}
