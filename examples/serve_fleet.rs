//! Fleet serving demo: a sharded [`serve::PredictionService`] ingests live
//! monitoring samples for 64 containers, serves forecasts while background
//! refits retrain models off the hot path, then checkpoints the entire
//! fleet to disk and proves a restored service resumes bit-identical
//! forecasts.
//!
//! ```sh
//! cargo run --release --example serve_fleet
//! ```

use cloudtrace::{ContainerConfig, WorkloadClass};
use models::{NaiveForecaster, NeuralTrainSpec, RptcnConfig, RptcnForecaster};
use rptcn::{PipelineConfig, Scenario};
use serve::{PredictionService, ServiceConfig, ServiceStats};
use std::time::{Duration, Instant};
use timeseries::TimeSeriesFrame;

const ENTITIES: usize = 64;
const BOOTSTRAP: usize = 200;
const LIVE: usize = 60;

fn trace_for(i: usize) -> TimeSeriesFrame {
    let class = match i % 3 {
        0 => WorkloadClass::OnlineService,
        1 => WorkloadClass::BatchJob,
        _ => WorkloadClass::HighDynamic,
    };
    cloudtrace::container::generate_container(
        &ContainerConfig::new(class, BOOTSTRAP + LIVE, 1000 + i as u64).with_diurnal_period(120),
    )
}

fn print_stats(stats: &ServiceStats) {
    println!(
        "  fleet: {} entities, {} ingested, {} forecasts, {} refits done, rolling MAE {:.4}",
        stats.total_entities(),
        stats.total_ingested(),
        stats.total_forecasts(),
        stats.total_refits_completed(),
        stats.rolling_mae()
    );
    for s in &stats.shards {
        println!(
            "  shard {}: {:>2} entities  {:>5} ingested  depth {}  p50 {:>7.1}us  p99 {:>7.1}us",
            s.shard,
            s.entities,
            s.ingested,
            s.queue_depth,
            s.forecast_p50_us.unwrap_or(0.0),
            s.forecast_p99_us.unwrap_or(0.0),
        );
    }
}

fn main() {
    let cfg = PipelineConfig {
        scenario: Scenario::Uni,
        window: 24,
        horizon: 1,
        ..Default::default()
    };

    // 4 shards, background refits every 25 samples per entity.
    let mut service = PredictionService::new(ServiceConfig {
        shards: 4,
        queue_capacity: 256,
        refit_workers: 2,
        refit_every: 25,
        ..Default::default()
    })
    .expect("spawn service");

    println!("onboarding {ENTITIES} containers (4 RPTCN, rest persistence baseline)...");
    let start = Instant::now();
    let traces: Vec<TimeSeriesFrame> = (0..ENTITIES).map(trace_for).collect();
    for (i, trace) in traces.iter().enumerate() {
        let bootstrap = trace.slice_rows(0, BOOTSTRAP).expect("bootstrap slice");
        let model: Box<dyn models::Forecaster + Send> = if i < 4 {
            Box::new(RptcnForecaster::new(RptcnConfig {
                channels: 8,
                levels: 2,
                fc_dim: 16,
                spec: NeuralTrainSpec {
                    epochs: 4,
                    ..Default::default()
                },
                ..Default::default()
            }))
        } else {
            Box::new(NaiveForecaster::new())
        };
        service
            .add_entity(&format!("container_{i:03}"), &bootstrap, cfg.clone(), model)
            .expect("onboard");
    }
    println!("onboarded in {:.1}s\n", start.elapsed().as_secs_f32());

    // Stream the live region: every entity gets one sample per interval,
    // and forecasts are served continuously while the refit pool retrains
    // models in the background (cadence 25 → two refit rounds per entity).
    println!("streaming {LIVE} live intervals across the fleet...");
    let ids: Vec<String> = service.entity_ids();
    let id_refs: Vec<&str> = ids.iter().map(String::as_str).collect();
    for t in BOOTSTRAP..BOOTSTRAP + LIVE {
        for (i, trace) in traces.iter().enumerate() {
            let sample: Vec<f32> = (0..trace.num_columns())
                .map(|j| trace.column_at(j)[t])
                .collect();
            service
                .ingest(&format!("container_{i:03}"), sample)
                .expect("ingest");
        }
        if t % 20 == 0 {
            // Batched fan-out forecast mid-stream, concurrent with refits.
            let results = service.forecast_many(&id_refs);
            let ok = results.iter().filter(|(_, r)| r.is_ok()).count();
            println!(
                "  t={t}: forecast fan-out over {} entities, {ok} ok",
                results.len()
            );
        }
    }
    service.flush().expect("flush");

    // Let in-flight background refits finish so the checkpoint captures
    // the freshest models.
    let deadline = Instant::now() + Duration::from_secs(30);
    while service.stats().total_refits_completed() < ENTITIES as u64 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(20));
        service.flush().expect("flush");
    }

    println!("\nafter streaming:");
    print_stats(&service.stats());

    // The same numbers straight from the obs registry: the text export is
    // what a scrape endpoint would serve. Shard-0 summary lines only; the
    // full export also carries every histogram bucket.
    println!("\nobs metrics snapshot (shard 0 excerpt):");
    let text = obs::to_text(&service.metrics());
    for line in text.lines().filter(|l| l.contains("shard0.")) {
        println!("  {line}");
    }
    let journal = service.journal();
    let events = journal.events();
    println!("\nevent journal ({} events, last 3):", events.len());
    for e in events.iter().rev().take(3).rev() {
        println!(
            "  at={}ms kind={} shard={} entity={} {}",
            e.at_nanos / 1_000_000,
            e.kind.name(),
            e.shard.map_or("-".to_string(), |s| s.to_string()),
            e.entity.as_deref().unwrap_or("-"),
            e.detail
        );
    }

    // Checkpoint the whole fleet, tear the service down, restore under a
    // different shard layout, and verify forecasts are bit-identical.
    let before: Vec<(String, Vec<f32>)> = service
        .forecast_many(&id_refs)
        .into_iter()
        .map(|(id, r)| (id, r.expect("forecast")))
        .collect();

    let path = std::env::temp_dir().join(format!("rptcn-fleet-{}.ckpt", std::process::id()));
    let written = service.checkpoint(&path).expect("checkpoint");
    let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    println!(
        "\ncheckpointed {written} entities to {} ({bytes} bytes)",
        path.display()
    );
    drop(service);

    let restored = PredictionService::restore(
        &path,
        ServiceConfig {
            shards: 6,
            refit_workers: 0,
            ..Default::default()
        },
    )
    .expect("restore");
    std::fs::remove_file(&path).ok();
    println!("restored into a fresh 6-shard service");

    let after = restored.forecast_many(&id_refs);
    let mut mismatches = 0usize;
    for ((id, b), (id2, a)) in before.iter().zip(&after) {
        assert_eq!(id, id2);
        let a = a.as_ref().expect("restored forecast");
        if b.len() != a.len() || b.iter().zip(a).any(|(x, y)| x.to_bits() != y.to_bits()) {
            mismatches += 1;
        }
    }
    assert_eq!(
        mismatches, 0,
        "{mismatches} entities diverged after restore"
    );
    println!(
        "verified: all {} restored forecasts are bit-identical to the pre-checkpoint service",
        before.len()
    );
}
