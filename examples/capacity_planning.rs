//! Capacity planning — the use-case the paper motivates: drive a CPU
//! allocator from forecasts and compare RPTCN-driven allocation against a
//! persistence-driven one on the same high-dynamic trace. Reports SLO
//! violation rate (under-allocation) and mean idle capacity (waste).
//!
//! ```sh
//! cargo run --release --example capacity_planning
//! ```

use cloudtrace::{ContainerConfig, WorkloadClass};
use models::{NaiveForecaster, NeuralTrainSpec, RptcnConfig, RptcnForecaster};
use rptcn::{prepare, run_model, CapacityPlanner, PipelineConfig, PlannerConfig, Scenario};

fn plan(name: &str, predictions: &[f32], actuals: &[f32]) {
    let mut planner = CapacityPlanner::new(PlannerConfig::default());
    let stats = planner.replay(predictions, actuals);
    println!(
        "{name:<12} violations {:>5.1}%   mean waste {:>5.1}% of capacity   total deficit {:.2}",
        100.0 * stats.violation_rate(),
        100.0 * stats.mean_waste(),
        stats.total_deficit,
    );
}

fn main() {
    let frame = cloudtrace::container::generate_container(
        &ContainerConfig::new(WorkloadClass::HighDynamic, 2500, 7).with_diurnal_period(720),
    );
    let cfg = PipelineConfig {
        scenario: Scenario::MulExp,
        window: 30,
        ..Default::default()
    };
    let data = prepare(&frame, &cfg).expect("pipeline");

    println!("training RPTCN for the allocator ...");
    let mut model = RptcnForecaster::new(RptcnConfig {
        spec: NeuralTrainSpec {
            epochs: 20,
            learning_rate: 2e-3,
            ..Default::default()
        },
        ..Default::default()
    });
    let rptcn_run = run_model(&mut model, &data);
    let naive_run = run_model(&mut NaiveForecaster::new(), &data);

    println!(
        "\nreplaying {} test intervals through the capacity planner:",
        rptcn_run.truth.len()
    );
    plan("RPTCN", &rptcn_run.predictions, &rptcn_run.truth);
    plan("Naive", &naive_run.predictions, &naive_run.truth);
    plan("Oracle", &rptcn_run.truth, &rptcn_run.truth);
    println!(
        "\nreading: a better predictor buys a lower violation rate at the same \
         headroom, or the same violations with less reserved-but-idle CPU."
    );
}
