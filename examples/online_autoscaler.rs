//! Online autoscaling loop: an [`rptcn::ResourcePredictor`] ingests live
//! monitoring samples one interval at a time, forecasts the next interval's
//! CPU demand, and an allocator acts on it — including across a sudden
//! workload mutation, the regime the paper targets.
//!
//! ```sh
//! cargo run --release --example online_autoscaler
//! ```

use cloudtrace::{ContainerConfig, WorkloadClass};
use models::{GbtConfig, GbtForecaster};
use rptcn::{CapacityPlanner, PipelineConfig, PlannerConfig, ResourcePredictor, Scenario};

fn main() {
    // Full trace: the second half contains a persistent usage jump.
    let steps = 1600;
    let frame = cloudtrace::container::generate_container(
        &ContainerConfig::new(WorkloadClass::OnlineService, steps, 99)
            .with_diurnal_period(600)
            .with_mutation(1200, 0.35),
    );
    let bootstrap = frame.slice_rows(0, 800).expect("bootstrap slice");

    // A gradient-boosted predictor keeps per-step retraining cheap in an
    // online loop; swap in RptcnForecaster for the full model.
    let model = GbtForecaster::new(GbtConfig {
        n_rounds: 60,
        ..Default::default()
    });
    let cfg = PipelineConfig {
        scenario: Scenario::Mul,
        window: 30,
        ..Default::default()
    };
    let (mut predictor, fit_run) =
        ResourcePredictor::fit(Box::new(model), &bootstrap, cfg).expect("bootstrap fit");
    predictor.set_refit_every(400);
    println!(
        "bootstrapped on 800 samples; test MSE {:.4}x1e-2",
        fit_run.test_metrics.mse * 100.0
    );

    let mut planner = CapacityPlanner::new(PlannerConfig::default());
    let cpu = frame.column("cpu_util_percent").unwrap().to_vec();
    let mut refits = 0;
    #[allow(clippy::needless_range_loop)] // t is wall-clock time, not just an index
    for t in 800..steps {
        // Forecast, allocate, then observe reality.
        let forecast = predictor.forecast().expect("forecast")[0];
        let allocation = planner.allocate(forecast);
        let actual = cpu[t];
        planner.settle(forecast, allocation, actual);

        let sample: Vec<f32> = (0..frame.num_columns())
            .map(|j| frame.column_at(j)[t])
            .collect();
        if predictor.observe(&sample).expect("observe") {
            refits += 1;
        }
        if t % 200 == 0 {
            println!(
                "t={t:>5}  actual {actual:.3}  forecast {forecast:.3}  allocated {allocation:.3}"
            );
        }
    }

    let stats = planner.stats();
    println!(
        "\nran {} live decisions with {refits} periodic refits",
        stats.decisions
    );
    println!(
        "violation rate {:.1}%   mean waste {:.1}% of capacity",
        100.0 * stats.violation_rate(),
        100.0 * stats.mean_waste()
    );
    println!("the mutation at t=1200 is absorbed: the planner's adaptive headroom widens after the level shift.");
}
