//! Predicting a different resource — the paper's §V-C points out that "CPU
//! resource can also be extended to other performance indicators such as
//! memory usage": the pipeline is target-agnostic, so switching the target
//! column re-runs correlation screening *for that target* and trains the
//! same model unchanged.
//!
//! ```sh
//! cargo run --release --example memory_prediction
//! ```

use cloudtrace::{ContainerConfig, WorkloadClass};
use models::{GbtConfig, GbtForecaster, NaiveForecaster};
use rptcn::{prepare, run_model, PipelineConfig, Scenario};

fn main() {
    let frame = cloudtrace::container::generate_container(
        &ContainerConfig::new(WorkloadClass::BatchJob, 2500, 21).with_diurnal_period(720),
    );

    for target in ["cpu_util_percent", "mem_util_percent", "net_in"] {
        let cfg = PipelineConfig {
            target: target.to_string(),
            scenario: Scenario::Mul,
            window: 30,
            ..Default::default()
        };
        let data = prepare(&frame, &cfg).expect("pipeline");
        println!("target {target}: screening kept {:?}", data.selected);

        let mut gbt = GbtForecaster::new(GbtConfig::default());
        let run = run_model(&mut gbt, &data);
        let naive = run_model(&mut NaiveForecaster::new(), &data);
        println!(
            "  XGBoost MSE {:.4}x1e-2 MAE {:.4}x1e-2   (naive: {:.4} / {:.4})\n",
            run.test_metrics.mse * 100.0,
            run.test_metrics.mae * 100.0,
            naive.test_metrics.mse * 100.0,
            naive.test_metrics.mae * 100.0,
        );
    }
    println!("the same Algorithm-1 pipeline serves any monitored indicator as the target.");
}
