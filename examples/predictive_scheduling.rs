//! Prediction-aware container placement — the §II scheduling use-case:
//! place arriving containers on the machine whose *predicted* load leaves
//! the most headroom, and compare the overload time against reactive
//! (current-load) and smoothed (recent-mean) schedulers.
//!
//! Forecasts come from a gradient-boosted predictor trained per machine on
//! its own history — the same pipeline the paper's resource manager would
//! run, kept cheap enough for a laptop demo.
//!
//! ```sh
//! cargo run --release --example predictive_scheduling
//! ```

use cloudtrace::MachineConfig;
use models::{Forecaster, GbtConfig, GbtForecaster};
use rptcn::{
    prepare, Arrival, PipelineConfig, PlacementSimulator, PlacementStrategy, Scenario, SimMachine,
};
use tensor::Rng;

fn machines(n: usize, steps: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = Rng::seed_from(seed);
    (0..n)
        .map(|i| {
            let mseed = seed + i as u64 * 31;
            let frame = cloudtrace::machine::generate_machine(
                &MachineConfig::new(steps, mseed)
                    .with_mean_util(cloudtrace::machine::sample_mean_util(&mut rng))
                    .with_diurnal_period(600),
            );
            frame.column("cpu_util_percent").unwrap().to_vec()
        })
        .collect()
}

/// Train a one-step forecaster per machine and roll it over the series.
fn model_forecasts(backgrounds: &[Vec<f32>]) -> Vec<Vec<f32>> {
    backgrounds
        .iter()
        .enumerate()
        .map(|(i, cpu)| {
            let frame =
                timeseries::TimeSeriesFrame::from_columns(&[("cpu_util_percent", cpu.clone())])
                    .unwrap();
            let cfg = PipelineConfig {
                scenario: Scenario::Uni,
                window: 30,
                ..Default::default()
            };
            let data = prepare(&frame, &cfg).expect("pipeline");
            let mut model = GbtForecaster::new(GbtConfig {
                n_rounds: 60,
                seed: i as u64,
                ..Default::default()
            });
            model.fit(&data.train, Some(&data.valid));
            // Roll the model over the whole series (where a window fits);
            // earlier steps fall back to the current value.
            let mut out = cpu.clone();
            let window = 30;
            let all = timeseries::make_windows(&frame, "cpu_util_percent", window, 1).unwrap();
            let preds = model.predict(&all.x);
            for (w, slot) in preds.as_slice().iter().enumerate() {
                out[w + window - 1] = *slot;
            }
            out
        })
        .collect()
}

fn main() {
    let steps = 1500;
    let backgrounds = machines(6, steps, 77);
    println!("training one per-machine forecaster for the predictive scheduler ...");
    let forecasts = model_forecasts(&backgrounds);

    // A burst of medium-lived containers arriving through the run.
    let mut rng = Rng::seed_from(3);
    let arrivals: Vec<Arrival> = (0..40)
        .map(|_| {
            let at = rng.below(steps - 300);
            let len = 100 + rng.below(200);
            Arrival {
                at,
                demand: vec![rng.uniform(0.1, 0.3); len],
            }
        })
        .collect();

    println!(
        "placing {} containers on {} machines over {steps} intervals\n",
        arrivals.len(),
        backgrounds.len()
    );
    println!(
        "{:<14} {:>14} {:>10} {:>10}",
        "strategy", "overload_steps", "rate", "peak"
    );
    for (name, strategy, fc) in [
        ("current-load", PlacementStrategy::CurrentLoad, None),
        ("recent-mean", PlacementStrategy::RecentMean, None),
        ("predicted", PlacementStrategy::Predicted, Some(&forecasts)),
    ] {
        let sim_machines: Vec<SimMachine> = backgrounds
            .iter()
            .map(|b| SimMachine::new(b.clone()))
            .collect();
        let mut sim = PlacementSimulator::new(sim_machines, 0.9);
        let outcome = sim.run(&arrivals, strategy, fc.map(|f| f.as_slice()));
        println!(
            "{:<14} {:>14} {:>9.2}% {:>10.3}",
            name,
            outcome.overloaded_steps,
            100.0 * outcome.overload_rate(),
            outcome.peak_load
        );
    }
    println!("\nreading: forecast-driven placement trades fewer overloaded machine-intervals for the same workload.");
}
