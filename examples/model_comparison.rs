//! Model comparison — a miniature Table II: train all five models of the
//! paper on one container under the Mul-Exp scenario and print the test
//! MSE/MAE side by side.
//!
//! ```sh
//! cargo run --release --example model_comparison
//! ```

use cloudtrace::{ContainerConfig, WorkloadClass};
use models::{
    ArimaConfig, ArimaForecaster, CnnLstmConfig, CnnLstmForecaster, Forecaster, GbtConfig,
    GbtForecaster, LstmConfig, LstmForecaster, NeuralTrainSpec, RptcnConfig, RptcnForecaster,
};
use rptcn::{prepare, run_model, PipelineConfig, Scenario};

fn main() {
    let frame = cloudtrace::container::generate_container(
        &ContainerConfig::new(WorkloadClass::HighDynamic, 2500, 13).with_diurnal_period(720),
    );

    let spec = NeuralTrainSpec {
        epochs: 20,
        ..Default::default()
    };
    let uni = prepare(
        &frame,
        &PipelineConfig {
            scenario: Scenario::Uni,
            window: 30,
            ..Default::default()
        },
    )
    .expect("uni pipeline");
    let mulexp = prepare(
        &frame,
        &PipelineConfig {
            scenario: Scenario::MulExp,
            window: 30,
            ..Default::default()
        },
    )
    .expect("mul-exp pipeline");

    println!(
        "{:<10} {:<8} {:>12} {:>12} {:>8}",
        "model", "input", "MSE(1e-2)", "MAE(1e-2)", "epochs"
    );
    println!("{}", "-".repeat(56));

    // ARIMA is univariate by construction.
    let mut arima = ArimaForecaster::new(ArimaConfig::default());
    let run = run_model(&mut arima, &uni);
    print_row("ARIMA", "Uni", &run);

    let mut models: Vec<Box<dyn Forecaster>> = vec![
        Box::new(LstmForecaster::new(LstmConfig {
            spec,
            ..Default::default()
        })),
        Box::new(CnnLstmForecaster::new(CnnLstmConfig {
            spec,
            ..Default::default()
        })),
        Box::new(GbtForecaster::new(GbtConfig::default())),
        Box::new(RptcnForecaster::new(RptcnConfig {
            spec: NeuralTrainSpec {
                learning_rate: 2e-3,
                ..spec
            },
            ..Default::default()
        })),
    ];
    for model in &mut models {
        eprintln!("training {} ...", model.name());
        let run = run_model(model.as_mut(), &mulexp);
        print_row(model.name(), "Mul-Exp", &run);
    }
}

fn print_row(name: &str, input: &str, run: &rptcn::PipelineRun) {
    println!(
        "{:<10} {:<8} {:>12.4} {:>12.4} {:>8}",
        name,
        input,
        run.test_metrics.mse * 100.0,
        run.test_metrics.mae * 100.0,
        run.fit.train_loss.len(),
    );
}
