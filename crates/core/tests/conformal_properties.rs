//! Property tests for the split-conformal calibrator: on exchangeable
//! residuals the interval achieves at least its nominal coverage (minus
//! finite-sample noise), and on degenerate windows — tiny, constant, or
//! NaN-riddled — it widens gracefully instead of panicking.

use proptest::prelude::*;
use rptcn::{Calibration, ConformalState};

/// Held-out sample size. Large enough that a 4-sigma binomial band is a
/// few percent wide.
const HELD_OUT: usize = 400;
/// Calibration window size for the coverage property.
const CALIB: usize = 100;

/// One exchangeable pool: every element drawn iid from the same uniform
/// strategy, so any calibration/held-out split is exchangeable.
fn residual_pool() -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-10.0f32..10.0, CALIB + HELD_OUT)
}

proptest! {
    /// Split-conformal coverage: calibrate on the first `CALIB` residuals,
    /// then check the fraction of held-out residuals inside
    /// `interval_offsets(coverage)`. The conservative rank guarantees
    /// expected coverage at least nominal; we allow a 4-sigma binomial
    /// slack for the finite held-out set.
    #[test]
    fn interval_covers_exchangeable_held_out_residuals(
        pool in residual_pool(),
        cov_idx in 0usize..3,
    ) {
        let coverage = [0.5f64, 0.8, 0.9][cov_idx];
        let mut state = ConformalState::new(CALIB);
        for &r in &pool[..CALIB] {
            state.push(r);
        }
        prop_assert_eq!(state.calibration(), Calibration::Calibrated);
        let (lo, hi) = state.interval_offsets(coverage);
        prop_assert!(lo.is_finite() && hi.is_finite());
        prop_assert!(lo <= hi);

        let held_out = &pool[CALIB..];
        let hits = held_out.iter().filter(|&&r| lo <= r && r <= hi).count();
        let empirical = hits as f64 / held_out.len() as f64;
        // Two noise sources: the calibration quantile is Beta-distributed
        // (variance ~ p(1-p)/(n+2)) and the held-out check is binomial
        // (variance p(1-p)/m). Allow 4 sigma of their sum.
        let var = coverage * (1.0 - coverage)
            * (1.0 / (CALIB as f64 + 2.0) + 1.0 / held_out.len() as f64);
        let slack = 4.0 * var.sqrt();
        prop_assert!(
            empirical >= coverage - slack,
            "coverage {} fell more than 4 sigma below nominal {}",
            empirical,
            coverage
        );
    }

    /// Degenerate windows never panic and always answer with a finite,
    /// ordered interval. Below the calibration threshold the state reports
    /// `Insufficient` and falls back to the widest residual ever seen, so
    /// the interval covers every residual pushed so far.
    #[test]
    fn tiny_and_constant_windows_widen_gracefully(
        n in 0usize..8,
        value in -100.0f32..100.0,
        constant_idx in 0usize..2,
        coverage_pct in 0usize..=100,
    ) {
        let constant = constant_idx == 0;
        let coverage = coverage_pct as f64 / 100.0;
        let mut state = ConformalState::new(16);
        let mut pushed = Vec::new();
        for i in 0..n {
            let r = if constant { value } else { value + i as f32 };
            state.push(r);
            pushed.push(r);
        }
        prop_assert_eq!(state.calibration(), Calibration::Insufficient);
        let (lo, hi) = state.interval_offsets(coverage);
        prop_assert!(lo.is_finite() && hi.is_finite());
        prop_assert!(lo <= hi);
        for r in pushed {
            prop_assert!(lo <= r && r <= hi, "insufficient-window interval must cover every residual seen");
        }
    }

    /// Non-finite residuals (a repaired-NaN window scored against a NaN
    /// actual) are dropped and counted, never poisoning the offsets.
    #[test]
    fn non_finite_residuals_are_skipped_not_absorbed(
        finite in proptest::collection::vec(-5.0f32..5.0, 8..32),
        poison_kinds in proptest::collection::vec(0usize..3, 1..8),
    ) {
        let mut state = ConformalState::new(64);
        for &r in &finite {
            state.push(r);
        }
        for &k in &poison_kinds {
            state.push([f32::NAN, f32::INFINITY, f32::NEG_INFINITY][k]);
        }
        prop_assert_eq!(state.skipped(), poison_kinds.len() as u64);
        prop_assert_eq!(state.len(), finite.len());
        let (lo, hi) = state.interval_offsets(0.9);
        prop_assert!(lo.is_finite() && hi.is_finite());
        prop_assert!(state.max_abs().is_finite());
    }
}
