//! # rptcn — the end-to-end resource-prediction system
//!
//! Ties the substrates together into the system the paper describes:
//!
//! * [`pipeline`] — Algorithm 1 as a typed pipeline
//!   ([`pipeline::prepare`] → [`pipeline::run_model`]): cleaning,
//!   min-max normalisation, Pearson top-half screening, horizontal data
//!   expansion, windowing and the 6:2:2 chronological split.
//! * [`scenario`] — the Uni / Mul / Mul-Exp input scenarios of Table II.
//! * [`predictor`] — an online [`predictor::ResourcePredictor`] that ingests
//!   monitoring samples, serves rolling forecasts and retrains periodically.
//! * [`allocator`] — a prediction-driven [`allocator::CapacityPlanner`]
//!   scoring over-/under-allocation, the use-case motivating the paper.
//! * [`decide`] — probabilistic reservations: split-conformal intervals
//!   from rolling residuals ([`decide::ConformalState`]) driving a
//!   Bayesian cost-model decision rule with hysteresis
//!   ([`decide::DecisionPlanner`]).
//! * [`observe`] — spans and counters around the pipeline stages
//!   ([`observe::PipelineObs`]), registered in a shared `obs::Registry`.
//!
//! ```
//! use rptcn::{prepare, run_model, PipelineConfig, Scenario};
//! use cloudtrace::{ContainerConfig, WorkloadClass};
//! use models::{Forecaster, NaiveForecaster};
//!
//! let frame = cloudtrace::container::generate_container(
//!     &ContainerConfig::new(WorkloadClass::HighDynamic, 600, 7).with_diurnal_period(300),
//! );
//! let cfg = PipelineConfig { window: 12, scenario: Scenario::Mul, ..Default::default() };
//! let data = prepare(&frame, &cfg).unwrap();
//! let run = run_model(&mut NaiveForecaster::new(), &data);
//! assert!(run.test_metrics.mse.is_finite());
//! ```

pub mod allocator;
pub mod decide;
pub mod evaluation;
pub mod fleet;
pub mod observe;
pub mod pipeline;
pub mod placement;
pub mod predictor;
pub mod scenario;

pub use allocator::{CapacityPlanner, PlannerConfig, PlannerStats};
pub use decide::{
    Calibration, ConformalState, CostModel, Decision, DecisionConfig, DecisionPlanner,
    DecisionRule, DecisionStats, HysteresisConfig, HysteresisState, ScaleAction,
};
pub use evaluation::{rolling_origin, RollingOriginConfig, RollingOriginResult};
pub use fleet::{EntityReport, FleetConfig, FleetService};
pub use observe::PipelineObs;
pub use pipeline::{
    prepare, run_model, FittedPreprocess, PipelineConfig, PipelineRun, PreparedData, ScalerScope,
};
pub use placement::{
    Arrival, HashRing, OwnershipAudit, PlacementOutcome, PlacementSimulator, PlacementStrategy,
    SimMachine,
};
pub use predictor::{new_shared_group, PredictorState, ResourcePredictor};
pub use scenario::Scenario;
