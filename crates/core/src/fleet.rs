//! Fleet-level prediction service: one predictor per monitored entity,
//! staggered retraining, change-point-triggered refits and aggregate
//! accuracy accounting — the shape of the component a cluster resource
//! manager (§II) would actually deploy.

use models::Forecaster;
use timeseries::changepoint::Cusum;
use timeseries::{FrameError, TimeSeriesFrame};

use crate::pipeline::PipelineConfig;
use crate::predictor::ResourcePredictor;

/// Fleet-service policy knobs.
#[derive(Debug, Clone, Copy)]
pub struct FleetConfig {
    /// Periodic refit cadence in samples (staggered per entity); 0 disables.
    pub refit_every: usize,
    /// Refit immediately when the target's CUSUM fires.
    pub refit_on_changepoint: bool,
    /// CUSUM reference value (half-shift) in normalised units.
    pub cusum_k: f64,
    /// CUSUM decision threshold.
    pub cusum_h: f64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            refit_every: 500,
            refit_on_changepoint: true,
            cusum_k: 0.02,
            cusum_h: 0.6,
        }
    }
}

struct Entity {
    id: String,
    predictor: ResourcePredictor,
    detector: Cusum,
    target_column: usize,
    samples_seen: usize,
    refits: usize,
    changepoint_refits: usize,
    /// Forecast issued at the previous step, scored on arrival of truth.
    pending_forecast: Option<f32>,
    abs_err_sum: f64,
    sq_err_sum: f64,
    scored: usize,
}

/// Aggregate accuracy / activity statistics for one entity.
#[derive(Debug, Clone, PartialEq)]
pub struct EntityReport {
    pub id: String,
    pub samples_seen: usize,
    pub refits: usize,
    pub changepoint_refits: usize,
    pub online_mae: f64,
    pub online_mse: f64,
}

/// Deterministic per-entity refit phase: FNV-1a of the id. Entities with
/// the same cadence land on different phases, spreading retraining cost
/// evenly over time instead of spiking every `refit_every` samples.
fn stagger_offset(id: &str) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in id.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h as usize
}

/// Manages one [`ResourcePredictor`] per entity.
pub struct FleetService {
    config: FleetConfig,
    entities: Vec<Entity>,
}

impl FleetService {
    /// An empty fleet governed by `config`.
    pub fn new(config: FleetConfig) -> Self {
        Self {
            config,
            entities: Vec::new(),
        }
    }

    /// Number of managed entities.
    pub fn len(&self) -> usize {
        self.entities.len()
    }

    /// True before any entity is onboarded.
    pub fn is_empty(&self) -> bool {
        self.entities.is_empty()
    }

    /// Onboard an entity: fit its predictor on `bootstrap` history.
    /// Retraining cadence is staggered by a hash of the entity id so the
    /// fleet never retrains everything in the same interval. The predictor
    /// is the single owner of the cadence; the fleet only configures it
    /// here, through [`ResourcePredictor::set_refit_schedule`].
    pub fn add_entity(
        &mut self,
        id: impl Into<String>,
        model: Box<dyn Forecaster + Send>,
        bootstrap: &TimeSeriesFrame,
        pipeline: PipelineConfig,
    ) -> Result<(), FrameError> {
        let id = id.into();
        let target_column = bootstrap
            .column_index(&pipeline.target)
            .ok_or_else(|| FrameError(format!("target '{}' missing", pipeline.target)))?;
        let (mut predictor, _) = ResourcePredictor::fit(model, bootstrap, pipeline)?;
        predictor.set_refit_schedule(self.config.refit_every, stagger_offset(&id));
        self.entities.push(Entity {
            id,
            predictor,
            detector: Cusum::new(self.config.cusum_k, self.config.cusum_h),
            target_column,
            samples_seen: 0,
            refits: 0,
            changepoint_refits: 0,
            pending_forecast: None,
            abs_err_sum: 0.0,
            sq_err_sum: 0.0,
            scored: 0,
        });
        Ok(())
    }

    /// Ingest one monitoring sample for entity `idx` and return the
    /// forecast for its next interval (raw target units). The forecast
    /// issued at the previous step is scored against this sample's truth.
    pub fn step(&mut self, idx: usize, sample: &[f32]) -> Result<f32, FrameError> {
        let cfg = self.config;
        let e = &mut self.entities[idx];
        let actual = sample[e.target_column];

        // Score yesterday's forecast against today's truth.
        if let Some(f) = e.pending_forecast.take() {
            let err = (f - actual) as f64;
            e.abs_err_sum += err.abs();
            e.sq_err_sum += err * err;
            e.scored += 1;
        }

        let periodic_refit = e.predictor.observe(sample)?;
        e.samples_seen += 1;
        if periodic_refit {
            e.refits += 1;
        }

        // Change-point-triggered refit.
        if cfg.refit_on_changepoint {
            if let Some(_cp) = e.detector.update(e.samples_seen, actual as f64) {
                e.predictor.refit()?;
                e.refits += 1;
                e.changepoint_refits += 1;
            }
        }

        let forecast = e.predictor.forecast()?[0];
        e.pending_forecast = Some(forecast);
        Ok(forecast)
    }

    /// Per-entity accuracy / activity reports.
    pub fn reports(&self) -> Vec<EntityReport> {
        self.entities
            .iter()
            .map(|e| EntityReport {
                id: e.id.clone(),
                samples_seen: e.samples_seen,
                refits: e.refits,
                changepoint_refits: e.changepoint_refits,
                online_mae: if e.scored > 0 {
                    e.abs_err_sum / e.scored as f64
                } else {
                    0.0
                },
                online_mse: if e.scored > 0 {
                    e.sq_err_sum / e.scored as f64
                } else {
                    0.0
                },
            })
            .collect()
    }

    /// Fleet-wide mean online MAE.
    pub fn fleet_mae(&self) -> f64 {
        let reports = self.reports();
        if reports.is_empty() {
            return 0.0;
        }
        reports.iter().map(|r| r.online_mae).sum::<f64>() / reports.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;
    use cloudtrace::{ContainerConfig, WorkloadClass};
    use models::NaiveForecaster;

    fn frame(seed: u64, steps: usize) -> TimeSeriesFrame {
        cloudtrace::container::generate_container(
            &ContainerConfig::new(WorkloadClass::OnlineService, steps, seed)
                .with_diurnal_period(300),
        )
    }

    fn pipeline() -> PipelineConfig {
        PipelineConfig {
            window: 12,
            scenario: Scenario::Uni,
            ..Default::default()
        }
    }

    #[test]
    fn onboarding_and_stepping() {
        let mut fleet = FleetService::new(FleetConfig {
            refit_every: 0,
            refit_on_changepoint: false,
            ..Default::default()
        });
        let full = frame(1, 700);
        let bootstrap = full.slice_rows(0, 500).unwrap();
        fleet
            .add_entity(
                "c_0",
                Box::new(NaiveForecaster::new()),
                &bootstrap,
                pipeline(),
            )
            .unwrap();
        assert_eq!(fleet.len(), 1);

        for t in 500..700 {
            let sample: Vec<f32> = (0..full.num_columns())
                .map(|j| full.column_at(j)[t])
                .collect();
            let forecast = fleet.step(0, &sample).unwrap();
            assert!(forecast.is_finite());
        }
        let reports = fleet.reports();
        assert_eq!(reports[0].samples_seen, 200);
        // 199 forecasts scored (the last one is still pending).
        assert!(reports[0].online_mae > 0.0);
        assert!(fleet.fleet_mae() > 0.0);
    }

    #[test]
    fn changepoint_triggers_refit() {
        let mut fleet = FleetService::new(FleetConfig {
            refit_every: 0,
            refit_on_changepoint: true,
            cusum_k: 0.02,
            cusum_h: 0.4,
        });
        let full = cloudtrace::container::generate_container(
            &ContainerConfig::new(WorkloadClass::OnlineService, 900, 5)
                .with_diurnal_period(400)
                .with_mutation(700, 0.4),
        );
        let bootstrap = full.slice_rows(0, 600).unwrap();
        fleet
            .add_entity(
                "c_0",
                Box::new(NaiveForecaster::new()),
                &bootstrap,
                pipeline(),
            )
            .unwrap();
        for t in 600..900 {
            let sample: Vec<f32> = (0..full.num_columns())
                .map(|j| full.column_at(j)[t])
                .collect();
            fleet.step(0, &sample).unwrap();
        }
        let r = &fleet.reports()[0];
        assert!(
            r.changepoint_refits >= 1,
            "mutation did not trigger a refit: {r:?}"
        );
    }

    #[test]
    fn missing_target_column_rejected() {
        let mut fleet = FleetService::new(FleetConfig::default());
        let bad = TimeSeriesFrame::from_columns(&[("mem", vec![0.5; 100])]).unwrap();
        assert!(fleet
            .add_entity("x", Box::new(NaiveForecaster::new()), &bad, pipeline())
            .is_err());
        assert!(fleet.is_empty());
    }

    #[test]
    fn multiple_entities_tracked_independently() {
        let mut fleet = FleetService::new(FleetConfig {
            refit_every: 0,
            refit_on_changepoint: false,
            ..Default::default()
        });
        for seed in 0..3 {
            let bootstrap = frame(seed, 500);
            fleet
                .add_entity(
                    format!("c_{seed}"),
                    Box::new(NaiveForecaster::new()),
                    &bootstrap,
                    pipeline(),
                )
                .unwrap();
        }
        assert_eq!(fleet.len(), 3);
        let extra = frame(9, 520);
        for t in 0..20 {
            let sample: Vec<f32> = (0..extra.num_columns())
                .map(|j| extra.column_at(j)[500 + t])
                .collect();
            fleet.step(1, &sample).unwrap();
        }
        let reports = fleet.reports();
        assert_eq!(reports[0].samples_seen, 0);
        assert_eq!(reports[1].samples_seen, 20);
        assert_eq!(reports[2].samples_seen, 0);
    }
}
