//! Prediction-driven capacity planning — the use-case the paper's
//! introduction motivates: allocate enough CPU to satisfy demand (avoid
//! under-allocation → SLO violations) without parking idle cores (avoid
//! over-allocation → the waste Figs 2–3 document).

use crate::decide::{Calibration, ConformalState};

/// Allocation policy knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlannerConfig {
    /// Fixed safety margin added on top of the prediction.
    pub base_headroom: f32,
    /// Quantile of recent |prediction error| added as adaptive headroom.
    pub error_quantile: f64,
    /// How many recent residuals inform the adaptive headroom.
    pub residual_window: usize,
    /// Allocation bounds (fractions of capacity).
    pub min_alloc: f32,
    pub max_alloc: f32,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        Self {
            base_headroom: 0.05,
            error_quantile: 0.9,
            residual_window: 128,
            min_alloc: 0.05,
            max_alloc: 1.0,
        }
    }
}

/// Cumulative planner outcomes over a trace replay.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PlannerStats {
    pub decisions: usize,
    /// Steps where actual demand exceeded the allocation (SLO risk).
    pub underallocations: usize,
    /// Sum of `allocation − actual` over steps with slack (idle capacity).
    pub total_waste: f64,
    /// Sum of `actual − allocation` over violation steps.
    pub total_deficit: f64,
}

impl PlannerStats {
    /// Fraction of decisions that under-allocated.
    pub fn violation_rate(&self) -> f64 {
        if self.decisions == 0 {
            0.0
        } else {
            self.underallocations as f64 / self.decisions as f64
        }
    }

    /// Mean idle capacity per decision.
    pub fn mean_waste(&self) -> f64 {
        if self.decisions == 0 {
            0.0
        } else {
            self.total_waste / self.decisions as f64
        }
    }
}

/// Converts forecasts into allocations and scores them against actuals.
///
/// The adaptive margin is a conservative split-conformal quantile of the
/// rolling |residual| window (see [`crate::decide::conformal`]) — the same
/// machinery the decision layer uses, restricted here to the legacy
/// "prediction + headroom" shape for the capacity-planning example.
#[derive(Debug, Clone)]
pub struct CapacityPlanner {
    config: PlannerConfig,
    residuals: ConformalState,
    stats: PlannerStats,
}

impl CapacityPlanner {
    /// A planner with empty residual history and zeroed counters.
    pub fn new(config: PlannerConfig) -> Self {
        Self {
            residuals: ConformalState::new(config.residual_window),
            config,
            stats: PlannerStats::default(),
        }
    }

    /// Allocation for a predicted demand: prediction + fixed headroom +
    /// an error-quantile adaptive margin, clamped to the configured bounds.
    /// The adaptive margin stays zero until the residual window is
    /// calibrated, so a cold planner allocates exactly the base headroom.
    pub fn allocate(&self, predicted: f32) -> f32 {
        let adaptive = match self.residuals.calibration() {
            Calibration::Calibrated => self.residuals.upper_offset(self.config.error_quantile),
            Calibration::Insufficient => 0.0,
        };
        (predicted + self.config.base_headroom + adaptive)
            .clamp(self.config.min_alloc, self.config.max_alloc)
    }

    /// Record the realised demand for a past decision, updating both the
    /// residual window (for adaptive headroom) and the outcome statistics.
    pub fn settle(&mut self, predicted: f32, allocated: f32, actual: f32) {
        self.residuals.push((actual - predicted).abs());
        self.stats.decisions += 1;
        if actual > allocated {
            self.stats.underallocations += 1;
            self.stats.total_deficit += (actual - allocated) as f64;
        } else {
            self.stats.total_waste += (allocated - actual) as f64;
        }
    }

    /// Cumulative allocation outcomes observed so far.
    pub fn stats(&self) -> &PlannerStats {
        &self.stats
    }

    /// Replay a (prediction, actual) sequence through the planner and
    /// return the outcome statistics. This is how the capacity-planning
    /// example scores predictors end to end.
    pub fn replay(&mut self, predictions: &[f32], actuals: &[f32]) -> PlannerStats {
        assert_eq!(predictions.len(), actuals.len(), "replay inputs must pair");
        for (&p, &a) in predictions.iter().zip(actuals) {
            let alloc = self.allocate(p);
            self.settle(p, alloc, a);
        }
        self.stats.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_adds_headroom_and_clamps() {
        let planner = CapacityPlanner::new(PlannerConfig::default());
        let a = planner.allocate(0.5);
        assert!((a - 0.55).abs() < 1e-6);
        assert_eq!(planner.allocate(2.0), 1.0);
        assert_eq!(planner.allocate(-1.0), 0.05);
    }

    #[test]
    fn adaptive_headroom_grows_with_errors() {
        let mut planner = CapacityPlanner::new(PlannerConfig::default());
        // Settle ten decisions with a consistent 0.2 under-prediction.
        for _ in 0..10 {
            let alloc = planner.allocate(0.4);
            planner.settle(0.4, alloc, 0.6);
        }
        let with_history = planner.allocate(0.4);
        assert!(
            with_history > 0.55,
            "planner ignored its error history: {with_history}"
        );
    }

    #[test]
    fn perfect_predictions_yield_no_violations() {
        let mut planner = CapacityPlanner::new(PlannerConfig::default());
        let series: Vec<f32> = (0..50).map(|i| 0.3 + 0.01 * (i % 10) as f32).collect();
        let stats = planner.replay(&series, &series);
        assert_eq!(stats.underallocations, 0);
        assert_eq!(stats.decisions, 50);
        // Waste equals exactly the base headroom per decision.
        assert!((stats.mean_waste() - 0.05).abs() < 0.02);
    }

    #[test]
    fn bad_predictions_cause_violations() {
        let mut planner = CapacityPlanner::new(PlannerConfig {
            base_headroom: 0.0,
            error_quantile: 0.5,
            ..Default::default()
        });
        let predictions = vec![0.2f32; 20];
        let actuals = vec![0.9f32; 20];
        let stats = planner.replay(&predictions, &actuals);
        assert!(stats.underallocations > 0);
        assert!(stats.total_deficit > 0.0);
        assert!(stats.violation_rate() > 0.3);
    }

    #[test]
    fn stats_helpers_handle_empty() {
        let s = PlannerStats::default();
        assert_eq!(s.violation_rate(), 0.0);
        assert_eq!(s.mean_waste(), 0.0);
    }

    #[test]
    fn empty_residual_window_uses_base_headroom_only() {
        let planner = CapacityPlanner::new(PlannerConfig {
            base_headroom: 0.1,
            ..Default::default()
        });
        // No residuals settled: the adaptive term must be exactly zero.
        assert!((planner.allocate(0.3) - 0.4).abs() < 1e-6);
    }

    #[test]
    fn extreme_error_quantiles_pick_window_extremes() {
        let residuals = [0.05f32, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4];
        let mut lo = CapacityPlanner::new(PlannerConfig {
            base_headroom: 0.0,
            error_quantile: 0.0,
            ..Default::default()
        });
        let mut hi = CapacityPlanner::new(PlannerConfig {
            base_headroom: 0.0,
            error_quantile: 1.0,
            ..Default::default()
        });
        for &r in &residuals {
            lo.settle(0.5, 0.5, 0.5 + r);
            hi.settle(0.5, 0.5, 0.5 + r);
        }
        // quantile 0.0 → smallest |residual|; 1.0 → largest. Neither may
        // panic or leave the configured bounds.
        assert!((lo.allocate(0.3) - 0.35).abs() < 1e-6);
        assert!((hi.allocate(0.3) - 0.7).abs() < 1e-6);
    }

    #[test]
    fn clamping_binds_before_and_after_adaptive_headroom() {
        let mut planner = CapacityPlanner::new(PlannerConfig {
            base_headroom: 0.0,
            min_alloc: 0.2,
            max_alloc: 0.8,
            ..Default::default()
        });
        assert_eq!(planner.allocate(0.0), 0.2, "min clamp");
        assert_eq!(planner.allocate(5.0), 0.8, "max clamp");
        // Large residual history cannot push past max_alloc.
        for _ in 0..10 {
            planner.settle(0.1, 0.8, 0.9);
        }
        assert_eq!(planner.allocate(0.5), 0.8);
        assert_eq!(planner.allocate(-3.0), 0.2);
    }

    #[test]
    fn non_finite_residuals_do_not_poison_the_headroom() {
        let mut planner = CapacityPlanner::new(PlannerConfig::default());
        planner.settle(0.5, 0.6, f32::NAN);
        for _ in 0..10 {
            planner.settle(0.5, 0.6, 0.5);
        }
        // The NaN residual was dropped; perfect residuals → no adaptive
        // margin beyond the base headroom.
        assert!((planner.allocate(0.5) - 0.55).abs() < 1e-6);
    }
}
