//! Rolling-origin evaluation — the time-series form of the
//! "cross-validation" Algorithm 1 mentions: refit the model on a growing
//! prefix and score each fold on the windows that immediately follow, so
//! every fold respects chronology.

use models::Forecaster;
use timeseries::{metrics, WindowedDataset};

/// Configuration for a rolling-origin evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RollingOriginConfig {
    /// Number of folds (refits).
    pub folds: usize,
    /// Fraction of samples used as the initial training prefix.
    pub initial_fraction: f64,
    /// Fraction of the training prefix reserved for validation (early
    /// stopping) within each fold; 0 disables validation.
    pub valid_fraction: f64,
}

impl Default for RollingOriginConfig {
    fn default() -> Self {
        Self {
            folds: 4,
            initial_fraction: 0.5,
            valid_fraction: 0.15,
        }
    }
}

/// Per-fold outcome.
#[derive(Debug, Clone)]
pub struct FoldResult {
    pub fold: usize,
    pub train_windows: usize,
    pub test_windows: usize,
    pub metrics: metrics::MetricReport,
}

/// Aggregate outcome of a rolling-origin run.
#[derive(Debug, Clone)]
pub struct RollingOriginResult {
    pub folds: Vec<FoldResult>,
}

impl RollingOriginResult {
    /// Mean test MSE across folds.
    pub fn mean_mse(&self) -> f64 {
        mean(self.folds.iter().map(|f| f.metrics.mse))
    }

    /// Mean test MAE across folds.
    pub fn mean_mae(&self) -> f64 {
        mean(self.folds.iter().map(|f| f.metrics.mae))
    }

    /// Standard deviation of the per-fold MSE — the stability measure a
    /// single 6:2:2 split cannot provide.
    pub fn mse_std(&self) -> f64 {
        let vals: Vec<f32> = self.folds.iter().map(|f| f.metrics.mse as f32).collect();
        tensor::stats::std_dev(&vals)
    }
}

fn mean(vals: impl Iterator<Item = f64>) -> f64 {
    let v: Vec<f64> = vals.collect();
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

/// Run a rolling-origin evaluation of `make_model` over a windowed dataset.
///
/// Fold `k` trains on windows `[0, split_k)` and tests on
/// `[split_k, split_{k+1})`, where the split points advance linearly from
/// `initial_fraction · n` to `n`. A fresh model is built per fold so state
/// never leaks across folds.
pub fn rolling_origin<F: Forecaster>(
    ds: &WindowedDataset,
    cfg: RollingOriginConfig,
    mut make_model: impl FnMut() -> F,
) -> RollingOriginResult {
    assert!(cfg.folds >= 1, "need at least one fold");
    assert!(
        (0.05..0.95).contains(&cfg.initial_fraction),
        "initial_fraction out of range"
    );
    let n = ds.len();
    let initial = ((n as f64) * cfg.initial_fraction) as usize;
    assert!(
        initial >= 1 && initial < n,
        "dataset too small for rolling origin"
    );
    let step = (n - initial).div_ceil(cfg.folds);

    let mut folds = Vec::with_capacity(cfg.folds);
    for k in 0..cfg.folds {
        let train_end = initial + k * step;
        let test_end = (train_end + step).min(n);
        if train_end >= test_end {
            break;
        }
        let train_full = ds.slice(0, train_end);
        let test = ds.slice(train_end, test_end);
        // Carve a validation tail off the training prefix when requested.
        let (train, valid) = if cfg.valid_fraction > 0.0 {
            let v = ((train_end as f64) * cfg.valid_fraction) as usize;
            if v >= 1 && v < train_end {
                (
                    train_full.slice(0, train_end - v),
                    Some(train_full.slice(train_end - v, train_end)),
                )
            } else {
                (train_full.clone(), None)
            }
        } else {
            (train_full.clone(), None)
        };

        let mut model = make_model();
        model.fit(&train, valid.as_ref());
        let (truth, pred) = model.evaluate(&test);
        folds.push(FoldResult {
            fold: k,
            train_windows: train.len(),
            test_windows: test.len(),
            metrics: metrics::report(&truth, &pred),
        });
    }
    RollingOriginResult { folds }
}

#[cfg(test)]
mod tests {
    use super::*;
    use models::{GbtConfig, GbtForecaster, NaiveForecaster};
    use timeseries::{make_windows, TimeSeriesFrame};

    fn dataset(n: usize) -> WindowedDataset {
        let series: Vec<f32> = (0..n)
            .map(|i| 0.5 + 0.3 * (i as f32 * 0.17).sin())
            .collect();
        let frame = TimeSeriesFrame::from_columns(&[("cpu", series)]).unwrap();
        make_windows(&frame, "cpu", 8, 1).unwrap()
    }

    #[test]
    fn folds_cover_the_tail_without_overlap() {
        let ds = dataset(300);
        let result = rolling_origin(&ds, RollingOriginConfig::default(), NaiveForecaster::new);
        assert_eq!(result.folds.len(), 4);
        let total_test: usize = result.folds.iter().map(|f| f.test_windows).sum();
        let initial = (ds.len() as f64 * 0.5) as usize;
        assert_eq!(total_test, ds.len() - initial);
        // Training prefixes strictly grow.
        for w in result.folds.windows(2) {
            assert!(w[1].train_windows > w[0].train_windows);
        }
    }

    #[test]
    fn aggregates_are_finite_and_consistent() {
        let ds = dataset(250);
        let result = rolling_origin(&ds, RollingOriginConfig::default(), NaiveForecaster::new);
        assert!(result.mean_mse().is_finite());
        assert!(result.mean_mae() > 0.0);
        assert!(result.mse_std() >= 0.0);
        let manual: f64 =
            result.folds.iter().map(|f| f.metrics.mse).sum::<f64>() / result.folds.len() as f64;
        assert!((result.mean_mse() - manual).abs() < 1e-12);
    }

    #[test]
    fn learned_model_beats_naive_on_predictable_series() {
        let ds = dataset(350);
        let cfg = RollingOriginConfig {
            folds: 3,
            ..Default::default()
        };
        let gbt = rolling_origin(&ds, cfg, || {
            GbtForecaster::new(GbtConfig {
                n_rounds: 40,
                ..Default::default()
            })
        });
        let naive = rolling_origin(&ds, cfg, NaiveForecaster::new);
        assert!(
            gbt.mean_mse() < naive.mean_mse(),
            "GBT {} vs naive {}",
            gbt.mean_mse(),
            naive.mean_mse()
        );
    }

    #[test]
    fn single_fold_degenerates_to_holdout() {
        let ds = dataset(200);
        let cfg = RollingOriginConfig {
            folds: 1,
            initial_fraction: 0.7,
            valid_fraction: 0.0,
        };
        let result = rolling_origin(&ds, cfg, NaiveForecaster::new);
        assert_eq!(result.folds.len(), 1);
        assert_eq!(
            result.folds[0].train_windows,
            (ds.len() as f64 * 0.7) as usize
        );
    }
}
