//! Bayesian autoscaling decisions on top of probabilistic forecasts —
//! the layer where predictions become reservations (ROADMAP item 1,
//! following the two-stage forecast→decision design of arxiv 2408.01000).
//!
//! The pieces compose left to right:
//!
//! * [`conformal::ConformalState`] turns any forecaster's rolling
//!   residuals into calibrated interval offsets (split conformal).
//! * [`CostModel`] prices the two failure modes — an SLO violation versus
//!   a unit of stranded capacity — and yields the newsvendor critical
//!   ratio `τ = c_v / (c_v + c_o)`: reserving at the `τ`-quantile of the
//!   demand distribution minimises expected cost.
//! * [`DecisionRule`] maps `forecast + upper_offset(τ)` to a clamped
//!   reservation and applies hysteresis so the `scale_action_cost` is not
//!   paid twice per oscillation.
//! * [`DecisionPlanner`] bundles the three with outcome accounting — the
//!   drop-in replacement for the hand-rolled headroom in
//!   [`crate::allocator::CapacityPlanner`].

pub mod conformal;

pub use conformal::{Calibration, ConformalState, MIN_CALIBRATION_SAMPLES};

/// Economic weights of the three ways an autoscaler can spend money.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Cost of one step where demand exceeds the reservation.
    pub slo_violation_cost: f64,
    /// Cost of one unit of reserved-but-idle capacity for one step.
    pub overprovision_cost_per_unit: f64,
    /// Cost of executing one scaling action (up or down).
    pub scale_action_cost: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        // Violations an order of magnitude dearer than idle capacity —
        // the asymmetry Figs 2–3 of the paper motivate.
        Self {
            slo_violation_cost: 10.0,
            overprovision_cost_per_unit: 1.0,
            scale_action_cost: 0.05,
        }
    }
}

impl CostModel {
    /// Newsvendor critical ratio `c_v / (c_v + c_o)`: the demand quantile
    /// at which expected violation cost and expected waste cost balance.
    /// Degenerate (non-positive or non-finite) costs clamp to `[0, 1]`
    /// with an all-violation-cost prior of `1.0`.
    pub fn critical_ratio(&self) -> f64 {
        let v = self.slo_violation_cost.max(0.0);
        let o = self.overprovision_cost_per_unit.max(0.0);
        let denom = v + o;
        if !denom.is_finite() || denom <= 0.0 {
            return 1.0;
        }
        (v / denom).clamp(0.0, 1.0)
    }
}

/// Hysteresis knobs: when a lower reservation target is allowed to
/// actually shrink the reservation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HysteresisConfig {
    /// A target must sit at least this far below the current reservation
    /// to count as a down-pressure step.
    pub down_deadband: f32,
    /// Consecutive down-pressure steps required before scaling down.
    pub min_hold_steps: u32,
}

impl Default for HysteresisConfig {
    fn default() -> Self {
        Self {
            down_deadband: 0.05,
            min_hold_steps: 3,
        }
    }
}

/// Per-entity hysteresis memory: the standing reservation and how long
/// demand has been pressing below it.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct HysteresisState {
    current: Option<f32>,
    held: u32,
}

impl HysteresisState {
    /// The standing reservation, if one has been made.
    pub fn current(&self) -> Option<f32> {
        self.current
    }

    /// Consecutive steps the target has pressed below the deadband.
    pub fn held(&self) -> u32 {
        self.held
    }
}

/// What a decision did to the standing reservation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleAction {
    /// Reservation unchanged.
    Hold,
    /// Reservation raised (SLO pressure wins immediately).
    Up,
    /// Reservation lowered after the hysteresis hold.
    Down,
}

/// One autoscaling decision: the reservation now standing and how it
/// changed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Decision {
    /// Capacity reserved for the entity after this step.
    pub reservation: f32,
    /// How the standing reservation changed.
    pub action: ScaleAction,
}

/// Everything the decision rule needs besides the live interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecisionConfig {
    /// Failure-mode prices; sets the reservation quantile.
    pub cost: CostModel,
    /// Scale-down damping.
    pub hysteresis: HysteresisConfig,
    /// Safety margin used while the conformal window is still
    /// [`Calibration::Insufficient`] — the prior uncertainty before any
    /// residual evidence exists.
    pub cold_start_headroom: f32,
    /// Reservation bounds (fractions of machine capacity).
    pub min_alloc: f32,
    /// Upper reservation bound.
    pub max_alloc: f32,
}

impl Default for DecisionConfig {
    fn default() -> Self {
        Self {
            cost: CostModel::default(),
            hysteresis: HysteresisConfig::default(),
            cold_start_headroom: 0.05,
            min_alloc: 0.05,
            max_alloc: 1.0,
        }
    }
}

/// Stateless decision logic: `(target, hysteresis state) → decision`.
#[derive(Debug, Clone, Copy)]
pub struct DecisionRule {
    config: DecisionConfig,
}

impl DecisionRule {
    /// A rule with the given economics.
    pub fn new(config: DecisionConfig) -> Self {
        Self { config }
    }

    /// The rule's configuration.
    pub fn config(&self) -> &DecisionConfig {
        &self.config
    }

    /// The reservation target for a point forecast and a calibrated upper
    /// interval offset: `forecast + offset` at the critical ratio, clamped
    /// to the configured bounds. Non-finite inputs clamp to `max_alloc`
    /// (reserve high when the forecast is garbage, never panic).
    pub fn target(&self, forecast: f32, upper_offset: f32) -> f32 {
        let raw = forecast + upper_offset;
        let raw = if raw.is_finite() {
            raw
        } else {
            self.config.max_alloc
        };
        raw.clamp(self.config.min_alloc, self.config.max_alloc)
    }

    /// Apply hysteresis: scale up immediately when the target exceeds the
    /// standing reservation (violations are the expensive failure mode);
    /// scale down only after `min_hold_steps` consecutive steps below the
    /// deadband AND when the waste recovered over the hold window exceeds
    /// `scale_action_cost`. A target back inside the deadband resets the
    /// hold counter.
    pub fn decide(&self, state: &mut HysteresisState, target: f32) -> Decision {
        let target = target.clamp(self.config.min_alloc, self.config.max_alloc);
        let cur = match state.current {
            None => {
                state.current = Some(target);
                state.held = 0;
                return Decision {
                    reservation: target,
                    action: ScaleAction::Up,
                };
            }
            Some(c) => c,
        };
        if target > cur {
            state.current = Some(target);
            state.held = 0;
            return Decision {
                reservation: target,
                action: ScaleAction::Up,
            };
        }
        let h = &self.config.hysteresis;
        if target < cur - h.down_deadband {
            state.held = state.held.saturating_add(1);
            let hold_window = h.min_hold_steps.max(1) as f64;
            let recovered =
                (cur - target) as f64 * self.config.cost.overprovision_cost_per_unit * hold_window;
            if state.held >= h.min_hold_steps && recovered >= self.config.cost.scale_action_cost {
                state.current = Some(target);
                state.held = 0;
                return Decision {
                    reservation: target,
                    action: ScaleAction::Down,
                };
            }
        } else {
            state.held = 0;
        }
        Decision {
            reservation: cur,
            action: ScaleAction::Hold,
        }
    }
}

/// Cumulative decision outcomes over a replay.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DecisionStats {
    /// Reservations made.
    pub decisions: usize,
    /// Steps where demand exceeded the reservation.
    pub violations: usize,
    /// Scale-up actions executed.
    pub scale_ups: usize,
    /// Scale-down actions executed.
    pub scale_downs: usize,
    /// Sum of `reservation − actual` over slack steps (stranded capacity).
    pub total_waste: f64,
    /// Sum of `actual − reservation` over violation steps.
    pub total_deficit: f64,
}

impl DecisionStats {
    /// Fraction of decisions that under-reserved.
    pub fn violation_rate(&self) -> f64 {
        if self.decisions == 0 {
            0.0
        } else {
            self.violations as f64 / self.decisions as f64
        }
    }

    /// Mean stranded capacity per decision.
    pub fn mean_waste(&self) -> f64 {
        if self.decisions == 0 {
            0.0
        } else {
            self.total_waste / self.decisions as f64
        }
    }

    /// Scaling actions per decision — the churn the hysteresis damps.
    pub fn churn(&self) -> f64 {
        if self.decisions == 0 {
            0.0
        } else {
            (self.scale_ups + self.scale_downs) as f64 / self.decisions as f64
        }
    }

    /// Total expected cost under a [`CostModel`] — the single scalar the
    /// bench compares across policies.
    pub fn cost(&self, model: &CostModel) -> f64 {
        self.violations as f64 * model.slo_violation_cost
            + self.total_waste * model.overprovision_cost_per_unit
            + (self.scale_ups + self.scale_downs) as f64 * model.scale_action_cost
    }
}

/// Conformal interval + Bayesian decision rule + hysteresis + accounting
/// for one entity — the probabilistic successor to
/// [`crate::allocator::CapacityPlanner`].
#[derive(Debug, Clone)]
pub struct DecisionPlanner {
    rule: DecisionRule,
    conformal: ConformalState,
    hysteresis: HysteresisState,
    stats: DecisionStats,
}

impl DecisionPlanner {
    /// A planner with an empty residual window and zeroed counters.
    /// `residual_window` sizes the conformal calibration set.
    pub fn new(config: DecisionConfig, residual_window: usize) -> Self {
        Self {
            rule: DecisionRule::new(config),
            conformal: ConformalState::new(residual_window),
            hysteresis: HysteresisState::default(),
            stats: DecisionStats::default(),
        }
    }

    /// The decision rule in force.
    pub fn rule(&self) -> &DecisionRule {
        &self.rule
    }

    /// The live conformal window.
    pub fn conformal(&self) -> &ConformalState {
        &self.conformal
    }

    /// Reserve capacity for a point forecast: the conformal upper offset
    /// at the critical ratio when calibrated, the cold-start headroom plus
    /// max-magnitude widening otherwise, then hysteresis.
    pub fn reserve(&mut self, predicted: f32) -> Decision {
        let tau = self.rule.config().cost.critical_ratio();
        let offset = match self.conformal.calibration() {
            Calibration::Calibrated => self.conformal.upper_offset(tau),
            Calibration::Insufficient => {
                self.conformal.max_abs() + self.rule.config().cold_start_headroom
            }
        };
        let target = self.rule.target(predicted, offset);
        let decision = self.rule.decide(&mut self.hysteresis, target);
        self.stats.decisions += 1;
        match decision.action {
            ScaleAction::Up => self.stats.scale_ups += 1,
            ScaleAction::Down => self.stats.scale_downs += 1,
            ScaleAction::Hold => {}
        }
        decision
    }

    /// Record the realised demand for a past decision: feeds the signed
    /// residual to the conformal window and updates outcome accounting.
    pub fn settle(&mut self, predicted: f32, reserved: f32, actual: f32) {
        self.conformal.push(actual - predicted);
        if actual > reserved {
            self.stats.violations += 1;
            self.stats.total_deficit += (actual - reserved) as f64;
        } else {
            self.stats.total_waste += (reserved - actual) as f64;
        }
    }

    /// Cumulative outcomes observed so far.
    pub fn stats(&self) -> &DecisionStats {
        &self.stats
    }

    /// Replay a `(prediction, actual)` sequence and return the outcome
    /// statistics. Mismatched lengths replay the common prefix.
    pub fn replay(&mut self, predictions: &[f32], actuals: &[f32]) -> DecisionStats {
        for (&p, &a) in predictions.iter().zip(actuals) {
            let d = self.reserve(p);
            self.settle(p, d.reservation, a);
        }
        self.stats.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn critical_ratio_is_the_newsvendor_quantile() {
        let cost = CostModel {
            slo_violation_cost: 9.0,
            overprovision_cost_per_unit: 1.0,
            scale_action_cost: 0.0,
        };
        assert!((cost.critical_ratio() - 0.9).abs() < 1e-12);
        let degenerate = CostModel {
            slo_violation_cost: 0.0,
            overprovision_cost_per_unit: 0.0,
            scale_action_cost: 0.0,
        };
        assert_eq!(degenerate.critical_ratio(), 1.0);
    }

    #[test]
    fn scale_up_is_immediate_scale_down_is_held() {
        let rule = DecisionRule::new(DecisionConfig {
            hysteresis: HysteresisConfig {
                down_deadband: 0.05,
                min_hold_steps: 3,
            },
            ..Default::default()
        });
        let mut st = HysteresisState::default();
        assert_eq!(rule.decide(&mut st, 0.5).action, ScaleAction::Up);
        assert_eq!(rule.decide(&mut st, 0.8).action, ScaleAction::Up);
        // Big drop: held for two steps, executed on the third.
        assert_eq!(rule.decide(&mut st, 0.3).action, ScaleAction::Hold);
        assert_eq!(rule.decide(&mut st, 0.3).action, ScaleAction::Hold);
        let d = rule.decide(&mut st, 0.3);
        assert_eq!(d.action, ScaleAction::Down);
        assert!((d.reservation - 0.3).abs() < 1e-6);
    }

    #[test]
    fn oscillating_demand_inside_the_deadband_never_churns() {
        let rule = DecisionRule::new(DecisionConfig::default());
        let mut st = HysteresisState::default();
        rule.decide(&mut st, 0.6);
        let mut actions = Vec::new();
        for i in 0..20 {
            // Oscillate between 0.56 and 0.60 — inside the 0.05 deadband.
            let t = if i % 2 == 0 { 0.56 } else { 0.60 };
            actions.push(rule.decide(&mut st, t).action);
        }
        assert!(
            actions.iter().all(|&a| a == ScaleAction::Hold),
            "deadband oscillation caused churn: {actions:?}"
        );
    }

    #[test]
    fn oscillation_across_the_deadband_resets_the_hold() {
        let rule = DecisionRule::new(DecisionConfig {
            hysteresis: HysteresisConfig {
                down_deadband: 0.05,
                min_hold_steps: 3,
            },
            ..Default::default()
        });
        let mut st = HysteresisState::default();
        rule.decide(&mut st, 0.6);
        // Demand dips below the deadband but pops back before the hold
        // expires — the reservation must never come down.
        for _ in 0..5 {
            assert_eq!(rule.decide(&mut st, 0.4).action, ScaleAction::Hold);
            assert_eq!(rule.decide(&mut st, 0.4).action, ScaleAction::Hold);
            assert_eq!(rule.decide(&mut st, 0.58).action, ScaleAction::Hold);
        }
        assert_eq!(st.current(), Some(0.6));
    }

    #[test]
    fn tiny_savings_never_pay_the_action_cost() {
        let rule = DecisionRule::new(DecisionConfig {
            cost: CostModel {
                slo_violation_cost: 10.0,
                overprovision_cost_per_unit: 1.0,
                scale_action_cost: 10.0, // prohibitively expensive actions
            },
            hysteresis: HysteresisConfig {
                down_deadband: 0.05,
                min_hold_steps: 1,
            },
            ..Default::default()
        });
        let mut st = HysteresisState::default();
        rule.decide(&mut st, 0.6);
        // 0.1 below: recovered = 0.1·1·1 < 10 → stay put forever.
        for _ in 0..10 {
            assert_eq!(rule.decide(&mut st, 0.5).action, ScaleAction::Hold);
        }
    }

    #[test]
    fn non_finite_targets_reserve_high_not_panic() {
        let rule = DecisionRule::new(DecisionConfig::default());
        assert_eq!(rule.target(f32::NAN, 0.0), 1.0);
        assert_eq!(rule.target(0.5, f32::INFINITY), 1.0);
        assert_eq!(rule.target(f32::NEG_INFINITY, 0.0), 1.0);
    }

    #[test]
    fn planner_learns_to_cover_biased_forecasts() {
        let mut planner = DecisionPlanner::new(DecisionConfig::default(), 64);
        // Forecasts consistently 0.2 low.
        let predictions = vec![0.4f32; 60];
        let actuals = vec![0.6f32; 60];
        let stats = planner.replay(&predictions, &actuals);
        // Cold start may violate; once calibrated the 0.2 residual is in
        // the window and every reservation covers.
        assert!(
            stats.violations <= MIN_CALIBRATION_SAMPLES,
            "calibrated planner kept violating: {stats:?}"
        );
        assert!(stats.violation_rate() < 0.2);
    }

    #[test]
    fn planner_churn_stays_low_on_noise() {
        let mut planner = DecisionPlanner::new(DecisionConfig::default(), 64);
        // Deterministic pseudo-noise around 0.5.
        let actuals: Vec<f32> = (0..200)
            .map(|i| 0.5 + 0.03 * ((i * 7919 % 13) as f32 / 13.0 - 0.5))
            .collect();
        let predictions = vec![0.5f32; 200];
        let stats = planner.replay(&predictions, &actuals);
        assert!(
            stats.churn() < 0.2,
            "noisy demand churned: {}",
            stats.churn()
        );
    }

    #[test]
    fn stats_cost_weights_all_three_terms() {
        let stats = DecisionStats {
            decisions: 10,
            violations: 2,
            scale_ups: 3,
            scale_downs: 1,
            total_waste: 4.0,
            total_deficit: 0.5,
        };
        let cost = stats.cost(&CostModel {
            slo_violation_cost: 10.0,
            overprovision_cost_per_unit: 1.0,
            scale_action_cost: 0.25,
        });
        assert!((cost - (20.0 + 4.0 + 1.0)).abs() < 1e-12);
    }
}
