//! Split-conformal intervals from rolling forecast residuals.
//!
//! The calibration set is the last `window` signed residuals
//! `actual − forecast` for one entity. The conservative split-conformal
//! quantile — rank `⌈(n+1)·p⌉` of the sorted residuals — guarantees
//! `P(actual ≤ forecast + upper_offset(p)) ≥ p` whenever the residuals are
//! exchangeable, with no assumption about the forecaster that produced
//! them. That is what makes this the model-agnostic fallback: GRU, LSTM,
//! ARIMA and the naive baselines all get calibrated intervals for free.
//!
//! The state degrades instead of failing: non-finite residuals are counted
//! and dropped, and before `min_samples` finite residuals have arrived the
//! offsets widen to the largest residual magnitude ever observed (`±0`
//! before the first sample) — wider than any window quantile, never a
//! panic.

use std::collections::VecDeque;

/// Residuals required before the window quantiles are trusted. Below this
/// the offsets fall back to the lifetime-max magnitude.
pub const MIN_CALIBRATION_SAMPLES: usize = 8;

/// Whether a [`ConformalState`] has enough residuals for its window
/// quantiles to carry the split-conformal coverage guarantee.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Calibration {
    /// At least `min_samples` finite residuals: offsets are conservative
    /// window quantiles.
    Calibrated,
    /// Too few residuals: offsets widen to the lifetime-max magnitude.
    Insufficient,
}

/// Rolling calibration window of signed forecast residuals with O(log n)
/// quantile maintenance and allocation-free pushes after construction.
#[derive(Debug, Clone)]
pub struct ConformalState {
    window: usize,
    min_samples: usize,
    ring: VecDeque<f32>,
    sorted: Vec<f32>,
    max_abs: f32,
    skipped: u64,
}

impl ConformalState {
    /// A state holding at most `window` residuals (at least one), trusting
    /// its quantiles after [`MIN_CALIBRATION_SAMPLES`] finite samples.
    pub fn new(window: usize) -> Self {
        Self::with_min_samples(window, MIN_CALIBRATION_SAMPLES)
    }

    /// [`ConformalState::new`] with an explicit calibration threshold
    /// (clamped to at least one sample).
    pub fn with_min_samples(window: usize, min_samples: usize) -> Self {
        let window = window.max(1);
        Self {
            window,
            min_samples: min_samples.max(1),
            ring: VecDeque::with_capacity(window),
            sorted: Vec::with_capacity(window),
            max_abs: 0.0,
            skipped: 0,
        }
    }

    /// Absorb one signed residual `actual − forecast`. Non-finite values
    /// are counted in [`ConformalState::skipped`] and dropped — a repaired
    /// NaN sample widens nothing and panics nowhere. Allocation-free: both
    /// buffers were sized at construction.
    pub fn push(&mut self, residual: f32) {
        if !residual.is_finite() {
            self.skipped += 1;
            return;
        }
        if self.ring.len() == self.window {
            if let Some(old) = self.ring.pop_front() {
                let at = self.sorted.partition_point(|&v| v < old);
                if at < self.sorted.len() {
                    self.sorted.remove(at);
                }
            }
        }
        self.ring.push_back(residual);
        let at = self.sorted.partition_point(|&v| v < residual);
        self.sorted.insert(at, residual);
        self.max_abs = self.max_abs.max(residual.abs());
    }

    /// Finite residuals currently in the window.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True when no finite residual has been retained yet.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Non-finite residuals dropped so far.
    pub fn skipped(&self) -> u64 {
        self.skipped
    }

    /// Largest residual magnitude ever observed (0 before the first
    /// sample) — the graceful-degradation width.
    pub fn max_abs(&self) -> f32 {
        self.max_abs
    }

    /// Whether the window quantiles carry the conformal guarantee.
    pub fn calibration(&self) -> Calibration {
        if self.ring.len() >= self.min_samples {
            Calibration::Calibrated
        } else {
            Calibration::Insufficient
        }
    }

    /// Conservative 1-based conformal rank `⌈(n+1)·p⌉`, clamped to
    /// `[1, n]`. `p` outside `[0, 1]` (or NaN) clamps to the widest rank.
    fn rank(&self, p: f64) -> usize {
        let n = self.sorted.len();
        let p = if p.is_finite() {
            p.clamp(0.0, 1.0)
        } else {
            1.0
        };
        let k = ((n as f64 + 1.0) * p).ceil() as i64;
        k.clamp(1, n as i64) as usize
    }

    /// Offset to add above a forecast so that
    /// `P(actual ≤ forecast + offset) ≥ p` under exchangeability. Falls
    /// back to `+max_abs` while [`Calibration::Insufficient`].
    pub fn upper_offset(&self, p: f64) -> f32 {
        match self.calibration() {
            Calibration::Calibrated => self.sorted[self.rank(p) - 1],
            Calibration::Insufficient => self.max_abs,
        }
    }

    /// Signed offset to add below a forecast (usually negative) so that
    /// `P(actual ≥ forecast + offset) ≥ p` under exchangeability. Falls
    /// back to `−max_abs` while [`Calibration::Insufficient`].
    pub fn lower_offset(&self, p: f64) -> f32 {
        match self.calibration() {
            Calibration::Calibrated => self.sorted[self.sorted.len() - self.rank(p)],
            Calibration::Insufficient => -self.max_abs,
        }
    }

    /// Two-sided `(lower, upper)` offsets for a nominal central coverage
    /// level (e.g. `0.9` → each tail calibrated at `0.95`).
    pub fn interval_offsets(&self, coverage: f64) -> (f32, f32) {
        let coverage = if coverage.is_finite() {
            coverage.clamp(0.0, 1.0)
        } else {
            1.0
        };
        let p = (1.0 + coverage) / 2.0;
        (self.lower_offset(p), self.upper_offset(p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_state_degrades_to_zero_offsets() {
        let c = ConformalState::new(64);
        assert_eq!(c.calibration(), Calibration::Insufficient);
        assert_eq!(c.upper_offset(0.9), 0.0);
        assert_eq!(c.lower_offset(0.9), 0.0);
        assert!(c.is_empty());
    }

    #[test]
    fn insufficient_window_widens_to_max_abs() {
        let mut c = ConformalState::new(64);
        c.push(0.1);
        c.push(-0.4);
        c.push(0.2);
        assert_eq!(c.calibration(), Calibration::Insufficient);
        assert_eq!(c.upper_offset(0.5), 0.4);
        assert_eq!(c.lower_offset(0.5), -0.4);
    }

    #[test]
    fn nan_and_inf_residuals_are_skipped_not_absorbed() {
        let mut c = ConformalState::new(8);
        c.push(f32::NAN);
        c.push(f32::INFINITY);
        c.push(f32::NEG_INFINITY);
        assert_eq!(c.len(), 0);
        assert_eq!(c.skipped(), 3);
        assert_eq!(c.upper_offset(0.99), 0.0);
    }

    #[test]
    fn conservative_rank_matches_hand_computation() {
        let mut c = ConformalState::with_min_samples(16, 1);
        for r in [0.1f32, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9] {
            c.push(r);
        }
        // n = 9, p = 0.9 → k = ⌈10·0.9⌉ = 9 → sorted[8] = 0.9.
        assert_eq!(c.upper_offset(0.9), 0.9);
        // p = 0.5 → k = 5 → sorted[4] = 0.5; lower → sorted[9−5] = 0.5.
        assert_eq!(c.upper_offset(0.5), 0.5);
        assert_eq!(c.lower_offset(0.5), 0.5);
        // Extreme quantiles clamp instead of panicking.
        assert_eq!(c.upper_offset(0.0), 0.1);
        assert_eq!(c.upper_offset(1.0), 0.9);
        assert_eq!(c.lower_offset(1.0), 0.1);
        assert_eq!(c.upper_offset(f64::NAN), 0.9);
    }

    #[test]
    fn eviction_keeps_sorted_view_consistent() {
        let mut c = ConformalState::with_min_samples(4, 1);
        for r in [5.0f32, 1.0, 3.0, 2.0, 4.0, 0.5] {
            c.push(r);
        }
        // Window holds the last four: [3, 2, 4, 0.5] → sorted 0.5,2,3,4.
        assert_eq!(c.len(), 4);
        assert_eq!(c.upper_offset(1.0), 4.0);
        assert_eq!(c.lower_offset(1.0), 0.5);
        // max_abs is a lifetime tracker, not a window one.
        assert_eq!(c.max_abs(), 5.0);
    }

    #[test]
    fn duplicate_values_evict_one_copy_at_a_time() {
        let mut c = ConformalState::with_min_samples(2, 1);
        c.push(1.0);
        c.push(1.0);
        c.push(2.0); // evicts one 1.0
        assert_eq!(c.len(), 2);
        assert_eq!(c.lower_offset(1.0), 1.0);
        assert_eq!(c.upper_offset(1.0), 2.0);
    }

    #[test]
    fn interval_offsets_split_the_miss_mass() {
        let mut c = ConformalState::with_min_samples(128, 1);
        for i in 0..100 {
            c.push(-1.0 + 0.02 * i as f32); // −1.0 … 0.98
        }
        let (lo, hi) = c.interval_offsets(0.9);
        assert!(lo < hi);
        // p = 0.95 → k = ⌈101·0.95⌉ = 96 → sorted[95] = 0.9.
        assert!((hi - 0.9).abs() < 1e-6, "hi {hi}");
        assert!((lo - (-0.92)).abs() < 1e-6, "lo {lo}");
    }
}
