//! Online resource predictor: the component a cluster resource manager
//! would embed. It owns a fitted model plus the exact preprocessing state
//! (selected indicators, scaler, expansion) and serves rolling forecasts as
//! new monitoring samples arrive, retraining periodically.

use std::sync::atomic::{AtomicU64, Ordering};

use models::checkpoint::{CheckpointError, ModelState};
use models::Forecaster;
use tensor::Tensor;
use timeseries::{clean, Expansion, FrameError, MinMaxScaler, TimeSeriesFrame};

use crate::pipeline::{prepare, run_model, FittedPreprocess, PipelineConfig, PipelineRun};
use crate::scenario::Scenario;

static NEXT_GROUP: AtomicU64 = AtomicU64::new(1);

/// Allocate a fresh weight-sharing group id (see
/// [`ResourcePredictor::set_shared_group`]).
pub fn new_shared_group() -> u64 {
    NEXT_GROUP.fetch_add(1, Ordering::Relaxed)
}

/// A live predictor bound to one entity's indicator stream.
pub struct ResourcePredictor {
    model: Box<dyn Forecaster + Send>,
    cfg: PipelineConfig,
    /// Rolling raw history per original indicator (column order fixed).
    names: Vec<String>,
    history: Vec<Vec<f32>>,
    /// Preprocessing state captured at the last (re)fit.
    preprocess: FittedPreprocess,
    samples_since_fit: usize,
    /// Refit after this many new samples (0 disables periodic refits).
    /// Private: the predictor is the single owner of its refit cadence;
    /// callers (including the fleet layer) configure it through
    /// [`ResourcePredictor::set_refit_every`] / [`set_refit_schedule`].
    ///
    /// [`set_refit_schedule`]: ResourcePredictor::set_refit_schedule
    refit_every: usize,
    /// Entities whose models share identical weights carry the same group
    /// id, letting the serving layer stack their inference windows into one
    /// batched forward pass. Any refit clears it — the weights have
    /// diverged from the group. Deliberately not persisted in
    /// [`PredictorState`]: group ids are process-local.
    shared_group: Option<u64>,
}

/// Complete portable snapshot of one live predictor: fitted model weights,
/// preprocessing state and raw history. Restoring yields a predictor whose
/// forecasts are bit-identical to the one snapshotted.
#[derive(Debug, Clone)]
pub struct PredictorState {
    pub model: ModelState,
    pub cfg: PipelineConfig,
    pub names: Vec<String>,
    pub history: Vec<Vec<f32>>,
    /// Scaler parameters as `(column, min, max)` triples.
    pub scaler_columns: Vec<(String, f32, f32)>,
    /// Indicators that survived correlation screening at the last fit.
    pub selected: Vec<String>,
    pub expanded_target: String,
    pub samples_since_fit: usize,
    pub refit_every: usize,
}

impl ResourcePredictor {
    /// Fit `model` on `bootstrap` history and return a live predictor.
    pub fn fit(
        mut model: Box<dyn Forecaster + Send>,
        bootstrap: &TimeSeriesFrame,
        cfg: PipelineConfig,
    ) -> Result<(ResourcePredictor, PipelineRun), FrameError> {
        let prepared = prepare(bootstrap, &cfg)?;
        let run = run_model(model.as_mut(), &prepared);
        let names = bootstrap.names().to_vec();
        let history = (0..bootstrap.num_columns())
            .map(|j| bootstrap.column_at(j).to_vec())
            .collect();
        Ok((
            ResourcePredictor {
                model,
                cfg,
                names,
                history,
                preprocess: prepared.fitted(),
                samples_since_fit: 0,
                refit_every: 0,
                shared_group: None,
            },
            run,
        ))
    }

    /// The weight-sharing group this predictor belongs to, if any.
    pub fn shared_group(&self) -> Option<u64> {
        self.shared_group
    }

    /// Tag (or untag) this predictor as sharing model weights with a group.
    /// Only callers that actually installed identical weights may set this:
    /// the serving layer batches forecasts across a group under one model.
    pub fn set_shared_group(&mut self, group: Option<u64>) {
        self.shared_group = group;
    }

    /// Refit after `every` new samples; 0 disables periodic refits.
    pub fn set_refit_every(&mut self, every: usize) {
        self.set_refit_schedule(every, 0);
    }

    /// Set the refit cadence with a phase `offset`: the first periodic refit
    /// fires after `every - offset % every` samples, subsequent ones every
    /// `every`. A fleet staggers entities by giving each a different offset
    /// so they never all retrain in the same interval.
    pub fn set_refit_schedule(&mut self, every: usize, offset: usize) {
        self.refit_every = every;
        self.samples_since_fit = if every > 0 { offset % every } else { 0 };
    }

    /// The configured refit cadence (0 = disabled).
    pub fn refit_every(&self) -> usize {
        self.refit_every
    }

    /// Ingest one new monitoring sample (values in the bootstrap frame's
    /// column order). Returns `true` if a periodic refit was triggered.
    pub fn observe(&mut self, sample: &[f32]) -> Result<bool, FrameError> {
        if sample.len() != self.names.len() {
            return Err(FrameError(format!(
                "sample has {} values, expected {}",
                sample.len(),
                self.names.len()
            )));
        }
        for (col, &v) in self.history.iter_mut().zip(sample) {
            col.push(v);
        }
        self.samples_since_fit += 1;
        if self.refit_every > 0 && self.samples_since_fit >= self.refit_every {
            self.refit()?;
            return Ok(true);
        }
        Ok(false)
    }

    /// Refit model and preprocessing on the full accumulated history.
    pub fn refit(&mut self) -> Result<PipelineRun, FrameError> {
        let frame = self.current_frame()?;
        let prepared = prepare(&frame, &self.cfg)?;
        let run = run_model(self.model.as_mut(), &prepared);
        self.preprocess = prepared.fitted();
        self.samples_since_fit = 0;
        self.shared_group = None;
        Ok(run)
    }

    /// Swap in a model trained elsewhere (e.g. on a background refit pool
    /// from a [`ResourcePredictor::history_snapshot`]) together with the
    /// preprocessing state it was fitted with. Resets the refit clock.
    pub fn install_refit(
        &mut self,
        model: Box<dyn Forecaster + Send>,
        preprocess: FittedPreprocess,
    ) {
        self.model = model;
        self.preprocess = preprocess;
        self.samples_since_fit = 0;
        self.shared_group = None;
    }

    /// Guarded variant of [`ResourcePredictor::install_refit`]: the
    /// replacement is installed only if it can produce a finite forecast on
    /// the live history. On failure the previous model and preprocessing
    /// state are restored untouched and the refit clock is left running —
    /// a diverged background refit can never poison a serving entity.
    pub fn try_install_refit(
        &mut self,
        model: Box<dyn Forecaster + Send>,
        preprocess: FittedPreprocess,
    ) -> Result<(), FrameError> {
        let old_model = std::mem::replace(&mut self.model, model);
        let old_preprocess = std::mem::replace(&mut self.preprocess, preprocess);
        let old_clock = self.samples_since_fit;
        match self.forecast() {
            Ok(fc) if fc.iter().all(|v| v.is_finite()) => {
                self.samples_since_fit = 0;
                self.shared_group = None;
                Ok(())
            }
            outcome => {
                self.model = old_model;
                self.preprocess = old_preprocess;
                self.samples_since_fit = old_clock;
                match outcome {
                    Ok(fc) => Err(FrameError(format!(
                        "refit replacement produced non-finite forecast {fc:?}"
                    ))),
                    Err(e) => Err(e),
                }
            }
        }
    }

    /// The full accumulated raw history as a frame — what a background
    /// refit trains on.
    pub fn history_snapshot(&self) -> Result<TimeSeriesFrame, FrameError> {
        self.current_frame()
    }

    /// The pipeline configuration this predictor was fitted with.
    pub fn config(&self) -> &PipelineConfig {
        &self.cfg
    }

    /// Display name of the underlying model.
    pub fn model_name(&self) -> &str {
        self.model.name()
    }

    /// Portable state of the underlying model, when it supports
    /// checkpointing — what a background refit pool clones architecture
    /// hyper-parameters from.
    pub fn model_state(&self) -> Option<ModelState> {
        self.model.state()
    }

    /// Forecast the next `horizon` target values (normalised units) from
    /// the most recent window of history.
    pub fn forecast_normalized(&self) -> Result<Vec<f32>, FrameError> {
        let (x, w, f) = self.inference_window()?;
        let pred = self.model.predict(&Tensor::from_vec(x, &[1, w, f]));
        Ok(pred.into_vec())
    }

    /// The preprocessed `[window · features]` model input for the current
    /// history tail, plus its `(window, features)` shape. The serving layer
    /// stacks these across a weight-sharing group and answers them with a
    /// single batched [`ResourcePredictor::predict_batch`] call.
    pub fn inference_window(&self) -> Result<(Vec<f32>, usize, usize), FrameError> {
        let frame = self.current_frame()?;
        // Re-apply the fitted preprocessing to the tail of the stream,
        // starting with the same cleaning step training uses: non-finite
        // samples admitted into the history (a poisoned bootstrap, an
        // unguarded `observe`) must never reach the scaler or the model.
        let (frame, _) = clean(&frame, self.cfg.repair);
        let selected: Vec<&str> = self
            .preprocess
            .selected
            .iter()
            .map(String::as_str)
            .collect();
        let screened = frame.select(&selected)?;
        let normalized = self.preprocess.scaler.transform(&screened);
        let expanded = match self.cfg.scenario {
            Scenario::MulExp => Expansion::Horizontal {
                copies: self.cfg.expansion_copies,
            }
            .apply(&normalized)?,
            _ => normalized,
        };
        let w = self.cfg.window;
        if expanded.len() < w {
            return Err(FrameError(format!(
                "need {w} preprocessed samples, have {}",
                expanded.len()
            )));
        }
        let tail = expanded.slice_rows(expanded.len() - w, expanded.len())?;
        let f = tail.num_columns();
        let mut x = vec![0.0f32; w * f];
        for t in 0..w {
            for j in 0..f {
                x[t * f + j] = tail.column_at(j)[t];
            }
        }
        Ok((x, w, f))
    }

    /// Run this predictor's model on a pre-stacked `[n, window, features]`
    /// batch of inference windows (normalised units). Per-row kernels make
    /// each output row exactly equal to the corresponding batch-1 call.
    pub fn predict_batch(&self, x: &Tensor) -> Tensor {
        self.model.predict(x)
    }

    /// De-normalise a model output with this predictor's fitted scaler —
    /// the per-entity half of a batched forecast.
    pub fn denormalize_forecast(&self, normalized: &[f32]) -> Vec<f32> {
        self.preprocess.denormalize(&self.cfg.target, normalized)
    }

    /// Forecast in raw (de-normalised) target units.
    pub fn forecast(&self) -> Result<Vec<f32>, FrameError> {
        let normalized = self.forecast_normalized()?;
        Ok(self.preprocess.denormalize(&self.cfg.target, &normalized))
    }

    /// Samples currently buffered.
    pub fn history_len(&self) -> usize {
        self.history.first().map_or(0, Vec::len)
    }

    /// The most recent raw observation across all columns (in
    /// [`ResourcePredictor::column_names`] order), `None` when the history
    /// is empty.
    pub fn last_sample(&self) -> Option<Vec<f32>> {
        let n = self.history_len();
        if n == 0 {
            return None;
        }
        Some(self.history.iter().map(|col| col[n - 1]).collect())
    }

    /// The last `n` raw observations of the pipeline target (oldest first,
    /// fewer if the history is shorter) — what a degraded-mode fallback
    /// forecaster warms up from.
    pub fn target_history(&self, n: usize) -> Vec<f32> {
        let Some(col) = self.names.iter().position(|name| name == &self.cfg.target) else {
            return Vec::new();
        };
        let hist = &self.history[col];
        hist[hist.len().saturating_sub(n)..].to_vec()
    }

    /// Indicator column names, in the order [`ResourcePredictor::observe`]
    /// expects sample values.
    pub fn column_names(&self) -> &[String] {
        &self.names
    }

    /// Capture the complete serving state: model weights, preprocessing and
    /// raw history. Fails when the model cannot be checkpointed (classical
    /// baselines) — neural forecasters and the naive baseline all can.
    pub fn snapshot(&self) -> Result<PredictorState, CheckpointError> {
        let model = self.model.state().ok_or_else(|| {
            CheckpointError(format!(
                "model {} does not support checkpointing",
                self.model.name()
            ))
        })?;
        Ok(PredictorState {
            model,
            cfg: self.cfg.clone(),
            names: self.names.clone(),
            history: self.history.clone(),
            scaler_columns: self.preprocess.scaler.columns(),
            selected: self.preprocess.selected.clone(),
            expanded_target: self.preprocess.expanded_target.clone(),
            samples_since_fit: self.samples_since_fit,
            refit_every: self.refit_every,
        })
    }

    /// Rebuild a live predictor from a snapshot **without retraining** —
    /// forecasts resume bit-identical to the predictor that was snapshotted.
    pub fn from_state(state: &PredictorState) -> Result<Self, CheckpointError> {
        if state.names.len() != state.history.len() {
            return Err(CheckpointError(format!(
                "predictor state has {} column names but {} history columns",
                state.names.len(),
                state.history.len()
            )));
        }
        let model = models::checkpoint::forecaster_from_state(&state.model)?;
        Ok(ResourcePredictor {
            model,
            cfg: state.cfg.clone(),
            names: state.names.clone(),
            history: state.history.clone(),
            preprocess: FittedPreprocess {
                scaler: MinMaxScaler::from_parts(state.scaler_columns.clone()),
                selected: state.selected.clone(),
                expanded_target: state.expanded_target.clone(),
            },
            samples_since_fit: state.samples_since_fit,
            refit_every: state.refit_every,
            shared_group: None,
        })
    }

    /// Clone this predictor for a new entity that shares its model weights:
    /// the model is rebuilt bit-identically from its checkpoint state (no
    /// retraining) and the template's indicator selection is kept — input
    /// shapes must stay identical across the group for the serving layer to
    /// stack windows into one batched call — while the scaler is re-fitted
    /// on the entity's own bootstrap so each entity is normalised (and
    /// de-normalised) in its own range. The clone inherits this predictor's
    /// [`ResourcePredictor::shared_group`] tag.
    pub fn clone_for_entity(
        &self,
        bootstrap: &TimeSeriesFrame,
    ) -> Result<ResourcePredictor, FrameError> {
        let model_state = self.model.state().ok_or_else(|| {
            FrameError(format!(
                "model {} does not support checkpointing, so its weights cannot be shared",
                self.model.name()
            ))
        })?;
        let model =
            models::checkpoint::forecaster_from_state(&model_state).map_err(|e| FrameError(e.0))?;
        let (cleaned, _) = clean(bootstrap, self.cfg.repair);
        let selected: Vec<&str> = self
            .preprocess
            .selected
            .iter()
            .map(String::as_str)
            .collect();
        let screened = cleaned.select(&selected)?;
        Ok(ResourcePredictor {
            model,
            cfg: self.cfg.clone(),
            names: bootstrap.names().to_vec(),
            history: (0..bootstrap.num_columns())
                .map(|j| bootstrap.column_at(j).to_vec())
                .collect(),
            preprocess: FittedPreprocess {
                scaler: MinMaxScaler::fit(&screened),
                selected: self.preprocess.selected.clone(),
                expanded_target: self.preprocess.expanded_target.clone(),
            },
            samples_since_fit: 0,
            refit_every: self.refit_every,
            shared_group: self.shared_group,
        })
    }

    fn current_frame(&self) -> Result<TimeSeriesFrame, FrameError> {
        TimeSeriesFrame::new(
            self.names
                .iter()
                .cloned()
                .zip(self.history.iter().cloned())
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudtrace::{ContainerConfig, WorkloadClass};
    use models::NaiveForecaster;

    fn bootstrap() -> TimeSeriesFrame {
        cloudtrace::container::generate_container(
            &ContainerConfig::new(WorkloadClass::OnlineService, 600, 3).with_diurnal_period(300),
        )
    }

    fn cfg() -> PipelineConfig {
        PipelineConfig {
            window: 12,
            scenario: Scenario::MulExp,
            ..Default::default()
        }
    }

    #[test]
    fn fit_then_forecast() {
        let (predictor, run) =
            ResourcePredictor::fit(Box::new(NaiveForecaster::new()), &bootstrap(), cfg()).unwrap();
        assert!(run.test_metrics.mse.is_finite());
        let fc = predictor.forecast().unwrap();
        assert_eq!(fc.len(), 1);
        assert!(fc[0].is_finite());
        // Raw forecast is in utilisation units.
        assert!((0.0..=1.5).contains(&fc[0]), "forecast {fc:?} out of range");
    }

    #[test]
    fn observe_extends_history_and_shifts_forecast() {
        let (mut predictor, _) =
            ResourcePredictor::fit(Box::new(NaiveForecaster::new()), &bootstrap(), cfg()).unwrap();
        let before = predictor.history_len();
        // Push a burst of high samples; persistence forecast must follow.
        for _ in 0..15 {
            predictor.observe(&[0.95; 8]).unwrap();
        }
        assert_eq!(predictor.history_len(), before + 15);
        let fc = predictor.forecast().unwrap();
        assert!(fc[0] > 0.7, "forecast did not track new samples: {fc:?}");
    }

    #[test]
    fn observe_validates_sample_width() {
        let (mut predictor, _) =
            ResourcePredictor::fit(Box::new(NaiveForecaster::new()), &bootstrap(), cfg()).unwrap();
        assert!(predictor.observe(&[0.5; 3]).is_err());
    }

    #[test]
    fn periodic_refit_fires() {
        let (mut predictor, _) =
            ResourcePredictor::fit(Box::new(NaiveForecaster::new()), &bootstrap(), cfg()).unwrap();
        predictor.set_refit_every(10);
        let mut refits = 0;
        for i in 0..25 {
            if predictor.observe(&[0.4 + 0.001 * i as f32; 8]).unwrap() {
                refits += 1;
            }
        }
        assert_eq!(refits, 2);
    }

    #[test]
    fn refit_schedule_offset_staggers_first_refit() {
        let (mut predictor, _) =
            ResourcePredictor::fit(Box::new(NaiveForecaster::new()), &bootstrap(), cfg()).unwrap();
        // Offset 7 of 10: first refit after only 3 samples, then every 10.
        predictor.set_refit_schedule(10, 7);
        let mut refit_steps = Vec::new();
        for i in 0..25 {
            if predictor.observe(&[0.5; 8]).unwrap() {
                refit_steps.push(i);
            }
        }
        assert_eq!(refit_steps, vec![2, 12, 22]);
    }

    #[test]
    fn snapshot_restore_resumes_identical_forecasts() {
        let (mut predictor, _) =
            ResourcePredictor::fit(Box::new(NaiveForecaster::new()), &bootstrap(), cfg()).unwrap();
        for i in 0..10 {
            predictor.observe(&[0.5 + 0.01 * i as f32; 8]).unwrap();
        }
        let state = predictor.snapshot().unwrap();
        let restored = ResourcePredictor::from_state(&state).unwrap();
        assert_eq!(restored.history_len(), predictor.history_len());
        assert_eq!(restored.model_name(), predictor.model_name());
        let a = predictor.forecast().unwrap();
        let b = restored.forecast().unwrap();
        assert_eq!(a, b, "restored forecast differs");
    }

    #[test]
    fn target_history_returns_target_tail() {
        let (mut predictor, _) =
            ResourcePredictor::fit(Box::new(NaiveForecaster::new()), &bootstrap(), cfg()).unwrap();
        for i in 0..5 {
            let mut s = [0.1; 8];
            s[0] = 0.5 + i as f32 * 0.1; // target column leads the layout
            predictor.observe(&s).unwrap();
        }
        let names = predictor.column_names().to_vec();
        let target_col = names
            .iter()
            .position(|n| n == &predictor.config().target)
            .unwrap();
        assert_eq!(target_col, 0, "generated traces lead with the target");
        let tail = predictor.target_history(3);
        assert_eq!(tail, vec![0.7, 0.8, 0.9]);
        // Asking for more than exists returns the whole column.
        assert_eq!(
            predictor.target_history(usize::MAX).len(),
            predictor.history_len()
        );
    }

    struct PoisonForecaster;
    impl models::Forecaster for PoisonForecaster {
        fn name(&self) -> &str {
            "poison"
        }
        fn fit(
            &mut self,
            _train: &timeseries::WindowedDataset,
            _valid: Option<&timeseries::WindowedDataset>,
        ) -> models::FitReport {
            models::FitReport::default()
        }
        fn predict(&self, x: &tensor::Tensor) -> tensor::Tensor {
            tensor::Tensor::full(&[x.shape()[0], 1], f32::NAN)
        }
    }

    #[test]
    fn try_install_refit_rejects_non_finite_replacement() {
        let (mut predictor, _) =
            ResourcePredictor::fit(Box::new(NaiveForecaster::new()), &bootstrap(), cfg()).unwrap();
        let before = predictor.forecast().unwrap();
        let preprocess = FittedPreprocess {
            scaler: MinMaxScaler::from_parts(predictor.preprocess.scaler.columns()),
            selected: predictor.preprocess.selected.clone(),
            expanded_target: predictor.preprocess.expanded_target.clone(),
        };
        let err = predictor
            .try_install_refit(Box::new(PoisonForecaster), preprocess)
            .unwrap_err();
        assert!(err.0.contains("non-finite"), "{err:?}");
        // The previous model still serves, bit-identically.
        assert_eq!(predictor.forecast().unwrap(), before);
    }

    #[test]
    fn try_install_refit_accepts_finite_replacement() {
        let (mut predictor, _) =
            ResourcePredictor::fit(Box::new(NaiveForecaster::new()), &bootstrap(), cfg()).unwrap();
        let frame = predictor.history_snapshot().unwrap();
        let prepared = prepare(&frame, predictor.config()).unwrap();
        let mut fresh: Box<dyn Forecaster + Send> = Box::new(NaiveForecaster::new());
        run_model(fresh.as_mut(), &prepared);
        predictor
            .try_install_refit(fresh, prepared.fitted())
            .unwrap();
        assert!(predictor.forecast().unwrap()[0].is_finite());
    }

    #[test]
    fn clone_for_entity_shares_weights_and_group() {
        let (mut template, _) =
            ResourcePredictor::fit(Box::new(NaiveForecaster::new()), &bootstrap(), cfg()).unwrap();
        template.set_shared_group(Some(new_shared_group()));
        // Same bootstrap → same history, same scaler → identical forecasts
        // from the cloned weights.
        let clone = template.clone_for_entity(&bootstrap()).unwrap();
        assert_eq!(clone.shared_group(), template.shared_group());
        assert_eq!(clone.forecast().unwrap(), template.forecast().unwrap());
        // A different bootstrap yields its own history but stays grouped.
        let other = cloudtrace::container::generate_container(
            &ContainerConfig::new(WorkloadClass::BatchJob, 600, 7).with_diurnal_period(200),
        );
        let clone = template.clone_for_entity(&other).unwrap();
        assert_eq!(clone.shared_group(), template.shared_group());
        assert!(clone.forecast().unwrap()[0].is_finite());
    }

    #[test]
    fn refit_clears_the_shared_group() {
        let (mut predictor, _) =
            ResourcePredictor::fit(Box::new(NaiveForecaster::new()), &bootstrap(), cfg()).unwrap();
        predictor.set_shared_group(Some(new_shared_group()));
        predictor.refit().unwrap();
        assert_eq!(
            predictor.shared_group(),
            None,
            "refit weights diverged from the group but the tag survived"
        );
    }

    #[test]
    fn batched_pieces_compose_to_forecast() {
        let (predictor, _) =
            ResourcePredictor::fit(Box::new(NaiveForecaster::new()), &bootstrap(), cfg()).unwrap();
        let (x, w, f) = predictor.inference_window().unwrap();
        let pred = predictor.predict_batch(&Tensor::from_vec(x, &[1, w, f]));
        let fc = predictor.denormalize_forecast(pred.as_slice());
        assert_eq!(fc, predictor.forecast().unwrap());
    }

    #[test]
    fn restore_rejects_inconsistent_state() {
        let (predictor, _) =
            ResourcePredictor::fit(Box::new(NaiveForecaster::new()), &bootstrap(), cfg()).unwrap();
        let mut state = predictor.snapshot().unwrap();
        state.history.pop();
        assert!(ResourcePredictor::from_state(&state).is_err());
    }
}
