//! Online resource predictor: the component a cluster resource manager
//! would embed. It owns a fitted model plus the exact preprocessing state
//! (selected indicators, scaler, expansion) and serves rolling forecasts as
//! new monitoring samples arrive, retraining periodically.

use models::Forecaster;
use tensor::Tensor;
use timeseries::{Expansion, FrameError, TimeSeriesFrame};

use crate::pipeline::{prepare, run_model, PipelineConfig, PipelineRun};
use crate::scenario::Scenario;

/// A live predictor bound to one entity's indicator stream.
pub struct ResourcePredictor {
    model: Box<dyn Forecaster>,
    cfg: PipelineConfig,
    /// Rolling raw history per original indicator (column order fixed).
    names: Vec<String>,
    history: Vec<Vec<f32>>,
    /// Preprocessing state captured at the last (re)fit.
    prepared: crate::pipeline::PreparedData,
    samples_since_fit: usize,
    /// Refit after this many new samples (0 disables periodic refits).
    pub refit_every: usize,
}

impl ResourcePredictor {
    /// Fit `model` on `bootstrap` history and return a live predictor.
    pub fn fit(
        mut model: Box<dyn Forecaster>,
        bootstrap: &TimeSeriesFrame,
        cfg: PipelineConfig,
    ) -> Result<(ResourcePredictor, PipelineRun), FrameError> {
        let prepared = prepare(bootstrap, &cfg)?;
        let run = run_model(model.as_mut(), &prepared);
        let names = bootstrap.names().to_vec();
        let history = (0..bootstrap.num_columns())
            .map(|j| bootstrap.column_at(j).to_vec())
            .collect();
        Ok((
            ResourcePredictor {
                model,
                cfg,
                names,
                history,
                prepared,
                samples_since_fit: 0,
                refit_every: 0,
            },
            run,
        ))
    }

    /// Ingest one new monitoring sample (values in the bootstrap frame's
    /// column order). Returns `true` if a periodic refit was triggered.
    pub fn observe(&mut self, sample: &[f32]) -> Result<bool, FrameError> {
        if sample.len() != self.names.len() {
            return Err(FrameError(format!(
                "sample has {} values, expected {}",
                sample.len(),
                self.names.len()
            )));
        }
        for (col, &v) in self.history.iter_mut().zip(sample) {
            col.push(v);
        }
        self.samples_since_fit += 1;
        if self.refit_every > 0 && self.samples_since_fit >= self.refit_every {
            self.refit()?;
            return Ok(true);
        }
        Ok(false)
    }

    /// Refit model and preprocessing on the full accumulated history.
    pub fn refit(&mut self) -> Result<PipelineRun, FrameError> {
        let frame = self.current_frame()?;
        self.prepared = prepare(&frame, &self.cfg)?;
        let run = run_model(self.model.as_mut(), &self.prepared);
        self.samples_since_fit = 0;
        Ok(run)
    }

    /// Forecast the next `horizon` target values (normalised units) from
    /// the most recent window of history.
    pub fn forecast_normalized(&self) -> Result<Vec<f32>, FrameError> {
        let frame = self.current_frame()?;
        // Re-apply the fitted preprocessing to the tail of the stream.
        let selected: Vec<&str> = self.prepared.selected.iter().map(String::as_str).collect();
        let screened = frame.select(&selected)?;
        let normalized = self.prepared.scaler.transform(&screened);
        let expanded = match self.cfg.scenario {
            Scenario::MulExp => Expansion::Horizontal {
                copies: self.cfg.expansion_copies,
            }
            .apply(&normalized)?,
            _ => normalized,
        };
        let w = self.cfg.window;
        if expanded.len() < w {
            return Err(FrameError(format!(
                "need {w} preprocessed samples, have {}",
                expanded.len()
            )));
        }
        let tail = expanded.slice_rows(expanded.len() - w, expanded.len())?;
        let f = tail.num_columns();
        let mut x = vec![0.0f32; w * f];
        for t in 0..w {
            for j in 0..f {
                x[t * f + j] = tail.column_at(j)[t];
            }
        }
        let pred = self.model.predict(&Tensor::from_vec(x, &[1, w, f]));
        Ok(pred.into_vec())
    }

    /// Forecast in raw (de-normalised) target units.
    pub fn forecast(&self) -> Result<Vec<f32>, FrameError> {
        let normalized = self.forecast_normalized()?;
        Ok(self.prepared.denormalize(&self.cfg.target, &normalized))
    }

    /// Samples currently buffered.
    pub fn history_len(&self) -> usize {
        self.history.first().map_or(0, Vec::len)
    }

    fn current_frame(&self) -> Result<TimeSeriesFrame, FrameError> {
        TimeSeriesFrame::new(
            self.names
                .iter()
                .cloned()
                .zip(self.history.iter().cloned())
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudtrace::{ContainerConfig, WorkloadClass};
    use models::NaiveForecaster;

    fn bootstrap() -> TimeSeriesFrame {
        cloudtrace::container::generate_container(
            &ContainerConfig::new(WorkloadClass::OnlineService, 600, 3).with_diurnal_period(300),
        )
    }

    fn cfg() -> PipelineConfig {
        PipelineConfig {
            window: 12,
            scenario: Scenario::MulExp,
            ..Default::default()
        }
    }

    #[test]
    fn fit_then_forecast() {
        let (predictor, run) =
            ResourcePredictor::fit(Box::new(NaiveForecaster::new()), &bootstrap(), cfg()).unwrap();
        assert!(run.test_metrics.mse.is_finite());
        let fc = predictor.forecast().unwrap();
        assert_eq!(fc.len(), 1);
        assert!(fc[0].is_finite());
        // Raw forecast is in utilisation units.
        assert!((0.0..=1.5).contains(&fc[0]), "forecast {fc:?} out of range");
    }

    #[test]
    fn observe_extends_history_and_shifts_forecast() {
        let (mut predictor, _) =
            ResourcePredictor::fit(Box::new(NaiveForecaster::new()), &bootstrap(), cfg()).unwrap();
        let before = predictor.history_len();
        // Push a burst of high samples; persistence forecast must follow.
        for _ in 0..15 {
            predictor.observe(&[0.95; 8]).unwrap();
        }
        assert_eq!(predictor.history_len(), before + 15);
        let fc = predictor.forecast().unwrap();
        assert!(fc[0] > 0.7, "forecast did not track new samples: {fc:?}");
    }

    #[test]
    fn observe_validates_sample_width() {
        let (mut predictor, _) =
            ResourcePredictor::fit(Box::new(NaiveForecaster::new()), &bootstrap(), cfg()).unwrap();
        assert!(predictor.observe(&[0.5; 3]).is_err());
    }

    #[test]
    fn periodic_refit_fires() {
        let (mut predictor, _) =
            ResourcePredictor::fit(Box::new(NaiveForecaster::new()), &bootstrap(), cfg()).unwrap();
        predictor.refit_every = 10;
        let mut refits = 0;
        for i in 0..25 {
            if predictor.observe(&[0.4 + 0.001 * i as f32; 8]).unwrap() {
                refits += 1;
            }
        }
        assert_eq!(refits, 2);
    }
}
