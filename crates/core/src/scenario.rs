//! The three input scenarios of the paper's evaluation (§V-B).

/// How much of the indicator set feeds the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scenario {
    /// Univariate: only the prediction target's own history.
    Uni,
    /// Multivariate: the top half of all indicators by |PCC| with the target.
    Mul,
    /// Multivariate + horizontal time-dimension expansion (Fig. 4b) — the
    /// paper's headline configuration.
    MulExp,
}

impl Scenario {
    /// Every scenario, in Table II order.
    pub const ALL: [Scenario; 3] = [Scenario::Uni, Scenario::Mul, Scenario::MulExp];

    /// Display name matching Table II's row labels.
    pub fn label(self) -> &'static str {
        match self {
            Scenario::Uni => "Uni",
            Scenario::Mul => "Mul",
            Scenario::MulExp => "Mul-Exp",
        }
    }
}

impl std::fmt::Display for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper() {
        assert_eq!(Scenario::Uni.label(), "Uni");
        assert_eq!(Scenario::Mul.label(), "Mul");
        assert_eq!(Scenario::MulExp.label(), "Mul-Exp");
        assert_eq!(format!("{}", Scenario::MulExp), "Mul-Exp");
        assert_eq!(Scenario::ALL.len(), 3);
    }
}
