//! Offline-pipeline instrumentation: spans and counters around the two
//! stages of Algorithm 1 — data preparation ([`prepare`]) and model
//! fitting/evaluation ([`run_model`]).
//!
//! [`PipelineObs`] registers its instruments in a shared [`Registry`]
//! under the `pipeline.` prefix, so batch experiments and the serving
//! stack export through the same snapshot. Timing goes through an
//! injectable [`Clock`](obs::Clock), which keeps the instrumented paths
//! deterministic under a [`SimClock`](obs::SimClock) in tests.

use std::sync::Arc;

use models::Forecaster;
use obs::{Counter, Histogram, Registry, SharedClock, Span};
use timeseries::{FrameError, TimeSeriesFrame};

use crate::pipeline::{prepare, run_model, PipelineConfig, PipelineRun, PreparedData};

/// Instrumented front door to the offline pipeline: the same `prepare` /
/// `run_model` calls, with latencies and outcome counts recorded.
#[derive(Debug, Clone)]
pub struct PipelineObs {
    clock: SharedClock,
    /// Successful [`PipelineObs::prepare`] calls.
    pub prepares: Arc<Counter>,
    /// [`PipelineObs::prepare`] calls that returned an error.
    pub prepare_failures: Arc<Counter>,
    /// Completed [`PipelineObs::run_model`] calls.
    pub runs: Arc<Counter>,
    /// Latency of the preparation stage (clean → screen → scale → window).
    pub prepare_ns: Arc<Histogram>,
    /// Latency of the fit-and-evaluate stage.
    pub run_ns: Arc<Histogram>,
}

impl PipelineObs {
    /// Register the pipeline instruments in `registry`, timing them with
    /// `clock`.
    pub fn new(registry: &Registry, clock: SharedClock) -> Self {
        Self {
            clock,
            prepares: registry.counter("pipeline.prepares"),
            prepare_failures: registry.counter("pipeline.prepare_failures"),
            runs: registry.counter("pipeline.runs"),
            prepare_ns: registry.latency_histogram("pipeline.prepare_ns"),
            run_ns: registry.latency_histogram("pipeline.run_ns"),
        }
    }

    /// [`prepare`] with a span around it: latency lands in
    /// `pipeline.prepare_ns` (on success and failure alike — a rejected
    /// frame still costs its cleaning pass) and the outcome is counted.
    pub fn prepare(
        &self,
        frame: &TimeSeriesFrame,
        cfg: &PipelineConfig,
    ) -> Result<PreparedData, FrameError> {
        let span = Span::start(&*self.clock, &self.prepare_ns);
        let result = prepare(frame, cfg);
        span.finish();
        match &result {
            Ok(_) => self.prepares.inc(),
            Err(_) => self.prepare_failures.inc(),
        }
        result
    }

    /// [`run_model`] with a span around it: fit-and-evaluate latency lands
    /// in `pipeline.run_ns`.
    pub fn run_model(&self, model: &mut dyn Forecaster, data: &PreparedData) -> PipelineRun {
        let span = Span::start(&*self.clock, &self.run_ns);
        let run = run_model(model, data);
        span.finish();
        self.runs.inc();
        run
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;
    use cloudtrace::{ContainerConfig, WorkloadClass};
    use models::NaiveForecaster;
    use obs::SimClock;
    use std::time::Duration;

    fn frame() -> TimeSeriesFrame {
        cloudtrace::container::generate_container(
            &ContainerConfig::new(WorkloadClass::HighDynamic, 600, 5).with_diurnal_period(200),
        )
    }

    fn cfg() -> PipelineConfig {
        PipelineConfig {
            scenario: Scenario::Uni,
            window: 10,
            ..Default::default()
        }
    }

    #[test]
    fn stages_are_counted_and_timed() {
        let registry = Registry::new();
        let sim = SimClock::new();
        let pobs = PipelineObs::new(&registry, sim.shared());

        let data = pobs.prepare(&frame(), &cfg()).unwrap();
        let mut naive = NaiveForecaster::new();
        let run = pobs.run_model(&mut naive, &data);
        assert_eq!(run.model_name, "Naive");

        assert_eq!(pobs.prepares.get(), 1);
        assert_eq!(pobs.prepare_failures.get(), 0);
        assert_eq!(pobs.runs.get(), 1);
        assert_eq!(pobs.prepare_ns.count(), 1);
        assert_eq!(pobs.run_ns.count(), 1);
    }

    #[test]
    fn failed_prepare_is_counted_separately_but_still_timed() {
        let registry = Registry::new();
        let pobs = PipelineObs::new(&registry, SimClock::new().shared());
        let short = TimeSeriesFrame::from_columns(&[("cpu_util_percent", vec![0.5; 20])]).unwrap();
        assert!(pobs.prepare(&short, &PipelineConfig::default()).is_err());
        assert_eq!(pobs.prepares.get(), 0);
        assert_eq!(pobs.prepare_failures.get(), 1);
        assert_eq!(pobs.prepare_ns.count(), 1);
    }

    #[test]
    fn sim_clock_advances_show_up_in_the_histogram() {
        let registry = Registry::new();
        let sim = SimClock::new();
        let pobs = PipelineObs::new(&registry, sim.shared());
        // Start a raw span on the same instruments and advance virtual
        // time under it: the recorded latency is exactly the advance.
        let span = Span::start(&*pobs.clock, &pobs.prepare_ns);
        sim.advance(Duration::from_micros(700));
        assert_eq!(span.finish(), 700_000);
        let snap = pobs.prepare_ns.snapshot();
        assert_eq!(snap.min, Some(700_000));
        assert_eq!(snap.max, Some(700_000));
    }

    #[test]
    fn instruments_appear_in_the_shared_registry_snapshot() {
        let registry = Registry::new();
        let pobs = PipelineObs::new(&registry, SimClock::new().shared());
        pobs.prepare(&frame(), &cfg()).unwrap();
        let snap = registry.snapshot();
        assert!(snap
            .counters
            .iter()
            .any(|(n, v)| n == "pipeline.prepares" && *v == 1));
        assert!(snap
            .histograms
            .iter()
            .any(|(n, h)| n == "pipeline.prepare_ns" && h.count == 1));
    }
}
