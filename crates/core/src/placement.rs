//! Prediction-aware container placement — the *job scheduling* use-case
//! the paper's §II motivates: when a new container arrives, place it on the
//! machine whose **predicted** future load leaves the most headroom, rather
//! than the one that merely looks idle right now. A placement simulator
//! scores strategies by the overload time they cause.
//!
//! The module also hosts the fleet-tier placement primitive: a
//! [`HashRing`] that maps entity ids onto serving nodes with consistent
//! hashing, so the distributed router in `rptcn-net` moves only ~1/N of
//! the entities when a node joins or leaves.

/// Consistent-hash ring over named serving nodes.
///
/// Each node contributes `vnodes` points (FNV-1a of `"name#i"`) on a
/// `u64` ring; a key is served by the node owning the first point at or
/// after the key's hash, wrapping around. Properties the distributed
/// tier relies on:
///
/// * **Deterministic** — the same membership always yields the same
///   placement, so a router restart recomputes identical routes.
/// * **Balanced** — virtual nodes spread each physical node around the
///   ring, keeping per-node entity counts within a small factor.
/// * **Stable under churn** — adding or removing one node only remaps
///   the keys whose ring arc it owned (~`1/N` of them).
/// * **Failure-aware lookups** — [`HashRing::node_for_where`] walks
///   clockwise past nodes a liveness predicate rejects, so a dead node's
///   keys land on its ring successor, the way a shard already routes
///   around a dead entity.
#[derive(Debug, Clone)]
pub struct HashRing {
    vnodes: usize,
    nodes: Vec<String>,
    /// Sorted `(point, node index)` pairs — the ring itself.
    points: Vec<(u64, u32)>,
}

/// FNV-1a over a byte string — the same hash family the serve-tier shard
/// router uses, so placement is dependency-free and reproducible.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// 64-bit avalanche finalizer (the murmur3 fmix64 constants). Raw FNV-1a
/// under-diffuses the final one or two input bytes into the high bits, so
/// fleets with near-identical short ids (`e-01`, `e-02`, …) would cluster
/// into a single ring arc and all land on one node. Mixing restores full
/// avalanche while staying dependency-free and deterministic.
fn mix64(mut h: u64) -> u64 {
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    h ^= h >> 33;
    h
}

/// Ring position of an arbitrary byte string.
fn ring_hash(bytes: &[u8]) -> u64 {
    mix64(fnv1a(bytes))
}

impl HashRing {
    /// An empty ring where every node will contribute `vnodes` points
    /// (clamped to at least one).
    pub fn new(vnodes: usize) -> Self {
        Self {
            vnodes: vnodes.max(1),
            nodes: Vec::new(),
            points: Vec::new(),
        }
    }

    /// Add a node; returns `false` (and changes nothing) if the name is
    /// already on the ring.
    pub fn add_node(&mut self, name: &str) -> bool {
        if self.contains(name) {
            return false;
        }
        let idx = self.nodes.len() as u32;
        self.nodes.push(name.to_string());
        for i in 0..self.vnodes {
            let point = ring_hash(format!("{name}#{i}").as_bytes());
            self.points.push((point, idx));
        }
        self.points.sort_unstable();
        true
    }

    /// Remove a node; returns `false` if it was not on the ring.
    pub fn remove_node(&mut self, name: &str) -> bool {
        let Some(pos) = self.nodes.iter().position(|n| n == name) else {
            return false;
        };
        self.nodes.remove(pos);
        let removed = pos as u32;
        self.points.retain(|&(_, idx)| idx != removed);
        for (_, idx) in &mut self.points {
            if *idx > removed {
                *idx -= 1;
            }
        }
        true
    }

    /// Whether `name` is on the ring.
    pub fn contains(&self, name: &str) -> bool {
        self.nodes.iter().any(|n| n == name)
    }

    /// Node names in insertion order.
    pub fn nodes(&self) -> &[String] {
        &self.nodes
    }

    /// Number of nodes on the ring.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True while no node has been added.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node serving `key`, or `None` on an empty ring.
    pub fn node_for(&self, key: &str) -> Option<&str> {
        self.node_for_where(key, |_| true)
    }

    /// The first node at or after `key`'s ring position that satisfies
    /// `alive`, wrapping around — `None` if no live node exists. This is
    /// the failover walk: with every node alive it equals
    /// [`HashRing::node_for`]; with the primary dead it yields the ring
    /// successor, and so on.
    pub fn node_for_where(&self, key: &str, alive: impl Fn(&str) -> bool) -> Option<&str> {
        if self.points.is_empty() {
            return None;
        }
        let h = ring_hash(key.as_bytes());
        let start = self.points.partition_point(|&(p, _)| p < h);
        let n = self.points.len();
        for step in 0..n {
            let (_, idx) = self.points[(start + step) % n];
            let name = &self.nodes[idx as usize];
            if alive(name) {
                return Some(name);
            }
        }
        None
    }
}

/// Result of auditing the fleet's actual entity holdings against the
/// placement the ring prescribes — the *ownership oracle* the chaos
/// suites assert after every simulated run. A converged fleet has every
/// entity on exactly one live node, and that node is the ring owner;
/// anything else is a violation with enough attribution to debug it.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OwnershipAudit {
    /// Entities held by no live node at all (lost).
    pub missing: Vec<String>,
    /// Entities held by more than one live node: `(entity, holders)`.
    pub duplicated: Vec<(String, Vec<String>)>,
    /// Entities held by exactly one live node, but not the ring owner:
    /// `(entity, holder, expected_owner)`.
    pub misplaced: Vec<(String, String, String)>,
}

impl OwnershipAudit {
    /// Whether the fleet satisfies single-live-owner placement.
    pub fn is_converged(&self) -> bool {
        self.missing.is_empty() && self.duplicated.is_empty() && self.misplaced.is_empty()
    }

    /// Total number of violations across all three categories.
    pub fn violations(&self) -> usize {
        self.missing.len() + self.duplicated.len() + self.misplaced.len()
    }
}

impl HashRing {
    /// Audit actual entity `holdings` (per live node, the entity ids it
    /// currently serves) against this ring's placement for `expected`
    /// entities. `alive` filters ring members the same way the router's
    /// failover lookup does; nodes absent from `holdings` are treated as
    /// holding nothing. Entities outside `expected` are ignored.
    pub fn audit_ownership(
        &self,
        alive: impl Fn(&str) -> bool,
        expected: &[String],
        holdings: &[(String, Vec<String>)],
    ) -> OwnershipAudit {
        let mut held_by: std::collections::BTreeMap<&str, Vec<&str>> =
            std::collections::BTreeMap::new();
        for (node, ids) in holdings {
            if !alive(node) {
                continue;
            }
            for id in ids {
                held_by.entry(id.as_str()).or_default().push(node.as_str());
            }
        }
        let mut audit = OwnershipAudit::default();
        for id in expected {
            let holders = held_by.get(id.as_str()).map_or(&[][..], Vec::as_slice);
            let owner = self.node_for_where(id, &alive);
            match (holders, owner) {
                ([], _) => audit.missing.push(id.clone()),
                ([one], Some(owner)) if *one == owner => {}
                ([one], Some(owner)) => {
                    audit
                        .misplaced
                        .push((id.clone(), (*one).to_string(), owner.to_string()));
                }
                ([one], None) => {
                    // No live owner exists; a single surviving copy is
                    // the best possible state, not a violation.
                    let _ = one;
                }
                (many, _) => audit
                    .duplicated
                    .push((id.clone(), many.iter().map(|n| (*n).to_string()).collect())),
            }
        }
        audit
    }
}

/// How the scheduler estimates a machine's near-future load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementStrategy {
    /// Current instantaneous load (what a naive scheduler sees).
    CurrentLoad,
    /// Mean load over the recent window (smooths bursts).
    RecentMean,
    /// Externally supplied forecast of the next-interval load.
    Predicted,
}

/// One machine in the simulated cluster.
#[derive(Debug, Clone)]
pub struct SimMachine {
    /// Background (pre-existing) load per time step, in `[0, 1]`.
    pub background: Vec<f32>,
    /// Load added by containers this simulation has placed.
    placed: Vec<f32>,
}

impl SimMachine {
    /// A machine with the given background load series and nothing placed.
    pub fn new(background: Vec<f32>) -> Self {
        let n = background.len();
        Self {
            background,
            placed: vec![0.0; n],
        }
    }

    /// Total load at step `t`.
    pub fn load_at(&self, t: usize) -> f32 {
        (self.background[t] + self.placed[t]).min(1.5)
    }

    fn add_container(&mut self, from: usize, demand: &[f32]) {
        for (offset, &d) in demand.iter().enumerate() {
            if let Some(slot) = self.placed.get_mut(from + offset) {
                *slot += d;
            }
        }
    }
}

/// An arriving container: a start time and its CPU demand series.
#[derive(Debug, Clone)]
pub struct Arrival {
    pub at: usize,
    pub demand: Vec<f32>,
}

/// Outcome of one simulated placement run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PlacementOutcome {
    pub placements: usize,
    /// Machine-steps with total load above the overload threshold.
    pub overloaded_steps: usize,
    /// Total steps evaluated (machines × horizon).
    pub total_steps: usize,
    /// Peak load observed anywhere.
    pub peak_load: f32,
}

impl PlacementOutcome {
    /// Fraction of machine-steps spent above the overload threshold.
    pub fn overload_rate(&self) -> f64 {
        if self.total_steps == 0 {
            0.0
        } else {
            self.overloaded_steps as f64 / self.total_steps as f64
        }
    }
}

/// Simulates placing `arrivals` onto `machines` under a strategy.
///
/// `forecasts[m][t]` supplies the predicted load of machine `m` for step
/// `t+1` and is only consulted by [`PlacementStrategy::Predicted`]; pass
/// the truth shifted by one to emulate a perfect predictor, or a model's
/// output for an end-to-end evaluation.
pub struct PlacementSimulator {
    machines: Vec<SimMachine>,
    overload_threshold: f32,
    lookback: usize,
}

impl PlacementSimulator {
    /// A simulator over a non-empty cluster of equal-horizon machines.
    pub fn new(machines: Vec<SimMachine>, overload_threshold: f32) -> Self {
        assert!(!machines.is_empty());
        let len = machines[0].background.len();
        assert!(machines.iter().all(|m| m.background.len() == len));
        Self {
            machines,
            overload_threshold,
            lookback: 30,
        }
    }

    /// Number of machines in the simulated cluster.
    pub fn num_machines(&self) -> usize {
        self.machines.len()
    }

    fn estimated_load(
        &self,
        m: usize,
        t: usize,
        strategy: PlacementStrategy,
        forecasts: Option<&[Vec<f32>]>,
    ) -> f32 {
        match strategy {
            PlacementStrategy::CurrentLoad => self.machines[m].load_at(t),
            PlacementStrategy::RecentMean => {
                let lo = t.saturating_sub(self.lookback);
                let vals: Vec<f32> = (lo..=t).map(|s| self.machines[m].load_at(s)).collect();
                tensor::stats::mean(&vals) as f32
            }
            PlacementStrategy::Predicted => forecasts
                // `run` asserts forecasts are present up front; falling
                // back to the instantaneous load here keeps this helper
                // total for any future caller.
                .and_then(|f| f.get(m))
                .and_then(|f| f.get(t))
                .copied()
                .unwrap_or_else(|| self.machines[m].load_at(t)),
        }
    }

    /// Run the simulation: each arrival goes to the machine with the lowest
    /// estimated load at its start time; afterwards every machine-step in
    /// the run is scored against the overload threshold.
    pub fn run(
        &mut self,
        arrivals: &[Arrival],
        strategy: PlacementStrategy,
        forecasts: Option<&[Vec<f32>]>,
    ) -> PlacementOutcome {
        assert!(
            strategy != PlacementStrategy::Predicted || forecasts.is_some(),
            "Predicted strategy requires forecasts"
        );
        let horizon = self.machines[0].background.len();
        let mut outcome = PlacementOutcome {
            placements: arrivals.len(),
            ..Default::default()
        };
        for arrival in arrivals {
            assert!(arrival.at < horizon, "arrival beyond simulation horizon");
            // `total_cmp` orders NaN estimates last instead of panicking,
            // and `new` guarantees at least one machine exists.
            let best = (0..self.machines.len())
                .min_by(|&a, &b| {
                    self.estimated_load(a, arrival.at, strategy, forecasts)
                        .total_cmp(&self.estimated_load(b, arrival.at, strategy, forecasts))
                })
                .unwrap_or(0);
            self.machines[best].add_container(arrival.at, &arrival.demand);
        }
        for m in &self.machines {
            for t in 0..horizon {
                let load = m.load_at(t);
                outcome.total_steps += 1;
                outcome.peak_load = outcome.peak_load.max(load);
                if load > self.overload_threshold {
                    outcome.overloaded_steps += 1;
                }
            }
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two machines: one currently idle but about to get busy, one busy now
    /// but about to drain. The "current load" scheduler picks wrong; a
    /// predictive scheduler picks right.
    fn deceptive_cluster(horizon: usize) -> Vec<SimMachine> {
        let switch = horizon / 2;
        let spiky: Vec<f32> = (0..horizon)
            .map(|t| if t < switch { 0.1 } else { 0.8 })
            .collect();
        let draining: Vec<f32> = (0..horizon)
            .map(|t| if t < switch { 0.6 } else { 0.15 })
            .collect();
        vec![SimMachine::new(spiky), SimMachine::new(draining)]
    }

    fn arrivals(horizon: usize) -> Vec<Arrival> {
        // One long-running container arriving just before the switch.
        vec![Arrival {
            at: horizon / 2 - 1,
            demand: vec![0.4; horizon / 2],
        }]
    }

    /// Perfect one-step-ahead forecast: the background at t+1.
    fn oracle_forecasts(machines: &[SimMachine]) -> Vec<Vec<f32>> {
        machines
            .iter()
            .map(|m| {
                let n = m.background.len();
                (0..n).map(|t| m.background[(t + 5).min(n - 1)]).collect()
            })
            .collect()
    }

    #[test]
    fn predictive_placement_avoids_the_deceptive_machine() {
        let horizon = 200;

        let mut naive_sim = PlacementSimulator::new(deceptive_cluster(horizon), 0.9);
        let naive = naive_sim.run(&arrivals(horizon), PlacementStrategy::CurrentLoad, None);

        let machines = deceptive_cluster(horizon);
        let forecasts = oracle_forecasts(&machines);
        let mut pred_sim = PlacementSimulator::new(machines, 0.9);
        let predicted = pred_sim.run(
            &arrivals(horizon),
            PlacementStrategy::Predicted,
            Some(&forecasts),
        );

        assert!(
            predicted.overloaded_steps < naive.overloaded_steps,
            "prediction did not help: naive {} vs predicted {}",
            naive.overloaded_steps,
            predicted.overloaded_steps
        );
    }

    #[test]
    fn overload_accounting_is_exact() {
        // One machine at 0.95 for 10 steps, threshold 0.9: all overloaded.
        let mut sim = PlacementSimulator::new(vec![SimMachine::new(vec![0.95; 10])], 0.9);
        let outcome = sim.run(&[], PlacementStrategy::CurrentLoad, None);
        assert_eq!(outcome.overloaded_steps, 10);
        assert_eq!(outcome.total_steps, 10);
        assert!((outcome.overload_rate() - 1.0).abs() < 1e-12);
        assert!((outcome.peak_load - 0.95).abs() < 1e-6);
    }

    #[test]
    fn placement_adds_demand_to_exactly_one_machine() {
        let mut sim = PlacementSimulator::new(
            vec![
                SimMachine::new(vec![0.2; 20]),
                SimMachine::new(vec![0.5; 20]),
            ],
            0.9,
        );
        let outcome = sim.run(
            &[Arrival {
                at: 0,
                demand: vec![0.3; 20],
            }],
            PlacementStrategy::CurrentLoad,
            None,
        );
        assert_eq!(outcome.placements, 1);
        // Less-loaded machine receives it: loads become 0.5 and 0.5.
        assert!((sim.machines[0].load_at(5) - 0.5).abs() < 1e-6);
        assert!((sim.machines[1].load_at(5) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn recent_mean_smooths_transient_spikes() {
        // Machine 0 has one instantaneous spike at the arrival step but is
        // otherwise idle; RecentMean should still pick it over the
        // consistently half-loaded machine 1.
        let mut bg0 = vec![0.05f32; 100];
        bg0[50] = 0.9;
        let machines = vec![SimMachine::new(bg0), SimMachine::new(vec![0.5; 100])];
        let mut sim = PlacementSimulator::new(machines, 0.95);
        sim.run(
            &[Arrival {
                at: 50,
                demand: vec![0.2; 40],
            }],
            PlacementStrategy::RecentMean,
            None,
        );
        assert!(
            sim.machines[0].load_at(60) > 0.2,
            "RecentMean was fooled by the transient spike"
        );
    }

    #[test]
    fn ring_is_deterministic_and_total() {
        let mut ring = HashRing::new(32);
        for n in ["node-0", "node-1", "node-2"] {
            assert!(ring.add_node(n));
        }
        assert!(!ring.add_node("node-1"), "duplicate must be rejected");
        assert_eq!(ring.len(), 3);
        for i in 0..100 {
            let key = format!("e_{i}");
            let a = ring.node_for(&key).unwrap().to_string();
            let b = ring.node_for(&key).unwrap().to_string();
            assert_eq!(a, b, "placement must be stable");
        }
    }

    #[test]
    fn ring_balances_across_nodes() {
        let mut ring = HashRing::new(64);
        for n in 0..4 {
            ring.add_node(&format!("node-{n}"));
        }
        let mut counts = std::collections::HashMap::new();
        for i in 0..8000 {
            let n = ring.node_for(&format!("e_{i}")).unwrap().to_string();
            *counts.entry(n).or_insert(0usize) += 1;
        }
        for (node, c) in &counts {
            assert!(
                *c > 8000 / 4 / 2 && *c < 8000 / 4 * 2,
                "{node} got {c} of 8000 keys"
            );
        }
    }

    #[test]
    fn ring_churn_moves_a_minority_of_keys() {
        let mut before = HashRing::new(64);
        for n in 0..4 {
            before.add_node(&format!("node-{n}"));
        }
        let mut after = before.clone();
        after.add_node("node-4");
        let moved = (0..4000)
            .filter(|i| {
                let key = format!("e_{i}");
                before.node_for(&key) != after.node_for(&key)
            })
            .count();
        // Adding a 5th node should move roughly 1/5 of the keys; assert a
        // generous bound that still rules out full reshuffles.
        assert!(
            moved > 0 && moved < 4000 / 2,
            "adding one node moved {moved} of 4000 keys"
        );
        // Keys that moved must have moved TO the new node.
        for i in 0..4000 {
            let key = format!("e_{i}");
            if before.node_for(&key) != after.node_for(&key) {
                assert_eq!(after.node_for(&key), Some("node-4"));
            }
        }
    }

    #[test]
    fn ring_routes_around_dead_nodes() {
        let mut ring = HashRing::new(32);
        for n in 0..3 {
            ring.add_node(&format!("node-{n}"));
        }
        let key = "e_42";
        let primary = ring.node_for(key).unwrap().to_string();
        let failover = ring
            .node_for_where(key, |n| n != primary)
            .unwrap()
            .to_string();
        assert_ne!(failover, primary, "failover must pick another node");
        assert!(
            ring.node_for_where(key, |_| false).is_none(),
            "all-dead ring yields None"
        );
        // Removing the primary makes its old failover the new primary.
        ring.remove_node(&primary);
        assert_eq!(ring.node_for(key), Some(failover.as_str()));
    }

    #[test]
    fn ring_remove_keeps_other_assignments() {
        let mut ring = HashRing::new(32);
        for n in 0..3 {
            ring.add_node(&format!("node-{n}"));
        }
        let kept: Vec<(String, String)> = (0..500)
            .map(|i| format!("e_{i}"))
            .filter(|k| ring.node_for(k) != Some("node-1"))
            .map(|k| {
                let n = ring.node_for(&k).unwrap().to_string();
                (k, n)
            })
            .collect();
        ring.remove_node("node-1");
        assert!(!ring.contains("node-1"));
        for (k, n) in kept {
            assert_eq!(ring.node_for(&k), Some(n.as_str()), "{k} moved needlessly");
        }
    }

    #[test]
    fn ownership_audit_flags_missing_duplicated_and_misplaced() {
        let mut ring = HashRing::new(32);
        for n in ["node-0", "node-1", "node-2"] {
            ring.add_node(n);
        }
        let ids: Vec<String> = (0..40).map(|i| format!("e_{i}")).collect();
        // Converged holdings: every entity exactly where the ring says.
        let mut holdings: std::collections::BTreeMap<String, Vec<String>> = Default::default();
        for id in &ids {
            let owner = ring.node_for(id).unwrap().to_string();
            holdings.entry(owner).or_default().push(id.clone());
        }
        let converged: Vec<(String, Vec<String>)> = holdings.clone().into_iter().collect();
        let audit = ring.audit_ownership(|_| true, &ids, &converged);
        assert!(
            audit.is_converged(),
            "converged fleet audits clean: {audit:?}"
        );

        // Break it three ways: drop e_0, duplicate e_1, misplace e_2.
        let mut broken = holdings;
        let owner0 = ring.node_for("e_0").unwrap().to_string();
        broken.get_mut(&owner0).unwrap().retain(|i| i != "e_0");
        let owner1 = ring.node_for("e_1").unwrap().to_string();
        let other1 = ring
            .node_for_where("e_1", |n| n != owner1)
            .unwrap()
            .to_string();
        broken.entry(other1).or_default().push("e_1".into());
        let owner2 = ring.node_for("e_2").unwrap().to_string();
        let other2 = ring
            .node_for_where("e_2", |n| n != owner2)
            .unwrap()
            .to_string();
        broken.get_mut(&owner2).unwrap().retain(|i| i != "e_2");
        broken.entry(other2.clone()).or_default().push("e_2".into());
        let broken: Vec<(String, Vec<String>)> = broken.into_iter().collect();
        let audit = ring.audit_ownership(|_| true, &ids, &broken);
        assert_eq!(audit.missing, vec!["e_0".to_string()]);
        assert_eq!(audit.duplicated.len(), 1);
        assert_eq!(audit.duplicated[0].0, "e_1");
        assert_eq!(audit.misplaced, vec![("e_2".to_string(), other2, owner2)]);
        assert_eq!(audit.violations(), 3);
    }

    #[test]
    fn ownership_audit_respects_liveness() {
        let mut ring = HashRing::new(32);
        for n in ["node-0", "node-1"] {
            ring.add_node(n);
        }
        let ids = vec!["e_7".to_string()];
        let owner = ring.node_for("e_7").unwrap().to_string();
        let successor = ring
            .node_for_where("e_7", |n| n != owner)
            .unwrap()
            .to_string();
        // The primary is dead but still holds a stale copy; the live
        // successor holds the real one. Counting only live nodes, the
        // fleet is converged onto the successor.
        let holdings = vec![
            (owner.clone(), vec!["e_7".to_string()]),
            (successor.clone(), vec!["e_7".to_string()]),
        ];
        let audit = ring.audit_ownership(|n| n != owner, &ids, &holdings);
        assert!(audit.is_converged(), "{audit:?}");
        // With every ring member dead, a single surviving copy on a live
        // off-ring node (e.g. mid-drain) is tolerated: there is no live
        // owner to converge onto.
        let off_ring = vec![("node-9".to_string(), vec!["e_7".to_string()])];
        let audit = ring.audit_ownership(|n| n == "node-9", &ids, &off_ring);
        assert!(audit.is_converged(), "{audit:?}");
        // And with no live holder anywhere, the entity is simply lost.
        let audit = ring.audit_ownership(|_| false, &ids, &holdings);
        assert_eq!(audit.missing, ids);
    }

    #[test]
    #[should_panic(expected = "requires forecasts")]
    fn predicted_without_forecasts_panics() {
        // Two machines so the comparator (and the forecast lookup) runs.
        let mut sim = PlacementSimulator::new(
            vec![SimMachine::new(vec![0.1; 5]), SimMachine::new(vec![0.2; 5])],
            0.9,
        );
        sim.run(
            &[Arrival {
                at: 0,
                demand: vec![0.1],
            }],
            PlacementStrategy::Predicted,
            None,
        );
    }
}
