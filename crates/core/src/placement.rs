//! Prediction-aware container placement — the *job scheduling* use-case
//! the paper's §II motivates: when a new container arrives, place it on the
//! machine whose **predicted** future load leaves the most headroom, rather
//! than the one that merely looks idle right now. A placement simulator
//! scores strategies by the overload time they cause.

/// How the scheduler estimates a machine's near-future load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementStrategy {
    /// Current instantaneous load (what a naive scheduler sees).
    CurrentLoad,
    /// Mean load over the recent window (smooths bursts).
    RecentMean,
    /// Externally supplied forecast of the next-interval load.
    Predicted,
}

/// One machine in the simulated cluster.
#[derive(Debug, Clone)]
pub struct SimMachine {
    /// Background (pre-existing) load per time step, in `[0, 1]`.
    pub background: Vec<f32>,
    /// Load added by containers this simulation has placed.
    placed: Vec<f32>,
}

impl SimMachine {
    /// A machine with the given background load series and nothing placed.
    pub fn new(background: Vec<f32>) -> Self {
        let n = background.len();
        Self {
            background,
            placed: vec![0.0; n],
        }
    }

    /// Total load at step `t`.
    pub fn load_at(&self, t: usize) -> f32 {
        (self.background[t] + self.placed[t]).min(1.5)
    }

    fn add_container(&mut self, from: usize, demand: &[f32]) {
        for (offset, &d) in demand.iter().enumerate() {
            if let Some(slot) = self.placed.get_mut(from + offset) {
                *slot += d;
            }
        }
    }
}

/// An arriving container: a start time and its CPU demand series.
#[derive(Debug, Clone)]
pub struct Arrival {
    pub at: usize,
    pub demand: Vec<f32>,
}

/// Outcome of one simulated placement run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PlacementOutcome {
    pub placements: usize,
    /// Machine-steps with total load above the overload threshold.
    pub overloaded_steps: usize,
    /// Total steps evaluated (machines × horizon).
    pub total_steps: usize,
    /// Peak load observed anywhere.
    pub peak_load: f32,
}

impl PlacementOutcome {
    /// Fraction of machine-steps spent above the overload threshold.
    pub fn overload_rate(&self) -> f64 {
        if self.total_steps == 0 {
            0.0
        } else {
            self.overloaded_steps as f64 / self.total_steps as f64
        }
    }
}

/// Simulates placing `arrivals` onto `machines` under a strategy.
///
/// `forecasts[m][t]` supplies the predicted load of machine `m` for step
/// `t+1` and is only consulted by [`PlacementStrategy::Predicted`]; pass
/// the truth shifted by one to emulate a perfect predictor, or a model's
/// output for an end-to-end evaluation.
pub struct PlacementSimulator {
    machines: Vec<SimMachine>,
    overload_threshold: f32,
    lookback: usize,
}

impl PlacementSimulator {
    /// A simulator over a non-empty cluster of equal-horizon machines.
    pub fn new(machines: Vec<SimMachine>, overload_threshold: f32) -> Self {
        assert!(!machines.is_empty());
        let len = machines[0].background.len();
        assert!(machines.iter().all(|m| m.background.len() == len));
        Self {
            machines,
            overload_threshold,
            lookback: 30,
        }
    }

    /// Number of machines in the simulated cluster.
    pub fn num_machines(&self) -> usize {
        self.machines.len()
    }

    fn estimated_load(
        &self,
        m: usize,
        t: usize,
        strategy: PlacementStrategy,
        forecasts: Option<&[Vec<f32>]>,
    ) -> f32 {
        match strategy {
            PlacementStrategy::CurrentLoad => self.machines[m].load_at(t),
            PlacementStrategy::RecentMean => {
                let lo = t.saturating_sub(self.lookback);
                let vals: Vec<f32> = (lo..=t).map(|s| self.machines[m].load_at(s)).collect();
                tensor::stats::mean(&vals) as f32
            }
            PlacementStrategy::Predicted => forecasts
                // `run` asserts forecasts are present up front; falling
                // back to the instantaneous load here keeps this helper
                // total for any future caller.
                .and_then(|f| f.get(m))
                .and_then(|f| f.get(t))
                .copied()
                .unwrap_or_else(|| self.machines[m].load_at(t)),
        }
    }

    /// Run the simulation: each arrival goes to the machine with the lowest
    /// estimated load at its start time; afterwards every machine-step in
    /// the run is scored against the overload threshold.
    pub fn run(
        &mut self,
        arrivals: &[Arrival],
        strategy: PlacementStrategy,
        forecasts: Option<&[Vec<f32>]>,
    ) -> PlacementOutcome {
        assert!(
            strategy != PlacementStrategy::Predicted || forecasts.is_some(),
            "Predicted strategy requires forecasts"
        );
        let horizon = self.machines[0].background.len();
        let mut outcome = PlacementOutcome {
            placements: arrivals.len(),
            ..Default::default()
        };
        for arrival in arrivals {
            assert!(arrival.at < horizon, "arrival beyond simulation horizon");
            // `total_cmp` orders NaN estimates last instead of panicking,
            // and `new` guarantees at least one machine exists.
            let best = (0..self.machines.len())
                .min_by(|&a, &b| {
                    self.estimated_load(a, arrival.at, strategy, forecasts)
                        .total_cmp(&self.estimated_load(b, arrival.at, strategy, forecasts))
                })
                .unwrap_or(0);
            self.machines[best].add_container(arrival.at, &arrival.demand);
        }
        for m in &self.machines {
            for t in 0..horizon {
                let load = m.load_at(t);
                outcome.total_steps += 1;
                outcome.peak_load = outcome.peak_load.max(load);
                if load > self.overload_threshold {
                    outcome.overloaded_steps += 1;
                }
            }
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two machines: one currently idle but about to get busy, one busy now
    /// but about to drain. The "current load" scheduler picks wrong; a
    /// predictive scheduler picks right.
    fn deceptive_cluster(horizon: usize) -> Vec<SimMachine> {
        let switch = horizon / 2;
        let spiky: Vec<f32> = (0..horizon)
            .map(|t| if t < switch { 0.1 } else { 0.8 })
            .collect();
        let draining: Vec<f32> = (0..horizon)
            .map(|t| if t < switch { 0.6 } else { 0.15 })
            .collect();
        vec![SimMachine::new(spiky), SimMachine::new(draining)]
    }

    fn arrivals(horizon: usize) -> Vec<Arrival> {
        // One long-running container arriving just before the switch.
        vec![Arrival {
            at: horizon / 2 - 1,
            demand: vec![0.4; horizon / 2],
        }]
    }

    /// Perfect one-step-ahead forecast: the background at t+1.
    fn oracle_forecasts(machines: &[SimMachine]) -> Vec<Vec<f32>> {
        machines
            .iter()
            .map(|m| {
                let n = m.background.len();
                (0..n).map(|t| m.background[(t + 5).min(n - 1)]).collect()
            })
            .collect()
    }

    #[test]
    fn predictive_placement_avoids_the_deceptive_machine() {
        let horizon = 200;

        let mut naive_sim = PlacementSimulator::new(deceptive_cluster(horizon), 0.9);
        let naive = naive_sim.run(&arrivals(horizon), PlacementStrategy::CurrentLoad, None);

        let machines = deceptive_cluster(horizon);
        let forecasts = oracle_forecasts(&machines);
        let mut pred_sim = PlacementSimulator::new(machines, 0.9);
        let predicted = pred_sim.run(
            &arrivals(horizon),
            PlacementStrategy::Predicted,
            Some(&forecasts),
        );

        assert!(
            predicted.overloaded_steps < naive.overloaded_steps,
            "prediction did not help: naive {} vs predicted {}",
            naive.overloaded_steps,
            predicted.overloaded_steps
        );
    }

    #[test]
    fn overload_accounting_is_exact() {
        // One machine at 0.95 for 10 steps, threshold 0.9: all overloaded.
        let mut sim = PlacementSimulator::new(vec![SimMachine::new(vec![0.95; 10])], 0.9);
        let outcome = sim.run(&[], PlacementStrategy::CurrentLoad, None);
        assert_eq!(outcome.overloaded_steps, 10);
        assert_eq!(outcome.total_steps, 10);
        assert!((outcome.overload_rate() - 1.0).abs() < 1e-12);
        assert!((outcome.peak_load - 0.95).abs() < 1e-6);
    }

    #[test]
    fn placement_adds_demand_to_exactly_one_machine() {
        let mut sim = PlacementSimulator::new(
            vec![
                SimMachine::new(vec![0.2; 20]),
                SimMachine::new(vec![0.5; 20]),
            ],
            0.9,
        );
        let outcome = sim.run(
            &[Arrival {
                at: 0,
                demand: vec![0.3; 20],
            }],
            PlacementStrategy::CurrentLoad,
            None,
        );
        assert_eq!(outcome.placements, 1);
        // Less-loaded machine receives it: loads become 0.5 and 0.5.
        assert!((sim.machines[0].load_at(5) - 0.5).abs() < 1e-6);
        assert!((sim.machines[1].load_at(5) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn recent_mean_smooths_transient_spikes() {
        // Machine 0 has one instantaneous spike at the arrival step but is
        // otherwise idle; RecentMean should still pick it over the
        // consistently half-loaded machine 1.
        let mut bg0 = vec![0.05f32; 100];
        bg0[50] = 0.9;
        let machines = vec![SimMachine::new(bg0), SimMachine::new(vec![0.5; 100])];
        let mut sim = PlacementSimulator::new(machines, 0.95);
        sim.run(
            &[Arrival {
                at: 50,
                demand: vec![0.2; 40],
            }],
            PlacementStrategy::RecentMean,
            None,
        );
        assert!(
            sim.machines[0].load_at(60) > 0.2,
            "RecentMean was fooled by the transient spike"
        );
    }

    #[test]
    #[should_panic(expected = "requires forecasts")]
    fn predicted_without_forecasts_panics() {
        // Two machines so the comparator (and the forecast lookup) runs.
        let mut sim = PlacementSimulator::new(
            vec![SimMachine::new(vec![0.1; 5]), SimMachine::new(vec![0.2; 5])],
            0.9,
        );
        sim.run(
            &[Arrival {
                at: 0,
                demand: vec![0.1],
            }],
            PlacementStrategy::Predicted,
            None,
        );
    }
}
