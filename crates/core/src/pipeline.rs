//! The paper's Algorithm 1 ("Dynamic Resource Prediction") as a typed
//! pipeline: clean → normalise → correlation-screen → expand → window →
//! split → fit/predict.

use models::{FitReport, Forecaster};
use timeseries::{
    clean, make_windows, metrics, split_windows, Expansion, FrameError, MinMaxScaler, RepairPolicy,
    SplitRatios, TimeSeriesFrame, WindowedDataset,
};

use crate::scenario::Scenario;

/// Pipeline hyper-parameters. Defaults follow the paper's setup: CPU
/// utilisation target, window of 30 ten-second samples, one-step horizon,
/// 6:2:2 chronological split, three-way horizontal expansion.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    pub target: String,
    pub scenario: Scenario,
    pub window: usize,
    pub horizon: usize,
    pub ratios: SplitRatios,
    pub repair: RepairPolicy,
    /// Lag copies per indicator in the Mul-Exp scenario (paper: 3).
    pub expansion_copies: usize,
    /// Which rows the min-max scaler is fitted on.
    pub scaler_scope: ScalerScope,
}

/// Span the eq.-(1) normalisation is fitted on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalerScope {
    /// Fit on the training rows only — strictly leak-free (our default).
    TrainOnly,
    /// Fit on the whole series — the paper's Algorithm 1 normalises before
    /// splitting. Use when a test-segment level shift would otherwise push
    /// targets outside the trainable range (e.g. the Fig. 8 mutation).
    Global,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            target: "cpu_util_percent".to_string(),
            scenario: Scenario::MulExp,
            window: 30,
            horizon: 1,
            ratios: SplitRatios::PAPER,
            repair: RepairPolicy::DropRows,
            expansion_copies: 3,
            scaler_scope: ScalerScope::TrainOnly,
        }
    }
}

impl PipelineConfig {
    /// Builder-style override of the input scenario.
    pub fn with_scenario(mut self, scenario: Scenario) -> Self {
        self.scenario = scenario;
        self
    }
}

/// The fully prepared, model-ready data for one entity.
#[derive(Debug, Clone)]
pub struct PreparedData {
    pub train: WindowedDataset,
    pub valid: WindowedDataset,
    pub test: WindowedDataset,
    /// Scaler fitted on the training rows only (leak-free; the paper
    /// normalises globally, which we tighten here).
    pub scaler: MinMaxScaler,
    /// Indicator names that survived correlation screening.
    pub selected: Vec<String>,
    /// Name of the target column inside the expanded feature set.
    pub expanded_target: String,
}

impl PreparedData {
    /// De-normalise predictions back to raw utilisation units.
    pub fn denormalize(&self, target_original: &str, values: &[f32]) -> Vec<f32> {
        self.scaler
            .inverse_transform_column(target_original, values)
    }

    /// Extract the state a live predictor must keep after fitting — the
    /// windowed datasets are training artifacts and can be dropped.
    pub fn fitted(&self) -> FittedPreprocess {
        FittedPreprocess {
            scaler: self.scaler.clone(),
            selected: self.selected.clone(),
            expanded_target: self.expanded_target.clone(),
        }
    }
}

/// The preprocessing state captured at fit time that online serving needs:
/// which indicators survived screening, the fitted scaler, and the expanded
/// target name. Unlike [`PreparedData`] it carries no datasets, so it is
/// cheap to clone and small enough to checkpoint.
#[derive(Debug, Clone)]
pub struct FittedPreprocess {
    pub scaler: MinMaxScaler,
    pub selected: Vec<String>,
    pub expanded_target: String,
}

impl FittedPreprocess {
    /// De-normalise predictions back to raw utilisation units.
    pub fn denormalize(&self, target_original: &str, values: &[f32]) -> Vec<f32> {
        self.scaler
            .inverse_transform_column(target_original, values)
    }
}

/// Run Algorithm 1 steps 1–5 on a raw entity frame.
pub fn prepare(frame: &TimeSeriesFrame, cfg: &PipelineConfig) -> Result<PreparedData, FrameError> {
    if !frame.names().iter().any(|n| n == &cfg.target) {
        return Err(FrameError(format!("target '{}' not in frame", cfg.target)));
    }

    // Step 1: DataClean.
    let (cleaned, _) = clean(frame, cfg.repair);
    if cleaned.len() < (cfg.window + cfg.horizon) * 3 {
        return Err(FrameError(format!(
            "only {} clean rows; too short for window {} + horizon {}",
            cleaned.len(),
            cfg.window,
            cfg.horizon
        )));
    }

    // Steps 3-4: correlation screening on the *training* span only, so the
    // indicator choice cannot peek at the future.
    let (train_end, _) = cfg.ratios.boundaries(cleaned.len());
    let train_span = cleaned.slice_rows(0, train_end)?;
    let selected: Vec<String> = match cfg.scenario {
        Scenario::Uni => vec![cfg.target.clone()],
        Scenario::Mul | Scenario::MulExp => timeseries::screen_top_half(&train_span, &cfg.target)?,
    };
    let selected_refs: Vec<&str> = selected.iter().map(String::as_str).collect();
    let screened = cleaned.select(&selected_refs)?;

    // Step 2: normalisation (eq. 1).
    let scaler = match cfg.scaler_scope {
        ScalerScope::TrainOnly => MinMaxScaler::fit(&screened.slice_rows(0, train_end)?),
        ScalerScope::Global => MinMaxScaler::fit(&screened),
    };
    let normalized = scaler.transform(&screened);

    // Step 5: data expansion.
    let (expanded, expanded_target) = match cfg.scenario {
        Scenario::MulExp => {
            let e = Expansion::Horizontal {
                copies: cfg.expansion_copies,
            };
            (e.apply(&normalized)?, format!("{}#lag0", cfg.target))
        }
        _ => (normalized, cfg.target.clone()),
    };

    // Windowing + chronological split.
    let ds = make_windows(&expanded, &expanded_target, cfg.window, cfg.horizon)?;
    let (train, valid, test) = split_windows(&ds, cfg.ratios);
    if train.is_empty() || test.is_empty() {
        return Err(FrameError("split produced an empty partition".into()));
    }
    Ok(PreparedData {
        train,
        valid,
        test,
        scaler,
        selected,
        expanded_target,
    })
}

/// Result of fitting and evaluating one model on prepared data.
#[derive(Debug, Clone)]
pub struct PipelineRun {
    pub model_name: String,
    pub fit: FitReport,
    /// Test-set metrics in normalised units (multiply MSE/MAE by 10² to
    /// compare with Table II's `×10⁻²` convention).
    pub test_metrics: metrics::MetricReport,
    pub truth: Vec<f32>,
    pub predictions: Vec<f32>,
}

/// Normalised utilisation lives in `[0, 1]` on the training span; allowing
/// a 20 % extrapolation margin tolerates test values beyond the training
/// maximum while cutting off unphysical model outputs.
const PREDICTION_CLAMP: (f32, f32) = (0.0, 1.2);

/// Algorithm 1 step 6: fit `model` on the prepared data (with validation
/// for early stopping) and evaluate on the held-out test windows.
/// Predictions are clamped to the physically meaningful range before
/// scoring (utilisation cannot be negative or far above capacity).
pub fn run_model(model: &mut dyn Forecaster, data: &PreparedData) -> PipelineRun {
    let valid = if data.valid.is_empty() {
        None
    } else {
        Some(&data.valid)
    };
    let fit = model.fit(&data.train, valid);
    let (truth, mut predictions) = model.evaluate(&data.test);
    for p in &mut predictions {
        *p = p.clamp(PREDICTION_CLAMP.0, PREDICTION_CLAMP.1);
    }
    PipelineRun {
        model_name: model.name().to_string(),
        fit,
        test_metrics: metrics::report(&truth, &predictions),
        truth,
        predictions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudtrace::{ContainerConfig, WorkloadClass};
    use models::NaiveForecaster;

    fn container_frame() -> TimeSeriesFrame {
        cloudtrace::container::generate_container(
            &ContainerConfig::new(WorkloadClass::HighDynamic, 1200, 11).with_diurnal_period(400),
        )
    }

    #[test]
    fn uni_scenario_keeps_only_target() {
        let data = prepare(
            &container_frame(),
            &PipelineConfig {
                scenario: Scenario::Uni,
                window: 10,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(data.selected, vec!["cpu_util_percent".to_string()]);
        assert_eq!(data.train.num_features(), 1);
        assert_eq!(data.expanded_target, "cpu_util_percent");
    }

    #[test]
    fn mul_scenario_keeps_top_half() {
        let data = prepare(
            &container_frame(),
            &PipelineConfig {
                scenario: Scenario::Mul,
                window: 10,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(data.selected.len(), 4); // ceil(8/2)
        assert_eq!(data.selected[0], "cpu_util_percent");
        assert_eq!(data.train.num_features(), 4);
    }

    #[test]
    fn mul_exp_scenario_triples_features() {
        let data = prepare(
            &container_frame(),
            &PipelineConfig {
                scenario: Scenario::MulExp,
                window: 10,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(data.train.num_features(), 12); // 4 indicators x 3 lags
        assert_eq!(data.expanded_target, "cpu_util_percent#lag0");
        // The expanded target index must point at the lag-0 CPU column.
        let names = &data.train.feature_names;
        assert_eq!(names[data.train.target_index], "cpu_util_percent#lag0");
    }

    #[test]
    fn split_fractions_are_respected() {
        let data = prepare(
            &container_frame(),
            &PipelineConfig {
                window: 10,
                ..Default::default()
            },
        )
        .unwrap();
        let total = data.train.len() + data.valid.len() + data.test.len();
        let train_frac = data.train.len() as f64 / total as f64;
        assert!(
            (train_frac - 0.6).abs() < 0.02,
            "train fraction {train_frac}"
        );
    }

    #[test]
    fn features_are_normalised() {
        let data = prepare(
            &container_frame(),
            &PipelineConfig {
                window: 10,
                ..Default::default()
            },
        )
        .unwrap();
        // Training windows live in [0, 1] by construction of the scaler.
        for &v in data.train.x.as_slice() {
            assert!((-0.01..=1.01).contains(&v), "unnormalised value {v}");
        }
    }

    #[test]
    fn run_model_produces_consistent_report() {
        let data = prepare(
            &container_frame(),
            &PipelineConfig {
                window: 10,
                scenario: Scenario::Uni,
                ..Default::default()
            },
        )
        .unwrap();
        let mut naive = NaiveForecaster::new();
        let run = run_model(&mut naive, &data);
        assert_eq!(run.model_name, "Naive");
        assert_eq!(run.truth.len(), run.predictions.len());
        assert_eq!(run.truth.len(), data.test.len());
        assert!(run.test_metrics.mse > 0.0);
        assert!(run.test_metrics.mse.is_finite());
    }

    #[test]
    fn denormalize_roundtrip() {
        let frame = container_frame();
        let data = prepare(
            &frame,
            &PipelineConfig {
                window: 10,
                scenario: Scenario::Uni,
                ..Default::default()
            },
        )
        .unwrap();
        let normalized = [0.0f32, 0.5, 1.0];
        let raw = data.denormalize("cpu_util_percent", &normalized);
        let (min, max) = data.scaler.bounds("cpu_util_percent").unwrap();
        assert!((raw[0] - min).abs() < 1e-6);
        assert!((raw[2] - max).abs() < 1e-6);
    }

    #[test]
    fn too_short_frame_errors() {
        let frame = TimeSeriesFrame::from_columns(&[("cpu_util_percent", vec![0.5; 20])]).unwrap();
        assert!(prepare(&frame, &PipelineConfig::default()).is_err());
    }

    #[test]
    fn missing_target_errors() {
        let frame = TimeSeriesFrame::from_columns(&[("mem", vec![0.5; 200])]).unwrap();
        assert!(prepare(&frame, &PipelineConfig::default()).is_err());
    }

    #[test]
    fn dirty_rows_are_repaired() {
        let mut frame = container_frame();
        frame.column_mut("cpu_util_percent").unwrap()[100] = f32::NAN;
        frame.column_mut("mpki").unwrap()[200] = f32::INFINITY;
        let data = prepare(
            &frame,
            &PipelineConfig {
                window: 10,
                repair: RepairPolicy::Interpolate,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(data.train.x.all_finite());
        assert!(data.test.x.all_finite());
    }
}
