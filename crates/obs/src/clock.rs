//! Injectable time sources. Every timing decision in the serving stack —
//! span durations, refit backoff, injected stalls, watchdog deadlines —
//! goes through a [`Clock`], so production uses the monotonic system
//! clock while tests substitute a [`SimClock`] they advance by hand.
//! That single seam is what makes the chaos and poison suites
//! deterministic: a "400 ms slow refit" advances virtual time instantly
//! instead of sleeping real wall-time.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A monotone time source plus the ability to wait on it.
///
/// `now_nanos` is relative to the clock's own epoch (construction time
/// for the production clock, zero for [`SimClock`]); only differences
/// are meaningful. `sleep` blocks the caller in *this clock's* time: the
/// production clock parks the thread, while a virtual clock advances
/// itself and returns immediately.
pub trait Clock: Send + Sync + fmt::Debug {
    /// Nanoseconds since this clock's epoch.
    fn now_nanos(&self) -> u64;

    /// Wait for `d` in this clock's time.
    fn sleep(&self, d: Duration);
}

/// How clocks are shared between the service, its shard workers and the
/// refit pool.
pub type SharedClock = Arc<dyn Clock>;

/// Production clock: monotone nanoseconds since construction, real
/// thread sleeps.
#[derive(Debug, Clone)]
pub struct MonotonicClock {
    epoch: Instant,
}

impl MonotonicClock {
    /// A clock whose epoch is the moment of construction.
    pub fn new() -> Self {
        Self {
            epoch: Instant::now(), // lint: allow(r7) — the one real-time read; everything downstream goes through the Clock trait
        }
    }

    /// The default shared production clock.
    pub fn shared() -> SharedClock {
        Arc::new(Self::new())
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonotonicClock {
    fn now_nanos(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    fn sleep(&self, d: Duration) {
        std::thread::sleep(d);
    }
}

/// Manually-advanced virtual clock for deterministic tests.
///
/// Starts at zero and only moves when [`SimClock::advance`] is called —
/// including from [`Clock::sleep`], which advances the clock by the
/// requested duration and returns immediately. Cloning shares the
/// underlying instant, so a test and the service it drives observe the
/// same timeline.
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    now: Arc<AtomicU64>,
}

impl SimClock {
    /// A virtual clock at t = 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// This clock as a [`SharedClock`], still advanceable through `self`.
    pub fn shared(&self) -> SharedClock {
        Arc::new(self.clone())
    }

    /// Move virtual time forward by `d`.
    pub fn advance(&self, d: Duration) {
        self.now.fetch_add(d.as_nanos() as u64, Ordering::Release);
    }

    /// Move virtual time forward by `nanos` nanoseconds.
    pub fn advance_nanos(&self, nanos: u64) {
        self.now.fetch_add(nanos, Ordering::Release);
    }
}

impl Clock for SimClock {
    fn now_nanos(&self) -> u64 {
        self.now.load(Ordering::Acquire)
    }

    /// Virtual sleep: advance the clock by `d` and return immediately.
    /// A worker that "sleeps 400 ms" under a `SimClock` therefore costs
    /// no wall-time while still being observable in timestamps.
    fn sleep(&self, d: Duration) {
        self.advance(d);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_clock_moves_forward() {
        let c = MonotonicClock::new();
        let a = c.now_nanos();
        std::thread::sleep(Duration::from_millis(2));
        assert!(c.now_nanos() > a);
    }

    #[test]
    fn sim_clock_only_moves_when_advanced() {
        let c = SimClock::new();
        assert_eq!(c.now_nanos(), 0);
        std::thread::sleep(Duration::from_millis(2));
        assert_eq!(c.now_nanos(), 0, "virtual time must not follow wall time");
        c.advance(Duration::from_millis(5));
        assert_eq!(c.now_nanos(), 5_000_000);
    }

    #[test]
    fn sim_clock_sleep_is_instant_and_visible() {
        let c = SimClock::new();
        let start = Instant::now();
        c.sleep(Duration::from_secs(3600));
        assert!(
            start.elapsed() < Duration::from_secs(1),
            "virtual sleep must not block"
        );
        assert_eq!(c.now_nanos(), 3_600_000_000_000);
    }

    #[test]
    fn sim_clock_clones_share_the_timeline() {
        let c = SimClock::new();
        let shared = c.shared();
        c.advance(Duration::from_nanos(42));
        assert_eq!(shared.now_nanos(), 42);
    }
}
