//! The metrics registry: named atomic counters, gauges and fixed-bucket
//! histograms.
//!
//! Recording is the hot path — a relaxed atomic add, no locks, no
//! allocation — so shard workers can instrument every forecast without
//! paying for it. Registration and snapshotting take a short mutex on
//! the name tables only; the handles they return are plain `Arc`s to
//! atomics, so readers never contend with writers.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

/// Default histogram bucket upper bounds for latencies, in nanoseconds:
/// a 1-2-5 series from 1 µs to 10 s. Fine enough for microsecond
/// forecasts and coarse enough for second-scale refits in one layout,
/// which keeps every latency histogram in the workspace mergeable.
pub const LATENCY_BOUNDS_NS: [u64; 22] = [
    1_000,
    2_000,
    5_000,
    10_000,
    20_000,
    50_000,
    100_000,
    200_000,
    500_000,
    1_000_000,
    2_000_000,
    5_000_000,
    10_000_000,
    20_000_000,
    50_000_000,
    100_000_000,
    200_000_000,
    500_000_000,
    1_000_000_000,
    2_000_000_000,
    5_000_000_000,
    10_000_000_000,
];

/// A monotone event counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    // hot-path: one relaxed atomic add, no locks or allocation.
    /// Add one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    // hot-path: one relaxed atomic add, no locks or allocation.
    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous value (queue depths, entity counts).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    // hot-path: one relaxed atomic add, no locks or allocation.
    /// Add one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    // hot-path: one relaxed atomic sub, no locks or allocation.
    /// Subtract one.
    pub fn dec(&self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }

    // hot-path: one relaxed atomic add, no locks or allocation.
    /// Add `n` (may be negative).
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrite the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Current value clamped to zero — for gauges that are logically
    /// non-negative (queue depths) but may transiently dip under
    /// relaxed concurrent updates.
    pub fn get_non_negative(&self) -> u64 {
        self.get().max(0) as u64
    }
}

/// A fixed-bucket histogram of `u64` samples (typically nanoseconds).
///
/// Bucket `i` counts samples `<= bounds[i]`; one extra overflow bucket
/// counts everything beyond the last bound. Count, sum, min and max are
/// tracked exactly; quantiles are estimated from the bucket layout
/// (nearest-rank, resolved to the matching bucket's upper bound and
/// clamped into the exact `[min, max]` envelope).
#[derive(Debug)]
pub struct Histogram {
    bounds: Box<[u64]>,
    /// `bounds.len() + 1` slots; the last is the overflow bucket.
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    /// A histogram over the given bucket upper bounds. Bounds are
    /// sorted and deduplicated; an empty slice yields a single
    /// overflow bucket (count/sum/min/max still exact).
    pub fn with_bounds(bounds: &[u64]) -> Self {
        let mut sorted: Vec<u64> = bounds.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let buckets: Vec<AtomicU64> = (0..sorted.len() + 1).map(|_| AtomicU64::new(0)).collect();
        Self {
            bounds: sorted.into_boxed_slice(),
            buckets: buckets.into_boxed_slice(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// The workspace-standard latency histogram
    /// ([`LATENCY_BOUNDS_NS`]).
    pub fn latency() -> Self {
        Self::with_bounds(&LATENCY_BOUNDS_NS)
    }

    // hot-path: a short bounded scan plus relaxed atomic adds — no
    // locks, no allocation, no timing calls.
    /// Record one sample.
    pub fn record(&self, value: u64) {
        let mut idx = 0;
        while idx < self.bounds.len() && value > self.bounds[idx] {
            idx += 1;
        }
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    // hot-path: delegates to `record`; the nanosecond conversion is
    // arithmetic only.
    /// Record a duration as nanoseconds.
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_nanos() as u64);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Point-in-time copy of the bucket state. Under concurrent
    /// recording the copy is racy-but-monotone: it never shows a sample
    /// that was not recorded.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        let buckets = self
            .bounds
            .iter()
            .zip(self.buckets.iter())
            .map(|(&le, c)| (le, c.load(Ordering::Relaxed)))
            .collect();
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: (count > 0).then(|| self.min.load(Ordering::Relaxed)),
            max: (count > 0).then(|| self.max.load(Ordering::Relaxed)),
            buckets,
            overflow: self.buckets[self.bounds.len()].load(Ordering::Relaxed),
        }
    }

    /// Estimated `q`-quantile of everything recorded so far.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        self.snapshot().quantile(q)
    }
}

/// Immutable copy of a [`Histogram`]'s state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total samples recorded.
    pub count: u64,
    /// Exact sum of all samples.
    pub sum: u64,
    /// Exact smallest sample (`None` before the first record).
    pub min: Option<u64>,
    /// Exact largest sample.
    pub max: Option<u64>,
    /// `(upper bound, samples <= bound and > previous bound)` pairs in
    /// ascending bound order.
    pub buckets: Vec<(u64, u64)>,
    /// Samples beyond the last bound.
    pub overflow: u64,
}

impl HistogramSnapshot {
    /// Nearest-rank `q`-quantile estimate: the upper bound of the bucket
    /// holding the ranked sample, clamped into the exact `[min, max]`
    /// envelope (so `quantile(1.0)` is the true max). `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let (min, max) = (self.min?, self.max?);
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for &(le, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return Some(le.clamp(min, max));
            }
        }
        Some(max)
    }

    /// Mean of all samples (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Combine two snapshots recorded against the same bucket layout;
    /// the result is identical to one histogram having recorded both
    /// sample streams. `None` when the layouts differ.
    pub fn merge(&self, other: &HistogramSnapshot) -> Option<HistogramSnapshot> {
        if self.buckets.len() != other.buckets.len()
            || self
                .buckets
                .iter()
                .zip(&other.buckets)
                .any(|(a, b)| a.0 != b.0)
        {
            return None;
        }
        Some(HistogramSnapshot {
            count: self.count + other.count,
            sum: self.sum + other.sum,
            min: match (self.min, other.min) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            },
            max: match (self.max, other.max) {
                (Some(a), Some(b)) => Some(a.max(b)),
                (a, b) => a.or(b),
            },
            buckets: self
                .buckets
                .iter()
                .zip(&other.buckets)
                .map(|(&(le, a), &(_, b))| (le, a + b))
                .collect(),
            overflow: self.overflow + other.overflow,
        })
    }
}

/// Name tables behind the registry mutex.
#[derive(Debug, Default)]
struct Tables {
    counters: BTreeMap<String, Arc<Counter>>,
    gauges: BTreeMap<String, Arc<Gauge>>,
    histograms: BTreeMap<String, Arc<Histogram>>,
}

/// A process-wide (or service-wide) collection of named metrics.
///
/// `counter` / `gauge` / `histogram` are get-or-create: requesting the
/// same name twice returns the same handle, so independent components
/// can share a metric without coordinating. The mutex guards only the
/// name tables — recording through a returned handle never locks.
#[derive(Debug, Default)]
pub struct Registry {
    tables: Mutex<Tables>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Lock the name tables, recovering from poisoning: the tables are
    /// only ever maps of handles and stay usable after an unwind.
    fn tables(&self) -> MutexGuard<'_, Tables> {
        self.tables
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Get or create the counter named `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        Arc::clone(self.tables().counters.entry(name.to_string()).or_default())
    }

    /// Get or create the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        Arc::clone(self.tables().gauges.entry(name.to_string()).or_default())
    }

    /// Get or create the histogram named `name`. The bounds apply only
    /// on first creation; later calls return the existing histogram
    /// unchanged.
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Arc<Histogram> {
        Arc::clone(
            self.tables()
                .histograms
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Histogram::with_bounds(bounds))),
        )
    }

    /// Get or create a latency histogram ([`LATENCY_BOUNDS_NS`]).
    pub fn latency_histogram(&self, name: &str) -> Arc<Histogram> {
        self.histogram(name, &LATENCY_BOUNDS_NS)
    }

    /// Point-in-time copy of every registered metric, names sorted.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let tables = self.tables();
        MetricsSnapshot {
            counters: tables
                .counters
                .iter()
                .map(|(name, c)| (name.clone(), c.get()))
                .collect(),
            gauges: tables
                .gauges
                .iter()
                .map(|(name, g)| (name.clone(), g.get()))
                .collect(),
            histograms: tables
                .histograms
                .iter()
                .map(|(name, h)| (name.clone(), h.snapshot()))
                .collect(),
        }
    }
}

/// Point-in-time copy of a [`Registry`], in deterministic name order —
/// the exporters' input.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// `(name, value)` for every counter, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge, sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// `(name, snapshot)` for every histogram, sorted by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_accumulate() {
        let r = Registry::new();
        let c = r.counter("reqs");
        c.inc();
        c.add(4);
        assert_eq!(r.counter("reqs").get(), 5, "same name, same handle");
        let g = r.gauge("depth");
        g.inc();
        g.inc();
        g.dec();
        g.add(-5);
        assert_eq!(g.get(), -4);
        assert_eq!(g.get_non_negative(), 0);
    }

    #[test]
    fn histogram_buckets_count_and_exact_envelope() {
        let h = Histogram::with_bounds(&[10, 100, 1000]);
        for v in [1, 9, 10, 11, 100, 5000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 1 + 9 + 10 + 11 + 100 + 5000);
        assert_eq!(s.min, Some(1));
        assert_eq!(s.max, Some(5000));
        assert_eq!(s.buckets, vec![(10, 3), (100, 2), (1000, 0)]);
        assert_eq!(s.overflow, 1);
    }

    #[test]
    fn quantiles_are_monotone_and_clamped() {
        let h = Histogram::with_bounds(&[10, 100, 1000]);
        for v in [5, 6, 7, 8, 500] {
            h.record(v);
        }
        let p50 = h.quantile(0.5).expect("non-empty");
        let p99 = h.quantile(0.99).expect("non-empty");
        assert!(p50 <= p99, "p50 {p50} > p99 {p99}");
        assert_eq!(h.quantile(1.0), Some(500), "q=1 is the exact max");
        assert_eq!(h.quantile(0.0), Some(10).map(|b: u64| b.clamp(5, 500)));
        assert_eq!(Histogram::latency().quantile(0.5), None, "empty → None");
    }

    #[test]
    fn merge_equals_sequential_recording() {
        let (a, b, c) = (
            Histogram::with_bounds(&[10, 100]),
            Histogram::with_bounds(&[10, 100]),
            Histogram::with_bounds(&[10, 100]),
        );
        for v in [1, 50, 200] {
            a.record(v);
            c.record(v);
        }
        for v in [7, 7000] {
            b.record(v);
            c.record(v);
        }
        let merged = a.snapshot().merge(&b.snapshot()).expect("same layout");
        assert_eq!(merged, c.snapshot());
        let other = Histogram::with_bounds(&[42]);
        assert!(a.snapshot().merge(&other.snapshot()).is_none());
    }

    #[test]
    fn snapshot_is_sorted_by_name() {
        let r = Registry::new();
        r.counter("z");
        r.counter("a");
        r.gauge("m");
        r.latency_histogram("h");
        let s = r.snapshot();
        assert_eq!(
            s.counters
                .iter()
                .map(|(n, _)| n.as_str())
                .collect::<Vec<_>>(),
            vec!["a", "z"]
        );
        assert_eq!(s.gauges.len(), 1);
        assert_eq!(s.histograms.len(), 1);
        assert_eq!(s.histograms[0].1.buckets.len(), LATENCY_BOUNDS_NS.len());
    }
}
