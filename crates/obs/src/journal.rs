//! Bounded event journal: the operational flight recorder.
//!
//! Metrics say *how much*; the journal says *what happened* — which
//! shard restarted, which entity was quarantined, which refit rolled
//! back and why. It is a fixed-capacity ring: recording is O(1) under a
//! short mutex hold, old events are overwritten once the ring is full,
//! and the number of overwritten events is tracked so a reader knows
//! when the trail is incomplete.

use std::sync::{Mutex, MutexGuard};

/// What happened. Kinds mirror the fault-tolerance surface of the
/// serving stack so every injected fault has a distinct trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// A shard worker panicked and was restarted by its supervisor.
    ShardRestart,
    /// A shard entered degraded (fallback-only) mode.
    Degraded,
    /// A shard left degraded mode after a successful refit.
    Recovered,
    /// An entity's stream was quarantined (poisoned input or repeated
    /// crash attribution).
    Quarantined,
    /// A sample was repaired in place (non-finite value substituted).
    Repaired,
    /// A shadow refit finished and was swapped in.
    RefitCompleted,
    /// A shadow refit failed validation or crashed.
    RefitFailed,
    /// A shadow refit overran its watchdog deadline.
    RefitTimedOut,
    /// A swapped-in refit regressed and was rolled back.
    RefitRollback,
    /// A batched forecast call completed.
    BatchForecast,
    /// An ingest was rejected because the shard's queue was full.
    QueueRejected,
    /// A fleet checkpoint was written or restored.
    Checkpoint,
    /// A serving node joined the fleet (or recovered from `NodeDown`).
    NodeUp,
    /// A serving node stopped answering and was routed around.
    NodeDown,
    /// A serving node was gracefully drained: it stopped accepting new
    /// traffic and handed its entity states off for migration.
    NodeDrained,
    /// Entity state moved between serving nodes via a checkpoint-based
    /// warm handoff (drain, join rebalance or failover heal).
    EntityMigrated,
    /// A simulated network injected a per-frame fault (drop, duplicate,
    /// reorder, trickle or mid-frame reset).
    NetFault,
    /// A network partition opened between two endpoints (simulated or
    /// detected).
    NetPartition,
    /// A previously partitioned link healed.
    NetHealed,
    /// A node recognised a replayed request id and answered from its
    /// dedup cache instead of re-executing the request.
    DedupHit,
    /// The decision layer raised an entity's capacity reservation.
    ScaleUp,
    /// The decision layer lowered an entity's capacity reservation after
    /// its hysteresis hold expired.
    ScaleDown,
    /// An interval request on a degraded entity was answered from the
    /// last-good interval instead of a live (uncovered) point estimate.
    IntervalFallback,
}

impl EventKind {
    /// Stable snake_case name used by exporters and log lines.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::ShardRestart => "shard_restart",
            EventKind::Degraded => "degraded",
            EventKind::Recovered => "recovered",
            EventKind::Quarantined => "quarantined",
            EventKind::Repaired => "repaired",
            EventKind::RefitCompleted => "refit_completed",
            EventKind::RefitFailed => "refit_failed",
            EventKind::RefitTimedOut => "refit_timed_out",
            EventKind::RefitRollback => "refit_rollback",
            EventKind::BatchForecast => "batch_forecast",
            EventKind::QueueRejected => "queue_rejected",
            EventKind::Checkpoint => "checkpoint",
            EventKind::NodeUp => "node_up",
            EventKind::NodeDown => "node_down",
            EventKind::NodeDrained => "node_drained",
            EventKind::EntityMigrated => "entity_migrated",
            EventKind::NetFault => "net_fault",
            EventKind::NetPartition => "net_partition",
            EventKind::NetHealed => "net_healed",
            EventKind::DedupHit => "dedup_hit",
            EventKind::ScaleUp => "scale_up",
            EventKind::ScaleDown => "scale_down",
            EventKind::IntervalFallback => "interval_fallback",
        }
    }
}

/// One journal entry: what happened, when (in the service clock's
/// nanoseconds), to which shard and entity, with free-form detail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Clock timestamp (nanoseconds since the service clock's epoch).
    pub at_nanos: u64,
    /// What happened.
    pub kind: EventKind,
    /// Shard attribution, when the event is shard-scoped.
    pub shard: Option<usize>,
    /// Entity attribution, when the event is entity-scoped.
    pub entity: Option<String>,
    /// Free-form context (error text, batch size, attempt number).
    pub detail: String,
}

/// Ring state behind the journal mutex.
#[derive(Debug)]
struct Ring {
    /// Event slots; grows up to capacity then stays put.
    slots: Vec<Event>,
    /// Next slot to overwrite once `slots` is at capacity.
    head: usize,
    /// Events overwritten since creation.
    overwritten: u64,
}

/// A bounded, thread-safe ring of [`Event`]s.
///
/// Recording takes the mutex for a push or an in-place overwrite —
/// no allocation beyond the event itself — so it is cheap enough for
/// fault paths and batch boundaries, though not meant for per-sample
/// rates (use a [`crate::metrics::Counter`] for those).
#[derive(Debug)]
pub struct Journal {
    capacity: usize,
    ring: Mutex<Ring>,
}

impl Journal {
    /// A journal holding at most `capacity` events (at least one slot).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            capacity,
            ring: Mutex::new(Ring {
                slots: Vec::with_capacity(capacity),
                head: 0,
                overwritten: 0,
            }),
        }
    }

    /// Lock the ring, recovering from poisoning: the ring is plain data
    /// and stays consistent after an unwind mid-push.
    fn ring(&self) -> MutexGuard<'_, Ring> {
        self.ring
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Maximum number of retained events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Append an event, overwriting the oldest once full.
    pub fn record(&self, event: Event) {
        let mut ring = self.ring();
        if ring.slots.len() < self.capacity {
            ring.slots.push(event);
        } else {
            let head = ring.head;
            ring.slots[head] = event;
            ring.head = (head + 1) % self.capacity;
            ring.overwritten += 1;
        }
    }

    /// Convenience for [`Journal::record`]: build and append in one call.
    pub fn emit(
        &self,
        at_nanos: u64,
        kind: EventKind,
        shard: Option<usize>,
        entity: Option<&str>,
        detail: String,
    ) {
        self.record(Event {
            at_nanos,
            kind,
            shard,
            entity: entity.map(str::to_string),
            detail,
        });
    }

    /// Events currently retained.
    pub fn len(&self) -> usize {
        self.ring().slots.len()
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events overwritten because the ring was full — non-zero means
    /// the trail returned by [`Journal::events`] is incomplete.
    pub fn overwritten(&self) -> u64 {
        self.ring().overwritten
    }

    /// All retained events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        let ring = self.ring();
        let mut out = Vec::with_capacity(ring.slots.len());
        out.extend_from_slice(&ring.slots[ring.head..]);
        out.extend_from_slice(&ring.slots[..ring.head]);
        out
    }

    /// Retained events of one kind, oldest first.
    pub fn of_kind(&self, kind: EventKind) -> Vec<Event> {
        self.matching(|e| e.kind == kind)
    }

    /// Number of retained events of one kind.
    pub fn count(&self, kind: EventKind) -> usize {
        self.ring().slots.iter().filter(|e| e.kind == kind).count()
    }

    /// Retained events attributed to one entity, oldest first.
    pub fn for_entity(&self, entity: &str) -> Vec<Event> {
        self.matching(|e| e.entity.as_deref() == Some(entity))
    }

    /// Retained events attributed to one shard, oldest first.
    pub fn for_shard(&self, shard: usize) -> Vec<Event> {
        self.matching(|e| e.shard == Some(shard))
    }

    /// Retained events satisfying `pred`, oldest first.
    pub fn matching(&self, pred: impl Fn(&Event) -> bool) -> Vec<Event> {
        self.events().into_iter().filter(|e| pred(e)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at: u64, kind: EventKind, shard: usize, entity: &str) -> Event {
        Event {
            at_nanos: at,
            kind,
            shard: Some(shard),
            entity: Some(entity.to_string()),
            detail: format!("t{at}"),
        }
    }

    #[test]
    fn records_in_order_until_capacity() {
        let j = Journal::new(4);
        assert!(j.is_empty());
        for at in 0..3 {
            j.record(ev(at, EventKind::Repaired, 0, "vm-1"));
        }
        assert_eq!(j.len(), 3);
        assert_eq!(j.overwritten(), 0);
        let at: Vec<u64> = j.events().iter().map(|e| e.at_nanos).collect();
        assert_eq!(at, vec![0, 1, 2]);
    }

    #[test]
    fn overwrites_oldest_when_full() {
        let j = Journal::new(3);
        for at in 0..5 {
            j.record(ev(at, EventKind::BatchForecast, at as usize, "vm-1"));
        }
        assert_eq!(j.len(), 3);
        assert_eq!(j.overwritten(), 2);
        let at: Vec<u64> = j.events().iter().map(|e| e.at_nanos).collect();
        assert_eq!(at, vec![2, 3, 4], "oldest-first after wrap");
    }

    #[test]
    fn queries_filter_by_kind_shard_and_entity() {
        let j = Journal::new(16);
        j.record(ev(1, EventKind::Quarantined, 0, "vm-1"));
        j.record(ev(2, EventKind::Degraded, 1, "vm-2"));
        j.record(ev(3, EventKind::Quarantined, 1, "vm-2"));
        assert_eq!(j.count(EventKind::Quarantined), 2);
        assert_eq!(j.count(EventKind::ShardRestart), 0);
        assert_eq!(j.of_kind(EventKind::Degraded).len(), 1);
        assert_eq!(j.for_entity("vm-2").len(), 2);
        assert_eq!(j.for_shard(1).len(), 2);
        assert_eq!(
            j.matching(|e| e.kind == EventKind::Quarantined && e.shard == Some(1))
                .len(),
            1
        );
    }

    #[test]
    fn emit_builds_the_event() {
        let j = Journal::new(2);
        j.emit(9, EventKind::Checkpoint, None, None, "saved".to_string());
        let events = j.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, EventKind::Checkpoint);
        assert_eq!(events[0].at_nanos, 9);
        assert_eq!(events[0].shard, None);
        assert_eq!(events[0].entity, None);
        assert_eq!(events[0].detail, "saved");
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let j = Journal::new(0);
        assert_eq!(j.capacity(), 1);
        j.emit(1, EventKind::Degraded, Some(0), None, String::new());
        j.emit(2, EventKind::Recovered, Some(0), None, String::new());
        assert_eq!(j.len(), 1);
        assert_eq!(j.events()[0].kind, EventKind::Recovered);
    }
}
