//! RAII timing spans.
//!
//! A [`Span`] reads the injected [`Clock`] once at start and folds the
//! elapsed nanoseconds into a [`Histogram`] when it finishes (or is
//! dropped). It borrows both — no `Arc` bumps, no allocation — so
//! opening a span per forecast is free enough for the hot path, and
//! because the duration comes from the injected clock, span timings are
//! fully deterministic under a [`crate::SimClock`].

use crate::clock::Clock;
use crate::metrics::Histogram;

/// An in-flight timed section. Records into its histogram exactly once:
/// on [`Span::finish`], or on drop if neither `finish` nor
/// [`Span::cancel`] was called.
#[derive(Debug)]
pub struct Span<'a> {
    clock: &'a dyn Clock,
    histogram: &'a Histogram,
    started_nanos: u64,
    armed: bool,
}

impl<'a> Span<'a> {
    // hot-path: one clock read; borrows avoid refcount traffic and
    // allocation.
    /// Start timing now, against `clock`, recording into `histogram`.
    pub fn start(clock: &'a dyn Clock, histogram: &'a Histogram) -> Self {
        Self {
            clock,
            histogram,
            started_nanos: clock.now_nanos(),
            armed: true,
        }
    }

    // hot-path: one clock read plus arithmetic.
    /// Nanoseconds elapsed so far without ending the span.
    pub fn elapsed_nanos(&self) -> u64 {
        self.clock.now_nanos().saturating_sub(self.started_nanos)
    }

    // hot-path: one clock read and one histogram record.
    /// End the span, record its duration, and return the elapsed
    /// nanoseconds.
    pub fn finish(mut self) -> u64 {
        let elapsed = self.elapsed_nanos();
        self.armed = false;
        self.histogram.record(elapsed);
        elapsed
    }

    /// End the span without recording — for sections that failed in a
    /// way that would pollute the latency distribution.
    pub fn cancel(mut self) {
        self.armed = false;
    }
}

impl Drop for Span<'_> {
    // hot-path: records only if the span was neither finished nor
    // cancelled.
    fn drop(&mut self) {
        if self.armed {
            self.histogram
                .record(self.clock.now_nanos().saturating_sub(self.started_nanos));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::SimClock;
    use std::time::Duration;

    #[test]
    fn finish_records_the_virtual_elapsed_time() {
        let clock = SimClock::new();
        let h = Histogram::latency();
        let span = Span::start(&clock, &h);
        clock.advance(Duration::from_micros(150));
        assert_eq!(span.elapsed_nanos(), 150_000);
        assert_eq!(span.finish(), 150_000);
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert_eq!(s.max, Some(150_000));
    }

    #[test]
    fn drop_records_once_and_cancel_records_nothing() {
        let clock = SimClock::new();
        let h = Histogram::latency();
        {
            let _span = Span::start(&clock, &h);
            clock.advance(Duration::from_micros(5));
        }
        assert_eq!(h.count(), 1, "drop records");
        let span = Span::start(&clock, &h);
        clock.advance(Duration::from_micros(5));
        span.cancel();
        assert_eq!(h.count(), 1, "cancel does not record");
        let span = Span::start(&clock, &h);
        span.finish();
        assert_eq!(
            h.count(),
            2,
            "finish records exactly once (no double on drop)"
        );
    }
}
