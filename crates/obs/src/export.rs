//! Snapshot exporters: deterministic text and JSON renderings of a
//! [`MetricsSnapshot`] and the journal, plus a minimal JSON parser so
//! exported snapshots can be round-trip-checked without external
//! crates.
//!
//! Both renderers emit integers only and walk names in sorted order, so
//! the same registry state always produces byte-identical output —
//! which is what lets the golden-fixture tests compare exporter output
//! with a plain byte equality.

use crate::journal::Journal;
use crate::metrics::{HistogramSnapshot, MetricsSnapshot};
use std::fmt::Write as _;

/// Render a snapshot as a human-readable text block: one line per
/// counter and gauge, a summary line plus indented bucket lines per
/// histogram. Quantiles come from [`HistogramSnapshot::quantile`];
/// empty histograms print `-` for min/max/p50/p99.
pub fn to_text(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snapshot.counters {
        let _ = writeln!(out, "counter {name} {value}");
    }
    for (name, value) in &snapshot.gauges {
        let _ = writeln!(out, "gauge {name} {value}");
    }
    for (name, h) in &snapshot.histograms {
        let _ = writeln!(
            out,
            "histogram {name} count={} sum={} min={} max={} p50={} p99={}",
            h.count,
            h.sum,
            opt(h.min),
            opt(h.max),
            opt(h.quantile(0.5)),
            opt(h.quantile(0.99)),
        );
        for &(le, n) in &h.buckets {
            let _ = writeln!(out, "  le={le}: {n}");
        }
        let _ = writeln!(out, "  overflow: {}", h.overflow);
    }
    out
}

/// Render an optional integer as text (`-` when absent).
fn opt(v: Option<u64>) -> String {
    match v {
        Some(v) => v.to_string(),
        None => "-".to_string(),
    }
}

/// Render a snapshot as a single-line JSON object:
/// `{"counters":{..},"gauges":{..},"histograms":{..}}` with histogram
/// buckets as `[le, count]` pairs. Integers only, names in sorted
/// order; [`from_json`] parses this format back.
pub fn to_json(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::from("{\"counters\":{");
    for (i, (name, value)) in snapshot.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}:{value}", json_string(name));
    }
    out.push_str("},\"gauges\":{");
    for (i, (name, value)) in snapshot.gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}:{value}", json_string(name));
    }
    out.push_str("},\"histograms\":{");
    for (i, (name, h)) in snapshot.histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{}:{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[",
            json_string(name),
            h.count,
            h.sum,
            json_opt(h.min),
            json_opt(h.max),
        );
        for (j, &(le, n)) in h.buckets.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "[{le},{n}]");
        }
        let _ = write!(out, "],\"overflow\":{}}}", h.overflow);
    }
    out.push_str("}}");
    out
}

/// Render an optional integer as JSON (`null` when absent).
fn json_opt(v: Option<u64>) -> String {
    match v {
        Some(v) => v.to_string(),
        None => "null".to_string(),
    }
}

/// Quote and escape a string for JSON.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Render the journal as text, oldest first: one
/// `at=<nanos> kind=<name> shard=<n|-> entity=<id|-> <detail>` line per
/// event, with a trailing `overwritten=<n>` line when events were lost.
pub fn journal_text(journal: &Journal) -> String {
    let mut out = String::new();
    for event in journal.events() {
        let _ = writeln!(
            out,
            "at={} kind={} shard={} entity={} {}",
            event.at_nanos,
            event.kind.name(),
            match event.shard {
                Some(s) => s.to_string(),
                None => "-".to_string(),
            },
            event.entity.as_deref().unwrap_or("-"),
            event.detail,
        );
    }
    let overwritten = journal.overwritten();
    if overwritten > 0 {
        let _ = writeln!(out, "overwritten={overwritten}");
    }
    out
}

/// A parsed JSON value — the minimal model needed to re-read exported
/// snapshots.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any numeric literal, as f64 (exact for the integer ranges the
    /// exporters emit).
    Number(f64),
    /// A string literal, unescaped.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, in source order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Member of an object by key, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// This value as a u64, if it is a non-negative integer number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// This value as an i64, if it is an integer number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            JsonValue::Number(n) if n.fract() == 0.0 => Some(*n as i64),
            _ => None,
        }
    }
}

/// Parse a JSON document. Returns `None` on any syntax error or
/// trailing garbage. Supports the full value grammar the exporters
/// emit (objects, arrays, strings with basic escapes, integers,
/// `null`, booleans).
pub fn parse_json(input: &str) -> Option<JsonValue> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    (pos == bytes.len()).then_some(value)
}

/// Parse an exported snapshot back into a [`MetricsSnapshot`] — the
/// inverse of [`to_json`] (quantiles are re-derived, not stored).
pub fn from_json(input: &str) -> Option<MetricsSnapshot> {
    let root = parse_json(input)?;
    let pairs = |key: &str| -> Option<&Vec<(String, JsonValue)>> {
        match root.get(key)? {
            JsonValue::Object(members) => Some(members),
            _ => None,
        }
    };
    let counters = pairs("counters")?
        .iter()
        .map(|(name, v)| Some((name.clone(), v.as_u64()?)))
        .collect::<Option<Vec<_>>>()?;
    let gauges = pairs("gauges")?
        .iter()
        .map(|(name, v)| Some((name.clone(), v.as_i64()?)))
        .collect::<Option<Vec<_>>>()?;
    let histograms = pairs("histograms")?
        .iter()
        .map(|(name, v)| Some((name.clone(), histogram_from_json(v)?)))
        .collect::<Option<Vec<_>>>()?;
    Some(MetricsSnapshot {
        counters,
        gauges,
        histograms,
    })
}

/// Rebuild one histogram snapshot from its exported JSON object.
fn histogram_from_json(v: &JsonValue) -> Option<HistogramSnapshot> {
    let opt_u64 = |key: &str| -> Option<Option<u64>> {
        match v.get(key)? {
            JsonValue::Null => Some(None),
            other => Some(Some(other.as_u64()?)),
        }
    };
    let buckets = match v.get("buckets")? {
        JsonValue::Array(items) => items
            .iter()
            .map(|pair| match pair {
                JsonValue::Array(le_n) if le_n.len() == 2 => {
                    Some((le_n[0].as_u64()?, le_n[1].as_u64()?))
                }
                _ => None,
            })
            .collect::<Option<Vec<_>>>()?,
        _ => return None,
    };
    Some(HistogramSnapshot {
        count: v.get("count")?.as_u64()?,
        sum: v.get("sum")?.as_u64()?,
        min: opt_u64("min")?,
        max: opt_u64("max")?,
        buckets,
        overflow: v.get("overflow")?.as_u64()?,
    })
}

/// Advance past ASCII whitespace.
fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

/// Consume `expected` at the cursor or fail.
fn expect(bytes: &[u8], pos: &mut usize, expected: u8) -> Option<()> {
    if *pos < bytes.len() && bytes[*pos] == expected {
        *pos += 1;
        Some(())
    } else {
        None
    }
}

/// Parse one JSON value starting at the cursor.
fn parse_value(bytes: &[u8], pos: &mut usize) -> Option<JsonValue> {
    skip_ws(bytes, pos);
    match bytes.get(*pos)? {
        b'{' => parse_object(bytes, pos),
        b'[' => parse_array(bytes, pos),
        b'"' => Some(JsonValue::String(parse_string(bytes, pos)?)),
        b't' => parse_literal(bytes, pos, b"true", JsonValue::Bool(true)),
        b'f' => parse_literal(bytes, pos, b"false", JsonValue::Bool(false)),
        b'n' => parse_literal(bytes, pos, b"null", JsonValue::Null),
        _ => parse_number(bytes, pos),
    }
}

/// Parse a fixed keyword literal.
fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    word: &[u8],
    value: JsonValue,
) -> Option<JsonValue> {
    if bytes.len() - *pos >= word.len() && &bytes[*pos..*pos + word.len()] == word {
        *pos += word.len();
        Some(value)
    } else {
        None
    }
}

/// Parse `{...}` with the cursor on the opening brace.
fn parse_object(bytes: &[u8], pos: &mut usize) -> Option<JsonValue> {
    expect(bytes, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Some(JsonValue::Object(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        members.push((key, parse_value(bytes, pos)?));
        skip_ws(bytes, pos);
        match bytes.get(*pos)? {
            b',' => *pos += 1,
            b'}' => {
                *pos += 1;
                return Some(JsonValue::Object(members));
            }
            _ => return None,
        }
    }
}

/// Parse `[...]` with the cursor on the opening bracket.
fn parse_array(bytes: &[u8], pos: &mut usize) -> Option<JsonValue> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Some(JsonValue::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos)? {
            b',' => *pos += 1,
            b']' => {
                *pos += 1;
                return Some(JsonValue::Array(items));
            }
            _ => return None,
        }
    }
}

/// Parse a quoted string with the cursor on the opening quote.
fn parse_string(bytes: &[u8], pos: &mut usize) -> Option<String> {
    expect(bytes, pos, b'"')?;
    let mut out = Vec::new();
    loop {
        match bytes.get(*pos)? {
            b'"' => {
                *pos += 1;
                return String::from_utf8(out).ok();
            }
            b'\\' => {
                *pos += 1;
                match bytes.get(*pos)? {
                    b'"' => out.push(b'"'),
                    b'\\' => out.push(b'\\'),
                    b'/' => out.push(b'/'),
                    b'n' => out.push(b'\n'),
                    b'r' => out.push(b'\r'),
                    b't' => out.push(b'\t'),
                    b'u' => {
                        let hex = bytes.get(*pos + 1..*pos + 5)?;
                        let code = u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                        out.extend_from_slice(char::from_u32(code)?.to_string().as_bytes());
                        *pos += 4;
                    }
                    _ => return None,
                }
                *pos += 1;
            }
            &b => {
                out.push(b);
                *pos += 1;
            }
        }
    }
}

/// Parse a numeric literal (optional sign, digits, optional fraction).
fn parse_number(bytes: &[u8], pos: &mut usize) -> Option<JsonValue> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
        *pos += 1;
    }
    if bytes.get(*pos) == Some(&b'.') {
        *pos += 1;
        while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            *pos += 1;
        }
    }
    if *pos == start {
        return None;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()?
        .parse::<f64>()
        .ok()
        .map(JsonValue::Number)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::EventKind;
    use crate::metrics::Registry;

    fn sample_registry() -> Registry {
        let r = Registry::new();
        r.counter("reqs").add(7);
        r.gauge("depth").set(-2);
        let h = r.histogram("lat", &[10, 100]);
        h.record(5);
        h.record(50);
        h.record(500);
        r
    }

    #[test]
    fn text_and_json_are_deterministic() {
        let a = sample_registry();
        let b = sample_registry();
        assert_eq!(to_text(&a.snapshot()), to_text(&b.snapshot()));
        assert_eq!(to_json(&a.snapshot()), to_json(&b.snapshot()));
    }

    #[test]
    fn json_round_trips_through_the_parser() {
        let snapshot = sample_registry().snapshot();
        let parsed = from_json(&to_json(&snapshot)).expect("valid JSON");
        assert_eq!(parsed, snapshot);
    }

    #[test]
    fn parser_rejects_garbage() {
        for bad in ["", "{", "{\"a\":}", "[1,]", "{\"a\":1}x", "nul"] {
            assert!(parse_json(bad).is_none(), "accepted {bad:?}");
        }
    }

    #[test]
    fn parser_handles_escapes_and_negatives() {
        let v = parse_json(r#"{"a\n\"b":[-3,null,true,"A"]}"#).expect("valid");
        let arr = v.get("a\n\"b").expect("escaped key resolves");
        match arr {
            JsonValue::Array(items) => {
                assert_eq!(items[0].as_i64(), Some(-3));
                assert_eq!(items[1], JsonValue::Null);
                assert_eq!(items[2], JsonValue::Bool(true));
                assert_eq!(items[3], JsonValue::String("A".to_string()));
            }
            other => panic!("expected array, got {other:?}"),
        }
    }

    #[test]
    fn journal_text_lists_events_and_losses() {
        let j = crate::journal::Journal::new(2);
        j.emit(
            5,
            EventKind::Degraded,
            Some(1),
            Some("vm-9"),
            "fallback".into(),
        );
        j.emit(6, EventKind::Recovered, Some(1), None, "refit ok".into());
        j.emit(7, EventKind::Checkpoint, None, None, "saved".into());
        let text = journal_text(&j);
        assert_eq!(
            text,
            "at=6 kind=recovered shard=1 entity=- refit ok\n\
             at=7 kind=checkpoint shard=- entity=- saved\n\
             overwritten=1\n"
        );
    }
}
