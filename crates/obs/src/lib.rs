//! `rptcn-obs` — the workspace's observability layer.
//!
//! Online-prediction systems are operated by their telemetry: latency
//! percentiles, restart counters and fault trails are how an operator
//! tells a healthy fleet from a limping one. This crate supplies that
//! layer without pulling in a single external dependency:
//!
//! * **Metrics** ([`metrics`]): a [`Registry`] of named atomic
//!   [`Counter`]s, [`Gauge`]s and fixed-bucket [`Histogram`]s. Recording
//!   is allocation-free and lock-free — safe on the forecast hot path —
//!   while snapshots walk the registry without stopping writers.
//! * **Spans** ([`span`]): RAII timers that fold wall-clock durations
//!   into a histogram through an injected [`Clock`], so span-based
//!   latency tracking is testable with a virtual clock.
//! * **Event journal** ([`journal`]): a bounded ring buffer of
//!   operational events (shard restarts, degradations, refit rollbacks,
//!   quarantines, batch forecasts) with entity/shard attribution —
//!   queryable, lock-cheap, and deterministic under a [`SimClock`].
//! * **Clocks** ([`clock`]): the [`Clock`] trait with a production
//!   [`MonotonicClock`] and a manually-advanced [`SimClock`] that turns
//!   every timing-dependent test deterministic and instant.
//! * **Exporters** ([`export`]): text and JSON snapshot renderers with a
//!   deterministic field order, plus a minimal JSON parser so snapshots
//!   can be round-trip-checked without external crates.

pub mod clock;
pub mod export;
pub mod journal;
pub mod metrics;
pub mod span;

pub use clock::{Clock, MonotonicClock, SharedClock, SimClock};
pub use export::{from_json, journal_text, parse_json, to_json, to_text, JsonValue};
pub use journal::{Event, EventKind, Journal};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, MetricsSnapshot, Registry};
pub use span::Span;
