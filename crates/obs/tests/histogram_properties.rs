//! Property tests for histogram invariants: whatever the bucket layout
//! and sample stream, counts are conserved, quantiles are monotone and
//! stay inside the exact [min, max] envelope, and merging two snapshots
//! is indistinguishable from recording both streams into one histogram.

use obs::{Histogram, HistogramSnapshot};
use proptest::collection::vec;
use proptest::prelude::*;

/// Record every sample into a fresh histogram over `bounds`.
fn recorded(bounds: &[u64], samples: &[u64]) -> Histogram {
    let h = Histogram::with_bounds(bounds);
    for &s in samples {
        h.record(s);
    }
    h
}

/// Total samples accounted for by the bucket layout of a snapshot.
fn bucketed_total(s: &HistogramSnapshot) -> u64 {
    s.buckets.iter().map(|&(_, n)| n).sum::<u64>() + s.overflow
}

proptest! {
    /// Every recorded sample lands in exactly one bucket (or overflow):
    /// bucket totals equal the count, and count/sum/min/max are exact.
    #[test]
    fn count_is_conserved_across_buckets(
        bounds in vec(1u64..1_000_000, 0..12),
        samples in vec(0u64..10_000_000, 0..300),
    ) {
        let s = recorded(&bounds, &samples).snapshot();
        prop_assert_eq!(s.count, samples.len() as u64);
        prop_assert_eq!(bucketed_total(&s), s.count);
        prop_assert_eq!(s.sum, samples.iter().sum::<u64>());
        prop_assert_eq!(s.min, samples.iter().min().copied());
        prop_assert_eq!(s.max, samples.iter().max().copied());
    }

    /// Quantiles never decrease as q grows, sit inside [min, max], and
    /// q = 1 is the exact maximum — so p50 <= p99 <= max always holds.
    #[test]
    fn quantiles_are_monotone_and_enveloped(
        bounds in vec(1u64..1_000_000, 0..12),
        samples in vec(0u64..10_000_000, 1..300),
    ) {
        let s = recorded(&bounds, &samples).snapshot();
        let (min, max) = (s.min.unwrap(), s.max.unwrap());
        let mut last = min;
        for step in 0..=20u32 {
            let q = f64::from(step) / 20.0;
            let v = s.quantile(q).unwrap();
            prop_assert!(v >= last, "quantile({}) = {} < previous {}", q, v, last);
            prop_assert!(v >= min && v <= max, "quantile({}) = {} outside [{}, {}]", q, v, min, max);
            last = v;
        }
        prop_assert_eq!(s.quantile(1.0), Some(max));
        let (p50, p99) = (s.quantile(0.5).unwrap(), s.quantile(0.99).unwrap());
        prop_assert!(p50 <= p99 && p99 <= max);
    }

    /// merge(a, b) over the same layout equals one histogram that
    /// recorded a's stream then b's stream — and is symmetric.
    #[test]
    fn merge_equals_sequential_recording(
        bounds in vec(1u64..1_000_000, 0..12),
        left in vec(0u64..10_000_000, 0..200),
        right in vec(0u64..10_000_000, 0..200),
    ) {
        let a = recorded(&bounds, &left).snapshot();
        let b = recorded(&bounds, &right).snapshot();
        let both: Vec<u64> = left.iter().chain(&right).copied().collect();
        let sequential = recorded(&bounds, &both).snapshot();
        let merged = a.merge(&b).unwrap();
        prop_assert_eq!(&merged, &sequential);
        prop_assert_eq!(&b.merge(&a).unwrap(), &sequential);
    }

    /// Layout mismatch is detected, never silently combined.
    #[test]
    fn merge_rejects_different_layouts(
        bounds in vec(1u64..1_000_000, 1..12),
        samples in vec(0u64..10_000_000, 0..50),
        extra in 1_000_001u64..2_000_000,
    ) {
        let a = recorded(&bounds, &samples).snapshot();
        let mut other_bounds = bounds.clone();
        other_bounds.push(extra);
        let b = recorded(&other_bounds, &samples).snapshot();
        prop_assert!(a.merge(&b).is_none());
    }
}
