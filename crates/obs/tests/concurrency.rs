//! Concurrency test: many threads hammer one registry and one journal
//! simultaneously; totals must come out exact. This test also runs
//! under ThreadSanitizer in CI (see the chaos-tsan job), where any
//! unsynchronised access in the metrics hot path would be reported.

use obs::{EventKind, Journal, Registry};
use std::sync::Arc;
use std::thread;

const THREADS: usize = 8;
const OPS_PER_THREAD: u64 = 20_000;

#[test]
fn n_threads_one_registry_exact_totals() {
    let registry = Arc::new(Registry::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let registry = Arc::clone(&registry);
            thread::spawn(move || {
                // Every thread resolves the same names itself, so the
                // get-or-create path races too — handles must converge
                // on one metric per name.
                let counter = registry.counter("ops");
                let gauge = registry.gauge("inflight");
                let histogram = registry.histogram("latency_ns", &[100, 1_000, 10_000]);
                for i in 0..OPS_PER_THREAD {
                    counter.inc();
                    gauge.inc();
                    histogram.record((t as u64 * 31 + i * 7) % 20_000);
                    gauge.dec();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("worker thread panicked");
    }

    let expected = THREADS as u64 * OPS_PER_THREAD;
    assert_eq!(registry.counter("ops").get(), expected);
    assert_eq!(
        registry.gauge("inflight").get(),
        0,
        "every inc paired with a dec"
    );
    let s = registry.histogram("latency_ns", &[]).snapshot();
    assert_eq!(s.count, expected);
    assert_eq!(
        s.buckets.iter().map(|&(_, n)| n).sum::<u64>() + s.overflow,
        expected,
        "no sample lost between buckets"
    );
    assert!(s.max < Some(20_000));
}

#[test]
fn concurrent_journal_recording_loses_nothing_unexpectedly() {
    const EVENTS_PER_THREAD: usize = 500;
    let journal = Arc::new(Journal::new(THREADS * EVENTS_PER_THREAD));
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let journal = Arc::clone(&journal);
            thread::spawn(move || {
                for i in 0..EVENTS_PER_THREAD {
                    journal.emit(
                        i as u64,
                        EventKind::BatchForecast,
                        Some(t),
                        None,
                        String::new(),
                    );
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("worker thread panicked");
    }
    // Capacity covers every event, so nothing may be overwritten and
    // per-shard attribution must be exact.
    assert_eq!(journal.len(), THREADS * EVENTS_PER_THREAD);
    assert_eq!(journal.overwritten(), 0);
    for t in 0..THREADS {
        assert_eq!(journal.for_shard(t).len(), EVENTS_PER_THREAD);
    }
}
