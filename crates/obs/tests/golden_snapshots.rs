//! Golden-fixture tests for the exporters: a fixed registry state must
//! render byte-for-byte as the committed fixtures, and the JSON export
//! must survive a parse → compare round trip. Any intentional format
//! change shows up here as a fixture diff, never as silent drift.

use obs::{from_json, journal_text, to_json, to_text, EventKind, Journal, Registry};

/// The registry state both fixtures were rendered from.
fn fixture_registry() -> Registry {
    let r = Registry::new();
    r.counter("fleet.ingested").add(40);
    r.counter("fleet.forecasts").add(12);
    r.gauge("shard0.queue_depth").set(3);
    let forecast = r.histogram("shard0.forecast_ns", &[1_000, 10_000, 100_000]);
    for sample in [800, 900, 5_000, 20_000, 250_000] {
        forecast.record(sample);
    }
    r.histogram("shard1.refit_ns", &[1_000]);
    r
}

#[test]
fn text_export_matches_golden_fixture() {
    let rendered = to_text(&fixture_registry().snapshot());
    let golden = include_str!("fixtures/snapshot.txt");
    assert_eq!(
        rendered, golden,
        "text exporter drifted from tests/fixtures/snapshot.txt"
    );
}

#[test]
fn json_export_matches_golden_fixture() {
    let rendered = to_json(&fixture_registry().snapshot());
    let golden = include_str!("fixtures/snapshot.json");
    assert_eq!(
        rendered,
        golden.trim_end(),
        "JSON exporter drifted from tests/fixtures/snapshot.json"
    );
}

#[test]
fn json_export_round_trips_through_the_parser() {
    let snapshot = fixture_registry().snapshot();
    let reparsed = from_json(&to_json(&snapshot)).expect("exporter output must parse");
    assert_eq!(reparsed, snapshot);
    // And the committed fixture itself parses back to the same state,
    // guarding against a fixture edited by hand into inconsistency.
    let from_fixture =
        from_json(include_str!("fixtures/snapshot.json").trim_end()).expect("fixture must parse");
    assert_eq!(from_fixture, snapshot);
}

#[test]
fn journal_text_is_deterministic_under_a_fixed_timeline() {
    let build = || {
        let j = Journal::new(8);
        j.emit(
            1_000,
            EventKind::ShardRestart,
            Some(2),
            None,
            "panic: poisoned".into(),
        );
        j.emit(
            2_000,
            EventKind::Quarantined,
            Some(2),
            Some("vm-17"),
            "crash culprit".into(),
        );
        j.emit(
            3_000,
            EventKind::Degraded,
            Some(2),
            None,
            "fallback mode".into(),
        );
        j
    };
    let text = journal_text(&build());
    assert_eq!(
        text,
        "at=1000 kind=shard_restart shard=2 entity=- panic: poisoned\n\
         at=2000 kind=quarantined shard=2 entity=vm-17 crash culprit\n\
         at=3000 kind=degraded shard=2 entity=- fallback mode\n"
    );
    assert_eq!(text, journal_text(&build()), "same events, same bytes");
}
