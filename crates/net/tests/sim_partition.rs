//! Deterministic fleet chaos: run a whole router + nodes fleet over the
//! in-process simulated network under seeded partitions and frame
//! faults, then assert the four fleet invariants.
//!
//! Reproduce a failing seed exactly with:
//!
//! ```text
//! SIM_SEED=<seed> cargo test -p rptcn-net --release --test sim_partition seed_matrix -- --nocapture
//! ```

use net::{run_fleet_chaos, ChaosConfig, ChaosOutcome};

fn run_seed(seed: u64) -> ChaosOutcome {
    run_fleet_chaos(&ChaosConfig {
        seed,
        ..ChaosConfig::default()
    })
    .expect("chaos harness must not error")
}

/// The default seed matrix; `SIM_SEED=<s>` narrows the sweep to one seed
/// for deterministic reproduction of a failure.
fn seeds() -> Vec<u64> {
    match std::env::var("SIM_SEED") {
        Ok(s) => vec![s.trim().parse().expect("SIM_SEED must be an integer")],
        Err(_) => (0..8).map(|i| 0x00C0_FFEE + i * 101).collect(),
    }
}

/// Sweep the seed matrix; every seed must satisfy all four invariants.
/// A failing seed prints its one-line repro command.
#[test]
fn seed_matrix() {
    let mut failures: Vec<String> = Vec::new();
    for seed in seeds() {
        let o = run_seed(seed);
        println!(
            "seed {seed}: {} | acked {}/{} ingests, {} forecasts | faults {} (+{} partition drops, {} refused) | retries {} ({} exhausted) | dedup hits {} | downs {} | stabilized in {}",
            o.report.summary(),
            o.acked_ingests,
            o.acked_ingests + o.nacked_ingests,
            o.acked_forecasts,
            o.faults.total_faults(),
            o.faults.partition_drops,
            o.faults.connects_refused,
            o.retries,
            o.retries_exhausted,
            o.dedup_hits,
            o.node_down_transitions,
            o.stabilize_rounds,
        );
        if !o.report.is_clean() {
            println!("REPRO: {}", o.repro);
            failures.push(format!("seed {seed}: {} — {}", o.report.summary(), o.repro));
        }
    }
    assert!(
        failures.is_empty(),
        "fleet invariants violated:\n{}",
        failures.join("\n")
    );
}

/// The chaos schedule must actually exercise the failure paths it claims
/// to: injected frame faults, partition blackholes and data-path
/// retries. A sweep where nothing went wrong proves nothing.
#[test]
fn chaos_exercises_failure_paths() {
    let mut total_faults = 0u64;
    let mut partition_drops = 0u64;
    let mut retries = 0u64;
    let mut dedup_hits = 0u64;
    for seed in seeds() {
        let o = run_seed(seed);
        total_faults += o.faults.total_faults();
        partition_drops += o.faults.partition_drops + o.faults.connects_refused;
        retries += o.retries;
        dedup_hits += o.dedup_hits;
    }
    assert!(total_faults > 0, "no frame faults fired across the sweep");
    assert!(
        partition_drops > 0,
        "no partition ever swallowed traffic across the sweep"
    );
    assert!(retries > 0, "the retry budget was never exercised");
    assert!(
        dedup_hits > 0,
        "no retry was ever absorbed by node request-id dedup — \
         the exactly-once path went untested"
    );
}

/// The same seed must replay the same chaos: identical partition
/// schedule, and a clean invariant verdict both times.
#[test]
fn same_seed_replays_same_partition_schedule() {
    let seed = 0x00C0_FFEE;
    let a = run_seed(seed);
    let b = run_seed(seed);
    assert_eq!(
        a.report.is_clean(),
        b.report.is_clean(),
        "verdict must be reproducible: {} vs {}",
        a.report.summary(),
        b.report.summary()
    );
    assert_eq!(a.repro, b.repro);
    // The round-driven partition plan is a pure function of the seed.
    assert!(a.faults.partition_drops + a.faults.connects_refused > 0);
}

/// Healing converges even when partitions are still open at the end of
/// the last chaos round (the harness heals, then stabilizes).
#[test]
fn partitions_open_at_end_still_converge() {
    let o = run_fleet_chaos(&ChaosConfig {
        seed: 5,
        rounds: 6,
        partition_every: 2,
        partition_rounds: 50, // never heals during the chaos phase
        ..ChaosConfig::default()
    })
    .expect("chaos harness must not error");
    assert!(
        o.report.is_clean(),
        "fleet must converge after heal_all: {} — {}",
        o.report.summary(),
        o.repro
    );
}
