//! Membership-change tests: draining a node and joining a fresh node
//! must move entities with their full predictor state (warm handoff),
//! so forecasts resume bit-identically — replay is deliberately
//! disabled here to prove the state migration alone carries history.

use std::collections::HashMap;
use std::time::Duration;

use net::{FleetRouter, NodeConfig, NodeServer, NodeStatus, RouterConfig};
use obs::EventKind;
use serve::{PredictionService, ServiceConfig};

fn start_node() -> NodeServer {
    let service = PredictionService::new(ServiceConfig {
        shards: 2,
        queue_capacity: 512,
        refit_workers: 0,
        refit_every: 0,
        score_on_ingest: false,
        ..Default::default()
    })
    .expect("service starts");
    NodeServer::start(NodeConfig::default(), service).expect("node starts")
}

fn router_config() -> RouterConfig {
    RouterConfig {
        // Replay off: any post-migration correctness must come from the
        // checkpointed state, not from the router's sample buffer.
        replay_window: 0,
        request_timeout: Duration::from_secs(2),
        bootstrap_len: 64,
        window: 12,
        seed: 1234,
        ..Default::default()
    }
}

fn sample(idx: usize, round: usize) -> Vec<f32> {
    vec![0.25 + 0.002 * (idx % 5) as f32 + 0.03 * round as f32]
}

fn ingest_rounds(
    router: &mut FleetRouter,
    ids: &[String],
    rounds: std::ops::Range<usize>,
) -> HashMap<String, f32> {
    let mut last = HashMap::new();
    for round in rounds {
        let batch: Vec<(String, Vec<f32>)> = ids
            .iter()
            .enumerate()
            .map(|(i, id)| (id.clone(), sample(i, round)))
            .collect();
        let report = router.ingest_batch(&batch).expect("batch routes");
        assert_eq!(report.accepted, ids.len() as u64);
        assert!(report.errors.is_empty(), "{:?}", report.errors);
        for (i, id) in ids.iter().enumerate() {
            last.insert(id.clone(), sample(i, round)[0]);
        }
    }
    last
}

fn assert_forecasts_match(router: &mut FleetRouter, ids: &[String], last: &HashMap<String, f32>) {
    let results = router.forecast_batch(ids);
    assert_eq!(results.len(), ids.len());
    for (id, result) in results {
        let f = result.expect("forecast")[0];
        let expect = last[&id];
        assert!(
            (f - expect).abs() < 2e-2,
            "{id}: forecast {f} vs last ingested {expect}"
        );
    }
}

/// Draining a node hands every entity over with model weights,
/// preprocessing state and history; forecasts on the new owners pick up
/// exactly where the drained node left off, with zero failovers.
#[test]
fn drain_migrates_state_warm() {
    let nodes = [start_node(), start_node(), start_node()];
    let mut router = FleetRouter::new(router_config());
    for (i, n) in nodes.iter().enumerate() {
        router
            .add_node(&format!("n{i}"), &n.addr().to_string())
            .expect("node joins");
    }
    let ids: Vec<String> = (0..36).map(|i| format!("d-{i:02}")).collect();
    assert_eq!(router.seed_entities(&ids).expect("seed"), 36);
    let last = ingest_rounds(&mut router, &ids, 0..6);

    let migrated = router.drain_node("n1").expect("drain succeeds");
    assert!(migrated > 0, "n1 should have owned some entities");
    assert_eq!(router.node_status("n1"), Some(NodeStatus::Drained));
    assert_eq!(router.journal().count(EventKind::NodeDrained), 1);
    assert!(router.registry().counter("router_migrated").get() >= migrated);

    // Warm handoff: replay is off, so only migrated state can explain
    // correct persistence forecasts.
    assert_forecasts_match(&mut router, &ids, &last);
    assert_eq!(router.registry().counter("router_failed_over").get(), 0);

    // The fleet keeps ingesting at full acceptance on the survivors.
    let last = ingest_rounds(&mut router, &ids, 6..8);
    assert_forecasts_match(&mut router, &ids, &last);
}

/// A node joining an active fleet takes over its ring share through
/// Checkpoint/Restore/Evict migration, and forecasts stay correct with
/// replay disabled — the state moved, not just the placement.
#[test]
fn join_rebalances_with_state() {
    let nodes = [start_node(), start_node()];
    let mut router = FleetRouter::new(router_config());
    for (i, n) in nodes.iter().enumerate() {
        router
            .add_node(&format!("n{i}"), &n.addr().to_string())
            .expect("node joins");
    }
    let ids: Vec<String> = (0..36).map(|i| format!("j-{i:02}")).collect();
    assert_eq!(router.seed_entities(&ids).expect("seed"), 36);
    let last = ingest_rounds(&mut router, &ids, 0..6);

    let newcomer = start_node();
    router
        .add_node("n2", &newcomer.addr().to_string())
        .expect("join succeeds");
    let migrated = router.registry().counter("router_migrated").get();
    assert!(migrated > 0, "the newcomer should take over some entities");
    assert!(router.journal().count(EventKind::EntityMigrated) >= 1);

    assert_forecasts_match(&mut router, &ids, &last);
    assert_eq!(router.registry().counter("router_failed_over").get(), 0);

    let last = ingest_rounds(&mut router, &ids, 6..8);
    assert_forecasts_match(&mut router, &ids, &last);
    router.shutdown_fleet();
}
