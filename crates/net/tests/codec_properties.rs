//! Property tests for the wire codec: every frame kind round-trips
//! bit-exactly, and no mutilation of the bytes — truncation, corruption,
//! oversized lengths, foreign headers — can produce anything but a typed
//! [`WireError`]. No panics, no hangs, no unbounded allocations.

use models::NaiveForecaster;
use net::frame::{
    decode_frame, encode_frame, read_frame, ErrorCode, ForecastOutcome, HealthReport, IngestEntry,
    Message, SeedSpec, WireError, WireFault, HEADER_LEN, MAX_PAYLOAD, WIRE_VERSION,
};
use proptest::prelude::*;
use rptcn::{PipelineConfig, PredictorState, ResourcePredictor, Scenario};
use timeseries::TimeSeriesFrame;

fn small_string() -> impl Strategy<Value = String> {
    (0usize..4, 0u32..1000).prop_map(|(kind, n)| match kind {
        0 => format!("c-{n}"),
        1 => format!("entity/{n}/cpu"),
        2 => String::new(),
        _ => format!("π-{n}-日誌"),
    })
}

fn values() -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-1.0e6f32..1.0e6, 0..6)
}

fn ingest_entry() -> impl Strategy<Value = IngestEntry> {
    (small_string(), 0u64..1000, 0usize..2, values()).prop_map(|(entity, seq, has_seq, values)| {
        IngestEntry {
            entity,
            seq: if has_seq == 1 { Some(seq) } else { None },
            values,
        }
    })
}

fn string_list() -> impl Strategy<Value = Vec<String>> {
    proptest::collection::vec(small_string(), 0..5)
}

fn pair_list() -> impl Strategy<Value = Vec<(String, String)>> {
    proptest::collection::vec((small_string(), small_string()), 0..4)
}

fn outcome() -> impl Strategy<Value = ForecastOutcome> {
    (0usize..3, values(), small_string()).prop_map(|(kind, vs, msg)| match kind {
        0 => ForecastOutcome::Values(vs),
        1 => ForecastOutcome::Unknown,
        _ => ForecastOutcome::Failed(msg),
    })
}

fn error_code() -> impl Strategy<Value = ErrorCode> {
    (0usize..5).prop_map(|i| {
        [
            ErrorCode::Draining,
            ErrorCode::UnknownEntity,
            ErrorCode::Malformed,
            ErrorCode::Internal,
            ErrorCode::Unsupported,
        ][i]
    })
}

/// One strategy covering every frame kind except the state-bearing ones
/// (Checkpoint/Restore/Drain replies carry `PredictorState`, exercised
/// separately with real fitted predictors).
fn message() -> impl Strategy<Value = Message> {
    (
        (0usize..13, proptest::collection::vec(ingest_entry(), 0..4)),
        (0u64..1000, string_list(), pair_list()),
        (
            proptest::collection::vec((small_string(), outcome()), 0..4),
            (0u64..100, 0u64..100, 0u64..100, 0usize..2),
        ),
        (
            (string_list(), 0u64..1000, 30u32..100, 1u32..10),
            (error_code(), small_string()),
        ),
    )
        .prop_map(
            |(
                (kind, entries),
                (accepted, strs, pairs),
                (results, (a, b, c, flag)),
                ((ids, seed, blen, window), (code, msg)),
            )| {
                match kind {
                    0 => Message::Ingest { entries },
                    1 => Message::IngestOk {
                        accepted,
                        unknown: strs,
                        errors: pairs,
                    },
                    2 => Message::Forecast { ids },
                    3 => Message::ForecastOk { results },
                    4 => Message::Health,
                    5 => Message::HealthOk(HealthReport {
                        entities: a,
                        ingested: b,
                        forecasts: c,
                        degraded: a,
                        restarts: b,
                        draining: flag == 1,
                    }),
                    6 => Message::Checkpoint { ids },
                    7 => Message::Seed(SeedSpec {
                        ids,
                        seed,
                        bootstrap_len: blen,
                        window,
                    }),
                    8 => Message::SeedOk {
                        installed: a,
                        already: ids,
                    },
                    9 => Message::Evict { ids },
                    10 => Message::EvictOk { removed: a },
                    11 => Message::RestoreOk {
                        installed: a,
                        errors: pairs,
                    },
                    _ => Message::Error(WireFault { code, message: msg }),
                }
            },
        )
}

/// Round-trip check that works without `PartialEq` on `Message`:
/// encode → decode → re-encode must reproduce the exact bytes.
fn assert_roundtrip(request_id: u64, msg: &Message) {
    let bytes = encode_frame(request_id, msg).expect("encode");
    let (id, decoded, used) = decode_frame(&bytes).expect("decode");
    assert_eq!(id, request_id);
    assert_eq!(used, bytes.len());
    let re = encode_frame(request_id, &decoded).expect("re-encode");
    assert_eq!(re, bytes, "re-encoded bytes differ for {}", msg.kind_name());
    // The streaming reader must agree with the buffered decoder.
    let mut cursor = &bytes[..];
    let (sid, smsg) = read_frame(&mut cursor).expect("streamed read");
    assert_eq!(sid, request_id);
    assert_eq!(encode_frame(sid, &smsg).expect("encode"), bytes);
}

proptest! {
    /// Every frame kind round-trips bit-exactly through encode/decode,
    /// under arbitrary request ids.
    #[test]
    fn frames_roundtrip(msg in message(), request_id in 0u64..u64::MAX) {
        assert_roundtrip(request_id, &msg);
    }

    /// Cutting a valid frame anywhere yields `Truncated`, never a panic
    /// or a bogus decode.
    #[test]
    fn truncation_always_typed(msg in message(), cut_frac in 0.0f64..1.0) {
        let bytes = encode_frame(7, &msg).expect("encode");
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        if cut < bytes.len() {
            let err = decode_frame(&bytes[..cut]).expect_err("must fail");
            prop_assert!(
                matches!(err, WireError::Truncated { .. }),
                "cut {cut}/{}: {err:?}", bytes.len()
            );
        }
    }

    /// Flipping any single byte never panics: the result is either a
    /// typed error or a frame that still re-encodes without panicking.
    #[test]
    fn corruption_never_panics(msg in message(), pos_frac in 0.0f64..1.0, xor in 1u8..=255) {
        let mut bytes = encode_frame(3, &msg).expect("encode");
        let pos = ((bytes.len() as f64) * pos_frac) as usize % bytes.len().max(1);
        bytes[pos] ^= xor;
        if let Ok((id, decoded, _)) = decode_frame(&bytes) {
            let _ = encode_frame(id, &decoded);
        }
    }

    /// Trailing garbage after a payload is rejected as malformed.
    #[test]
    fn trailing_bytes_rejected(msg in message(), extra in 1u32..16) {
        let mut bytes = encode_frame(5, &msg).expect("encode");
        // Grow the announced payload length and append zero padding the
        // decoder will not consume.
        let announced = u32::from_le_bytes([bytes[16], bytes[17], bytes[18], bytes[19]]);
        bytes[16..20].copy_from_slice(&(announced + extra).to_le_bytes());
        bytes.extend(std::iter::repeat_n(0u8, extra as usize));
        let err = decode_frame(&bytes).expect_err("must fail");
        prop_assert!(
            matches!(err, WireError::Malformed(_) | WireError::UnknownKind(_)),
            "{err:?}"
        );
    }

    /// Cross-version headers are refused with the announced version.
    #[test]
    fn foreign_versions_refused(msg in message(), version in 0u16..50) {
        let mut bytes = encode_frame(1, &msg).expect("encode");
        bytes[4..6].copy_from_slice(&version.to_le_bytes());
        if version == WIRE_VERSION {
            assert!(decode_frame(&bytes).is_ok());
        } else {
            prop_assert!(matches!(
                decode_frame(&bytes),
                Err(WireError::UnsupportedVersion(v)) if v == version
            ));
        }
    }

    /// Non-zero header flags are malformed in protocol version 1.
    #[test]
    fn nonzero_flags_rejected(msg in message(), flags in 1u8..=255) {
        let mut bytes = encode_frame(1, &msg).expect("encode");
        bytes[7] = flags;
        prop_assert!(matches!(decode_frame(&bytes), Err(WireError::Malformed(_))));
    }

    /// An adversarial length field cannot trigger payload allocation:
    /// oversized announcements fail fast on a 20-byte buffer.
    #[test]
    fn oversized_lengths_fail_fast(len in (MAX_PAYLOAD + 1)..u32::MAX) {
        let mut bytes = encode_frame(1, &Message::Health).expect("encode");
        bytes.truncate(HEADER_LEN);
        bytes[16..20].copy_from_slice(&len.to_le_bytes());
        prop_assert!(matches!(
            decode_frame(&bytes),
            Err(WireError::Oversized { len: l, .. }) if l == len
        ));
    }

    /// Unknown message kinds decode to the typed error carrying the kind.
    #[test]
    fn unknown_kinds_typed(kind in 20u8..=255) {
        let mut bytes = encode_frame(1, &Message::Health).expect("encode");
        bytes[6] = kind;
        prop_assert!(matches!(
            decode_frame(&bytes),
            Err(WireError::UnknownKind(k)) if k == kind
        ));
    }
}

fn fitted_state(phase: f32) -> PredictorState {
    let n = 48;
    let cpu: Vec<f32> = (0..n)
        .map(|i| 40.0 + 25.0 * ((i as f32 * 0.2 + phase).sin()))
        .collect();
    let frame = TimeSeriesFrame::from_columns(&[("cpu_util_percent", cpu)]).expect("frame");
    let cfg = PipelineConfig {
        scenario: Scenario::Uni,
        window: 8,
        horizon: 1,
        ..Default::default()
    };
    let (predictor, _) =
        ResourcePredictor::fit(Box::new(NaiveForecaster::new()), &frame, cfg).expect("fit");
    predictor.snapshot().expect("snapshot")
}

/// State-bearing frames (Checkpoint/Restore/Drain replies) round-trip
/// real fitted predictor states bit-exactly.
#[test]
fn state_frames_roundtrip() {
    let entities = vec![
        ("c-001".to_string(), fitted_state(0.0)),
        ("c-002".to_string(), fitted_state(1.3)),
    ];
    for msg in [
        Message::CheckpointOk {
            entities: entities.clone(),
        },
        Message::Restore {
            entities: entities.clone(),
        },
        Message::DrainOk { entities },
    ] {
        assert_roundtrip(11, &msg);
    }
}

/// Truncating a state-bearing frame at every byte boundary stays typed.
#[test]
fn state_frame_truncation_typed() {
    let bytes = encode_frame(
        2,
        &Message::CheckpointOk {
            entities: vec![("c-7".to_string(), fitted_state(0.5))],
        },
    )
    .expect("encode");
    for cut in 0..bytes.len() {
        let err = decode_frame(&bytes[..cut]).expect_err("must fail");
        assert!(
            matches!(err, WireError::Truncated { .. }),
            "cut {cut}: {err:?}"
        );
    }
}
