//! Codec edge cases the happy path never exercises: frames split at
//! every byte boundary, pipelined back-to-back frames in a single read,
//! and duplicate-request-id replay hitting the node's dedup cache.

use std::io::{self, Cursor, Read};
use std::time::Duration;

use net::{
    encode_frame, read_frame, IngestEntry, Message, NodeClient, NodeConfig, NodeServer, SeedSpec,
    SimNet, IDEMPOTENT_ID_BASE,
};
use obs::MonotonicClock;
use serve::{PredictionService, ServiceConfig};

/// A reader that serves a frame as a fixed sequence of parts, at most
/// one part per `read` call — the worst-case fragmentation a stream
/// transport is allowed to produce.
struct SplitReader {
    parts: Vec<Vec<u8>>,
    idx: usize,
    off: usize,
}

impl SplitReader {
    fn new(parts: Vec<Vec<u8>>) -> Self {
        SplitReader {
            parts,
            idx: 0,
            off: 0,
        }
    }
}

impl Read for SplitReader {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        while self.idx < self.parts.len() {
            let part = &self.parts[self.idx];
            if self.off >= part.len() {
                self.idx += 1;
                self.off = 0;
                continue;
            }
            let n = (part.len() - self.off).min(buf.len());
            buf[..n].copy_from_slice(&part[self.off..self.off + n]);
            self.off += n;
            return Ok(n);
        }
        Ok(0)
    }
}

fn sample_message() -> Message {
    Message::Ingest {
        entries: vec![IngestEntry {
            entity: "edge-entity".into(),
            seq: Some(42),
            values: vec![0.25, 0.5, 0.75],
        }],
    }
}

/// Decoding must survive the frame arriving split at *every* possible
/// byte boundary (header/payload straddles included).
#[test]
fn frames_split_at_every_byte_boundary_decode() {
    let bytes = encode_frame(901, &sample_message()).expect("encode");
    for split in 1..bytes.len() {
        let parts = vec![bytes[..split].to_vec(), bytes[split..].to_vec()];
        let mut r = SplitReader::new(parts);
        let (id, msg) =
            read_frame(&mut r).unwrap_or_else(|e| panic!("split at byte {split} failed: {e}"));
        assert_eq!(id, 901);
        assert!(matches!(msg, Message::Ingest { .. }), "split {split}");
    }
    // Absolute worst case: one byte per read.
    let parts: Vec<Vec<u8>> = bytes.iter().map(|b| vec![*b]).collect();
    let mut r = SplitReader::new(parts);
    let (id, _) = read_frame(&mut r).expect("byte-at-a-time decode");
    assert_eq!(id, 901);
}

/// Several frames concatenated back to back (as a pipelining client
/// would send them) must decode one after another from the same stream,
/// ids intact and in order.
#[test]
fn pipelined_back_to_back_frames_decode_in_order() {
    let mut stream = Vec::new();
    for id in 1..=5u64 {
        stream.extend_from_slice(&encode_frame(id, &Message::Health).expect("encode"));
    }
    stream.extend_from_slice(&encode_frame(6, &sample_message()).expect("encode"));
    let mut r = Cursor::new(stream);
    for want in 1..=5u64 {
        let (id, msg) = read_frame(&mut r).expect("pipelined frame");
        assert_eq!(id, want);
        assert!(matches!(msg, Message::Health));
    }
    let (id, msg) = read_frame(&mut r).expect("final frame");
    assert_eq!(id, 6);
    assert!(matches!(msg, Message::Ingest { .. }));
}

fn start_sim_node(net: &SimNet, name: &str) -> NodeServer {
    let service = PredictionService::new(ServiceConfig {
        shards: 1,
        refit_every: 0,
        score_on_ingest: false,
        clock: MonotonicClock::shared(),
        ..ServiceConfig::default()
    })
    .expect("service");
    NodeServer::start_with(
        NodeConfig {
            listen: name.to_string(),
            idle_poll: Duration::from_millis(5),
            ..NodeConfig::default()
        },
        service,
        net.transport(name),
    )
    .expect("node")
}

/// Replaying a mutating request under the same idempotent id must hit
/// the node's dedup cache: the sample applies once, the second reply
/// comes from cache, and the dedup-hit counter says so.
#[test]
fn duplicate_request_id_replay_hits_node_dedup() {
    let net = SimNet::new(21);
    let node = start_sim_node(&net, "edge-node");
    let tp = net.transport("edge-client");
    let mut client = NodeClient::connect_with(tp.as_ref(), "edge-node", Duration::from_secs(1))
        .expect("connect");
    let timeout = Duration::from_secs(2);
    // Seed the entity first (under its own idempotent id).
    let seed_id = IDEMPOTENT_ID_BASE + 1;
    let reply = client
        .request_with_id(
            seed_id,
            &Message::Seed(SeedSpec {
                ids: vec!["edge-entity".into()],
                seed: 3,
                bootstrap_len: 32,
                window: 8,
            }),
            timeout,
        )
        .expect("seed");
    assert!(matches!(reply, Message::SeedOk { installed: 1, .. }));
    let ingest_id = IDEMPOTENT_ID_BASE + 2;
    let msg = sample_message();
    let msg = match msg {
        Message::Ingest { mut entries } => {
            entries[0].values = vec![0.5];
            Message::Ingest { entries }
        }
        other => other,
    };
    let first = client
        .request_with_id(ingest_id, &msg, timeout)
        .expect("first ingest");
    let replay = client
        .request_with_id(ingest_id, &msg, timeout)
        .expect("replayed ingest");
    // Both replies acknowledge, but the node executed once.
    assert!(matches!(first, Message::IngestOk { accepted: 1, .. }));
    assert!(matches!(replay, Message::IngestOk { accepted: 1, .. }));
    assert_eq!(node.dedup_hits(), 1, "replay must be answered from cache");
    let ingested = node.with_service(|s| {
        s.flush().expect("flush");
        s.stats().total_ingested()
    });
    assert_eq!(ingested, 1, "the sample must apply exactly once");
    // A *fresh* id with the same payload is a new request and executes.
    let second = client
        .request_with_id(IDEMPOTENT_ID_BASE + 3, &msg, timeout)
        .expect("new id");
    assert!(matches!(second, Message::IngestOk { accepted: 1, .. }));
    assert_eq!(node.dedup_hits(), 1);
}

/// Two connections racing the same request id must still produce an
/// exactly-once effect: the second execution waits for the first and
/// answers from its reply (the in-flight guard in the node).
#[test]
fn concurrent_same_id_requests_apply_once() {
    let net = SimNet::new(22);
    let node = start_sim_node(&net, "race-node");
    let timeout = Duration::from_secs(2);
    // Seed one entity.
    let tp = net.transport("race-client");
    let mut seeder = NodeClient::connect_with(tp.as_ref(), "race-node", Duration::from_secs(1))
        .expect("connect");
    seeder
        .request_with_id(
            IDEMPOTENT_ID_BASE + 10,
            &Message::Seed(SeedSpec {
                ids: vec!["edge-entity".into()],
                seed: 4,
                bootstrap_len: 32,
                window: 8,
            }),
            timeout,
        )
        .expect("seed");
    let race_id = IDEMPOTENT_ID_BASE + 11;
    let mut workers = Vec::new();
    for w in 0..4 {
        let tp = net.transport(&format!("race-client-{w}"));
        workers.push(std::thread::spawn(move || {
            let mut c = NodeClient::connect_with(tp.as_ref(), "race-node", Duration::from_secs(1))
                .expect("connect");
            c.request_with_id(race_id, &sample_message_single(), timeout)
                .expect("raced request")
        }));
    }
    for w in workers {
        let reply = w.join().expect("worker");
        assert!(matches!(reply, Message::IngestOk { accepted: 1, .. }));
    }
    let ingested = node.with_service(|s| {
        s.flush().expect("flush");
        s.stats().total_ingested()
    });
    assert_eq!(ingested, 1, "four racing replays must apply exactly once");
    assert_eq!(node.dedup_hits(), 3);
}

fn sample_message_single() -> Message {
    Message::Ingest {
        entries: vec![IngestEntry {
            entity: "edge-entity".into(),
            seq: None,
            values: vec![0.5],
        }],
    }
}
