//! Fault-injection tests for the distributed serving tier: a small
//! in-process cluster loses a node mid-traffic and the router must fail
//! over with zero lost acknowledged ingests and bounded forecast blips.

use std::collections::HashMap;
use std::time::Duration;

use net::{FleetRouter, NodeConfig, NodeServer, NodeStatus, RouterConfig};
use obs::EventKind;
use serve::{FaultPlan, PredictionService, ServiceConfig};

fn node_service(faults: Option<FaultPlan>) -> PredictionService {
    PredictionService::new(ServiceConfig {
        shards: 2,
        queue_capacity: 512,
        refit_workers: 0,
        refit_every: 0,
        score_on_ingest: false,
        faults,
        ..Default::default()
    })
    .expect("service starts")
}

fn start_node(faults: Option<FaultPlan>) -> NodeServer {
    NodeServer::start(NodeConfig::default(), node_service(faults)).expect("node starts")
}

fn router_config(replay_window: usize, request_timeout: Duration) -> RouterConfig {
    RouterConfig {
        replay_window,
        request_timeout,
        bulk_timeout: Duration::from_secs(60),
        probe_timeout: Duration::from_millis(500),
        bootstrap_len: 64,
        window: 12,
        seed: 99,
        ..Default::default()
    }
}

/// Per-entity, per-round sample value — single column to match the
/// seeded bootstrap arity.
fn sample(idx: usize, round: usize) -> Vec<f32> {
    vec![0.30 + 0.001 * (idx % 7) as f32 + 0.02 * round as f32]
}

/// Killing a node abruptly mid-traffic: the router marks it down,
/// re-routes its entities to ring successors (deterministic re-seed plus
/// replay of every acknowledged sample), and not one acknowledged ingest
/// is lost — post-failover forecasts equal the last acknowledged value.
#[test]
fn abrupt_node_kill_loses_no_acked_ingests() {
    let mut nodes = [start_node(None), start_node(None), start_node(None)];
    let mut router = FleetRouter::new(router_config(40, Duration::from_secs(2)));
    for (i, n) in nodes.iter().enumerate() {
        router
            .add_node(&format!("n{i}"), &n.addr().to_string())
            .expect("node joins");
    }

    let ids: Vec<String> = (0..60).map(|i| format!("e-{i:03}")).collect();
    let installed = router.seed_entities(&ids).expect("seed succeeds");
    assert_eq!(installed, 60);

    let rounds = 10usize;
    let kill_at = 4usize;
    let mut acked = 0u64;
    let mut saw_failover = false;
    let mut last_acked: HashMap<String, f32> = HashMap::new();
    for round in 0..rounds {
        if round == kill_at {
            // Abrupt kill: connection handlers stop, sockets die. The
            // node's process-local state is gone from the fleet's view.
            nodes[2].shutdown();
            nodes[2].join();
        }
        let batch: Vec<(String, Vec<f32>)> = ids
            .iter()
            .enumerate()
            .map(|(i, id)| (id.clone(), sample(i, round)))
            .collect();
        let report = router.ingest_batch(&batch).expect("batch routes");
        assert!(report.errors.is_empty(), "hard errors: {:?}", report.errors);
        acked += report.accepted;
        for (i, id) in ids.iter().enumerate() {
            last_acked.insert(id.clone(), sample(i, round)[0]);
        }
        if round >= kill_at && report.failed_over > 0 {
            saw_failover = true;
        }
    }

    // Zero lost acknowledged ingests: every sample of every round acked.
    assert_eq!(acked, (rounds * ids.len()) as u64);
    assert!(saw_failover, "the kill must surface as a failover");

    // The death is journaled and visible in probes and counters.
    assert!(
        router.journal().count(EventKind::NodeDown) >= 1,
        "node death must be journaled"
    );
    router.probe();
    assert_eq!(router.node_status("n2"), Some(NodeStatus::Down));
    assert!(router.registry().counter("router_failed_over").get() > 0);

    // Bounded blip: every forecast exists, is finite, and equals the
    // last acknowledged sample (naive persistence over replayed state).
    let results = router.forecast_batch(&ids);
    assert_eq!(results.len(), ids.len());
    for (id, result) in results {
        let f = result.expect("forecast after failover")[0];
        let expect = last_acked[&id];
        assert!(f.is_finite(), "{id}: non-finite forecast");
        assert!(
            (f - expect).abs() < 2e-2,
            "{id}: forecast {f} strayed from last acked {expect}"
        );
    }
    router.shutdown_fleet();
}

/// A node wedged by the existing FaultPlan machinery (stalled shards)
/// times out on forecasts; the router marks it down, heals its entities
/// onto live nodes, and every forecast still comes back.
#[test]
fn stalled_node_times_out_and_fails_over() {
    // Both shards of the victim stall long past the request timeout.
    let plan = FaultPlan::seeded(7)
        .stall_shard(0, Duration::from_millis(400), 1000)
        .stall_shard(1, Duration::from_millis(400), 1000);
    let nodes = [start_node(None), start_node(None), start_node(Some(plan))];
    let mut router = FleetRouter::new(router_config(16, Duration::from_millis(100)));
    for (i, n) in nodes.iter().enumerate() {
        router
            .add_node(&format!("n{i}"), &n.addr().to_string())
            .expect("node joins");
    }

    let ids: Vec<String> = (0..24).map(|i| format!("s-{i:02}")).collect();
    router.seed_entities(&ids).expect("seed succeeds");

    // One ingest round; ingest acks are queue-level so the stall does
    // not bite yet, but the samples land behind the stalled messages.
    let batch: Vec<(String, Vec<f32>)> = ids
        .iter()
        .enumerate()
        .map(|(i, id)| (id.clone(), sample(i, 0)))
        .collect();
    let report = router.ingest_batch(&batch).expect("batch routes");
    assert!(report.errors.is_empty());

    // Forecasts wait on shard processing: the stalled node times out.
    let results = router.forecast_batch(&ids);
    assert_eq!(results.len(), ids.len());
    for (id, result) in results {
        let f = result.expect("forecast heals onto live nodes");
        assert!(f[0].is_finite(), "{id}: non-finite forecast");
    }
    assert_eq!(router.node_status("n2"), Some(NodeStatus::Down));
    assert!(router.journal().count(EventKind::NodeDown) >= 1);
    assert!(router.registry().counter("router_failed_over").get() > 0);
    assert!(router.registry().counter("router_healed").get() > 0);
}
