//! Deterministic in-process fleet simulator with seeded network fault
//! injection and invariant checking.
//!
//! A [`SimNet`] is a whole network in one process: endpoints are plain
//! names (`"router"`, `"n0"`), connections are in-memory byte pipes, and
//! time is an [`obs::SimClock`] that only moves when the simulator (or a
//! backoff sleep) advances it. [`SimTransport`] plugs into the same
//! [`crate::transport::Transport`] seam the production TCP transport
//! implements, so an entire fleet — [`crate::router::FleetRouter`] plus
//! N [`crate::node::NodeServer`]s — runs unmodified over the simulated
//! network.
//!
//! Every frame crossing a link consults a seeded fault schedule
//! ([`FaultConfig`]): frames can be dropped, duplicated, reordered,
//! trickled through one byte at a time, or answered with a mid-frame
//! connection reset; links can be partitioned symmetrically or one way
//! (the asymmetric case — requests delivered, replies lost — is what
//! forces executed-but-unacknowledged retries through the node dedup
//! cache). Decisions derive from `splitmix64(seed ^ link ^ connection ^
//! frame)`, so the same seed replays the same chaos, byte for byte.
//!
//! [`run_fleet_chaos`] wires a fleet over a [`SimNet`], drives seeded
//! rounds of ingests, probes and forecasts under partitions and frame
//! faults, heals the network, and then checks four fleet invariants
//! ([`check_fleet_invariants`]) against a sim-side oracle of
//! acknowledged samples:
//!
//! 1. **No acked ingest is lost** — every acknowledged sample appears,
//!    in order, in its entity's live owner history.
//! 2. **No sample applies twice** — at-least-once delivery with
//!    request-id dedup yields an exactly-once effect.
//! 3. **Single live owner** — after healing, every entity converges to
//!    exactly one live holder, the ring owner.
//! 4. **No phantom success** — the router never acknowledges more
//!    forecasts than the nodes actually executed.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::io::{self, Read, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use obs::{Clock, EventKind, Journal, SimClock};
use rptcn::HashRing;
use serve::{entity_hash, IngestGuard, PredictionService, ServiceConfig};

use crate::error::NetError;
use crate::frame::{parse_header, HEADER_LEN};
use crate::node::{NodeConfig, NodeServer};
use crate::router::{FleetRouter, NodeStatus, RouterConfig};
use crate::sync::{lock_recover, wait_timeout_recover};
use crate::transport::{Connection, Listener, SharedTransport, Transport};

/// Granularity of blocking waits inside the simulator (accept queues and
/// pipe reads re-check their predicate this often).
const POLL: Duration = Duration::from_millis(10);

/// splitmix64: the standard 64-bit finalizer-based PRNG step. One call
/// turns any (seed ^ context) value into uniform bits.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

// ---------------------------------------------------------------------------
// Fault schedule
// ---------------------------------------------------------------------------

/// Per-link fault probabilities and latency for a [`SimNet`].
///
/// Probabilities are per-mille (0–1000) and evaluated **per frame** from
/// the deterministic stream; at most one fault fires per frame, in
/// priority order reset > drop > duplicate > reorder > trickle. The
/// default is a quiet network: no faults, zero latency.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultConfig {
    /// Per-mille chance a frame is silently dropped.
    pub drop_per_mille: u16,
    /// Per-mille chance a frame is delivered twice back to back.
    pub duplicate_per_mille: u16,
    /// Per-mille chance a frame is delivered behind the frame queued
    /// after it (a no-op when nothing else is in flight).
    pub reorder_per_mille: u16,
    /// Per-mille chance a frame arrives one byte per read (exercises
    /// every partial-read path in the codec).
    pub trickle_per_mille: u16,
    /// Per-mille chance the connection is reset mid-frame: the peer sees
    /// half the frame then EOF, the writer sees a connection reset.
    pub reset_per_mille: u16,
    /// Fixed virtual latency added per delivered frame (advances the
    /// [`SimClock`], costs no wall time).
    pub latency: Duration,
    /// Upper bound of additional per-frame virtual jitter.
    pub jitter: Duration,
}

impl FaultConfig {
    /// A moderately hostile network: a few percent of frames dropped,
    /// duplicated, reordered, trickled or reset, with sub-millisecond
    /// virtual latency. Hostile enough to exercise every recovery path,
    /// gentle enough that retry budgets usually win.
    pub fn chaos() -> Self {
        FaultConfig {
            drop_per_mille: 35,
            duplicate_per_mille: 35,
            reorder_per_mille: 25,
            trickle_per_mille: 25,
            reset_per_mille: 12,
            latency: Duration::from_micros(200),
            jitter: Duration::from_micros(800),
        }
    }
}

/// Internal atomic tallies behind [`FaultStats`].
#[derive(Debug, Default)]
struct FaultCounters {
    delivered: AtomicU64,
    dropped: AtomicU64,
    duplicated: AtomicU64,
    reordered: AtomicU64,
    trickled: AtomicU64,
    reset: AtomicU64,
    partition_drops: AtomicU64,
    connects_refused: AtomicU64,
}

/// Snapshot of what a [`SimNet`] did to the traffic that crossed it.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Frames delivered intact (including the copies of duplicates).
    pub delivered: u64,
    /// Frames dropped by the fault schedule.
    pub dropped: u64,
    /// Frames delivered twice.
    pub duplicated: u64,
    /// Frames delivered behind a later frame.
    pub reordered: u64,
    /// Frames delivered one byte at a time.
    pub trickled: u64,
    /// Connections reset mid-frame.
    pub reset: u64,
    /// Frames swallowed by an active partition.
    pub partition_drops: u64,
    /// Connection attempts refused by a partition or missing listener.
    pub connects_refused: u64,
}

impl FaultStats {
    /// Total frames the schedule interfered with (excluding latency).
    pub fn total_faults(&self) -> u64 {
        self.dropped + self.duplicated + self.reordered + self.trickled + self.reset
    }
}

// ---------------------------------------------------------------------------
// Pipes: the in-memory byte streams under every simulated connection
// ---------------------------------------------------------------------------

/// One direction of a simulated connection. Writers push whole segments;
/// readers drain **at most one segment per call**, so a frame trickled
/// as 1-byte segments exercises every partial-read loop downstream.
struct PipeBuf {
    segments: VecDeque<Vec<u8>>,
    cursor: usize,
    closed: bool,
}

struct Pipe {
    state: Mutex<PipeBuf>,
    cv: Condvar,
}

impl Pipe {
    fn new() -> Arc<Pipe> {
        Arc::new(Pipe {
            state: Mutex::new(PipeBuf {
                segments: VecDeque::new(),
                cursor: 0,
                closed: false,
            }),
            cv: Condvar::new(),
        })
    }

    fn push(&self, bytes: Vec<u8>) -> io::Result<()> {
        if bytes.is_empty() {
            return Ok(());
        }
        let mut st = lock_recover(&self.state);
        if st.closed {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "sim: peer closed",
            ));
        }
        st.segments.push_back(bytes);
        self.cv.notify_all();
        Ok(())
    }

    /// Queue `bytes` *before* the most recently queued segment — the
    /// reorder fault. Falls back to an ordinary push when the queue is
    /// empty (nothing to overtake).
    fn push_before_last(&self, bytes: Vec<u8>) -> io::Result<()> {
        if bytes.is_empty() {
            return Ok(());
        }
        let mut st = lock_recover(&self.state);
        if st.closed {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "sim: peer closed",
            ));
        }
        let n = st.segments.len();
        if n == 0 {
            st.segments.push_back(bytes);
        } else {
            // Before the last segment, but never before one the reader
            // has already started consuming.
            let at = (n - 1).max(usize::from(st.cursor > 0).min(n));
            st.segments.insert(at, bytes);
        }
        self.cv.notify_all();
        Ok(())
    }

    fn close(&self) {
        let mut st = lock_recover(&self.state);
        st.closed = true;
        self.cv.notify_all();
    }

    /// Blocking read honoring an optional timeout; returns `Ok(0)` at
    /// EOF (closed and drained), `WouldBlock` on timeout.
    fn read(&self, buf: &mut [u8], timeout: Option<Duration>) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        let mut waited = Duration::ZERO;
        let mut st = lock_recover(&self.state);
        loop {
            if let Some(front) = st.segments.front() {
                let start = st.cursor;
                let n = (front.len() - start).min(buf.len());
                buf[..n].copy_from_slice(&front[start..start + n]);
                if start + n >= front.len() {
                    st.segments.pop_front();
                    st.cursor = 0;
                } else {
                    st.cursor = start + n;
                }
                return Ok(n);
            }
            if st.closed {
                return Ok(0);
            }
            let chunk = match timeout {
                Some(t) => {
                    if waited >= t {
                        return Err(io::Error::new(
                            io::ErrorKind::WouldBlock,
                            "sim: read timed out",
                        ));
                    }
                    POLL.min(t - waited)
                }
                None => POLL,
            };
            let (guard, _) = wait_timeout_recover(&self.cv, st, chunk);
            st = guard;
            waited += chunk;
        }
    }
}

// ---------------------------------------------------------------------------
// The network
// ---------------------------------------------------------------------------

/// One registered listening endpoint.
struct ListenerEntry {
    open: bool,
    queue: VecDeque<SimConn>,
}

/// Mutable network state: who listens, which links are blocked, and the
/// per-link connection counter feeding the deterministic fault stream.
struct NetState {
    faults: FaultConfig,
    listeners: BTreeMap<String, ListenerEntry>,
    blocked: BTreeSet<(String, String)>,
    conn_seq: BTreeMap<(String, String), u64>,
}

struct SimInner {
    seed: u64,
    clock: SimClock,
    journal: Journal,
    counters: FaultCounters,
    state: Mutex<NetState>,
    accept_cv: Condvar,
}

/// A deterministic in-process network shared by every endpoint of a
/// simulated fleet. Cloning shares the network.
#[derive(Clone)]
pub struct SimNet {
    inner: Arc<SimInner>,
}

impl SimNet {
    /// A quiet network (no faults, no partitions) seeded for later
    /// chaos: enable faults with [`SimNet::set_faults`] once the fleet
    /// is wired up, so bootstrap traffic stays deterministic.
    pub fn new(seed: u64) -> SimNet {
        SimNet {
            inner: Arc::new(SimInner {
                seed,
                clock: SimClock::new(),
                journal: Journal::new(4096),
                counters: FaultCounters::default(),
                state: Mutex::new(NetState {
                    faults: FaultConfig::default(),
                    listeners: BTreeMap::new(),
                    blocked: BTreeSet::new(),
                    conn_seq: BTreeMap::new(),
                }),
                accept_cv: Condvar::new(),
            }),
        }
    }

    /// A transport rooted at the endpoint name `local` — the name other
    /// endpoints see as the origin of its connections, and the name
    /// partitions match against.
    pub fn transport(&self, local: &str) -> SharedTransport {
        Arc::new(SimTransport {
            net: self.clone(),
            local: local.to_string(),
        })
    }

    /// The virtual clock every endpoint of this network should share.
    pub fn clock(&self) -> SimClock {
        self.inner.clock.clone()
    }

    /// The network's fault/partition event journal.
    pub fn journal(&self) -> &Journal {
        &self.inner.journal
    }

    /// Replace the fault schedule (typically: bring a fleet up quiet,
    /// then turn chaos on).
    pub fn set_faults(&self, faults: FaultConfig) {
        lock_recover(&self.inner.state).faults = faults;
    }

    /// The current fault schedule.
    pub fn faults(&self) -> FaultConfig {
        lock_recover(&self.inner.state).faults.clone()
    }

    /// Snapshot of everything the network has done to traffic so far.
    pub fn stats(&self) -> FaultStats {
        let c = &self.inner.counters;
        FaultStats {
            delivered: c.delivered.load(Ordering::Relaxed),
            dropped: c.dropped.load(Ordering::Relaxed),
            duplicated: c.duplicated.load(Ordering::Relaxed),
            reordered: c.reordered.load(Ordering::Relaxed),
            trickled: c.trickled.load(Ordering::Relaxed),
            reset: c.reset.load(Ordering::Relaxed),
            partition_drops: c.partition_drops.load(Ordering::Relaxed),
            connects_refused: c.connects_refused.load(Ordering::Relaxed),
        }
    }

    /// Symmetric partition: block both directions between `a` and `b`.
    pub fn partition(&self, a: &str, b: &str) {
        let mut st = lock_recover(&self.inner.state);
        st.blocked.insert((a.to_string(), b.to_string()));
        st.blocked.insert((b.to_string(), a.to_string()));
        drop(st);
        self.emit(EventKind::NetPartition, format!("partition {a} <-/-> {b}"));
    }

    /// Asymmetric partition: frames from `from` to `to` vanish, the
    /// reverse direction still works. With `to = "router"` this is the
    /// reply-blackhole case: nodes execute requests whose
    /// acknowledgements never arrive.
    pub fn partition_one_way(&self, from: &str, to: &str) {
        lock_recover(&self.inner.state)
            .blocked
            .insert((from.to_string(), to.to_string()));
        self.emit(
            EventKind::NetPartition,
            format!("partition {from} -/-> {to} (one way)"),
        );
    }

    /// Remove any partition between `a` and `b` (both directions).
    pub fn heal(&self, a: &str, b: &str) {
        let mut st = lock_recover(&self.inner.state);
        let removed = st.blocked.remove(&(a.to_string(), b.to_string()))
            | st.blocked.remove(&(b.to_string(), a.to_string()));
        drop(st);
        if removed {
            self.emit(EventKind::NetHealed, format!("healed {a} <--> {b}"));
        }
    }

    /// Remove every partition.
    pub fn heal_all(&self) {
        let mut st = lock_recover(&self.inner.state);
        let n = st.blocked.len();
        st.blocked.clear();
        drop(st);
        if n > 0 {
            self.emit(EventKind::NetHealed, format!("healed all ({n} links)"));
        }
    }

    /// Whether frames from `from` to `to` are currently blocked.
    pub fn is_blocked(&self, from: &str, to: &str) -> bool {
        lock_recover(&self.inner.state)
            .blocked
            .iter()
            .any(|(a, b)| a == from && b == to)
    }

    fn emit(&self, kind: EventKind, detail: String) {
        self.inner
            .journal
            .emit(self.inner.clock.now_nanos(), kind, None, None, detail);
    }
}

impl std::fmt::Debug for SimNet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimNet")
            .field("seed", &self.inner.seed)
            .field("stats", &self.stats())
            .finish()
    }
}

/// A [`Transport`] over a [`SimNet`], rooted at one endpoint name.
pub struct SimTransport {
    net: SimNet,
    local: String,
}

impl Transport for SimTransport {
    fn connect(&self, addr: &str, _timeout: Duration) -> Result<Box<dyn Connection>, NetError> {
        let inner = &self.net.inner;
        let mut st = lock_recover(&inner.state);
        // A partition on the forward path refuses the handshake outright;
        // a reply-only blackhole lets the connection open and starves it
        // of replies (the asymmetric case that exercises retry dedup).
        if st
            .blocked
            .iter()
            .any(|(a, b)| a == &self.local && b == addr)
        {
            inner
                .counters
                .connects_refused
                .fetch_add(1, Ordering::Relaxed);
            return Err(NetError::Io(format!(
                "sim: connect {} -> {addr} refused (partitioned)",
                self.local
            )));
        }
        let listening = st.listeners.get(addr).is_some_and(|l| l.open);
        if !listening {
            inner
                .counters
                .connects_refused
                .fetch_add(1, Ordering::Relaxed);
            return Err(NetError::Io(format!(
                "sim: connect {} -> {addr} refused (no listener)",
                self.local
            )));
        }
        let key = (self.local.clone(), addr.to_string());
        let seq = st.conn_seq.entry(key).or_insert(0);
        let conn_index = *seq;
        *seq += 1;
        let c2s = Pipe::new();
        let s2c = Pipe::new();
        let client = SimConn::new(
            self.net.clone(),
            self.local.clone(),
            addr.to_string(),
            conn_index,
            s2c.clone(),
            c2s.clone(),
        );
        let server = SimConn::new(
            self.net.clone(),
            addr.to_string(),
            self.local.clone(),
            conn_index,
            c2s,
            s2c,
        );
        if let Some(entry) = st.listeners.get_mut(addr) {
            entry.queue.push_back(server);
        }
        drop(st);
        inner.accept_cv.notify_all();
        Ok(Box::new(client))
    }

    fn bind(&self, addr: &str) -> Result<Box<dyn Listener>, NetError> {
        let mut st = lock_recover(&self.net.inner.state);
        if st.listeners.get(addr).is_some_and(|l| l.open) {
            return Err(NetError::Io(format!("sim: {addr} already bound")));
        }
        st.listeners.insert(
            addr.to_string(),
            ListenerEntry {
                open: true,
                queue: VecDeque::new(),
            },
        );
        Ok(Box::new(SimListener {
            net: self.net.clone(),
            addr: addr.to_string(),
        }))
    }
}

/// A bound simulated endpoint. Dropping it unregisters the name; later
/// connects are refused.
struct SimListener {
    net: SimNet,
    addr: String,
}

impl Listener for SimListener {
    fn accept(&self) -> io::Result<Box<dyn Connection>> {
        let inner = &self.net.inner;
        let mut st = lock_recover(&inner.state);
        loop {
            match st.listeners.get_mut(&self.addr) {
                Some(entry) if entry.open => {
                    if let Some(conn) = entry.queue.pop_front() {
                        return Ok(Box::new(conn));
                    }
                }
                _ => {
                    return Err(io::Error::new(
                        io::ErrorKind::NotConnected,
                        "sim: listener closed",
                    ));
                }
            }
            let (guard, _) = wait_timeout_recover(&inner.accept_cv, st, POLL);
            st = guard;
        }
    }

    fn local_addr(&self) -> String {
        self.addr.clone()
    }
}

impl Drop for SimListener {
    fn drop(&mut self) {
        let mut st = lock_recover(&self.net.inner.state);
        if let Some(entry) = st.listeners.get_mut(&self.addr) {
            entry.open = false;
            entry.queue.clear();
        }
        drop(st);
        self.net.inner.accept_cv.notify_all();
    }
}

/// One endpoint of a simulated connection. Writes are re-framed on the
/// wire-protocol header so faults act on whole frames; reads drain the
/// incoming pipe one segment at a time.
struct SimConn {
    net: SimNet,
    from: String,
    to: String,
    link_hash: u64,
    conn_index: u64,
    frame_index: u64,
    pending: Vec<u8>,
    rx: Arc<Pipe>,
    tx: Arc<Pipe>,
    read_timeout: Option<Duration>,
}

impl SimConn {
    fn new(
        net: SimNet,
        from: String,
        to: String,
        conn_index: u64,
        rx: Arc<Pipe>,
        tx: Arc<Pipe>,
    ) -> SimConn {
        let link_hash = entity_hash(&from) ^ entity_hash(&to).rotate_left(17);
        SimConn {
            net,
            from,
            to,
            link_hash,
            conn_index,
            frame_index: 0,
            pending: Vec::new(),
            rx,
            tx,
            read_timeout: None,
        }
    }

    /// Extract complete protocol frames from the pending buffer and put
    /// each through fault delivery. Bytes that do not parse as a frame
    /// header are passed through untouched (the simulator stays usable
    /// under non-protocol traffic, just without per-frame faults).
    fn pump(&mut self) -> io::Result<()> {
        loop {
            if self.pending.len() < HEADER_LEN {
                return Ok(());
            }
            let mut header = [0u8; HEADER_LEN];
            header.copy_from_slice(&self.pending[..HEADER_LEN]);
            let total = match parse_header(&header) {
                Ok(h) => HEADER_LEN + h.payload_len as usize,
                Err(_) => {
                    let bytes = std::mem::take(&mut self.pending);
                    self.net
                        .inner
                        .counters
                        .delivered
                        .fetch_add(1, Ordering::Relaxed);
                    return self.tx.push(bytes);
                }
            };
            if self.pending.len() < total {
                return Ok(());
            }
            let frame: Vec<u8> = self.pending.drain(..total).collect();
            self.deliver(frame)?;
        }
    }

    /// Deliver one whole frame across the link: partition check, virtual
    /// latency, then at most one fault (reset > drop > duplicate >
    /// reorder > trickle) decided by the deterministic stream.
    fn deliver(&mut self, frame: Vec<u8>) -> io::Result<()> {
        let inner = &self.net.inner;
        let idx = self.frame_index;
        self.frame_index += 1;
        let (blocked, faults) = {
            let st = lock_recover(&inner.state);
            (
                st.blocked
                    .iter()
                    .any(|(a, b)| a == &self.from && b == &self.to),
                st.faults.clone(),
            )
        };
        if blocked {
            inner
                .counters
                .partition_drops
                .fetch_add(1, Ordering::Relaxed);
            self.fault_event(format!(
                "partition swallowed frame {idx} {} -> {}",
                self.from, self.to
            ));
            // A blackhole, not an error: the writer finds out by timeout.
            return Ok(());
        }
        let h = splitmix64(
            inner.seed
                ^ self.link_hash
                ^ self.conn_index.wrapping_mul(0xD1B5_4A32_D192_ED03)
                ^ idx.wrapping_mul(0x2545_F491_4F6C_DD1D),
        );
        let lat = faults.latency.as_nanos() as u64;
        let jit = faults.jitter.as_nanos() as u64;
        let extra = if jit > 0 { (h >> 40) % (jit + 1) } else { 0 };
        if lat + extra > 0 {
            inner.clock.advance_nanos(lat + extra);
        }
        let roll = |lane: u32| ((h >> (lane * 10)) % 1000) as u16;
        if roll(4) < faults.reset_per_mille {
            inner.counters.reset.fetch_add(1, Ordering::Relaxed);
            self.fault_event(format!(
                "reset {} -> {} mid-frame {idx}",
                self.from, self.to
            ));
            let half = frame.len() / 2;
            let _ = self.tx.push(frame[..half].to_vec());
            self.tx.close();
            self.rx.close();
            return Err(io::Error::new(
                io::ErrorKind::ConnectionReset,
                "sim: injected connection reset",
            ));
        }
        if roll(0) < faults.drop_per_mille {
            inner.counters.dropped.fetch_add(1, Ordering::Relaxed);
            self.fault_event(format!("dropped frame {idx} {} -> {}", self.from, self.to));
            return Ok(());
        }
        if roll(1) < faults.duplicate_per_mille {
            inner.counters.duplicated.fetch_add(1, Ordering::Relaxed);
            inner.counters.delivered.fetch_add(2, Ordering::Relaxed);
            self.fault_event(format!(
                "duplicated frame {idx} {} -> {}",
                self.from, self.to
            ));
            self.tx.push(frame.clone())?;
            return self.tx.push(frame);
        }
        if roll(2) < faults.reorder_per_mille {
            inner.counters.reordered.fetch_add(1, Ordering::Relaxed);
            inner.counters.delivered.fetch_add(1, Ordering::Relaxed);
            self.fault_event(format!(
                "reordered frame {idx} {} -> {}",
                self.from, self.to
            ));
            return self.tx.push_before_last(frame);
        }
        if roll(3) < faults.trickle_per_mille {
            inner.counters.trickled.fetch_add(1, Ordering::Relaxed);
            inner.counters.delivered.fetch_add(1, Ordering::Relaxed);
            self.fault_event(format!(
                "trickled frame {idx} {} -> {} ({} bytes)",
                self.from,
                self.to,
                frame.len()
            ));
            for b in frame {
                self.tx.push(vec![b])?;
            }
            return Ok(());
        }
        inner.counters.delivered.fetch_add(1, Ordering::Relaxed);
        self.tx.push(frame)
    }

    fn fault_event(&self, detail: String) {
        let inner = &self.net.inner;
        inner.journal.emit(
            inner.clock.now_nanos(),
            EventKind::NetFault,
            None,
            None,
            detail,
        );
    }
}

impl Read for SimConn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.rx.read(buf, self.read_timeout)
    }
}

impl Write for SimConn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.pending.extend_from_slice(buf);
        self.pump()?;
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl Connection for SimConn {
    fn set_read_timeout(&mut self, d: Option<Duration>) -> io::Result<()> {
        self.read_timeout = d;
        Ok(())
    }

    fn set_write_timeout(&mut self, _d: Option<Duration>) -> io::Result<()> {
        // Simulated writes never block.
        Ok(())
    }

    fn peer(&self) -> String {
        format!("sim:{}", self.to)
    }
}

impl Drop for SimConn {
    fn drop(&mut self) {
        self.tx.close();
        self.rx.close();
    }
}

// ---------------------------------------------------------------------------
// Chaos harness
// ---------------------------------------------------------------------------

/// Parameters for one [`run_fleet_chaos`] run.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Seed for the fault stream, the partition schedule and the fleet's
    /// deterministic bootstraps. Same seed, same chaos.
    pub seed: u64,
    /// Serving nodes in the fleet.
    pub nodes: usize,
    /// Entities seeded across the fleet.
    pub entities: usize,
    /// Chaos rounds; each round ingests one unique marker per entity.
    pub rounds: usize,
    /// Frame-level fault schedule during the chaos phase.
    pub faults: FaultConfig,
    /// Open a partition every this many rounds (0 disables partitions).
    pub partition_every: usize,
    /// How many rounds an opened partition lasts.
    pub partition_rounds: usize,
    /// Forecast every entity each time `round % forecast_every == 0`
    /// (0 disables forecasts during chaos).
    pub forecast_every: usize,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 7,
            nodes: 3,
            entities: 12,
            rounds: 12,
            faults: FaultConfig::chaos(),
            partition_every: 4,
            partition_rounds: 2,
            forecast_every: 3,
        }
    }
}

/// Everything a chaos run produced: the invariant report plus the
/// counters that show the run actually exercised the failure paths.
#[derive(Debug, Clone)]
pub struct ChaosOutcome {
    /// The seed the run used.
    pub seed: u64,
    /// Verdicts of the four fleet invariants.
    pub report: InvariantReport,
    /// What the network did to the traffic.
    pub faults: FaultStats,
    /// Ingests the router acknowledged (the oracle set for invariant 1).
    pub acked_ingests: u64,
    /// Ingests the router reported failed (allowed to be lost).
    pub nacked_ingests: u64,
    /// Forecasts the router acknowledged during chaos.
    pub acked_forecasts: u64,
    /// Forecasts the nodes actually executed (over the whole run).
    pub executed_forecasts: u64,
    /// Node-side dedup cache hits — retries absorbed exactly-once.
    pub dedup_hits: u64,
    /// Router data-path retries.
    pub retries: u64,
    /// Logical requests that exhausted the retry budget.
    pub retries_exhausted: u64,
    /// Entity groups re-routed after an owner was marked down.
    pub failed_over: u64,
    /// Node-down transitions observed by the router.
    pub node_down_transitions: u64,
    /// Rounds until the fleet re-converged after healing (0 = instantly).
    pub stabilize_rounds: usize,
    /// One-line command reproducing this exact run.
    pub repro: String,
}

/// The four fleet invariants checked after healing.
#[derive(Debug, Clone, Default)]
pub struct InvariantReport {
    /// Invariant 1 violations: acknowledged `(entity, marker)` samples
    /// absent from (or out of order on) the entity's live owner.
    pub lost_acks: Vec<(String, u64)>,
    /// Invariant 2 violations: `(entity, marker)` samples applied more
    /// than once to the same predictor.
    pub duplicate_applies: Vec<(String, u64)>,
    /// Invariant 3 violations: ownership audit findings (missing,
    /// duplicated or misplaced entities), human-readable.
    pub ownership_violations: Vec<String>,
    /// Invariant 4 violation: forecasts acked beyond what nodes executed
    /// (0 = clean).
    pub phantom_forecasts: u64,
}

impl InvariantReport {
    /// Whether all four invariants hold.
    pub fn is_clean(&self) -> bool {
        self.lost_acks.is_empty()
            && self.duplicate_applies.is_empty()
            && self.ownership_violations.is_empty()
            && self.phantom_forecasts == 0
    }

    /// One-line verdict for logs and bench reports.
    pub fn summary(&self) -> String {
        if self.is_clean() {
            "all invariants hold".to_string()
        } else {
            format!(
                "{} lost acks, {} duplicate applies, {} ownership violations, {} phantom forecasts",
                self.lost_acks.len(),
                self.duplicate_applies.len(),
                self.ownership_violations.len(),
                self.phantom_forecasts
            )
        }
    }
}

/// The one-line command that replays a chaos seed exactly.
pub fn repro_command(seed: u64) -> String {
    format!(
        "SIM_SEED={seed} cargo test -p rptcn-net --release --test sim_partition seed_matrix -- --nocapture"
    )
}

/// Marker values start here; the seeded bootstrap history is clamped to
/// [0, 1], so anything at or above this is an injected marker.
const MARKER_BASE: u64 = 1000;

/// Extract injected markers, in history order, from one entity's raw
/// target history.
fn markers_of(history: &[f32]) -> Vec<u64> {
    history
        .iter()
        .filter(|v| **v >= MARKER_BASE as f32 - 0.5)
        .map(|v| *v as u64)
        .collect()
}

/// One node's holdings: each held entity paired with the markers found
/// in its history, in order.
pub type NodeHoldings = Vec<(String, Vec<u64>)>;

/// Check the four fleet invariants against the sim-side oracle.
///
/// * `ring` / `nodes` — placement and final node statuses.
/// * `holdings` — per node, each held entity and the markers found in
///   its history, in order.
/// * `acked` — per entity, the markers the router acknowledged, in
///   acknowledgement order.
/// * `acked_forecasts` / `executed_forecasts` — router-acked vs
///   node-executed forecast counts.
pub fn check_fleet_invariants(
    ring: &HashRing,
    nodes: &[(String, NodeStatus)],
    holdings: &[(String, NodeHoldings)],
    acked: &BTreeMap<String, Vec<u64>>,
    acked_forecasts: u64,
    executed_forecasts: u64,
) -> InvariantReport {
    let mut report = InvariantReport::default();
    let alive = |name: &str| nodes.iter().any(|(n, s)| n == name && *s == NodeStatus::Up);
    // Invariants 1 + 2 check the live owner's history per entity.
    let expected: Vec<String> = acked.keys().cloned().collect();
    let mut owner_markers: BTreeMap<&str, &[u64]> = BTreeMap::new();
    for (node, held) in holdings {
        if !alive(node) {
            continue;
        }
        for (entity, markers) in held {
            // On a converged fleet each entity has one live holder; if
            // several exist the ownership audit below reports it, and we
            // check acks against the ring owner's copy.
            let is_owner = ring
                .node_for_where(entity, alive)
                .is_some_and(|owner| owner == node.as_str());
            if is_owner || !owner_markers.contains_key(entity.as_str()) {
                owner_markers.insert(entity.as_str(), markers.as_slice());
            }
        }
    }
    for (entity, acked_markers) in acked {
        let held = owner_markers
            .get(entity.as_str())
            .copied()
            .unwrap_or_default();
        // Invariant 2: no marker applied twice to the same predictor.
        let mut seen: BTreeSet<u64> = BTreeSet::new();
        for m in held {
            if !seen.insert(*m) && !report.duplicate_applies.iter().any(|(_, d)| d == m) {
                report.duplicate_applies.push((entity.clone(), *m));
            }
        }
        // Invariant 1: the acked sequence is an in-order subsequence of
        // what the owner holds (unacked-but-executed extras are fine —
        // that is what at-least-once delivery means).
        let mut it = held.iter();
        for m in acked_markers {
            if !it.any(|h| h == m) {
                report.lost_acks.push((entity.clone(), *m));
            }
        }
    }
    // Invariant 3: single live owner per entity.
    let held_ids: Vec<(String, Vec<String>)> = holdings
        .iter()
        .map(|(node, held)| {
            (
                node.clone(),
                held.iter().map(|(id, _)| id.clone()).collect(),
            )
        })
        .collect();
    let audit = ring.audit_ownership(alive, &expected, &held_ids);
    for id in &audit.missing {
        report
            .ownership_violations
            .push(format!("{id}: no live holder"));
    }
    for (id, holders) in &audit.duplicated {
        report
            .ownership_violations
            .push(format!("{id}: multiple live holders {holders:?}"));
    }
    for (id, holder, expected_owner) in &audit.misplaced {
        report.ownership_violations.push(format!(
            "{id}: held by {holder}, ring owner is {expected_owner}"
        ));
    }
    // Invariant 4: the router never acks work nodes did not do.
    report.phantom_forecasts = acked_forecasts.saturating_sub(executed_forecasts);
    report
}

/// How many stabilization rounds [`run_fleet_chaos`] attempts after
/// healing before giving up and reporting whatever violations remain.
const MAX_STABILIZE: usize = 24;

/// Run a whole simulated fleet through seeded chaos and check the four
/// fleet invariants. See the module docs for the scenario shape.
pub fn run_fleet_chaos(cfg: &ChaosConfig) -> Result<ChaosOutcome, NetError> {
    if cfg.nodes == 0 || cfg.entities == 0 {
        return Err(NetError::Serve(
            "chaos run needs at least one node and one entity".into(),
        ));
    }
    let net = SimNet::new(cfg.seed);
    let clock = net.clock().shared();

    // Bring the fleet up over a quiet network so setup is deterministic.
    let mut servers: Vec<(String, NodeServer)> = Vec::with_capacity(cfg.nodes);
    for i in 0..cfg.nodes {
        let name = format!("n{i}");
        let service = PredictionService::new(ServiceConfig {
            shards: 2,
            refit_every: 0,
            score_on_ingest: false,
            clock: clock.clone(),
            ingest_guard: IngestGuard::Repair,
            ..ServiceConfig::default()
        })
        .map_err(|e| NetError::Serve(format!("start service {name}: {e}")))?;
        let server = NodeServer::start_with(
            NodeConfig {
                listen: name.clone(),
                idle_poll: Duration::from_millis(5),
                ..NodeConfig::default()
            },
            service,
            net.transport(&name),
        )?;
        servers.push((name, server));
    }
    let mut router = FleetRouter::new(RouterConfig {
        vnodes: 32,
        request_timeout: Duration::from_millis(150),
        bulk_timeout: Duration::from_millis(400),
        probe_timeout: Duration::from_millis(80),
        retry_backoff: Duration::from_millis(10),
        replay_window: cfg.rounds + 8,
        seed: cfg.seed,
        bootstrap_len: 32,
        window: 8,
        clock: clock.clone(),
        journal_capacity: 4096,
        transport: net.transport("router"),
        ..RouterConfig::default()
    });
    for (name, server) in &servers {
        router.add_node(name, &server.addr())?;
    }
    let ids: Vec<String> = (0..cfg.entities).map(|k| format!("e{k}")).collect();
    router.seed_entities(&ids)?;

    // Chaos phase.
    net.set_faults(cfg.faults.clone());
    let mut acked: BTreeMap<String, Vec<u64>> = BTreeMap::new();
    let mut acked_ingests = 0u64;
    let mut nacked_ingests = 0u64;
    let mut acked_forecasts = 0u64;
    let mut open_partitions: Vec<(String, String, usize)> = Vec::new();
    for round in 0..cfg.rounds {
        // Heal partitions whose time is up, then maybe open a new one.
        let healing: Vec<(String, String)> = open_partitions
            .iter()
            .filter(|(_, _, until)| round >= *until)
            .map(|(a, b, _)| (a.clone(), b.clone()))
            .collect();
        for (a, b) in healing {
            net.heal(&a, &b);
        }
        open_partitions.retain(|(_, _, until)| round < *until);
        if cfg.partition_every > 0 && round % cfg.partition_every == 1 {
            let h = splitmix64(cfg.seed ^ (round as u64).wrapping_mul(0xA24B_AED4_963E_E407));
            let target = format!("n{}", ((h >> 8) as usize) % cfg.nodes);
            match h % 3 {
                0 => net.partition("router", &target),
                1 => net.partition_one_way(&target, "router"),
                _ => net.partition_one_way("router", &target),
            }
            let until = round + cfg.partition_rounds.max(1);
            open_partitions.push(("router".to_string(), target, until));
        }
        // One unique marker per entity per round; the oracle records
        // exactly what the router acknowledged.
        for (k, id) in ids.iter().enumerate() {
            let marker = MARKER_BASE + (round * cfg.entities + k) as u64;
            match router.ingest(id, vec![marker as f32]) {
                Ok(()) => {
                    acked.entry(id.clone()).or_default().push(marker);
                    acked_ingests += 1;
                }
                Err(_) => nacked_ingests += 1,
            }
        }
        if cfg.forecast_every > 0 && round % cfg.forecast_every == 0 {
            for (_, result) in router.forecast_batch(&ids) {
                if result.is_ok() {
                    acked_forecasts += 1;
                }
            }
        }
        router.probe();
    }

    // Heal everything and let the fleet converge.
    net.heal_all();
    net.set_faults(FaultConfig::default());
    let mut stabilize_rounds = 0usize;
    for attempt in 0..MAX_STABILIZE {
        let statuses = router.probe();
        if statuses.iter().any(|(_, s)| *s != NodeStatus::Up) {
            stabilize_rounds = attempt + 1;
            continue;
        }
        // Touch every entity so any stragglers heal onto their owner.
        let all_ok = router.forecast_batch(&ids).iter().all(|(_, r)| r.is_ok());
        let converged = {
            let statuses = router.nodes();
            let alive = |name: &str| {
                statuses
                    .iter()
                    .any(|(n, s)| n == name && *s == NodeStatus::Up)
            };
            let held = collect_held_ids(&servers, &ids);
            router
                .ring()
                .audit_ownership(alive, &ids, &held)
                .is_converged()
        };
        if all_ok && converged {
            stabilize_rounds = attempt;
            break;
        }
        stabilize_rounds = attempt + 1;
    }

    // Collect the final state of every node for the invariant check.
    let mut holdings: Vec<(String, NodeHoldings)> = Vec::with_capacity(servers.len());
    let mut executed_forecasts = 0u64;
    let mut dedup_hits = 0u64;
    for (name, server) in &servers {
        let snapshot = server
            .with_service(|s| {
                s.flush()?;
                s.snapshot_entities()
            })
            .map_err(|e| NetError::Serve(format!("snapshot {name}: {e}")))?;
        let held: Vec<(String, Vec<u64>)> = snapshot
            .iter()
            .map(|(id, state)| {
                let target = state.history.first().map(Vec::as_slice).unwrap_or(&[]);
                (id.clone(), markers_of(target))
            })
            .collect();
        holdings.push((name.clone(), held));
        executed_forecasts += server.with_service(|s| s.stats().total_forecasts());
        dedup_hits += server.dedup_hits();
    }
    let statuses = router.nodes();
    let report = check_fleet_invariants(
        router.ring(),
        &statuses,
        &holdings,
        &acked,
        acked_forecasts,
        executed_forecasts,
    );
    let counter = |name: &str| router.registry().counter(name).get();
    let outcome = ChaosOutcome {
        seed: cfg.seed,
        report,
        faults: net.stats(),
        acked_ingests,
        nacked_ingests,
        acked_forecasts,
        executed_forecasts,
        dedup_hits,
        retries: counter("router_retries"),
        retries_exhausted: counter("router_retries_exhausted"),
        failed_over: counter("router_failed_over"),
        node_down_transitions: counter("router_node_down_transitions"),
        stabilize_rounds,
        repro: repro_command(cfg.seed),
    };
    router.shutdown_fleet();
    for (_, server) in &mut servers {
        server.shutdown();
        server.join();
    }
    Ok(outcome)
}

/// Which of `ids` each node currently holds (for the ownership audit).
fn collect_held_ids(
    servers: &[(String, NodeServer)],
    ids: &[String],
) -> Vec<(String, Vec<String>)> {
    servers
        .iter()
        .map(|(name, server)| {
            let held = ids
                .iter()
                .filter(|id| server.with_service(|s| s.contains_entity(id)))
                .cloned()
                .collect();
            (name.clone(), held)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::NodeClient;
    use crate::frame::Message;

    #[test]
    fn sim_transport_roundtrips_frames() {
        let net = SimNet::new(1);
        let tp = net.transport("client");
        let server_tp = net.transport("server");
        let listener = server_tp.bind("server").expect("bind");
        let server = std::thread::spawn(move || {
            let mut conn = listener.accept().expect("accept");
            let (id, msg) = crate::frame::read_frame(&mut conn).expect("read");
            assert!(matches!(msg, Message::Health));
            crate::frame::write_frame(&mut conn, id, &Message::HealthOk(Default::default()))
                .expect("write");
            conn.flush().expect("flush");
        });
        let mut client = NodeClient::connect_with(tp.as_ref(), "server", Duration::from_secs(1))
            .expect("connect");
        let reply = client
            .request_with_timeout(&Message::Health, Duration::from_secs(2))
            .expect("request");
        assert!(matches!(reply, Message::HealthOk(_)));
        server.join().expect("server thread");
        assert!(net.stats().delivered >= 2);
    }

    #[test]
    fn partition_refuses_connect_and_heals() {
        let net = SimNet::new(2);
        let server_tp = net.transport("server");
        let _listener = server_tp.bind("server").expect("bind");
        let tp = net.transport("client");
        net.partition("client", "server");
        assert!(net.is_blocked("client", "server"));
        let err = tp.connect("server", Duration::from_millis(50)).err();
        assert!(err.is_some(), "connect must be refused under partition");
        assert_eq!(net.stats().connects_refused, 1);
        net.heal("client", "server");
        assert!(!net.is_blocked("client", "server"));
        assert!(tp.connect("server", Duration::from_millis(50)).is_ok());
        let kinds: Vec<String> = net
            .journal()
            .events()
            .iter()
            .map(|e| e.kind.name().to_string())
            .collect();
        assert!(kinds.contains(&"net_partition".to_string()));
        assert!(kinds.contains(&"net_healed".to_string()));
    }

    #[test]
    fn one_way_partition_starves_replies_but_allows_connect() {
        let net = SimNet::new(3);
        let server_tp = net.transport("server");
        let listener = server_tp.bind("server").expect("bind");
        let server = std::thread::spawn(move || {
            let mut conn = listener.accept().expect("accept");
            let (id, _msg) = crate::frame::read_frame(&mut conn).expect("read");
            // The reply vanishes into the one-way partition.
            let _ =
                crate::frame::write_frame(&mut conn, id, &Message::HealthOk(Default::default()));
        });
        net.partition_one_way("server", "client");
        let tp = net.transport("client");
        let mut client = NodeClient::connect_with(tp.as_ref(), "server", Duration::from_millis(50))
            .expect("forward path open, connect succeeds");
        let err = client
            .request_with_timeout(&Message::Health, Duration::from_millis(60))
            .err();
        assert!(err.is_some(), "reply must be swallowed");
        server.join().expect("server thread");
        assert!(net.stats().partition_drops >= 1);
    }

    #[test]
    fn same_seed_same_fault_decisions() {
        // Two separate networks with the same seed and traffic must make
        // identical fault decisions.
        let stats = |seed: u64| {
            let net = SimNet::new(seed);
            net.set_faults(FaultConfig {
                drop_per_mille: 300,
                duplicate_per_mille: 200,
                trickle_per_mille: 200,
                ..FaultConfig::default()
            });
            let server_tp = net.transport("server");
            let listener = server_tp.bind("server").expect("bind");
            let server = std::thread::spawn(move || {
                if let Ok(mut conn) = listener.accept() {
                    // Drain whatever arrives until the peer closes.
                    let mut buf = [0u8; 256];
                    loop {
                        match conn.read(&mut buf) {
                            Ok(0) | Err(_) => break,
                            Ok(_) => {}
                        }
                    }
                }
            });
            let tp = net.transport("client");
            {
                let mut conn = tp
                    .connect("server", Duration::from_millis(50))
                    .expect("connect");
                for i in 0..40u64 {
                    let frame =
                        crate::frame::encode_frame(i + 1, &Message::Health).expect("encode");
                    if conn.write_all(&frame).is_err() {
                        break;
                    }
                }
            }
            server.join().expect("server thread");
            net.stats()
        };
        let a = stats(99);
        let b = stats(99);
        let c = stats(100);
        assert_eq!(a, b, "same seed must replay identical faults");
        assert_ne!(a, c, "different seeds should diverge");
        assert!(a.total_faults() > 0, "faults must actually fire: {a:?}");
    }

    #[test]
    fn trickled_frames_still_decode() {
        let net = SimNet::new(4);
        net.set_faults(FaultConfig {
            trickle_per_mille: 1000,
            ..FaultConfig::default()
        });
        let server_tp = net.transport("server");
        let listener = server_tp.bind("server").expect("bind");
        let server = std::thread::spawn(move || {
            let mut conn = listener.accept().expect("accept");
            crate::frame::read_frame(&mut conn).expect("read trickled")
        });
        let tp = net.transport("client");
        let mut conn = tp
            .connect("server", Duration::from_millis(50))
            .expect("connect");
        let frame = crate::frame::encode_frame(7, &Message::Health).expect("encode");
        conn.write_all(&frame).expect("write");
        let (id, msg) = server.join().expect("server thread");
        assert_eq!(id, 7);
        assert!(matches!(msg, Message::Health));
        assert!(net.stats().trickled >= 1);
    }

    #[test]
    fn quiet_chaos_run_is_clean_and_fast() {
        // No faults, no partitions: the harness itself must be invariant-
        // clean, proving violations come from injected chaos handling,
        // not the harness.
        let outcome = run_fleet_chaos(&ChaosConfig {
            seed: 11,
            nodes: 2,
            entities: 4,
            rounds: 3,
            faults: FaultConfig::default(),
            partition_every: 0,
            partition_rounds: 0,
            forecast_every: 2,
        })
        .expect("chaos run");
        assert!(
            outcome.report.is_clean(),
            "quiet run must be clean: {} ({})",
            outcome.report.summary(),
            outcome.repro
        );
        assert_eq!(outcome.acked_ingests, 12);
        assert_eq!(outcome.nacked_ingests, 0);
        assert!(outcome.acked_forecasts >= 8);
    }

    #[test]
    fn invariant_checker_flags_violations() {
        let mut ring = HashRing::new(8);
        ring.add_node("n0");
        let nodes = vec![("n0".to_string(), NodeStatus::Up)];
        let mut acked: BTreeMap<String, Vec<u64>> = BTreeMap::new();
        acked.insert("a".into(), vec![1000, 1001]);
        // n0 holds `a` but lost marker 1001 and applied 1000 twice.
        let holdings = vec![("n0".to_string(), vec![("a".to_string(), vec![1000, 1000])])];
        let report = check_fleet_invariants(&ring, &nodes, &holdings, &acked, 5, 3);
        assert_eq!(report.lost_acks, vec![("a".to_string(), 1001)]);
        assert_eq!(report.duplicate_applies, vec![("a".to_string(), 1000)]);
        assert_eq!(report.phantom_forecasts, 2);
        assert!(!report.is_clean());
        let clean = check_fleet_invariants(
            &ring,
            &nodes,
            &[("n0".to_string(), vec![("a".to_string(), vec![1000, 1001])])],
            &acked,
            3,
            3,
        );
        assert!(clean.is_clean(), "{}", clean.summary());
    }
}
