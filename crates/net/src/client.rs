//! Blocking request/reply client for one node connection.
//!
//! A [`NodeClient`] owns a single TCP connection and multiplexes nothing:
//! requests are strictly sequential, each tagged with an incrementing
//! request id that the node echoes back. An id mismatch or an unexpected
//! reply kind marks the connection untrustworthy ([`NetError::Protocol`])
//! and callers are expected to reconnect.

use std::io::BufWriter;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::error::NetError;
use crate::frame::{read_frame, write_frame, Message};

/// A blocking client bound to one node connection.
#[derive(Debug)]
pub struct NodeClient {
    stream: TcpStream,
    next_id: u64,
    timeout: Duration,
}

fn resolve(addr: &str) -> Result<SocketAddr, NetError> {
    addr.to_socket_addrs()
        .map_err(|e| NetError::Io(format!("resolve {addr}: {e}")))?
        .next()
        .ok_or_else(|| NetError::Io(format!("address {addr} resolved to nothing")))
}

impl NodeClient {
    /// Connect to `addr` (e.g. `127.0.0.1:4710`) with a connect timeout;
    /// `timeout` also becomes the default per-request read/write timeout.
    pub fn connect(addr: &str, timeout: Duration) -> Result<Self, NetError> {
        let sockaddr = resolve(addr)?;
        let stream = TcpStream::connect_timeout(&sockaddr, timeout)
            .map_err(|e| NetError::Io(format!("connect {addr}: {e}")))?;
        stream.set_nodelay(true)?;
        Ok(NodeClient {
            stream,
            next_id: 1,
            timeout,
        })
    }

    /// Send one request and wait for its reply, using the default timeout.
    pub fn request(&mut self, msg: &Message) -> Result<Message, NetError> {
        self.request_with_timeout(msg, self.timeout)
    }

    /// Send one request and wait for its reply with an explicit timeout
    /// (health probes use a much shorter deadline than bulk transfers).
    pub fn request_with_timeout(
        &mut self,
        msg: &Message,
        timeout: Duration,
    ) -> Result<Message, NetError> {
        let id = self.next_id;
        self.next_id = self.next_id.wrapping_add(1).max(1);
        self.stream.set_write_timeout(Some(timeout))?;
        self.stream.set_read_timeout(Some(timeout))?;
        {
            let mut w = BufWriter::new(&self.stream);
            write_frame(&mut w, id, msg)?;
        }
        let (reply_id, reply) = read_frame(&mut self.stream)?;
        if let Message::Error(fault) = reply {
            // Error frames are authoritative even with a mismatched id:
            // connection-scoped faults (malformed request) use id 0.
            return Err(NetError::Remote(fault));
        }
        if reply_id != id {
            return Err(NetError::Protocol(format!(
                "reply id {reply_id} does not match request id {id}"
            )));
        }
        Ok(reply)
    }
}
