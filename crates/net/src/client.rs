//! Blocking request/reply client for one node connection.
//!
//! A [`NodeClient`] owns a single [`Connection`] and multiplexes nothing:
//! requests are strictly sequential, each tagged with a request id that
//! the node echoes back. Ids either auto-increment per connection (the
//! standalone [`NodeClient::request`] path) or are supplied by the
//! caller ([`NodeClient::request_with_id`]) so the fleet router can
//! reuse one globally unique id across retries and reconnects and lean
//! on node-side dedup for exactly-once effects. An id mismatch or an
//! unexpected reply kind marks the connection untrustworthy
//! ([`NetError::Protocol`]) and callers are expected to reconnect.

use std::time::Duration;

use crate::error::NetError;
use crate::frame::{read_frame, write_frame, Message};
use crate::transport::{Connection, TcpTransport, Transport};

/// A blocking client bound to one node connection.
pub struct NodeClient {
    conn: Box<dyn Connection>,
    next_id: u64,
    timeout: Duration,
}

impl std::fmt::Debug for NodeClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NodeClient")
            .field("peer", &self.conn.peer())
            .field("next_id", &self.next_id)
            .field("timeout", &self.timeout)
            .finish()
    }
}

impl NodeClient {
    /// Connect to `addr` (e.g. `127.0.0.1:4710`) over TCP with a connect
    /// timeout; `timeout` also becomes the default per-request
    /// read/write timeout.
    pub fn connect(addr: &str, timeout: Duration) -> Result<Self, NetError> {
        Self::connect_with(&TcpTransport, addr, timeout)
    }

    /// Connect to `addr` over an explicit [`Transport`] (the fleet
    /// router passes its configured transport here, which is how whole
    /// fleets end up on the in-process simulator).
    pub fn connect_with(
        transport: &dyn Transport,
        addr: &str,
        timeout: Duration,
    ) -> Result<Self, NetError> {
        let conn = transport.connect(addr, timeout)?;
        Ok(NodeClient {
            conn,
            next_id: 1,
            timeout,
        })
    }

    /// Send one request and wait for its reply, using the default timeout.
    pub fn request(&mut self, msg: &Message) -> Result<Message, NetError> {
        self.request_with_timeout(msg, self.timeout)
    }

    /// Send one request and wait for its reply with an explicit timeout
    /// (health probes use a much shorter deadline than bulk transfers).
    pub fn request_with_timeout(
        &mut self,
        msg: &Message,
        timeout: Duration,
    ) -> Result<Message, NetError> {
        let id = self.next_id;
        self.next_id = self.next_id.wrapping_add(1).max(1);
        self.request_with_id(id, msg, timeout)
    }

    /// Send one request under a caller-chosen id and wait for its reply.
    ///
    /// The id must be non-zero (id 0 is reserved for connection-scoped
    /// error frames). Callers that retry a failed request over a fresh
    /// connection should resend under the *same* id: nodes dedup
    /// mutating requests by id, turning at-least-once delivery into
    /// exactly-once effect.
    pub fn request_with_id(
        &mut self,
        id: u64,
        msg: &Message,
        timeout: Duration,
    ) -> Result<Message, NetError> {
        self.conn.set_write_timeout(Some(timeout))?;
        self.conn.set_read_timeout(Some(timeout))?;
        write_frame(&mut self.conn, id, msg)?;
        self.conn.flush()?;
        let (reply_id, reply) = read_frame(&mut self.conn)?;
        if let Message::Error(fault) = reply {
            // Error frames are authoritative even with a mismatched id:
            // connection-scoped faults (malformed request) use id 0.
            return Err(NetError::Remote(fault));
        }
        if reply_id != id {
            return Err(NetError::Protocol(format!(
                "reply id {reply_id} does not match request id {id}"
            )));
        }
        Ok(reply)
    }
}
