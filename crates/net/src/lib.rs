//! Distributed serving tier for the RPTCN reproduction.
//!
//! `rptcn-serve` runs one sharded prediction service inside one process;
//! this crate spreads a fleet across many such processes on a network:
//!
//! - **Wire protocol** ([`frame`]): a dependency-free, length-prefixed
//!   binary protocol over TCP — versioned 20-byte header, request ids,
//!   Ingest/Forecast/Health/Checkpoint/Drain message kinds and explicit
//!   error frames, built on the same hand-rolled little-endian
//!   primitives as the RPTM/RPTF checkpoint codecs. Malformed bytes
//!   always decode to a typed [`frame::WireError`], never a panic.
//! - **Node server** ([`node`]): wraps a [`serve::PredictionService`]
//!   behind the protocol with a thread-per-connection accept loop,
//!   graceful drain (refuse ingests, flush, hand the fleet state over)
//!   and per-request latency spans in the service registry.
//! - **Client** ([`client`]): blocking sequential request/reply over one
//!   connection, request-id checked.
//! - **Fleet router** ([`router`]): consistent-hash entity→node
//!   placement ([`rptcn::HashRing`]), health probes, failover with
//!   deterministic re-seed + bounded sample replay (no acknowledged
//!   ingest is lost), and RPTF-checkpoint-based warm migration on node
//!   join/drain — all journaled through `rptcn-obs` on an injectable
//!   clock.

pub mod client;
pub mod error;
pub mod frame;
pub mod node;
pub mod router;
pub mod sim;
pub mod sync;
pub mod transport;

pub use client::NodeClient;
pub use error::NetError;
pub use frame::{
    decode_frame, encode_frame, read_frame, write_frame, ErrorCode, ForecastOutcome, FrameHeader,
    HealthReport, IngestEntry, Message, SeedSpec, WireError, WireFault, HEADER_LEN,
    IDEMPOTENT_ID_BASE, MAX_PAYLOAD, WIRE_MAGIC, WIRE_VERSION,
};
pub use node::{seed_bootstrap, NodeConfig, NodeServer};
pub use router::{FleetRouter, NodeStatus, RouterConfig};
pub use sim::{
    check_fleet_invariants, run_fleet_chaos, ChaosConfig, ChaosOutcome, FaultConfig, FaultStats,
    InvariantReport, NodeHoldings, SimNet, SimTransport,
};
pub use sync::{lock_recover, read_recover, wait_timeout_recover, write_recover};
pub use transport::{Connection, Listener, SharedTransport, TcpTransport, Transport};
