//! Length-prefixed binary wire protocol for the distributed serving tier.
//!
//! Every frame is a fixed 20-byte little-endian header followed by a
//! payload of at most [`MAX_PAYLOAD`] bytes:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"RPTW"
//! 4       2     version (u16, currently 1)
//! 6       1     kind    (u8, see `Message::kind`)
//! 7       1     flags   (u8, must be 0 in version 1)
//! 8       8     request id (u64, echoed verbatim in the reply)
//! 16      4     payload length (u32)
//! ```
//!
//! Payloads reuse the checkpoint wire primitives (`rptcn-models`
//! `checkpoint::wire`): little-endian integers, length-prefixed UTF-8
//! strings, and the RPTF per-entity predictor state encoding — so a
//! checkpoint streamed over a socket is byte-compatible with one written
//! to disk. Decoding is strict: unknown kinds, non-zero flags, trailing
//! bytes, implausible counts and truncated payloads all yield a typed
//! [`WireError`] and never panic, hang, or allocate unbounded memory.

use std::fmt;
use std::io::{self, Read, Write};

use models::checkpoint::wire;
use models::checkpoint::CheckpointError;
use rptcn::PredictorState;
use serve::checkpoint::{read_predictor_state, write_predictor_state};

/// Magic bytes opening every frame ("RPTcn Wire").
pub const WIRE_MAGIC: [u8; 4] = *b"RPTW";
/// Current protocol version carried in the frame header.
pub const WIRE_VERSION: u16 = 1;
/// Size of the fixed frame header in bytes.
pub const HEADER_LEN: usize = 20;
/// Maximum payload size a peer will accept (64 MiB). Larger frames are
/// rejected before any payload allocation happens.
pub const MAX_PAYLOAD: u32 = 64 << 20;
/// First request id in the idempotent range. Standalone clients number
/// their requests per-connection from 1 and never reach this base; the
/// fleet router allocates ids at or above it from a process-wide counter,
/// so every routed mutating request carries a globally unique id that
/// nodes can dedup on — retrying under the same id is then safe even if
/// the first attempt was executed but its reply was lost.
pub const IDEMPOTENT_ID_BASE: u64 = 1 << 32;

/// Errors produced while encoding or decoding frames.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The underlying reader/writer failed mid-frame.
    Io(String),
    /// The first four bytes were not [`WIRE_MAGIC`].
    BadMagic([u8; 4]),
    /// The header announced a protocol version this build does not speak.
    UnsupportedVersion(u16),
    /// The header announced a message kind this build does not know.
    UnknownKind(u8),
    /// The header announced a payload larger than [`MAX_PAYLOAD`].
    Oversized {
        /// Announced payload length.
        len: u32,
        /// The limit it exceeded.
        max: u32,
    },
    /// The stream or buffer ended before a complete frame was read.
    Truncated {
        /// What was being read when the bytes ran out.
        context: String,
    },
    /// The frame was structurally complete but its payload did not decode
    /// (bad tag, implausible count, trailing bytes, non-zero flags…).
    Malformed(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(msg) => write!(f, "io: {msg}"),
            WireError::BadMagic(m) => write!(f, "bad magic {m:?} (want {WIRE_MAGIC:?})"),
            WireError::UnsupportedVersion(v) => {
                write!(f, "unsupported protocol version {v} (speak {WIRE_VERSION})")
            }
            WireError::UnknownKind(k) => write!(f, "unknown message kind {k}"),
            WireError::Oversized { len, max } => {
                write!(f, "payload length {len} exceeds limit {max}")
            }
            WireError::Truncated { context } => write!(f, "truncated while reading {context}"),
            WireError::Malformed(msg) => write!(f, "malformed payload: {msg}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<CheckpointError> for WireError {
    fn from(e: CheckpointError) -> Self {
        WireError::Malformed(e.0)
    }
}

fn io_err(context: &str, e: &io::Error) -> WireError {
    if e.kind() == io::ErrorKind::UnexpectedEof {
        WireError::Truncated {
            context: context.to_string(),
        }
    } else {
        WireError::Io(format!("{context}: {e}"))
    }
}

/// Machine-readable error categories carried in [`Message::Error`] frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The node is draining and refuses new ingests.
    Draining,
    /// A referenced entity is not registered on this node.
    UnknownEntity,
    /// The request frame decoded but its contents were invalid.
    Malformed,
    /// The node-local service failed internally.
    Internal,
    /// The node does not support the requested operation.
    Unsupported,
}

impl ErrorCode {
    fn to_u16(self) -> u16 {
        match self {
            ErrorCode::Draining => 1,
            ErrorCode::UnknownEntity => 2,
            ErrorCode::Malformed => 3,
            ErrorCode::Internal => 4,
            ErrorCode::Unsupported => 5,
        }
    }

    fn from_u16(v: u16) -> Result<Self, WireError> {
        match v {
            1 => Ok(ErrorCode::Draining),
            2 => Ok(ErrorCode::UnknownEntity),
            3 => Ok(ErrorCode::Malformed),
            4 => Ok(ErrorCode::Internal),
            5 => Ok(ErrorCode::Unsupported),
            other => Err(WireError::Malformed(format!("unknown error code {other}"))),
        }
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ErrorCode::Draining => "draining",
            ErrorCode::UnknownEntity => "unknown_entity",
            ErrorCode::Malformed => "malformed",
            ErrorCode::Internal => "internal",
            ErrorCode::Unsupported => "unsupported",
        };
        f.write_str(name)
    }
}

/// An explicit error reply from a peer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireFault {
    /// Machine-readable category.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
}

impl fmt::Display for WireFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.code, self.message)
    }
}

/// One entity's sample inside an [`Message::Ingest`] batch.
#[derive(Debug, Clone, PartialEq)]
pub struct IngestEntry {
    /// Target entity id.
    pub entity: String,
    /// Explicit sequence number, or `None` to append at the next slot.
    pub seq: Option<u64>,
    /// Indicator values for this timestep.
    pub values: Vec<f32>,
}

/// Per-entity result inside a [`Message::ForecastOk`] reply.
#[derive(Debug, Clone, PartialEq)]
pub enum ForecastOutcome {
    /// Forecast horizon values.
    Values(Vec<f32>),
    /// The entity is not registered on the answering node.
    Unknown,
    /// The node-local service failed to forecast (message attached).
    Failed(String),
}

/// Node health summary carried in [`Message::HealthOk`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HealthReport {
    /// Entities registered on the node.
    pub entities: u64,
    /// Samples ingested since start.
    pub ingested: u64,
    /// Forecasts served since start.
    pub forecasts: u64,
    /// Entities currently in degraded (fallback) mode.
    pub degraded: u64,
    /// Shard restarts since start.
    pub restarts: u64,
    /// Whether the node is draining (refusing new ingests).
    pub draining: bool,
}

/// Instruction to register a batch of entities fitted from a shared
/// synthetic bootstrap, carried in [`Message::Seed`]. Every id is seeded
/// deterministically from `seed ^ fnv1a(id)` so any router replica can
/// reproduce the exact same entity on another node during failover.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeedSpec {
    /// Entity ids to register.
    pub ids: Vec<String>,
    /// Base seed mixed with each entity id's hash.
    pub seed: u64,
    /// Length of the synthetic bootstrap series per entity.
    pub bootstrap_len: u32,
    /// Model input window (must be < `bootstrap_len`).
    pub window: u32,
}

/// Every message the protocol can carry. Requests and replies share one
/// enum so a single codec covers both directions.
#[derive(Debug, Clone)]
pub enum Message {
    /// Append samples to entities (request).
    Ingest {
        /// Samples, applied in order.
        entries: Vec<IngestEntry>,
    },
    /// Ingest reply: per-batch accounting.
    IngestOk {
        /// Entries accepted by the service.
        accepted: u64,
        /// Entity ids the node does not know (candidates for re-seeding).
        unknown: Vec<String>,
        /// Per-entity failures other than unknown-entity, as `(id, error)`.
        errors: Vec<(String, String)>,
    },
    /// Request forecasts for a batch of entities.
    Forecast {
        /// Entity ids to forecast.
        ids: Vec<String>,
    },
    /// Forecast reply, one outcome per requested id, in request order.
    ForecastOk {
        /// `(entity, outcome)` pairs.
        results: Vec<(String, ForecastOutcome)>,
    },
    /// Liveness/health probe (request, empty payload).
    Health,
    /// Health reply.
    HealthOk(HealthReport),
    /// Request a checkpoint of the named entities (empty = all).
    Checkpoint {
        /// Entity ids to snapshot; empty means every entity on the node.
        ids: Vec<String>,
    },
    /// Checkpoint reply carrying full RPTF predictor states.
    CheckpointOk {
        /// `(entity, state)` pairs.
        entities: Vec<(String, PredictorState)>,
    },
    /// Install previously checkpointed entities (warm migration).
    Restore {
        /// `(entity, state)` pairs to install.
        entities: Vec<(String, PredictorState)>,
    },
    /// Restore reply: per-batch accounting.
    RestoreOk {
        /// Entities installed.
        installed: u64,
        /// Per-entity failures as `(id, error)`.
        errors: Vec<(String, String)>,
    },
    /// Register entities fitted from a deterministic synthetic bootstrap.
    Seed(SeedSpec),
    /// Seed reply.
    SeedOk {
        /// Entities registered by this request.
        installed: u64,
        /// Requested ids skipped because the node already had them.
        /// Callers replaying buffered samples after a seed must replay
        /// only the freshly installed ids — replaying into an `already`
        /// entity would apply its samples twice.
        already: Vec<String>,
    },
    /// Remove entities from the node (after they migrated elsewhere).
    Evict {
        /// Entity ids to remove.
        ids: Vec<String>,
    },
    /// Evict reply.
    EvictOk {
        /// Entities actually removed (unknown ids are skipped).
        removed: u64,
    },
    /// Begin draining: refuse new ingests, flush, snapshot everything.
    Drain,
    /// Drain reply carrying the node's full fleet state for migration.
    DrainOk {
        /// `(entity, state)` pairs for every entity the node owned.
        entities: Vec<(String, PredictorState)>,
    },
    /// Ask the node process to stop accepting connections and exit.
    Shutdown,
    /// Shutdown acknowledgement (sent before the node stops).
    ShutdownOk,
    /// Explicit error reply.
    Error(WireFault),
}

impl Message {
    /// Wire discriminant for this message, written in the frame header.
    pub fn kind(&self) -> u8 {
        match self {
            Message::Ingest { .. } => 1,
            Message::IngestOk { .. } => 2,
            Message::Forecast { .. } => 3,
            Message::ForecastOk { .. } => 4,
            Message::Health => 5,
            Message::HealthOk(_) => 6,
            Message::Checkpoint { .. } => 7,
            Message::CheckpointOk { .. } => 8,
            Message::Restore { .. } => 9,
            Message::RestoreOk { .. } => 10,
            Message::Seed(_) => 11,
            Message::SeedOk { .. } => 12,
            Message::Evict { .. } => 13,
            Message::EvictOk { .. } => 14,
            Message::Drain => 15,
            Message::DrainOk { .. } => 16,
            Message::Shutdown => 17,
            Message::ShutdownOk => 18,
            Message::Error(_) => 19,
        }
    }

    /// Short human-readable name for metrics and journal entries.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Message::Ingest { .. } => "ingest",
            Message::IngestOk { .. } => "ingest_ok",
            Message::Forecast { .. } => "forecast",
            Message::ForecastOk { .. } => "forecast_ok",
            Message::Health => "health",
            Message::HealthOk(_) => "health_ok",
            Message::Checkpoint { .. } => "checkpoint",
            Message::CheckpointOk { .. } => "checkpoint_ok",
            Message::Restore { .. } => "restore",
            Message::RestoreOk { .. } => "restore_ok",
            Message::Seed(_) => "seed",
            Message::SeedOk { .. } => "seed_ok",
            Message::Evict { .. } => "evict",
            Message::EvictOk { .. } => "evict_ok",
            Message::Drain => "drain",
            Message::DrainOk { .. } => "drain_ok",
            Message::Shutdown => "shutdown",
            Message::ShutdownOk => "shutdown_ok",
            Message::Error(_) => "error",
        }
    }

    fn encode_payload(&self, out: &mut Vec<u8>) -> Result<(), WireError> {
        match self {
            Message::Ingest { entries } => {
                wire::write_u32(out, len_u32(entries.len(), "ingest entries")?)?;
                for e in entries {
                    wire::write_str(out, &e.entity)?;
                    match e.seq {
                        Some(seq) => {
                            out.push(1);
                            wire::write_u64(out, seq)?;
                        }
                        None => out.push(0),
                    }
                    wire::write_u32(out, len_u32(e.values.len(), "sample values")?)?;
                    for v in &e.values {
                        wire::write_f32(out, *v)?;
                    }
                }
            }
            Message::IngestOk {
                accepted,
                unknown,
                errors,
            } => {
                wire::write_u64(out, *accepted)?;
                write_str_list(out, unknown)?;
                write_pair_list(out, errors)?;
            }
            Message::Forecast { ids } | Message::Checkpoint { ids } | Message::Evict { ids } => {
                write_str_list(out, ids)?;
            }
            Message::ForecastOk { results } => {
                wire::write_u32(out, len_u32(results.len(), "forecast results")?)?;
                for (id, outcome) in results {
                    wire::write_str(out, id)?;
                    match outcome {
                        ForecastOutcome::Values(vs) => {
                            out.push(1);
                            wire::write_u32(out, len_u32(vs.len(), "forecast values")?)?;
                            for v in vs {
                                wire::write_f32(out, *v)?;
                            }
                        }
                        ForecastOutcome::Unknown => out.push(2),
                        ForecastOutcome::Failed(msg) => {
                            out.push(3);
                            wire::write_str(out, msg)?;
                        }
                    }
                }
            }
            Message::Health | Message::Drain | Message::Shutdown | Message::ShutdownOk => {}
            Message::HealthOk(h) => {
                wire::write_u64(out, h.entities)?;
                wire::write_u64(out, h.ingested)?;
                wire::write_u64(out, h.forecasts)?;
                wire::write_u64(out, h.degraded)?;
                wire::write_u64(out, h.restarts)?;
                out.push(u8::from(h.draining));
            }
            Message::CheckpointOk { entities }
            | Message::Restore { entities }
            | Message::DrainOk { entities } => {
                wire::write_u32(out, len_u32(entities.len(), "entity states")?)?;
                for (id, state) in entities {
                    wire::write_str(out, id)?;
                    write_predictor_state(out, state)?;
                }
            }
            Message::RestoreOk { installed, errors } => {
                wire::write_u64(out, *installed)?;
                write_pair_list(out, errors)?;
            }
            Message::Seed(spec) => {
                write_str_list(out, &spec.ids)?;
                wire::write_u64(out, spec.seed)?;
                wire::write_u32(out, spec.bootstrap_len)?;
                wire::write_u32(out, spec.window)?;
            }
            Message::SeedOk { installed, already } => {
                wire::write_u64(out, *installed)?;
                write_str_list(out, already)?;
            }
            Message::EvictOk { removed } => wire::write_u64(out, *removed)?,
            Message::Error(fault) => {
                wire::write_u32(out, u32::from(fault.code.to_u16()))?;
                wire::write_str(out, &fault.message)?;
            }
        }
        Ok(())
    }

    fn decode_payload_inner(kind: u8, r: &mut &[u8]) -> Result<Message, WireError> {
        Ok(match kind {
            1 => {
                let n = read_count(r, 6, "ingest entries")?;
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    let entity = wire::read_str(r)?;
                    let seq = match read_u8(r)? {
                        0 => None,
                        1 => Some(wire::read_u64(r)?),
                        t => return Err(WireError::Malformed(format!("bad seq tag {t}"))),
                    };
                    let nv = read_count(r, 4, "sample values")?;
                    let mut values = Vec::with_capacity(nv);
                    for _ in 0..nv {
                        values.push(wire::read_f32(r)?);
                    }
                    entries.push(IngestEntry {
                        entity,
                        seq,
                        values,
                    });
                }
                Message::Ingest { entries }
            }
            2 => Message::IngestOk {
                accepted: wire::read_u64(r)?,
                unknown: read_str_list(r)?,
                errors: read_pair_list(r)?,
            },
            3 => Message::Forecast {
                ids: read_str_list(r)?,
            },
            4 => {
                let n = read_count(r, 5, "forecast results")?;
                let mut results = Vec::with_capacity(n);
                for _ in 0..n {
                    let id = wire::read_str(r)?;
                    let outcome = match read_u8(r)? {
                        1 => {
                            let nv = read_count(r, 4, "forecast values")?;
                            let mut vs = Vec::with_capacity(nv);
                            for _ in 0..nv {
                                vs.push(wire::read_f32(r)?);
                            }
                            ForecastOutcome::Values(vs)
                        }
                        2 => ForecastOutcome::Unknown,
                        3 => ForecastOutcome::Failed(wire::read_str(r)?),
                        t => return Err(WireError::Malformed(format!("bad outcome tag {t}"))),
                    };
                    results.push((id, outcome));
                }
                Message::ForecastOk { results }
            }
            5 => Message::Health,
            6 => Message::HealthOk(HealthReport {
                entities: wire::read_u64(r)?,
                ingested: wire::read_u64(r)?,
                forecasts: wire::read_u64(r)?,
                degraded: wire::read_u64(r)?,
                restarts: wire::read_u64(r)?,
                draining: match read_u8(r)? {
                    0 => false,
                    1 => true,
                    t => return Err(WireError::Malformed(format!("bad bool tag {t}"))),
                },
            }),
            7 => Message::Checkpoint {
                ids: read_str_list(r)?,
            },
            8 => Message::CheckpointOk {
                entities: read_state_list(r)?,
            },
            9 => Message::Restore {
                entities: read_state_list(r)?,
            },
            10 => Message::RestoreOk {
                installed: wire::read_u64(r)?,
                errors: read_pair_list(r)?,
            },
            11 => Message::Seed(SeedSpec {
                ids: read_str_list(r)?,
                seed: wire::read_u64(r)?,
                bootstrap_len: wire::read_u32(r)?,
                window: wire::read_u32(r)?,
            }),
            12 => Message::SeedOk {
                installed: wire::read_u64(r)?,
                already: read_str_list(r)?,
            },
            13 => Message::Evict {
                ids: read_str_list(r)?,
            },
            14 => Message::EvictOk {
                removed: wire::read_u64(r)?,
            },
            15 => Message::Drain,
            16 => Message::DrainOk {
                entities: read_state_list(r)?,
            },
            17 => Message::Shutdown,
            18 => Message::ShutdownOk,
            19 => {
                let raw = wire::read_u32(r)?;
                let code = u16::try_from(raw)
                    .map_err(|_| WireError::Malformed(format!("error code {raw} out of range")))
                    .and_then(ErrorCode::from_u16)?;
                Message::Error(WireFault {
                    code,
                    message: wire::read_str(r)?,
                })
            }
            other => return Err(WireError::UnknownKind(other)),
        })
    }
}

fn len_u32(len: usize, what: &str) -> Result<u32, WireError> {
    u32::try_from(len).map_err(|_| WireError::Malformed(format!("{what} count {len} too large")))
}

fn read_u8(r: &mut &[u8]) -> Result<u8, WireError> {
    match r.split_first() {
        Some((b, rest)) => {
            *r = rest;
            Ok(*b)
        }
        None => Err(WireError::Malformed("payload ended at tag byte".into())),
    }
}

/// Read a count and sanity-check it against the bytes actually remaining,
/// so a corrupted length can never trigger a huge pre-allocation.
fn read_count(r: &mut &[u8], min_item_bytes: usize, what: &str) -> Result<usize, WireError> {
    let n = wire::read_u32(r)? as usize;
    if n.saturating_mul(min_item_bytes) > r.len() {
        return Err(WireError::Malformed(format!(
            "implausible {what} count {n} for {} remaining bytes",
            r.len()
        )));
    }
    Ok(n)
}

fn write_str_list(out: &mut Vec<u8>, items: &[String]) -> Result<(), WireError> {
    wire::write_u32(out, len_u32(items.len(), "strings")?)?;
    for s in items {
        wire::write_str(out, s)?;
    }
    Ok(())
}

fn read_str_list(r: &mut &[u8]) -> Result<Vec<String>, WireError> {
    let n = read_count(r, 4, "strings")?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(wire::read_str(r)?);
    }
    Ok(out)
}

fn write_pair_list(out: &mut Vec<u8>, items: &[(String, String)]) -> Result<(), WireError> {
    wire::write_u32(out, len_u32(items.len(), "string pairs")?)?;
    for (a, b) in items {
        wire::write_str(out, a)?;
        wire::write_str(out, b)?;
    }
    Ok(())
}

fn read_pair_list(r: &mut &[u8]) -> Result<Vec<(String, String)>, WireError> {
    let n = read_count(r, 8, "string pairs")?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let a = wire::read_str(r)?;
        let b = wire::read_str(r)?;
        out.push((a, b));
    }
    Ok(out)
}

fn read_state_list(r: &mut &[u8]) -> Result<Vec<(String, PredictorState)>, WireError> {
    let n = read_count(r, 8, "entity states")?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let id = wire::read_str(r)?;
        let state = read_predictor_state(r)?;
        out.push((id, state));
    }
    Ok(out)
}

/// Parsed frame header, validated against this build's protocol limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// Message kind discriminant (not yet checked against known kinds).
    pub kind: u8,
    /// Request id echoed in replies.
    pub request_id: u64,
    /// Announced payload length (≤ [`MAX_PAYLOAD`]).
    pub payload_len: u32,
}

/// Validate a raw 20-byte header: magic, version, flags and payload limit.
pub fn parse_header(bytes: &[u8; HEADER_LEN]) -> Result<FrameHeader, WireError> {
    let magic = [bytes[0], bytes[1], bytes[2], bytes[3]];
    if magic != WIRE_MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if version != WIRE_VERSION {
        return Err(WireError::UnsupportedVersion(version));
    }
    let kind = bytes[6];
    let flags = bytes[7];
    if flags != 0 {
        return Err(WireError::Malformed(format!(
            "non-zero flags {flags:#04x} in version {WIRE_VERSION} header"
        )));
    }
    let request_id = u64::from_le_bytes([
        bytes[8], bytes[9], bytes[10], bytes[11], bytes[12], bytes[13], bytes[14], bytes[15],
    ]);
    let payload_len = u32::from_le_bytes([bytes[16], bytes[17], bytes[18], bytes[19]]);
    if payload_len > MAX_PAYLOAD {
        return Err(WireError::Oversized {
            len: payload_len,
            max: MAX_PAYLOAD,
        });
    }
    Ok(FrameHeader {
        kind,
        request_id,
        payload_len,
    })
}

/// Decode a payload of the given kind; the whole slice must be consumed.
pub fn decode_payload(kind: u8, payload: &[u8]) -> Result<Message, WireError> {
    let mut r = payload;
    let msg = Message::decode_payload_inner(kind, &mut r)?;
    if !r.is_empty() {
        return Err(WireError::Malformed(format!(
            "{} trailing bytes after payload",
            r.len()
        )));
    }
    Ok(msg)
}

/// Encode a complete frame (header + payload) into a fresh buffer.
pub fn encode_frame(request_id: u64, msg: &Message) -> Result<Vec<u8>, WireError> {
    let mut payload = Vec::new();
    msg.encode_payload(&mut payload)?;
    if payload.len() > MAX_PAYLOAD as usize {
        return Err(WireError::Oversized {
            len: u32::try_from(payload.len()).unwrap_or(u32::MAX),
            max: MAX_PAYLOAD,
        });
    }
    let payload_len = payload.len() as u32;
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&WIRE_MAGIC);
    out.extend_from_slice(&WIRE_VERSION.to_le_bytes());
    out.push(msg.kind());
    out.push(0);
    out.extend_from_slice(&request_id.to_le_bytes());
    out.extend_from_slice(&payload_len.to_le_bytes());
    out.extend_from_slice(&payload);
    Ok(out)
}

/// Decode one frame from the front of `bytes`. Returns the request id,
/// the message, and the number of bytes consumed (so buffered callers can
/// advance past the frame).
pub fn decode_frame(bytes: &[u8]) -> Result<(u64, Message, usize), WireError> {
    if bytes.len() < HEADER_LEN {
        return Err(WireError::Truncated {
            context: "frame header".into(),
        });
    }
    let mut header = [0u8; HEADER_LEN];
    header.copy_from_slice(&bytes[..HEADER_LEN]);
    let h = parse_header(&header)?;
    let total = HEADER_LEN + h.payload_len as usize;
    if bytes.len() < total {
        return Err(WireError::Truncated {
            context: "frame payload".into(),
        });
    }
    let msg = decode_payload(h.kind, &bytes[HEADER_LEN..total])?;
    Ok((h.request_id, msg, total))
}

/// Encode and write one frame to a stream.
pub fn write_frame<W: Write + ?Sized>(
    w: &mut W,
    request_id: u64,
    msg: &Message,
) -> Result<(), WireError> {
    let bytes = encode_frame(request_id, msg)?;
    w.write_all(&bytes).map_err(|e| io_err("frame write", &e))?;
    w.flush().map_err(|e| io_err("frame flush", &e))?;
    Ok(())
}

/// Read one complete frame from a stream. A clean EOF before the first
/// header byte surfaces as `Truncated { context: "frame header" }`.
pub fn read_frame<R: Read + ?Sized>(r: &mut R) -> Result<(u64, Message), WireError> {
    let mut header = [0u8; HEADER_LEN];
    r.read_exact(&mut header)
        .map_err(|e| io_err("frame header", &e))?;
    let h = parse_header(&header)?;
    let mut payload = vec![0u8; h.payload_len as usize];
    r.read_exact(&mut payload)
        .map_err(|e| io_err("frame payload", &e))?;
    let msg = decode_payload(h.kind, &payload)?;
    Ok((h.request_id, msg))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: &Message) -> Message {
        let bytes = encode_frame(42, msg).expect("encode");
        let (id, decoded, used) = decode_frame(&bytes).expect("decode");
        assert_eq!(id, 42);
        assert_eq!(used, bytes.len());
        assert_eq!(
            encode_frame(42, &decoded).expect("re-encode"),
            bytes,
            "re-encode differs"
        );
        decoded
    }

    #[test]
    fn empty_payload_kinds_roundtrip() {
        for msg in [
            Message::Health,
            Message::Drain,
            Message::Shutdown,
            Message::ShutdownOk,
        ] {
            roundtrip(&msg);
        }
    }

    #[test]
    fn ingest_roundtrips() {
        let msg = Message::Ingest {
            entries: vec![
                IngestEntry {
                    entity: "c-001".into(),
                    seq: Some(7),
                    values: vec![1.5, -2.0],
                },
                IngestEntry {
                    entity: "c-002".into(),
                    seq: None,
                    values: vec![],
                },
            ],
        };
        match roundtrip(&msg) {
            Message::Ingest { entries } => {
                assert_eq!(entries.len(), 2);
                assert_eq!(entries[0].seq, Some(7));
                assert_eq!(entries[1].values.len(), 0);
            }
            other => panic!("wrong kind: {other:?}"),
        }
    }

    #[test]
    fn error_frame_roundtrips() {
        let msg = Message::Error(WireFault {
            code: ErrorCode::Draining,
            message: "drain in progress".into(),
        });
        match roundtrip(&msg) {
            Message::Error(f) => assert_eq!(f.code, ErrorCode::Draining),
            other => panic!("wrong kind: {other:?}"),
        }
    }

    #[test]
    fn bad_magic_is_typed() {
        let mut bytes = encode_frame(1, &Message::Health).expect("encode");
        bytes[0] = b'X';
        assert!(matches!(decode_frame(&bytes), Err(WireError::BadMagic(_))));
    }

    #[test]
    fn unsupported_version_is_typed() {
        let mut bytes = encode_frame(1, &Message::Health).expect("encode");
        bytes[4] = 9;
        assert!(matches!(
            decode_frame(&bytes),
            Err(WireError::UnsupportedVersion(9))
        ));
    }

    #[test]
    fn oversized_length_rejected_without_allocation() {
        let mut bytes = encode_frame(1, &Message::Health).expect("encode");
        bytes[16..20].copy_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
        assert!(matches!(
            decode_frame(&bytes),
            Err(WireError::Oversized { .. })
        ));
    }

    #[test]
    fn truncation_is_typed() {
        let bytes = encode_frame(
            1,
            &Message::Forecast {
                ids: vec!["a".into()],
            },
        )
        .expect("encode");
        for cut in 0..bytes.len() {
            let err = decode_frame(&bytes[..cut]).expect_err("must fail");
            assert!(
                matches!(err, WireError::Truncated { .. }),
                "cut {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn implausible_count_rejected() {
        // Hand-build a Forecast payload claiming u32::MAX ids.
        let mut payload = Vec::new();
        wire::write_u32(&mut payload, u32::MAX).expect("write");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&WIRE_MAGIC);
        bytes.extend_from_slice(&WIRE_VERSION.to_le_bytes());
        bytes.push(3);
        bytes.push(0);
        bytes.extend_from_slice(&1u64.to_le_bytes());
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&payload);
        assert!(matches!(decode_frame(&bytes), Err(WireError::Malformed(_))));
    }

    #[test]
    fn streamed_read_matches_buffered_decode() {
        let msg = Message::IngestOk {
            accepted: 3,
            unknown: vec!["u".into()],
            errors: vec![("e".into(), "boom".into())],
        };
        let bytes = encode_frame(9, &msg).expect("encode");
        let mut cursor = &bytes[..];
        let (id, decoded) = read_frame(&mut cursor).expect("read");
        assert_eq!(id, 9);
        assert_eq!(encode_frame(9, &decoded).expect("re-encode"), bytes);
    }
}
