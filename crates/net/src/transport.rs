//! Pluggable transport seam for the distributed serving tier.
//!
//! Every byte the tier moves — client requests, node replies, checkpoint
//! streams — flows through three small traits: a [`Transport`] makes
//! outbound [`Connection`]s and binds [`Listener`]s, a listener accepts
//! inbound connections, and a connection is a blocking byte stream with
//! settable timeouts. The production implementation, [`TcpTransport`],
//! is a thin wrapper over `std::net`; the deterministic fleet simulator
//! ([`crate::sim`]) provides an in-process implementation with seeded
//! fault injection. Node servers, clients and the fleet router are all
//! written against the traits, so an entire fleet can run over either
//! without touching protocol or routing code.
//!
//! Addresses are plain strings: `host:port` for TCP, arbitrary endpoint
//! names (e.g. `n0`) for the simulator.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::time::Duration;

use crate::error::NetError;

/// A blocking, bidirectional byte stream between two endpoints.
///
/// Semantics mirror `TcpStream`: reads block until data, EOF (`Ok(0)`)
/// or the configured read timeout (`WouldBlock`/`TimedOut`); writes
/// block until accepted. Implementations must be safe to hand to a
/// dedicated connection thread.
pub trait Connection: Read + Write + Send {
    /// Set (or clear) the read timeout for subsequent reads.
    fn set_read_timeout(&mut self, d: Option<Duration>) -> io::Result<()>;

    /// Set (or clear) the write timeout for subsequent writes.
    fn set_write_timeout(&mut self, d: Option<Duration>) -> io::Result<()>;

    /// Human-readable remote endpoint, for logs and journal entries.
    fn peer(&self) -> String;
}

/// A bound, listening endpoint accepting inbound [`Connection`]s.
pub trait Listener: Send + Sync {
    /// Block until the next inbound connection (or a transport-level
    /// error; listeners must keep accepting after per-connection errors).
    fn accept(&self) -> io::Result<Box<dyn Connection>>;

    /// The resolved address peers should connect to (for TCP this
    /// carries the ephemeral port chosen at bind time).
    fn local_addr(&self) -> String;
}

/// Factory for connections and listeners over one kind of network.
pub trait Transport: Send + Sync {
    /// Open a connection to `addr`, bounded by `timeout`.
    fn connect(&self, addr: &str, timeout: Duration) -> Result<Box<dyn Connection>, NetError>;

    /// Bind a listener on `addr` (`127.0.0.1:0` picks an ephemeral TCP
    /// port; simulated transports accept arbitrary endpoint names).
    fn bind(&self, addr: &str) -> Result<Box<dyn Listener>, NetError>;
}

/// A shared transport handle, cloneable across router and nodes.
pub type SharedTransport = Arc<dyn Transport>;

/// The production transport: real TCP sockets with `TCP_NODELAY` set on
/// every connection (the protocol is strictly request/reply, so Nagle
/// only adds latency).
#[derive(Debug, Default, Clone)]
pub struct TcpTransport;

impl TcpTransport {
    /// A shared production transport.
    pub fn shared() -> SharedTransport {
        Arc::new(TcpTransport)
    }
}

fn resolve(addr: &str) -> Result<SocketAddr, NetError> {
    addr.to_socket_addrs()
        .map_err(|e| NetError::Io(format!("resolve {addr}: {e}")))?
        .next()
        .ok_or_else(|| NetError::Io(format!("address {addr} resolved to nothing")))
}

impl Transport for TcpTransport {
    fn connect(&self, addr: &str, timeout: Duration) -> Result<Box<dyn Connection>, NetError> {
        let sockaddr = resolve(addr)?;
        let stream = TcpStream::connect_timeout(&sockaddr, timeout)
            .map_err(|e| NetError::Io(format!("connect {addr}: {e}")))?;
        stream.set_nodelay(true)?;
        Ok(Box::new(TcpConnection { stream }))
    }

    fn bind(&self, addr: &str) -> Result<Box<dyn Listener>, NetError> {
        let listener =
            TcpListener::bind(addr).map_err(|e| NetError::Io(format!("bind {addr}: {e}")))?;
        let local = listener
            .local_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| addr.to_string());
        Ok(Box::new(TcpBoundListener { listener, local }))
    }
}

/// A [`Connection`] over one `TcpStream`.
struct TcpConnection {
    stream: TcpStream,
}

impl Read for TcpConnection {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.stream.read(buf)
    }
}

impl Write for TcpConnection {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.stream.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.stream.flush()
    }
}

impl Connection for TcpConnection {
    fn set_read_timeout(&mut self, d: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(d)
    }

    fn set_write_timeout(&mut self, d: Option<Duration>) -> io::Result<()> {
        self.stream.set_write_timeout(d)
    }

    fn peer(&self) -> String {
        self.stream
            .peer_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| "tcp:?".to_string())
    }
}

/// A [`Listener`] over one bound `TcpListener`.
struct TcpBoundListener {
    listener: TcpListener,
    local: String,
}

impl Listener for TcpBoundListener {
    fn accept(&self) -> io::Result<Box<dyn Connection>> {
        let (stream, _) = self.listener.accept()?;
        stream.set_nodelay(true)?;
        Ok(Box::new(TcpConnection { stream }))
    }

    fn local_addr(&self) -> String {
        self.local.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tcp_transport_roundtrips_bytes() {
        let tp = TcpTransport;
        let listener = tp.bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr();
        let server = std::thread::spawn(move || {
            let mut conn = listener.accept().expect("accept");
            let mut buf = [0u8; 5];
            conn.read_exact(&mut buf).expect("read");
            conn.write_all(&buf).expect("echo");
            conn.flush().expect("flush");
        });
        let mut conn = tp.connect(&addr, Duration::from_secs(2)).expect("connect");
        conn.write_all(b"hello").expect("write");
        let mut buf = [0u8; 5];
        conn.read_exact(&mut buf).expect("read back");
        assert_eq!(&buf, b"hello");
        assert!(conn.peer().contains("127.0.0.1"));
        server.join().expect("server thread");
    }

    #[test]
    fn tcp_connect_to_dead_port_is_io_error() {
        let tp = TcpTransport;
        // Bind then drop to get a port that is very likely closed.
        let port = {
            let l = TcpListener::bind("127.0.0.1:0").expect("bind");
            l.local_addr().expect("addr").port()
        };
        let err = tp
            .connect(&format!("127.0.0.1:{port}"), Duration::from_millis(300))
            .err()
            .expect("must fail");
        assert!(matches!(err, NetError::Io(_)), "{err:?}");
    }
}
