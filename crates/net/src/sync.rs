//! Poison-recovering lock helpers for the serving tier.
//!
//! Node servers share a `RwLock<PredictionService>` across connection
//! handler threads; a panic inside one handler must not wedge the whole
//! node, so every acquisition goes through these helpers (the analysis
//! R4 rule bans bare `.lock()`/`.read()`/`.write()` in this crate).
//! Mutex acquisition reuses [`serve::lock_recover`].

use std::sync::{Condvar, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::Duration;

pub use serve::lock_recover;

/// Wait on a condvar with a timeout, recovering from poisoning like
/// [`lock_recover`]. Returns the re-acquired guard and whether the wait
/// timed out (spurious wakeups surface as `timed_out == false`; callers
/// must re-check their predicate either way).
pub fn wait_timeout_recover<'a, T>(
    cv: &Condvar,
    guard: MutexGuard<'a, T>,
    timeout: Duration,
) -> (MutexGuard<'a, T>, bool) {
    match cv.wait_timeout(guard, timeout) {
        Ok((g, t)) => (g, t.timed_out()),
        Err(poisoned) => {
            let (g, t) = poisoned.into_inner();
            (g, t.timed_out())
        }
    }
}

/// Acquire a read guard, recovering from poisoning (a panicked writer
/// leaves the data in whatever consistent state it last reached; counters
/// and entity maps tolerate that).
pub fn read_recover<T>(l: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(|p| p.into_inner()) // lint: allow(r4) — the blessed read path
}

/// Acquire a write guard, recovering from poisoning.
pub fn write_recover<T>(l: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(|p| p.into_inner()) // lint: allow(r4) — the blessed write path
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::RwLock;

    #[test]
    fn recovers_after_writer_panic() {
        let lock = std::sync::Arc::new(RwLock::new(7u32));
        let l2 = lock.clone();
        let _ = std::thread::spawn(move || {
            let _guard = l2.write().expect("fresh lock");
            panic!("poison it");
        })
        .join();
        assert_eq!(*read_recover(&lock), 7);
        *write_recover(&lock) = 8;
        assert_eq!(*read_recover(&lock), 8);
    }
}
