//! A serving node: one sharded [`PredictionService`] behind the wire
//! protocol.
//!
//! [`NodeServer::start`] binds a listener on the configured
//! [`Transport`] (TCP by default, the in-process simulator in chaos
//! tests) and spawns a thread-per-connection accept loop. Each
//! connection handler speaks the frame protocol from [`crate::frame`]:
//! it reads a request, dispatches it against the shared service, and
//! writes exactly one reply frame with the same request id. Malformed
//! traffic gets a typed error frame and (when the stream can no longer
//! be trusted) a closed connection — never a panic or a hang.
//!
//! Mutating requests carrying an id at or above
//! [`IDEMPOTENT_ID_BASE`](crate::frame::IDEMPOTENT_ID_BASE) are
//! deduplicated: the node remembers their replies in a bounded
//! [`DedupCache`] and answers a replayed id from the cache instead of
//! re-executing, so router retries and duplicated frames have
//! exactly-once effect.
//!
//! Observability rides on the node's service: every request is timed
//! into a per-kind latency histogram in the service `Registry`
//! (`net_req_<kind>`), connections and dedup hits are counted, and
//! drain/shutdown/dedup events are journaled, all on the service's
//! injectable clock.

use std::collections::HashSet;
use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::Duration;

use cloudtrace::container::{self, ContainerConfig};
use cloudtrace::WorkloadClass;
use models::NaiveForecaster;
use obs::{EventKind, Span};
use rptcn::{PipelineConfig, Scenario};
use serve::{entity_hash, DedupCache, PredictionService, ServeError};
use tensor::Rng;
use timeseries::TimeSeriesFrame;

use crate::error::NetError;
use crate::frame::{
    decode_payload, parse_header, write_frame, ErrorCode, HealthReport, IngestEntry, Message,
    SeedSpec, WireError, WireFault, HEADER_LEN, IDEMPOTENT_ID_BASE,
};
use crate::sync::{lock_recover, read_recover, wait_timeout_recover, write_recover};
use crate::transport::{Connection, Listener, SharedTransport, TcpTransport};

/// Configuration for one serving node.
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// Listen address, e.g. `127.0.0.1:0` for an ephemeral TCP port or a
    /// bare endpoint name under a simulated transport.
    pub listen: String,
    /// Poll granularity for idle connections: how often a blocked reader
    /// wakes up to check the stop flag.
    pub idle_poll: Duration,
    /// Retained replies in the request-id dedup cache. Sized to cover
    /// in-flight retryable requests, not lifetime request count.
    pub dedup_capacity: usize,
}

impl Default for NodeConfig {
    fn default() -> Self {
        NodeConfig {
            listen: "127.0.0.1:0".into(),
            idle_poll: Duration::from_millis(50),
            dedup_capacity: 4096,
        }
    }
}

struct NodeShared {
    service: RwLock<PredictionService>,
    draining: AtomicBool,
    stop: AtomicBool,
    idle_poll: Duration,
    addr: String,
    transport: SharedTransport,
    conns: Mutex<Vec<JoinHandle<()>>>,
    dedup: Mutex<DedupState>,
    dedup_cv: Condvar,
}

/// A running node server. Dropping it shuts the node down.
pub struct NodeServer {
    shared: Arc<NodeShared>,
    accept: Option<JoinHandle<()>>,
}

impl NodeServer {
    /// Bind `config.listen` over TCP, wrap `service` and start serving.
    /// The bound address (with the resolved ephemeral port) is available
    /// via [`NodeServer::addr`].
    pub fn start(config: NodeConfig, service: PredictionService) -> Result<NodeServer, NetError> {
        Self::start_with(config, service, TcpTransport::shared())
    }

    /// Bind `config.listen` on an explicit [`Transport`] and start
    /// serving. The fleet simulator uses this to run whole fleets over
    /// an in-process network with injected faults.
    pub fn start_with(
        config: NodeConfig,
        service: PredictionService,
        transport: SharedTransport,
    ) -> Result<NodeServer, NetError> {
        let listener = transport.bind(&config.listen)?;
        let addr = listener.local_addr();
        let shared = Arc::new(NodeShared {
            service: RwLock::new(service),
            draining: AtomicBool::new(false),
            stop: AtomicBool::new(false),
            idle_poll: config.idle_poll,
            addr: addr.clone(),
            transport,
            conns: Mutex::new(Vec::new()),
            dedup: Mutex::new(DedupState {
                cache: DedupCache::new(config.dedup_capacity),
                inflight: HashSet::new(),
            }),
            dedup_cv: Condvar::new(),
        });
        let accept_shared = shared.clone();
        let accept = std::thread::Builder::new()
            .name(format!("net-accept-{addr}"))
            .spawn(move || accept_loop(listener.as_ref(), &accept_shared))
            .map_err(|e| NetError::Io(format!("spawn accept loop: {e}")))?;
        Ok(NodeServer {
            shared,
            accept: Some(accept),
        })
    }

    /// The address the node is listening on.
    pub fn addr(&self) -> String {
        self.shared.addr.clone()
    }

    /// Whether the node is draining (refusing new ingests).
    pub fn is_draining(&self) -> bool {
        self.shared.draining.load(Ordering::SeqCst)
    }

    /// Replays answered from the request-id dedup cache since start.
    pub fn dedup_hits(&self) -> u64 {
        lock_recover(&self.shared.dedup).cache.hits()
    }

    /// Ask the node to stop: no new connections, existing handlers exit
    /// at their next poll tick. Idempotent.
    pub fn shutdown(&self) {
        request_stop(&self.shared);
    }

    /// Block until the accept loop and every connection handler exited.
    /// Implies [`NodeServer::shutdown`] has been (or will be) called;
    /// called without it, this waits for a remote `Shutdown` frame.
    pub fn join(&mut self) {
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        let handles = std::mem::take(&mut *lock_recover(&self.shared.conns));
        for h in handles {
            let _ = h.join();
        }
    }

    /// Run `f` against the node-local service (for in-process tests and
    /// benchmarks inspecting stats or journals).
    pub fn with_service<T>(&self, f: impl FnOnce(&PredictionService) -> T) -> T {
        f(&read_recover(&self.shared.service))
    }
}

impl Drop for NodeServer {
    fn drop(&mut self) {
        self.shutdown();
        self.join();
    }
}

fn request_stop(shared: &NodeShared) {
    if shared.stop.swap(true, Ordering::SeqCst) {
        return;
    }
    // Unblock the accept loop with a throwaway connection.
    let _ = shared
        .transport
        .connect(&shared.addr, Duration::from_millis(200));
}

fn accept_loop(listener: &dyn Listener, shared: &Arc<NodeShared>) {
    {
        let service = read_recover(&shared.service);
        let now = now_nanos(&service);
        service.journal().emit(
            now,
            EventKind::NodeUp,
            None,
            None,
            format!("listening on {}", shared.addr),
        );
    }
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        let conn = match listener.accept() {
            Ok(c) => c,
            Err(_) => {
                if shared.stop.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
        };
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        let conn_shared = shared.clone();
        let spawned = std::thread::Builder::new()
            .name("net-conn".into())
            .spawn(move || handle_connection(conn, &conn_shared));
        match spawned {
            Ok(handle) => lock_recover(&shared.conns).push(handle),
            Err(_) => {
                // Out of threads: refuse this connection, keep serving.
            }
        }
    }
}

fn now_nanos(service: &PredictionService) -> u64 {
    service.clock().now_nanos()
}

enum Fill {
    Filled,
    CleanEof,
    Stopped,
}

/// Fill `buf` from the connection, waking every `idle_poll` to check the
/// stop flag. `allow_clean_eof` permits EOF before the first byte (idle
/// peer hung up between frames); EOF mid-buffer is always an error.
fn fill_idle(
    conn: &mut dyn Connection,
    buf: &mut [u8],
    shared: &NodeShared,
    allow_clean_eof: bool,
) -> Result<Fill, NetError> {
    let mut filled = 0usize;
    while filled < buf.len() {
        match conn.read(&mut buf[filled..]) {
            Ok(0) => {
                if filled == 0 && allow_clean_eof {
                    return Ok(Fill::CleanEof);
                }
                return Err(NetError::Wire(WireError::Truncated {
                    context: "connection closed mid-frame".into(),
                }));
            }
            Ok(n) => filled += n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if shared.stop.load(Ordering::SeqCst) {
                    return Ok(Fill::Stopped);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    Ok(Fill::Filled)
}

fn send_fault(conn: &mut dyn Connection, request_id: u64, code: ErrorCode, message: String) {
    let _ = write_frame(
        conn,
        request_id,
        &Message::Error(WireFault { code, message }),
    );
}

fn handle_connection(mut conn: Box<dyn Connection>, shared: &Arc<NodeShared>) {
    if conn.set_read_timeout(Some(shared.idle_poll)).is_err() {
        return;
    }
    {
        let service = read_recover(&shared.service);
        service.registry().counter("net_connections").inc();
        service.registry().gauge("net_open_connections").inc();
    }
    serve_connection(conn.as_mut(), shared);
    let service = read_recover(&shared.service);
    service.registry().gauge("net_open_connections").dec();
}

fn serve_connection(conn: &mut dyn Connection, shared: &Arc<NodeShared>) {
    loop {
        let mut header = [0u8; HEADER_LEN];
        match fill_idle(conn, &mut header, shared, true) {
            Ok(Fill::Filled) => {}
            Ok(Fill::CleanEof) | Ok(Fill::Stopped) | Err(_) => return,
        }
        let h = match parse_header(&header) {
            Ok(h) => h,
            Err(e) => {
                // Headers frame the stream; a bad one means we no longer
                // know where the next frame starts. Error out and close.
                let code = match e {
                    WireError::UnsupportedVersion(_) => ErrorCode::Unsupported,
                    _ => ErrorCode::Malformed,
                };
                send_fault(conn, 0, code, e.to_string());
                bump(shared, "net_malformed_frames");
                return;
            }
        };
        let mut payload = vec![0u8; h.payload_len as usize];
        match fill_idle(conn, &mut payload, shared, false) {
            Ok(Fill::Filled) => {}
            Ok(_) | Err(_) => return,
        }
        let msg = match decode_payload(h.kind, &payload) {
            Ok(m) => m,
            Err(WireError::UnknownKind(k)) => {
                // Payload was fully consumed, so the stream is still in
                // sync: answer Unsupported and keep the connection.
                send_fault(
                    conn,
                    h.request_id,
                    ErrorCode::Unsupported,
                    format!("unknown message kind {k}"),
                );
                continue;
            }
            Err(e) => {
                send_fault(conn, h.request_id, ErrorCode::Malformed, e.to_string());
                bump(shared, "net_malformed_frames");
                return;
            }
        };
        let stop_after = matches!(msg, Message::Shutdown);
        let reply = dispatch_dedup(shared, h.request_id, msg);
        if write_frame(conn, h.request_id, &reply).is_err() {
            return;
        }
        if stop_after {
            request_stop(shared);
            return;
        }
    }
}

fn bump(shared: &NodeShared, counter: &str) {
    read_recover(&shared.service)
        .registry()
        .counter(counter)
        .inc();
}

fn fault(code: ErrorCode, message: String) -> Message {
    Message::Error(WireFault { code, message })
}

fn serve_fault(e: &ServeError) -> Message {
    let code = match e {
        ServeError::UnknownEntity(_) => ErrorCode::UnknownEntity,
        ServeError::Frame(_) | ServeError::DuplicateEntity(_) => ErrorCode::Malformed,
        _ => ErrorCode::Internal,
    };
    fault(code, e.to_string())
}

/// Whether a request mutates node state and is therefore subject to
/// request-id dedup. Read-only kinds are naturally idempotent and skip
/// the cache.
fn is_mutating(msg: &Message) -> bool {
    matches!(
        msg,
        Message::Ingest { .. } | Message::Seed(_) | Message::Restore { .. } | Message::Evict { .. }
    )
}

/// Request-id dedup state: remembered replies plus the ids currently
/// executing. The in-flight set closes the get→execute→insert race: a
/// retry arriving on a fresh connection while the original request is
/// still executing on an abandoned one must wait for that execution's
/// reply instead of executing a second time.
struct DedupState {
    cache: DedupCache<Message>,
    inflight: HashSet<u64>,
}

/// How long a replayed request waits for an in-flight execution of the
/// same id before giving up and executing anyway (a liveness backstop
/// for a handler that died mid-request; in that case at-least-once is
/// the best the node can do).
const INFLIGHT_WAIT: Duration = Duration::from_millis(50);
const INFLIGHT_WAIT_ROUNDS: u32 = 100;

/// Dispatch with exactly-once protection: a mutating request whose id is
/// in the idempotent range and already cached is answered from the cache
/// (journaled as [`EventKind::DedupHit`]); one currently executing under
/// the same id on another connection is waited for and answered from its
/// reply; otherwise it executes and its non-error reply is remembered.
fn dispatch_dedup(shared: &Arc<NodeShared>, request_id: u64, msg: Message) -> Message {
    let idempotent = request_id >= IDEMPOTENT_ID_BASE && is_mutating(&msg);
    if idempotent {
        let mut rounds = 0u32;
        let mut guard = lock_recover(&shared.dedup);
        loop {
            if let Some(reply) = guard.cache.get(request_id) {
                drop(guard);
                let service = read_recover(&shared.service);
                service.registry().counter("net_dedup_hits").inc();
                service.journal().emit(
                    now_nanos(&service),
                    EventKind::DedupHit,
                    None,
                    None,
                    format!(
                        "request {request_id} ({}) replayed; answered from cache",
                        msg.kind_name()
                    ),
                );
                return reply;
            }
            if guard.inflight.insert(request_id) {
                break; // claimed: this thread executes
            }
            // Another connection is executing this id right now (ours was
            // likely abandoned after a timeout). Wait for its reply.
            rounds += 1;
            if rounds > INFLIGHT_WAIT_ROUNDS {
                guard.inflight.insert(request_id);
                break;
            }
            let (g, _) = wait_timeout_recover(&shared.dedup_cv, guard, INFLIGHT_WAIT);
            guard = g;
        }
        drop(guard);
    }
    let reply = dispatch(shared, msg);
    if idempotent {
        let mut guard = lock_recover(&shared.dedup);
        guard.inflight.remove(&request_id);
        // Error replies (draining, malformed…) are not cached: the retry
        // of a request that never executed must be allowed to execute.
        if !matches!(reply, Message::Error(_)) {
            guard.cache.insert(request_id, reply.clone());
        }
        drop(guard);
        shared.dedup_cv.notify_all();
    }
    reply
}

fn dispatch(shared: &Arc<NodeShared>, msg: Message) -> Message {
    let kind = msg.kind_name();
    let (histogram, clock) = {
        let service = read_recover(&shared.service);
        (
            service
                .registry()
                .latency_histogram(&format!("net_req_{kind}")),
            service.clock(),
        )
    };
    let span = Span::start(clock.as_ref(), &histogram);
    let reply = dispatch_inner(shared, msg);
    drop(span);
    reply
}

fn dispatch_inner(shared: &Arc<NodeShared>, msg: Message) -> Message {
    match msg {
        Message::Ingest { entries } => {
            if shared.draining.load(Ordering::SeqCst) {
                return fault(ErrorCode::Draining, "node is draining".into());
            }
            let service = read_recover(&shared.service);
            handle_ingest(&service, &entries)
        }
        Message::Forecast { ids } => {
            let service = read_recover(&shared.service);
            let refs: Vec<&str> = ids.iter().map(String::as_str).collect();
            let results = service
                .forecast_many(&refs)
                .into_iter()
                .map(|(id, r)| {
                    let outcome = match r {
                        Ok(values) => crate::frame::ForecastOutcome::Values(values),
                        Err(ServeError::UnknownEntity(_)) => crate::frame::ForecastOutcome::Unknown,
                        Err(e) => crate::frame::ForecastOutcome::Failed(e.to_string()),
                    };
                    (id, outcome)
                })
                .collect();
            Message::ForecastOk { results }
        }
        Message::Health => {
            let service = read_recover(&shared.service);
            let stats = service.stats();
            Message::HealthOk(HealthReport {
                entities: stats.total_entities() as u64,
                ingested: stats.total_ingested(),
                forecasts: stats.total_forecasts(),
                degraded: stats.shards.iter().map(|s| s.degraded as u64).sum(),
                restarts: stats.shards.iter().map(|s| s.restarts).sum(),
                draining: shared.draining.load(Ordering::SeqCst),
            })
        }
        Message::Checkpoint { ids } => {
            let service = read_recover(&shared.service);
            match service.snapshot_entities() {
                Ok(mut entities) => {
                    if !ids.is_empty() {
                        let wanted: std::collections::BTreeSet<&str> =
                            ids.iter().map(String::as_str).collect();
                        entities.retain(|(id, _)| wanted.contains(id.as_str()));
                    }
                    Message::CheckpointOk { entities }
                }
                Err(e) => serve_fault(&e),
            }
        }
        Message::Restore { entities } => {
            let mut service = write_recover(&shared.service);
            let mut installed = 0u64;
            let mut errors = Vec::new();
            for (id, state) in &entities {
                match service.install_state(id, state) {
                    Ok(()) => installed += 1,
                    Err(ServeError::DuplicateEntity(_)) => {
                        // Idempotent restore: the entity is already here
                        // (a retried migration); keep the live copy.
                        installed += 1;
                    }
                    Err(e) => errors.push((id.clone(), e.to_string())),
                }
            }
            Message::RestoreOk { installed, errors }
        }
        Message::Seed(spec) => {
            if shared.draining.load(Ordering::SeqCst) {
                return fault(ErrorCode::Draining, "node is draining".into());
            }
            let mut service = write_recover(&shared.service);
            match handle_seed(&mut service, &spec) {
                Ok((installed, already)) => Message::SeedOk { installed, already },
                Err(reply) => reply,
            }
        }
        Message::Evict { ids } => {
            let mut service = write_recover(&shared.service);
            let mut removed = 0u64;
            for id in &ids {
                match service.remove_entity(id) {
                    Ok(()) => removed += 1,
                    Err(ServeError::UnknownEntity(_)) => {}
                    Err(e) => return serve_fault(&e),
                }
            }
            Message::EvictOk { removed }
        }
        Message::Drain => {
            shared.draining.store(true, Ordering::SeqCst);
            let service = read_recover(&shared.service);
            if let Err(e) = service.flush() {
                return serve_fault(&e);
            }
            match service.snapshot_entities() {
                Ok(entities) => {
                    service.journal().emit(
                        now_nanos(&service),
                        EventKind::NodeDrained,
                        None,
                        None,
                        format!("drained {} entities", entities.len()),
                    );
                    Message::DrainOk { entities }
                }
                Err(e) => serve_fault(&e),
            }
        }
        Message::Shutdown => {
            let service = read_recover(&shared.service);
            service.journal().emit(
                now_nanos(&service),
                EventKind::NodeDown,
                None,
                None,
                "shutdown requested".into(),
            );
            Message::ShutdownOk
        }
        // Reply kinds arriving as requests are protocol misuse.
        other => fault(
            ErrorCode::Unsupported,
            format!("{} is a reply kind, not a request", other.kind_name()),
        ),
    }
}

fn handle_ingest(service: &PredictionService, entries: &[IngestEntry]) -> Message {
    let mut accepted = 0u64;
    let mut unknown = Vec::new();
    let mut errors = Vec::new();
    for e in entries {
        let result = match e.seq {
            Some(seq) => service.ingest_at(&e.entity, seq, e.values.clone()),
            None => service.ingest(&e.entity, e.values.clone()),
        };
        match result {
            Ok(()) => accepted += 1,
            Err(ServeError::UnknownEntity(_)) => unknown.push(e.entity.clone()),
            Err(err) => errors.push((e.entity.clone(), err.to_string())),
        }
    }
    Message::IngestOk {
        accepted,
        unknown,
        errors,
    }
}

/// Bootstrap series length must leave the pipeline enough clean rows.
fn seed_pipeline_config(spec: &SeedSpec) -> PipelineConfig {
    PipelineConfig {
        scenario: Scenario::Uni,
        window: spec.window as usize,
        horizon: 1,
        ..PipelineConfig::default()
    }
}

/// Deterministic single-column bootstrap for one entity: any node (or a
/// router re-seeding after failover) derives the identical series from
/// the spec seed and the entity id alone.
pub fn seed_bootstrap(spec_seed: u64, id: &str, len: usize) -> Result<TimeSeriesFrame, ServeError> {
    let seed = spec_seed ^ entity_hash(id);
    let cfg = ContainerConfig::new(WorkloadClass::OnlineService, len, seed);
    let mut rng = Rng::seed_from(seed);
    let cpu = container::cpu_series(&cfg, &mut rng);
    TimeSeriesFrame::from_columns(&[("cpu_util_percent", cpu)])
        .map_err(|e| ServeError::Frame(e.to_string()))
}

fn handle_seed(
    service: &mut PredictionService,
    spec: &SeedSpec,
) -> Result<(u64, Vec<String>), Message> {
    let window = spec.window as usize;
    let len = spec.bootstrap_len as usize;
    if window == 0 || len < (window + 1) * 3 {
        return Err(fault(
            ErrorCode::Malformed,
            format!("bootstrap_len {len} too short for window {window}"),
        ));
    }
    let cfg = seed_pipeline_config(spec);
    let mut installed = 0u64;
    const CHUNK: usize = 2048;
    let mut already = Vec::new();
    let mut fresh: Vec<&String> = Vec::new();
    for id in &spec.ids {
        if service.contains_entity(id) {
            already.push(id.clone());
        } else {
            fresh.push(id);
        }
    }
    for chunk in fresh.chunks(CHUNK) {
        let mut frames: Vec<(&str, TimeSeriesFrame)> = Vec::with_capacity(chunk.len());
        for id in chunk {
            let frame = seed_bootstrap(spec.seed, id, len).map_err(|e| serve_fault(&e))?;
            frames.push((id.as_str(), frame));
        }
        if frames.is_empty() {
            continue;
        }
        service
            .add_entities_shared(&frames, cfg.clone(), Box::new(NaiveForecaster::new()))
            .map_err(|e| serve_fault(&e))?;
        installed += frames.len() as u64;
    }
    Ok((installed, already))
}
