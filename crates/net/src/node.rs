//! A serving node: one sharded [`PredictionService`] behind the wire
//! protocol.
//!
//! [`NodeServer::start`] binds a TCP listener and spawns a
//! thread-per-connection accept loop. Each connection handler speaks the
//! frame protocol from [`crate::frame`]: it reads a request, dispatches
//! it against the shared service, and writes exactly one reply frame
//! with the same request id. Malformed traffic gets a typed error frame
//! and (when the stream can no longer be trusted) a closed connection —
//! never a panic or a hang.
//!
//! Observability rides on the node's service: every request is timed
//! into a per-kind latency histogram in the service `Registry`
//! (`net_req_<kind>`), connections are counted, and drain/shutdown are
//! journaled, all on the service's injectable clock.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::Duration;

use cloudtrace::container::{self, ContainerConfig};
use cloudtrace::WorkloadClass;
use models::NaiveForecaster;
use obs::{EventKind, Span};
use rptcn::{PipelineConfig, Scenario};
use serve::{entity_hash, PredictionService, ServeError};
use tensor::Rng;
use timeseries::TimeSeriesFrame;

use crate::error::NetError;
use crate::frame::{
    decode_payload, parse_header, write_frame, ErrorCode, HealthReport, IngestEntry, Message,
    SeedSpec, WireError, WireFault, HEADER_LEN,
};
use crate::sync::{lock_recover, read_recover, write_recover};

/// Configuration for one serving node.
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// Listen address, e.g. `127.0.0.1:0` for an ephemeral port.
    pub listen: String,
    /// Poll granularity for idle connections: how often a blocked reader
    /// wakes up to check the stop flag.
    pub idle_poll: Duration,
}

impl Default for NodeConfig {
    fn default() -> Self {
        NodeConfig {
            listen: "127.0.0.1:0".into(),
            idle_poll: Duration::from_millis(50),
        }
    }
}

struct NodeShared {
    service: RwLock<PredictionService>,
    draining: AtomicBool,
    stop: AtomicBool,
    idle_poll: Duration,
    addr: SocketAddr,
    conns: Mutex<Vec<JoinHandle<()>>>,
}

/// A running node server. Dropping it shuts the node down.
pub struct NodeServer {
    shared: Arc<NodeShared>,
    accept: Option<JoinHandle<()>>,
}

impl NodeServer {
    /// Bind `config.listen`, wrap `service` and start serving. The bound
    /// address (with the resolved ephemeral port) is available via
    /// [`NodeServer::addr`].
    pub fn start(config: NodeConfig, service: PredictionService) -> Result<NodeServer, NetError> {
        let listener = TcpListener::bind(&config.listen)
            .map_err(|e| NetError::Io(format!("bind {}: {e}", config.listen)))?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(NodeShared {
            service: RwLock::new(service),
            draining: AtomicBool::new(false),
            stop: AtomicBool::new(false),
            idle_poll: config.idle_poll,
            addr,
            conns: Mutex::new(Vec::new()),
        });
        let accept_shared = shared.clone();
        let accept = std::thread::Builder::new()
            .name(format!("net-accept-{addr}"))
            .spawn(move || accept_loop(&listener, &accept_shared))
            .map_err(|e| NetError::Io(format!("spawn accept loop: {e}")))?;
        Ok(NodeServer {
            shared,
            accept: Some(accept),
        })
    }

    /// The address the node is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Whether the node is draining (refusing new ingests).
    pub fn is_draining(&self) -> bool {
        self.shared.draining.load(Ordering::SeqCst)
    }

    /// Ask the node to stop: no new connections, existing handlers exit
    /// at their next poll tick. Idempotent.
    pub fn shutdown(&self) {
        request_stop(&self.shared);
    }

    /// Block until the accept loop and every connection handler exited.
    /// Implies [`NodeServer::shutdown`] has been (or will be) called;
    /// called without it, this waits for a remote `Shutdown` frame.
    pub fn join(&mut self) {
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        let handles = std::mem::take(&mut *lock_recover(&self.shared.conns));
        for h in handles {
            let _ = h.join();
        }
    }

    /// Run `f` against the node-local service (for in-process tests and
    /// benchmarks inspecting stats or journals).
    pub fn with_service<T>(&self, f: impl FnOnce(&PredictionService) -> T) -> T {
        f(&read_recover(&self.shared.service))
    }
}

impl Drop for NodeServer {
    fn drop(&mut self) {
        self.shutdown();
        self.join();
    }
}

fn request_stop(shared: &NodeShared) {
    if shared.stop.swap(true, Ordering::SeqCst) {
        return;
    }
    // Unblock the accept loop with a throwaway connection.
    let _ = TcpStream::connect_timeout(&shared.addr, Duration::from_millis(200));
}

fn accept_loop(listener: &TcpListener, shared: &Arc<NodeShared>) {
    {
        let service = read_recover(&shared.service);
        let now = now_nanos(&service);
        service.journal().emit(
            now,
            EventKind::NodeUp,
            None,
            None,
            format!("listening on {}", shared.addr),
        );
    }
    for stream in listener.incoming() {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        let stream = match stream {
            Ok(s) => s,
            Err(_) => continue,
        };
        let conn_shared = shared.clone();
        let spawned = std::thread::Builder::new()
            .name("net-conn".into())
            .spawn(move || handle_connection(stream, &conn_shared));
        match spawned {
            Ok(handle) => lock_recover(&shared.conns).push(handle),
            Err(_) => {
                // Out of threads: refuse this connection, keep serving.
            }
        }
    }
}

fn now_nanos(service: &PredictionService) -> u64 {
    service.clock().now_nanos()
}

enum Fill {
    Filled,
    CleanEof,
    Stopped,
}

/// Fill `buf` from the stream, waking every `idle_poll` to check the stop
/// flag. `allow_clean_eof` permits EOF before the first byte (idle peer
/// hung up between frames); EOF mid-buffer is always an error.
fn fill_idle(
    stream: &mut TcpStream,
    buf: &mut [u8],
    shared: &NodeShared,
    allow_clean_eof: bool,
) -> Result<Fill, NetError> {
    let mut filled = 0usize;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                if filled == 0 && allow_clean_eof {
                    return Ok(Fill::CleanEof);
                }
                return Err(NetError::Wire(WireError::Truncated {
                    context: "connection closed mid-frame".into(),
                }));
            }
            Ok(n) => filled += n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if shared.stop.load(Ordering::SeqCst) {
                    return Ok(Fill::Stopped);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    Ok(Fill::Filled)
}

fn send_fault<W: Write>(w: &mut W, request_id: u64, code: ErrorCode, message: String) {
    let _ = write_frame(w, request_id, &Message::Error(WireFault { code, message }));
}

fn handle_connection(mut stream: TcpStream, shared: &Arc<NodeShared>) {
    if stream.set_read_timeout(Some(shared.idle_poll)).is_err() || stream.set_nodelay(true).is_err()
    {
        return;
    }
    {
        let service = read_recover(&shared.service);
        service.registry().counter("net_connections").inc();
        service.registry().gauge("net_open_connections").inc();
    }
    serve_connection(&mut stream, shared);
    let service = read_recover(&shared.service);
    service.registry().gauge("net_open_connections").dec();
}

fn serve_connection(stream: &mut TcpStream, shared: &Arc<NodeShared>) {
    loop {
        let mut header = [0u8; HEADER_LEN];
        match fill_idle(stream, &mut header, shared, true) {
            Ok(Fill::Filled) => {}
            Ok(Fill::CleanEof) | Ok(Fill::Stopped) | Err(_) => return,
        }
        let h = match parse_header(&header) {
            Ok(h) => h,
            Err(e) => {
                // Headers frame the stream; a bad one means we no longer
                // know where the next frame starts. Error out and close.
                let code = match e {
                    WireError::UnsupportedVersion(_) => ErrorCode::Unsupported,
                    _ => ErrorCode::Malformed,
                };
                send_fault(stream, 0, code, e.to_string());
                bump(shared, "net_malformed_frames");
                return;
            }
        };
        let mut payload = vec![0u8; h.payload_len as usize];
        match fill_idle(stream, &mut payload, shared, false) {
            Ok(Fill::Filled) => {}
            Ok(_) | Err(_) => return,
        }
        let msg = match decode_payload(h.kind, &payload) {
            Ok(m) => m,
            Err(WireError::UnknownKind(k)) => {
                // Payload was fully consumed, so the stream is still in
                // sync: answer Unsupported and keep the connection.
                send_fault(
                    stream,
                    h.request_id,
                    ErrorCode::Unsupported,
                    format!("unknown message kind {k}"),
                );
                continue;
            }
            Err(e) => {
                send_fault(stream, h.request_id, ErrorCode::Malformed, e.to_string());
                bump(shared, "net_malformed_frames");
                return;
            }
        };
        let stop_after = matches!(msg, Message::Shutdown);
        let reply = dispatch(shared, msg);
        if write_frame(stream, h.request_id, &reply).is_err() {
            return;
        }
        if stop_after {
            request_stop(shared);
            return;
        }
    }
}

fn bump(shared: &NodeShared, counter: &str) {
    read_recover(&shared.service)
        .registry()
        .counter(counter)
        .inc();
}

fn fault(code: ErrorCode, message: String) -> Message {
    Message::Error(WireFault { code, message })
}

fn serve_fault(e: &ServeError) -> Message {
    let code = match e {
        ServeError::UnknownEntity(_) => ErrorCode::UnknownEntity,
        ServeError::Frame(_) | ServeError::DuplicateEntity(_) => ErrorCode::Malformed,
        _ => ErrorCode::Internal,
    };
    fault(code, e.to_string())
}

fn dispatch(shared: &Arc<NodeShared>, msg: Message) -> Message {
    let kind = msg.kind_name();
    let (histogram, clock) = {
        let service = read_recover(&shared.service);
        (
            service
                .registry()
                .latency_histogram(&format!("net_req_{kind}")),
            service.clock(),
        )
    };
    let span = Span::start(clock.as_ref(), &histogram);
    let reply = dispatch_inner(shared, msg);
    drop(span);
    reply
}

fn dispatch_inner(shared: &Arc<NodeShared>, msg: Message) -> Message {
    match msg {
        Message::Ingest { entries } => {
            if shared.draining.load(Ordering::SeqCst) {
                return fault(ErrorCode::Draining, "node is draining".into());
            }
            let service = read_recover(&shared.service);
            handle_ingest(&service, &entries)
        }
        Message::Forecast { ids } => {
            let service = read_recover(&shared.service);
            let refs: Vec<&str> = ids.iter().map(String::as_str).collect();
            let results = service
                .forecast_many(&refs)
                .into_iter()
                .map(|(id, r)| {
                    let outcome = match r {
                        Ok(values) => crate::frame::ForecastOutcome::Values(values),
                        Err(ServeError::UnknownEntity(_)) => crate::frame::ForecastOutcome::Unknown,
                        Err(e) => crate::frame::ForecastOutcome::Failed(e.to_string()),
                    };
                    (id, outcome)
                })
                .collect();
            Message::ForecastOk { results }
        }
        Message::Health => {
            let service = read_recover(&shared.service);
            let stats = service.stats();
            Message::HealthOk(HealthReport {
                entities: stats.total_entities() as u64,
                ingested: stats.total_ingested(),
                forecasts: stats.total_forecasts(),
                degraded: stats.shards.iter().map(|s| s.degraded as u64).sum(),
                restarts: stats.shards.iter().map(|s| s.restarts).sum(),
                draining: shared.draining.load(Ordering::SeqCst),
            })
        }
        Message::Checkpoint { ids } => {
            let service = read_recover(&shared.service);
            match service.snapshot_entities() {
                Ok(mut entities) => {
                    if !ids.is_empty() {
                        let wanted: std::collections::BTreeSet<&str> =
                            ids.iter().map(String::as_str).collect();
                        entities.retain(|(id, _)| wanted.contains(id.as_str()));
                    }
                    Message::CheckpointOk { entities }
                }
                Err(e) => serve_fault(&e),
            }
        }
        Message::Restore { entities } => {
            let mut service = write_recover(&shared.service);
            let mut installed = 0u64;
            let mut errors = Vec::new();
            for (id, state) in &entities {
                match service.install_state(id, state) {
                    Ok(()) => installed += 1,
                    Err(ServeError::DuplicateEntity(_)) => {
                        // Idempotent restore: the entity is already here
                        // (a retried migration); keep the live copy.
                        installed += 1;
                    }
                    Err(e) => errors.push((id.clone(), e.to_string())),
                }
            }
            Message::RestoreOk { installed, errors }
        }
        Message::Seed(spec) => {
            if shared.draining.load(Ordering::SeqCst) {
                return fault(ErrorCode::Draining, "node is draining".into());
            }
            let mut service = write_recover(&shared.service);
            match handle_seed(&mut service, &spec) {
                Ok(installed) => Message::SeedOk { installed },
                Err(reply) => reply,
            }
        }
        Message::Evict { ids } => {
            let mut service = write_recover(&shared.service);
            let mut removed = 0u64;
            for id in &ids {
                match service.remove_entity(id) {
                    Ok(()) => removed += 1,
                    Err(ServeError::UnknownEntity(_)) => {}
                    Err(e) => return serve_fault(&e),
                }
            }
            Message::EvictOk { removed }
        }
        Message::Drain => {
            shared.draining.store(true, Ordering::SeqCst);
            let service = read_recover(&shared.service);
            if let Err(e) = service.flush() {
                return serve_fault(&e);
            }
            match service.snapshot_entities() {
                Ok(entities) => {
                    service.journal().emit(
                        now_nanos(&service),
                        EventKind::NodeDrained,
                        None,
                        None,
                        format!("drained {} entities", entities.len()),
                    );
                    Message::DrainOk { entities }
                }
                Err(e) => serve_fault(&e),
            }
        }
        Message::Shutdown => {
            let service = read_recover(&shared.service);
            service.journal().emit(
                now_nanos(&service),
                EventKind::NodeDown,
                None,
                None,
                "shutdown requested".into(),
            );
            Message::ShutdownOk
        }
        // Reply kinds arriving as requests are protocol misuse.
        other => fault(
            ErrorCode::Unsupported,
            format!("{} is a reply kind, not a request", other.kind_name()),
        ),
    }
}

fn handle_ingest(service: &PredictionService, entries: &[IngestEntry]) -> Message {
    let mut accepted = 0u64;
    let mut unknown = Vec::new();
    let mut errors = Vec::new();
    for e in entries {
        let result = match e.seq {
            Some(seq) => service.ingest_at(&e.entity, seq, e.values.clone()),
            None => service.ingest(&e.entity, e.values.clone()),
        };
        match result {
            Ok(()) => accepted += 1,
            Err(ServeError::UnknownEntity(_)) => unknown.push(e.entity.clone()),
            Err(err) => errors.push((e.entity.clone(), err.to_string())),
        }
    }
    Message::IngestOk {
        accepted,
        unknown,
        errors,
    }
}

/// Bootstrap series length must leave the pipeline enough clean rows.
fn seed_pipeline_config(spec: &SeedSpec) -> PipelineConfig {
    PipelineConfig {
        scenario: Scenario::Uni,
        window: spec.window as usize,
        horizon: 1,
        ..PipelineConfig::default()
    }
}

/// Deterministic single-column bootstrap for one entity: any node (or a
/// router re-seeding after failover) derives the identical series from
/// the spec seed and the entity id alone.
pub fn seed_bootstrap(spec_seed: u64, id: &str, len: usize) -> Result<TimeSeriesFrame, ServeError> {
    let seed = spec_seed ^ entity_hash(id);
    let cfg = ContainerConfig::new(WorkloadClass::OnlineService, len, seed);
    let mut rng = Rng::seed_from(seed);
    let cpu = container::cpu_series(&cfg, &mut rng);
    TimeSeriesFrame::from_columns(&[("cpu_util_percent", cpu)])
        .map_err(|e| ServeError::Frame(e.to_string()))
}

fn handle_seed(service: &mut PredictionService, spec: &SeedSpec) -> Result<u64, Message> {
    let window = spec.window as usize;
    let len = spec.bootstrap_len as usize;
    if window == 0 || len < (window + 1) * 3 {
        return Err(fault(
            ErrorCode::Malformed,
            format!("bootstrap_len {len} too short for window {window}"),
        ));
    }
    let cfg = seed_pipeline_config(spec);
    let mut installed = 0u64;
    const CHUNK: usize = 2048;
    let fresh: Vec<&String> = spec
        .ids
        .iter()
        .filter(|id| !service.contains_entity(id))
        .collect();
    for chunk in fresh.chunks(CHUNK) {
        let mut frames: Vec<(&str, TimeSeriesFrame)> = Vec::with_capacity(chunk.len());
        for id in chunk {
            let frame = seed_bootstrap(spec.seed, id, len).map_err(|e| serve_fault(&e))?;
            frames.push((id.as_str(), frame));
        }
        if frames.is_empty() {
            continue;
        }
        service
            .add_entities_shared(&frames, cfg.clone(), Box::new(NaiveForecaster::new()))
            .map_err(|e| serve_fault(&e))?;
        installed += frames.len() as u64;
    }
    Ok(installed)
}
