//! Consistent-hash fleet router: the client-facing frontend of the
//! distributed serving tier.
//!
//! A [`FleetRouter`] owns the entity→node placement (an
//! [`rptcn::HashRing`] over the live node set), one connection per node,
//! and the fleet's authoritative entity list. It routes ingest and
//! forecast batches to owners, probes node health, and repairs the fleet
//! when the topology changes:
//!
//! - **Failover**: a transport error marks the node down and re-routes
//!   its keys to ring successors. Entities materialise on the successor
//!   through a deterministic re-seed (same [`crate::seed_bootstrap`]
//!   series any node can reproduce) plus a replay of the entity's most
//!   recent *acknowledged* samples from the router's bounded replay
//!   buffer — so no acknowledged ingest is ever lost, at worst a sample
//!   is applied twice (at-least-once delivery).
//! - **Warm migration**: node drain/join moves entities with their full
//!   RPTF predictor state (model weights, preprocessing, history) over
//!   Checkpoint/Restore frames, so the receiving node resumes
//!   bit-identical forecasts.
//!
//! Reliability machinery on the data path:
//!
//! - **Retry budget**: a transport error retries against the same node
//!   under the *same* request id with deterministic exponential backoff
//!   (slept on the injectable clock, so virtual-time tests pay nothing).
//!   Ids come from a router-wide counter starting at
//!   [`IDEMPOTENT_ID_BASE`], so nodes dedup re-executed mutations —
//!   a retry whose first attempt executed but lost its reply is answered
//!   from the node's cache, never applied twice.
//! - **Probe hysteresis**: a node must fail `probe_failures` consecutive
//!   health probes before it is marked down, so one dropped probe frame
//!   cannot flap a healthy node out of the ring.
//!
//! Every transition is journaled through `rptcn-obs` (node up/down/
//! drained, entities migrated) on an injectable clock, and the data path
//! keeps counters and RTT histograms in a `Registry`.

use std::collections::{BTreeMap, VecDeque};
use std::time::Duration;

use obs::{EventKind, Journal, MonotonicClock, Registry, SharedClock, Span};
use rptcn::HashRing;

use crate::client::NodeClient;
use crate::error::NetError;
use crate::frame::{
    ErrorCode, ForecastOutcome, IngestEntry, Message, SeedSpec, WireFault, IDEMPOTENT_ID_BASE,
};
use crate::transport::{SharedTransport, TcpTransport, Transport};

/// Router-side view of one node's availability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeStatus {
    /// Answering requests; in the ring.
    Up,
    /// Unreachable; still in the ring but routed around.
    Down,
    /// Gracefully drained; removed from the ring permanently.
    Drained,
}

/// Tunables for a [`FleetRouter`].
#[derive(Clone)]
pub struct RouterConfig {
    /// Virtual nodes per physical node on the hash ring.
    pub vnodes: usize,
    /// Timeout for data-path requests (connect, ingest, forecast).
    pub request_timeout: Duration,
    /// Timeout for bulk transfers (checkpoint, restore, drain, seed).
    pub bulk_timeout: Duration,
    /// Timeout for health probes (much shorter than the data path).
    pub probe_timeout: Duration,
    /// Consecutive failed probes before a node is marked down. Values
    /// above one give probe hysteresis: a single lost probe frame on a
    /// flaky link no longer flaps a healthy node out of the ring.
    pub probe_failures: u32,
    /// Same-node retries after a transport error on the data path, on
    /// top of the initial attempt. Retries reuse the request id, so
    /// nodes answer an already-executed mutation from their dedup cache.
    pub retry_budget: u32,
    /// Base delay for deterministic exponential backoff between retries:
    /// attempt `k` (1-based) sleeps `retry_backoff * 2^(k-1)` on the
    /// configured clock (instant under a `SimClock`).
    pub retry_backoff: Duration,
    /// Acknowledged samples kept per entity for failover replay;
    /// 0 disables replay (failover re-seeds from the bootstrap only).
    pub replay_window: usize,
    /// Base seed for deterministic entity bootstraps.
    pub seed: u64,
    /// Bootstrap series length for seeded entities.
    pub bootstrap_len: u32,
    /// Model input window for seeded entities.
    pub window: u32,
    /// Clock used for journal timestamps, latency spans and backoff.
    pub clock: SharedClock,
    /// Capacity of the router's event journal.
    pub journal_capacity: usize,
    /// Transport used to reach nodes (TCP by default; the deterministic
    /// fleet simulator injects its in-process transport here).
    pub transport: SharedTransport,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            vnodes: 64,
            request_timeout: Duration::from_secs(5),
            bulk_timeout: Duration::from_secs(60),
            probe_timeout: Duration::from_millis(500),
            probe_failures: 3,
            retry_budget: 2,
            retry_backoff: Duration::from_millis(25),
            replay_window: 32,
            seed: 42,
            bootstrap_len: 64,
            window: 12,
            clock: MonotonicClock::shared(),
            journal_capacity: 1024,
            transport: TcpTransport::shared(),
        }
    }
}

struct NodeHandle {
    name: String,
    addr: String,
    client: Option<NodeClient>,
    status: NodeStatus,
    fails: u32,
}

/// Accounting for one routed ingest batch.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct IngestReport {
    /// Samples acknowledged by a node (and captured for replay).
    pub accepted: u64,
    /// Samples re-routed after their owner died mid-batch.
    pub failed_over: u64,
    /// Entities re-seeded (and replayed) on a new owner.
    pub healed: u64,
    /// Per-entity hard failures as `(id, error)`.
    pub errors: Vec<(String, String)>,
}

/// How many ids travel in one Seed frame.
const SEED_CHUNK: usize = 50_000;
/// How many predictor states travel in one Restore frame.
const STATE_CHUNK: usize = 2_048;
/// Re-routing attempts per batch before giving up (covers every node in
/// a small fleet dying one after another mid-batch).
const MAX_ATTEMPTS: usize = 4;

/// Consistent-hash frontend over a set of [`crate::NodeServer`]s.
pub struct FleetRouter {
    cfg: RouterConfig,
    ring: HashRing,
    nodes: Vec<NodeHandle>,
    /// Entity → recent acknowledged samples (bounded by `replay_window`).
    /// Every entity the router ever seeded has an entry, even when replay
    /// is disabled — this is the authoritative fleet entity list.
    replay: BTreeMap<String, VecDeque<Vec<f32>>>,
    registry: Registry,
    journal: Journal,
    /// Next request id, allocated from the idempotent range so every
    /// routed request is globally unique and node-dedupable.
    next_request_id: u64,
}

impl FleetRouter {
    /// Create an empty router; add nodes with [`FleetRouter::add_node`].
    pub fn new(cfg: RouterConfig) -> Self {
        let journal = Journal::new(cfg.journal_capacity);
        FleetRouter {
            ring: HashRing::new(cfg.vnodes),
            nodes: Vec::new(),
            replay: BTreeMap::new(),
            registry: Registry::new(),
            journal,
            next_request_id: IDEMPOTENT_ID_BASE,
            cfg,
        }
    }

    /// Router metrics: routed/failed-over/healed/migrated counters, node
    /// gauge, per-kind RTT histograms.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Journal of topology events (node up/down/drained, migrations).
    pub fn journal(&self) -> &Journal {
        &self.journal
    }

    /// Status of a node by name, if known.
    pub fn node_status(&self, name: &str) -> Option<NodeStatus> {
        self.nodes.iter().find(|n| n.name == name).map(|n| n.status)
    }

    /// All nodes with their current status.
    pub fn nodes(&self) -> Vec<(String, NodeStatus)> {
        self.nodes
            .iter()
            .map(|n| (n.name.clone(), n.status))
            .collect()
    }

    /// Number of entities the router has seeded across the fleet.
    pub fn entity_count(&self) -> usize {
        self.replay.len()
    }

    /// Every entity id the router has seeded (the authoritative fleet
    /// entity list), in arbitrary order.
    pub fn entity_ids(&self) -> Vec<String> {
        self.replay.keys().cloned().collect()
    }

    /// The placement ring, for external ownership audits
    /// ([`rptcn::HashRing::audit_ownership`]).
    pub fn ring(&self) -> &HashRing {
        &self.ring
    }

    /// The acknowledged sample suffix buffered for one entity, oldest
    /// first (what failover would replay). Empty when unknown or when
    /// replay is disabled.
    pub fn replay_suffix(&self, id: &str) -> Vec<Vec<f32>> {
        self.replay
            .get(id)
            .map(|buf| buf.iter().cloned().collect())
            .unwrap_or_default()
    }

    fn alloc_id(&mut self) -> u64 {
        let id = self.next_request_id;
        self.next_request_id = self.next_request_id.wrapping_add(1).max(IDEMPOTENT_ID_BASE);
        id
    }

    fn now(&self) -> u64 {
        self.cfg.clock.now_nanos()
    }

    fn emit(&self, kind: EventKind, detail: String) {
        self.journal.emit(self.now(), kind, None, None, detail);
    }

    /// Current owner of `key` among live nodes.
    fn route(&self, key: &str) -> Result<String, NetError> {
        self.ring
            .node_for_where(key, |name| {
                self.nodes
                    .iter()
                    .any(|n| n.name == name && n.status == NodeStatus::Up)
            })
            .map(str::to_string)
            .ok_or(NetError::NoNodes)
    }

    fn idx_of(&self, name: &str) -> Result<usize, NetError> {
        self.nodes
            .iter()
            .position(|n| n.name == name)
            .ok_or_else(|| NetError::NodeDown(name.to_string()))
    }

    fn set_down(&mut self, name: &str, reason: &str) {
        let Ok(idx) = self.idx_of(name) else { return };
        if self.nodes[idx].status != NodeStatus::Up {
            return;
        }
        self.nodes[idx].status = NodeStatus::Down;
        self.nodes[idx].client = None;
        self.registry.gauge("router_nodes_up").dec();
        self.registry.counter("router_node_down_transitions").inc();
        self.emit(EventKind::NodeDown, format!("{name}: {reason}"));
    }

    /// One logical request to a named node. Allocates a globally unique
    /// request id, then makes up to `1 + retry_budget` attempts under
    /// that same id, reconnecting and backing off exponentially between
    /// attempts — nodes dedup re-executed mutations by id, so a retry of
    /// an executed-but-unacknowledged request is answered from cache.
    /// Only after the budget is exhausted is the node marked down.
    fn request_to(
        &mut self,
        name: &str,
        msg: &Message,
        timeout: Duration,
    ) -> Result<Message, NetError> {
        let id = self.alloc_id();
        let idx = self.idx_of(name)?;
        if self.nodes[idx].status == NodeStatus::Drained {
            return Err(NetError::NodeDown(name.to_string()));
        }
        let hist = self
            .registry
            .latency_histogram(&format!("router_rtt_{}", msg.kind_name()));
        let transport = self.cfg.transport.clone();
        let mut last = NetError::NodeDown(name.to_string());
        for attempt in 0..=self.cfg.retry_budget {
            if attempt > 0 {
                self.registry.counter("router_retries").inc();
                let shift = (attempt - 1).min(16);
                self.cfg
                    .clock
                    .sleep(self.cfg.retry_backoff.saturating_mul(1 << shift));
            }
            let result = {
                let _span = Span::start(self.cfg.clock.as_ref(), &hist);
                Self::try_request(
                    transport.as_ref(),
                    &mut self.nodes[idx],
                    self.cfg.request_timeout,
                    id,
                    msg,
                    timeout,
                )
            };
            match result {
                Ok(reply) => {
                    self.nodes[idx].fails = 0;
                    return Ok(reply);
                }
                Err(e) if e.is_transport() => {
                    last = e;
                }
                Err(e) => {
                    if matches!(
                        &e,
                        NetError::Remote(WireFault {
                            code: ErrorCode::Draining,
                            ..
                        })
                    ) {
                        // A node draining outside our control: route
                        // around it.
                        self.set_down(name, "remote draining");
                    }
                    return Err(e);
                }
            }
        }
        if self.cfg.retry_budget > 0 {
            self.registry.counter("router_retries_exhausted").inc();
        }
        self.set_down(name, &format!("{last} (retry budget exhausted)"));
        Err(last)
    }

    /// One attempt: connect if needed (plus one transparent reconnect
    /// for a stale cached connection) and issue the request under the
    /// caller's id.
    fn try_request(
        transport: &dyn Transport,
        node: &mut NodeHandle,
        connect_timeout: Duration,
        request_id: u64,
        msg: &Message,
        timeout: Duration,
    ) -> Result<Message, NetError> {
        let mut last = NetError::NodeDown(node.name.clone());
        for _attempt in 0..2 {
            if node.client.is_none() {
                match NodeClient::connect_with(transport, &node.addr, connect_timeout) {
                    Ok(c) => node.client = Some(c),
                    Err(e) => return Err(e),
                }
            }
            let Some(client) = node.client.as_mut() else {
                break;
            };
            match client.request_with_id(request_id, msg, timeout) {
                Ok(reply) => return Ok(reply),
                Err(e) => {
                    let transport_err = e.is_transport();
                    if transport_err {
                        node.client = None;
                    }
                    last = e;
                    if !transport_err {
                        break;
                    }
                }
            }
        }
        Err(last)
    }

    /// Register a node and (if the fleet already has entities) rebalance
    /// the keys the ring now assigns to it via warm Checkpoint/Restore
    /// migration from their previous owners.
    pub fn add_node(&mut self, name: &str, addr: &str) -> Result<(), NetError> {
        if self.idx_of(name).is_ok() {
            return Err(NetError::Protocol(format!(
                "node {name} already registered"
            )));
        }
        let client =
            NodeClient::connect_with(self.cfg.transport.as_ref(), addr, self.cfg.request_timeout)?;
        self.nodes.push(NodeHandle {
            name: name.to_string(),
            addr: addr.to_string(),
            client: Some(client),
            status: NodeStatus::Up,
            fails: 0,
        });
        // Probe before entering the ring so a dead address never owns keys.
        match self.request_to(name, &Message::Health, self.cfg.probe_timeout) {
            Ok(Message::HealthOk(_)) => {}
            Ok(other) => {
                self.nodes.pop();
                return Err(NetError::Protocol(format!(
                    "health probe answered {}",
                    other.kind_name()
                )));
            }
            Err(e) => {
                self.nodes.pop();
                return Err(e);
            }
        }
        self.ring.add_node(name);
        self.registry.gauge("router_nodes_up").inc();
        self.emit(EventKind::NodeUp, format!("{name} joined at {addr}"));
        self.rebalance_to(name)?;
        Ok(())
    }

    /// Move every entity the ring now assigns to `name` from its previous
    /// owner, with full predictor state.
    fn rebalance_to(&mut self, name: &str) -> Result<(), NetError> {
        if self.replay.is_empty() {
            return Ok(());
        }
        // Previous owner = the live owner if the new node were skipped.
        let mut moves: BTreeMap<String, Vec<String>> = BTreeMap::new();
        let ids: Vec<String> = self.replay.keys().cloned().collect();
        for id in ids {
            let Ok(owner) = self.route(&id) else { continue };
            if owner != name {
                continue;
            }
            let previous = self.ring.node_for_where(&id, |n| {
                n != name
                    && self
                        .nodes
                        .iter()
                        .any(|h| h.name == n && h.status == NodeStatus::Up)
            });
            if let Some(prev) = previous {
                moves.entry(prev.to_string()).or_default().push(id);
            }
        }
        let mut migrated = 0u64;
        for (prev, ids) in moves {
            for chunk in ids.chunks(STATE_CHUNK) {
                let reply = self.request_to(
                    &prev,
                    &Message::Checkpoint {
                        ids: chunk.to_vec(),
                    },
                    self.cfg.bulk_timeout,
                )?;
                let Message::CheckpointOk { entities } = reply else {
                    return Err(NetError::Protocol("checkpoint answered wrong kind".into()));
                };
                let n = entities.len() as u64;
                self.restore_states(name, entities)?;
                let evicted: Vec<String> = chunk.to_vec();
                self.request_to(
                    &prev,
                    &Message::Evict { ids: evicted },
                    self.cfg.bulk_timeout,
                )?;
                migrated += n;
            }
        }
        if migrated > 0 {
            self.registry.counter("router_migrated").add(migrated);
            self.emit(
                EventKind::EntityMigrated,
                format!("{migrated} entities rebalanced to {name}"),
            );
        }
        Ok(())
    }

    fn restore_states(
        &mut self,
        name: &str,
        entities: Vec<(String, rptcn::PredictorState)>,
    ) -> Result<u64, NetError> {
        let mut installed = 0u64;
        for chunk in chunk_states(entities) {
            let reply = self.request_to(
                name,
                &Message::Restore { entities: chunk },
                self.cfg.bulk_timeout,
            )?;
            match reply {
                Message::RestoreOk {
                    installed: n,
                    errors,
                } => {
                    installed += n;
                    for (id, e) in errors {
                        self.emit(
                            EventKind::EntityMigrated,
                            format!("restore {id} failed: {e}"),
                        );
                    }
                }
                other => {
                    return Err(NetError::Protocol(format!(
                        "restore answered {}",
                        other.kind_name()
                    )))
                }
            }
        }
        Ok(installed)
    }

    /// Seed entities across the fleet: each id is placed by the ring and
    /// registered on its owner from the deterministic bootstrap. Returns
    /// the number of freshly installed entities.
    pub fn seed_entities(&mut self, ids: &[String]) -> Result<u64, NetError> {
        self.seed_entities_tracked(ids).map(|(n, _)| n)
    }

    /// Like [`FleetRouter::seed_entities`], but also returns the ids the
    /// owning nodes actually installed fresh (as opposed to skipping
    /// because they already held the entity). Healing replays samples
    /// only into the fresh set — replaying into an entity that survived
    /// on its node would apply its suffix twice.
    fn seed_entities_tracked(&mut self, ids: &[String]) -> Result<(u64, Vec<String>), NetError> {
        let mut installed = 0u64;
        let mut fresh: Vec<String> = Vec::new();
        let mut pending: Vec<String> = ids.to_vec();
        let mut attempts = 0;
        while !pending.is_empty() {
            attempts += 1;
            if attempts > MAX_ATTEMPTS {
                return Err(NetError::NoNodes);
            }
            let mut groups: BTreeMap<String, Vec<String>> = BTreeMap::new();
            for id in pending.drain(..) {
                let owner = self.route(&id)?;
                groups.entry(owner).or_default().push(id);
            }
            for (node, node_ids) in groups {
                for chunk in node_ids.chunks(SEED_CHUNK) {
                    let msg = Message::Seed(SeedSpec {
                        ids: chunk.to_vec(),
                        seed: self.cfg.seed,
                        bootstrap_len: self.cfg.bootstrap_len,
                        window: self.cfg.window,
                    });
                    match self.request_to(&node, &msg, self.cfg.bulk_timeout) {
                        Ok(Message::SeedOk {
                            installed: n,
                            already,
                        }) => {
                            installed += n;
                            for id in chunk {
                                self.replay.entry(id.clone()).or_default();
                                if !already.contains(id) {
                                    fresh.push(id.clone());
                                }
                            }
                        }
                        Ok(other) => {
                            return Err(NetError::Protocol(format!(
                                "seed answered {}",
                                other.kind_name()
                            )))
                        }
                        Err(e) if e.is_transport() => {
                            // Owner died mid-seed: re-route this chunk.
                            pending.extend(chunk.iter().cloned());
                        }
                        Err(e) => return Err(e),
                    }
                }
            }
        }
        self.registry.counter("router_seeded").add(installed);
        self.registry
            .gauge("router_entities")
            .set(self.replay.len() as i64);
        Ok((installed, fresh))
    }

    fn push_replay(&mut self, id: &str, values: &[f32]) {
        let Some(buf) = self.replay.get_mut(id) else {
            return;
        };
        if self.cfg.replay_window == 0 {
            return;
        }
        buf.push_back(values.to_vec());
        while buf.len() > self.cfg.replay_window {
            buf.pop_front();
        }
    }

    /// Re-create entities on their current owner: deterministic re-seed
    /// followed by a replay of each *freshly installed* entity's
    /// acknowledged sample suffix (entities the owner already held keep
    /// their live history — replaying into them would double-apply).
    /// Finally, stale copies of the healed ids are evicted from every
    /// other live node so exactly one live node owns each entity.
    fn heal_entities(&mut self, ids: &[String]) -> Result<(), NetError> {
        if ids.is_empty() {
            return Ok(());
        }
        let (_, fresh) = self.seed_entities_tracked(ids)?;
        // Replay acknowledged suffixes into the fresh entities
        // (at-least-once delivery, exactly-once effect via request-id
        // dedup on the node).
        let mut entries = Vec::new();
        for id in &fresh {
            if let Some(buf) = self.replay.get(id) {
                for values in buf {
                    entries.push(IngestEntry {
                        entity: id.clone(),
                        seq: None,
                        values: values.clone(),
                    });
                }
            }
        }
        let mut groups: BTreeMap<String, Vec<IngestEntry>> = BTreeMap::new();
        for e in entries {
            let owner = self.route(&e.entity)?;
            groups.entry(owner).or_default().push(e);
        }
        for (node, group) in groups {
            match self.request_to(
                &node,
                &Message::Ingest { entries: group },
                self.cfg.bulk_timeout,
            ) {
                Ok(_) | Err(NetError::Remote(_)) => {}
                Err(e) if e.is_transport() => {
                    // The healing target died too; the next data-path
                    // attempt will fail over again.
                }
                Err(e) => return Err(e),
            }
        }
        self.evict_stale_copies(ids);
        self.registry.counter("router_healed").add(ids.len() as u64);
        Ok(())
    }

    /// Remove copies of `ids` from every live node that is not the
    /// current ring owner. Best-effort: an unreachable node will be
    /// cleaned up when it recovers (see [`FleetRouter::recover_node`]),
    /// and unknown ids are cheap no-ops on the node.
    fn evict_stale_copies(&mut self, ids: &[String]) {
        let live: Vec<String> = self
            .nodes
            .iter()
            .filter(|n| n.status == NodeStatus::Up)
            .map(|n| n.name.clone())
            .collect();
        for node in live {
            let stale: Vec<String> = ids
                .iter()
                .filter(|id| self.route(id).as_deref() != Ok(node.as_str()))
                .cloned()
                .collect();
            if stale.is_empty() {
                continue;
            }
            for chunk in stale.chunks(SEED_CHUNK) {
                match self.request_to(
                    &node,
                    &Message::Evict {
                        ids: chunk.to_vec(),
                    },
                    self.cfg.bulk_timeout,
                ) {
                    Ok(Message::EvictOk { removed }) if removed > 0 => {
                        self.registry.counter("router_stale_evicted").add(removed);
                    }
                    _ => {}
                }
            }
        }
    }

    /// Ingest one sample for one entity.
    pub fn ingest(&mut self, id: &str, values: Vec<f32>) -> Result<(), NetError> {
        let report = self.ingest_batch(&[(id.to_string(), values)])?;
        if let Some((entity, e)) = report.errors.into_iter().next() {
            return Err(NetError::Serve(format!("{entity}: {e}")));
        }
        Ok(())
    }

    /// Route a batch of samples to their owners, failing over and healing
    /// as needed. An entry is counted `accepted` only after a node
    /// acknowledged it AND it was captured in the replay buffer.
    pub fn ingest_batch(
        &mut self,
        entries: &[(String, Vec<f32>)],
    ) -> Result<IngestReport, NetError> {
        let mut report = IngestReport::default();
        let mut pending: Vec<(String, Vec<f32>)> = entries.to_vec();
        let mut attempts = 0;
        while !pending.is_empty() {
            attempts += 1;
            if attempts > MAX_ATTEMPTS {
                for (id, _) in pending.drain(..) {
                    report
                        .errors
                        .push((id, "exhausted routing attempts".into()));
                }
                break;
            }
            let mut groups: BTreeMap<String, Vec<(String, Vec<f32>)>> = BTreeMap::new();
            for (id, values) in pending.drain(..) {
                let owner = self.route(&id)?;
                groups.entry(owner).or_default().push((id, values));
            }
            for (node, group) in groups {
                let msg = Message::Ingest {
                    entries: group
                        .iter()
                        .map(|(id, values)| IngestEntry {
                            entity: id.clone(),
                            seq: None,
                            values: values.clone(),
                        })
                        .collect(),
                };
                match self.request_to(&node, &msg, self.cfg.request_timeout) {
                    Ok(Message::IngestOk {
                        accepted: _,
                        unknown,
                        errors,
                    }) => {
                        let mut retry: Vec<(String, Vec<f32>)> = Vec::new();
                        for (id, values) in group {
                            if unknown.contains(&id) {
                                retry.push((id, values));
                            } else if let Some((_, e)) = errors.iter().find(|(eid, _)| *eid == id) {
                                report.errors.push((id, e.clone()));
                            } else {
                                self.push_replay(&id, &values);
                                report.accepted += 1;
                            }
                        }
                        if !retry.is_empty() {
                            // The node lost (or never had) these entities:
                            // re-seed + replay, then resend the samples.
                            let ids: Vec<String> = retry.iter().map(|(id, _)| id.clone()).collect();
                            self.heal_entities(&ids)?;
                            report.healed += ids.len() as u64;
                            pending.extend(retry);
                        }
                    }
                    Ok(other) => {
                        return Err(NetError::Protocol(format!(
                            "ingest answered {}",
                            other.kind_name()
                        )))
                    }
                    Err(e)
                        if e.is_transport()
                            || matches!(
                                &e,
                                NetError::Remote(WireFault {
                                    code: ErrorCode::Draining,
                                    ..
                                })
                            ) =>
                    {
                        // Owner died (already marked down): everything in
                        // this group re-routes to ring successors. The
                        // successors won't know the entities yet and will
                        // answer `unknown`, triggering the heal path.
                        report.failed_over += group.len() as u64;
                        pending.extend(group);
                    }
                    Err(e) => return Err(e),
                }
            }
        }
        self.registry
            .counter("router_routed_ingests")
            .add(report.accepted);
        if report.failed_over > 0 {
            self.registry
                .counter("router_failed_over")
                .add(report.failed_over);
        }
        Ok(report)
    }

    /// Forecast one entity.
    pub fn forecast(&mut self, id: &str) -> Result<Vec<f32>, NetError> {
        let mut results = self.forecast_batch(&[id.to_string()]);
        match results.pop() {
            Some((_, r)) => r,
            None => Err(NetError::Serve(format!("no forecast produced for {id}"))),
        }
    }

    /// Forecast a batch of entities, failing over and healing like
    /// [`FleetRouter::ingest_batch`]. Results come back in arbitrary
    /// order, one per requested id.
    pub fn forecast_batch(&mut self, ids: &[String]) -> Vec<(String, Result<Vec<f32>, NetError>)> {
        let mut out: Vec<(String, Result<Vec<f32>, NetError>)> = Vec::with_capacity(ids.len());
        let mut pending: Vec<String> = ids.to_vec();
        let mut attempts = 0;
        while !pending.is_empty() {
            attempts += 1;
            if attempts > MAX_ATTEMPTS {
                for id in pending.drain(..) {
                    out.push((id, Err(NetError::NoNodes)));
                }
                break;
            }
            let mut groups: BTreeMap<String, Vec<String>> = BTreeMap::new();
            for id in pending.drain(..) {
                match self.route(&id) {
                    Ok(owner) => groups.entry(owner).or_default().push(id),
                    Err(e) => out.push((id, Err(e))),
                }
            }
            for (node, group) in groups {
                let msg = Message::Forecast { ids: group.clone() };
                match self.request_to(&node, &msg, self.cfg.request_timeout) {
                    Ok(Message::ForecastOk { results }) => {
                        let mut unknown: Vec<String> = Vec::new();
                        for (id, outcome) in results {
                            match outcome {
                                ForecastOutcome::Values(values) => out.push((id, Ok(values))),
                                ForecastOutcome::Unknown => unknown.push(id),
                                ForecastOutcome::Failed(e) => {
                                    out.push((id, Err(NetError::Serve(e))))
                                }
                            }
                        }
                        if !unknown.is_empty() {
                            if let Err(e) = self.heal_entities(&unknown) {
                                for id in unknown.drain(..) {
                                    out.push((id, Err(e.clone())));
                                }
                            } else {
                                pending.extend(unknown);
                            }
                        }
                    }
                    Ok(other) => {
                        let e =
                            NetError::Protocol(format!("forecast answered {}", other.kind_name()));
                        for id in group {
                            out.push((id, Err(e.clone())));
                        }
                    }
                    Err(e) if e.is_transport() => {
                        self.registry
                            .counter("router_failed_over")
                            .add(group.len() as u64);
                        pending.extend(group);
                    }
                    Err(e) => {
                        for id in group {
                            out.push((id, Err(e.clone())));
                        }
                    }
                }
            }
        }
        self.registry
            .counter("router_routed_forecasts")
            .add(out.iter().filter(|(_, r)| r.is_ok()).count() as u64);
        out
    }

    /// Probe every non-drained node with a short-deadline Health request.
    /// Consecutive failures past `probe_failures` mark a node down; a
    /// successful probe of a down node brings it back (see
    /// [`FleetRouter::recover_node`]). Returns each node's status.
    pub fn probe(&mut self) -> Vec<(String, NodeStatus)> {
        let names: Vec<String> = self.nodes.iter().map(|n| n.name.clone()).collect();
        for name in names {
            let Ok(idx) = self.idx_of(&name) else {
                continue;
            };
            if self.nodes[idx].status == NodeStatus::Drained {
                continue;
            }
            self.registry.counter("router_probes").inc();
            let was_down = self.nodes[idx].status == NodeStatus::Down;
            let probe_id = self.alloc_id();
            let transport = self.cfg.transport.clone();
            let result = Self::try_request(
                transport.as_ref(),
                &mut self.nodes[idx],
                self.cfg.probe_timeout,
                probe_id,
                &Message::Health,
                self.cfg.probe_timeout,
            );
            match result {
                Ok(Message::HealthOk(_)) => {
                    self.nodes[idx].fails = 0;
                    if was_down {
                        let _ = self.recover_node(&name);
                    }
                }
                _ => {
                    self.registry.counter("router_probe_failures").inc();
                    self.nodes[idx].fails = self.nodes[idx].fails.saturating_add(1);
                    let fails = self.nodes[idx].fails;
                    if !was_down {
                        if fails >= self.cfg.probe_failures {
                            self.set_down(
                                &name,
                                &format!(
                                    "{fails}/{} consecutive probe failures",
                                    self.cfg.probe_failures
                                ),
                            );
                        } else {
                            // Under the threshold: journal the suspicion
                            // but keep the node in the ring.
                            self.emit(
                                EventKind::NodeDown,
                                format!(
                                    "{name}: probe failure {fails}/{} (still up)",
                                    self.cfg.probe_failures
                                ),
                            );
                        }
                    }
                }
            }
        }
        self.nodes
            .iter()
            .map(|n| (n.name.clone(), n.status))
            .collect()
    }

    /// Bring a down node back: mark it up, then force-reinstall every
    /// entity the ring assigns to it (evict any stale copy, re-seed and
    /// replay), since the node missed samples while it was out.
    fn recover_node(&mut self, name: &str) -> Result<(), NetError> {
        let idx = self.idx_of(name)?;
        if self.nodes[idx].status != NodeStatus::Down {
            return Ok(());
        }
        self.nodes[idx].status = NodeStatus::Up;
        self.nodes[idx].fails = 0;
        self.registry.gauge("router_nodes_up").inc();
        self.emit(EventKind::NodeUp, format!("{name} recovered"));
        // Evict *everything* the node might still hold from before it
        // went out — both the keys the ring assigns to it (their history
        // is stale: samples kept flowing to successors) and keys it
        // inherited earlier that now live elsewhere. Unknown ids are
        // cheap skips on the node.
        let all_ids: Vec<String> = self.replay.keys().cloned().collect();
        if all_ids.is_empty() {
            return Ok(());
        }
        for chunk in all_ids.chunks(SEED_CHUNK) {
            match self.request_to(
                name,
                &Message::Evict {
                    ids: chunk.to_vec(),
                },
                self.cfg.bulk_timeout,
            ) {
                Ok(_) => {}
                Err(e) if e.is_transport() => return Ok(()),
                Err(e) => return Err(e),
            }
        }
        let ids: Vec<String> = all_ids
            .into_iter()
            .filter(|id| self.route(id).as_deref() == Ok(name))
            .collect();
        if ids.is_empty() {
            return Ok(());
        }
        self.heal_entities(&ids)?;
        self.emit(
            EventKind::EntityMigrated,
            format!("{} entities reinstalled on recovered {name}", ids.len()),
        );
        Ok(())
    }

    /// Gracefully drain a node: it stops accepting ingests, hands over
    /// its full fleet state, and its entities are restored (warm, with
    /// history) onto the remaining nodes. The drained node is removed
    /// from the ring and asked to shut down. Returns migrated entities.
    pub fn drain_node(&mut self, name: &str) -> Result<u64, NetError> {
        let idx = self.idx_of(name)?;
        if self.nodes[idx].status != NodeStatus::Up {
            return Err(NetError::NodeDown(name.to_string()));
        }
        let reply = self.request_to(name, &Message::Drain, self.cfg.bulk_timeout)?;
        let Message::DrainOk { entities } = reply else {
            return Err(NetError::Protocol("drain answered wrong kind".into()));
        };
        // Out of the ring before restoring, so states land on successors.
        let idx = self.idx_of(name)?;
        self.nodes[idx].status = NodeStatus::Drained;
        self.ring.remove_node(name);
        self.registry.gauge("router_nodes_up").dec();
        let total = entities.len() as u64;
        let mut by_owner: BTreeMap<String, Vec<(String, rptcn::PredictorState)>> = BTreeMap::new();
        for (id, state) in entities {
            let owner = self.route(&id)?;
            by_owner.entry(owner).or_default().push((id, state));
        }
        for (owner, states) in by_owner {
            self.restore_states(&owner, states)?;
        }
        self.registry.counter("router_migrated").add(total);
        self.emit(
            EventKind::NodeDrained,
            format!("{name} drained, {total} entities migrated"),
        );
        // Best-effort: tell the drained node to exit.
        let _ = self.request_to_drained(name, &Message::Shutdown);
        Ok(total)
    }

    /// Minimal request path that works on a `Drained` node (the normal
    /// path refuses them).
    fn request_to_drained(&mut self, name: &str, msg: &Message) -> Result<Message, NetError> {
        let id = self.alloc_id();
        let idx = self.idx_of(name)?;
        let transport = self.cfg.transport.clone();
        Self::try_request(
            transport.as_ref(),
            &mut self.nodes[idx],
            self.cfg.request_timeout,
            id,
            msg,
            self.cfg.request_timeout,
        )
    }

    /// Best-effort shutdown of every node still reachable.
    pub fn shutdown_fleet(&mut self) {
        let names: Vec<String> = self.nodes.iter().map(|n| n.name.clone()).collect();
        for name in names {
            let _ = self.request_to_drained(&name, &Message::Shutdown);
        }
    }
}

fn chunk_states(
    entities: Vec<(String, rptcn::PredictorState)>,
) -> Vec<Vec<(String, rptcn::PredictorState)>> {
    let mut out = Vec::new();
    let mut current = Vec::new();
    for e in entities {
        current.push(e);
        if current.len() >= STATE_CHUNK {
            out.push(std::mem::take(&mut current));
        }
    }
    if !current.is_empty() {
        out.push(current);
    }
    out
}
