//! Typed errors for the distributed serving tier: everything that can go
//! wrong between a router call and a node's reply, kept separate from the
//! pure codec errors in [`crate::frame::WireError`] so callers can tell
//! "the bytes were bad" from "the node is gone".

use std::fmt;
use std::io;

use crate::frame::{WireError, WireFault};

/// Errors surfaced by node servers, clients and the fleet router.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// Frame encoding/decoding failed (bad magic, truncation, corruption…).
    Wire(WireError),
    /// A socket operation failed (connect, read, write, timeout).
    Io(String),
    /// The peer answered with an explicit error frame.
    Remote(WireFault),
    /// The peer violated the protocol (wrong request id, unexpected reply
    /// kind) — the connection is no longer trustworthy.
    Protocol(String),
    /// The named node is unreachable after reconnect attempts and has
    /// been marked down.
    NodeDown(String),
    /// No live node is available to serve the request (empty ring or the
    /// whole fleet is down).
    NoNodes,
    /// The node-local prediction service rejected the operation.
    Serve(String),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Wire(e) => write!(f, "wire error: {e}"),
            NetError::Io(msg) => write!(f, "io error: {msg}"),
            NetError::Remote(fault) => write!(f, "remote error: {fault}"),
            NetError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            NetError::NodeDown(node) => write!(f, "node `{node}` is down"),
            NetError::NoNodes => write!(f, "no live serving node available"),
            NetError::Serve(msg) => write!(f, "serve error: {msg}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<WireError> for NetError {
    fn from(e: WireError) -> Self {
        // Transport-level EOF/timeouts surface as Io so retry logic can
        // treat "connection died" uniformly; structural decode failures
        // stay Wire.
        match e {
            WireError::Io(msg) => NetError::Io(msg),
            other => NetError::Wire(other),
        }
    }
}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> Self {
        NetError::Io(e.to_string())
    }
}

impl NetError {
    /// Whether the error means the underlying connection (or node) is
    /// unusable, as opposed to a request-scoped failure the same
    /// connection can still serve.
    pub fn is_transport(&self) -> bool {
        matches!(
            self,
            NetError::Io(_) | NetError::Protocol(_) | NetError::NodeDown(_)
        ) || matches!(self, NetError::Wire(WireError::Truncated { .. }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::ErrorCode;

    #[test]
    fn display_is_informative() {
        let e = NetError::Remote(WireFault {
            code: ErrorCode::Draining,
            message: "drain in progress".into(),
        });
        let msg = e.to_string();
        assert!(msg.contains("drain"), "{msg}");
        assert!(NetError::NodeDown("n0".into()).to_string().contains("n0"));
    }

    #[test]
    fn transport_classification() {
        assert!(NetError::Io("reset".into()).is_transport());
        assert!(NetError::Protocol("bad id".into()).is_transport());
        assert!(!NetError::Serve("unknown entity".into()).is_transport());
        assert!(!NetError::Remote(WireFault {
            code: ErrorCode::UnknownEntity,
            message: String::new()
        })
        .is_transport());
    }
}
