//! Golden tests for the exporters: a mixed deny/warn run rendered as
//! JSON and SARIF must match the checked-in files byte for byte.
//!
//! To regenerate after an intentional format change:
//! `cargo test -p rptcn-analysis --test export_golden -- --ignored`

use std::path::{Path, PathBuf};

use analysis::{check_source, export, Rule};

fn fixture_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn fixture(name: &str) -> String {
    std::fs::read_to_string(fixture_path(name))
        .unwrap_or_else(|e| panic!("read fixture {name}: {e}"))
}

/// One R7 sweep over the same source under two policy paths: the sim
/// path is deny scope, the serve path warn scope — so the report mixes
/// both severity levels deterministically.
fn mixed_diags() -> Vec<analysis::Diagnostic> {
    let src = fixture("r7_bad.rs");
    let mut diags = check_source(
        Path::new("crates/net/src/sim_mixed.rs"),
        &src,
        &[Rule::DeterminismScope],
    );
    diags.extend(check_source(
        Path::new("crates/serve/src/shard_mixed.rs"),
        &src,
        &[Rule::DeterminismScope],
    ));
    diags
}

#[test]
fn mixed_run_matches_golden_json() {
    assert_eq!(
        export::to_json(&mixed_diags()),
        fixture("golden/mixed.json")
    );
}

#[test]
fn mixed_run_matches_golden_sarif() {
    assert_eq!(
        export::to_sarif(&mixed_diags()),
        fixture("golden/mixed.sarif")
    );
}

#[test]
#[ignore = "writes the golden files; run explicitly after format changes"]
fn regenerate_goldens() {
    let diags = mixed_diags();
    std::fs::create_dir_all(fixture_path("golden")).unwrap();
    std::fs::write(fixture_path("golden/mixed.json"), export::to_json(&diags)).unwrap();
    std::fs::write(fixture_path("golden/mixed.sarif"), export::to_sarif(&diags)).unwrap();
}
