//! End-to-end tests for the lint engine: each bad fixture must trip its rule
//! at the expected line, and the clean fixture must produce zero findings
//! even with every rule enabled.

use std::path::Path;

use analysis::{check_source, Diagnostic, Rule};

fn run_fixture(name: &str, rules: &[Rule]) -> Vec<Diagnostic> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let src = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read fixture {name}: {e}"));
    check_source(Path::new(name), &src, rules)
}

fn lines_for(diags: &[Diagnostic], rule: Rule) -> Vec<usize> {
    diags
        .iter()
        .filter(|d| d.rule == rule)
        .map(|d| d.line)
        .collect()
}

#[test]
fn r1_flags_safety_less_unsafe_sites() {
    let diags = run_fixture("r1_bad.rs", &[Rule::SafetyComment]);
    // Line 5: unsafe block with no SAFETY comment.
    // Line 9: unsafe fn whose docs lack a safety note.
    assert_eq!(lines_for(&diags, Rule::SafetyComment), vec![5, 9]);
}

#[test]
fn r2_flags_each_panicking_call() {
    let diags = run_fixture("r2_bad.rs", &[Rule::NoPanicPaths]);
    // unwrap (4), expect (8), panic! (15), todo! (20).
    assert_eq!(lines_for(&diags, Rule::NoPanicPaths), vec![4, 8, 15, 20]);
}

#[test]
fn r3_flags_hot_path_alloc_and_timing_only() {
    let diags = run_fixture("r3_bad.rs", &[Rule::HotPathAlloc]);
    // Instant::now (5), Vec::new (6), to_vec (8) — all inside the marked fn.
    assert_eq!(lines_for(&diags, Rule::HotPathAlloc), vec![5, 6, 8]);
    // The unmarked sibling with identical body must stay silent, so no
    // diagnostic past the marked fn's closing brace (line 12).
    assert!(
        diags.iter().all(|d| d.line <= 12),
        "cold fn was flagged: {diags:?}"
    );
}

#[test]
fn r4_flags_bare_lock_acquisitions() {
    let diags = run_fixture("r4_bad.rs", &[Rule::LockRecover]);
    // m.lock() (6) and l.read() (11).
    assert_eq!(lines_for(&diags, Rule::LockRecover), vec![6, 11]);
}

#[test]
fn r5_flags_undocumented_public_items() {
    let diags = run_fixture("r5_bad.rs", &[Rule::MissingDocs]);
    // struct Widget (3), fn poke (8), enum Mode (13), const LIMIT (18).
    assert_eq!(lines_for(&diags, Rule::MissingDocs), vec![3, 8, 13, 18]);
}

#[test]
fn r6_flags_both_directions_of_a_lock_cycle_and_reacquisition() {
    let diags = run_fixture("r6_bad.rs", &[Rule::LockOrder]);
    // rx→stats (22) and stats→rx (30) form the cycle; the queue
    // re-acquisition surfaces at the call site (38) via one-level inlining.
    assert_eq!(lines_for(&diags, Rule::LockOrder), vec![22, 30, 38]);
    assert!(
        diags[2].message.contains("re-acquired"),
        "inlined self-edge should name reentrancy: {}",
        diags[2].message
    );
}

#[test]
fn r7_flags_clocks_rng_threads_and_hash_iteration_only() {
    let diags = run_fixture("r7_bad.rs", &[Rule::DeterminismScope]);
    // Instant::now (16), SystemTime::now (17), thread_rng (18),
    // available_parallelism (19), for-in over the HashMap (20),
    // .keys() on it (23). The BTreeMap loop (27) and the sorted
    // drain (31–32) must stay silent.
    assert_eq!(
        lines_for(&diags, Rule::DeterminismScope),
        vec![16, 17, 18, 19, 20, 23]
    );
}

#[test]
fn r8_flags_missing_twin_and_missing_parity_reference() {
    let diags = run_fixture("r8_bad.rs", &[Rule::TwinCoverage]);
    // row_avx (17) is twinned but unreferenced from gemm_parity;
    // dot_avx (27) is missing both the twin and the reference.
    assert_eq!(lines_for(&diags, Rule::TwinCoverage), vec![17, 27, 27]);
    assert!(diags.iter().any(|d| d.message.contains("scalar twin")));
    assert!(diags.iter().any(|d| d.message.contains("*parity*")));
}

#[test]
fn r9_flags_stale_and_unknown_markers_but_not_live_ones() {
    let diags = run_fixture("r9_bad.rs", &[Rule::NoPanicPaths, Rule::AllowHygiene]);
    // Line 5's marker suppresses a real R2 finding, so it is live and
    // produces nothing; line 10 is stale, line 15 names a rule that
    // does not exist.
    assert!(lines_for(&diags, Rule::NoPanicPaths).is_empty());
    assert_eq!(lines_for(&diags, Rule::AllowHygiene), vec![10, 15]);
    assert!(diags[1].message.contains("unknown rule"));
}

#[test]
fn clean_fixture_passes_every_rule() {
    let diags = run_fixture("clean.rs", &Rule::all());
    assert!(
        diags.is_empty(),
        "clean fixture produced findings: {diags:?}"
    );
}

#[test]
fn diagnostics_render_as_file_line_rule() {
    let diags = run_fixture("r2_bad.rs", &[Rule::NoPanicPaths]);
    let rendered = diags[0].to_string();
    assert!(
        rendered.starts_with("r2_bad.rs:4: [R2]"),
        "unexpected rendering: {rendered}"
    );
}
