//! End-to-end tests for the lint engine: each bad fixture must trip its rule
//! at the expected line, and the clean fixture must produce zero findings
//! even with every rule enabled.

use std::path::Path;

use analysis::{check_source, Diagnostic, Rule};

fn run_fixture(name: &str, rules: &[Rule]) -> Vec<Diagnostic> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let src = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read fixture {name}: {e}"));
    check_source(Path::new(name), &src, rules)
}

fn lines_for(diags: &[Diagnostic], rule: Rule) -> Vec<usize> {
    diags
        .iter()
        .filter(|d| d.rule == rule)
        .map(|d| d.line)
        .collect()
}

#[test]
fn r1_flags_safety_less_unsafe_sites() {
    let diags = run_fixture("r1_bad.rs", &[Rule::SafetyComment]);
    // Line 5: unsafe block with no SAFETY comment.
    // Line 9: unsafe fn whose docs lack a safety note.
    assert_eq!(lines_for(&diags, Rule::SafetyComment), vec![5, 9]);
}

#[test]
fn r2_flags_each_panicking_call() {
    let diags = run_fixture("r2_bad.rs", &[Rule::NoPanicPaths]);
    // unwrap (4), expect (8), panic! (15), todo! (20).
    assert_eq!(lines_for(&diags, Rule::NoPanicPaths), vec![4, 8, 15, 20]);
}

#[test]
fn r3_flags_hot_path_alloc_and_timing_only() {
    let diags = run_fixture("r3_bad.rs", &[Rule::HotPathAlloc]);
    // Instant::now (5), Vec::new (6), to_vec (8) — all inside the marked fn.
    assert_eq!(lines_for(&diags, Rule::HotPathAlloc), vec![5, 6, 8]);
    // The unmarked sibling with identical body must stay silent, so no
    // diagnostic past the marked fn's closing brace (line 12).
    assert!(
        diags.iter().all(|d| d.line <= 12),
        "cold fn was flagged: {diags:?}"
    );
}

#[test]
fn r4_flags_bare_lock_acquisitions() {
    let diags = run_fixture("r4_bad.rs", &[Rule::LockRecover]);
    // m.lock() (6) and l.read() (11).
    assert_eq!(lines_for(&diags, Rule::LockRecover), vec![6, 11]);
}

#[test]
fn r5_flags_undocumented_public_items() {
    let diags = run_fixture("r5_bad.rs", &[Rule::MissingDocs]);
    // struct Widget (3), fn poke (8), enum Mode (13), const LIMIT (18).
    assert_eq!(lines_for(&diags, Rule::MissingDocs), vec![3, 8, 13, 18]);
}

#[test]
fn clean_fixture_passes_every_rule() {
    let diags = run_fixture("clean.rs", &Rule::all());
    assert!(
        diags.is_empty(),
        "clean fixture produced findings: {diags:?}"
    );
}

#[test]
fn diagnostics_render_as_file_line_rule() {
    let diags = run_fixture("r2_bad.rs", &[Rule::NoPanicPaths]);
    let rendered = diags[0].to_string();
    assert!(
        rendered.starts_with("r2_bad.rs:4: [R2]"),
        "unexpected rendering: {rendered}"
    );
}
