//! Exit-code contract of the `rptcn-analysis` binary: zero on a clean tree,
//! non-zero with `file:line` diagnostics when any fixture rule fires.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

/// Builds a throwaway workspace root containing `crates/serve/src/<file>`
/// copied from the named fixture, so the CLI's `crates/*/src` walk finds it
/// and the serve-crate rule policy (R2/R4/R5) applies.
fn scratch_root(tag: &str, fixture: &str) -> PathBuf {
    let root =
        std::env::temp_dir().join(format!("rptcn-analysis-cli-{}-{tag}", std::process::id()));
    let src_dir = root.join("crates/serve/src");
    fs::create_dir_all(&src_dir).expect("create scratch workspace");
    let from = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(fixture);
    fs::copy(&from, src_dir.join(fixture)).expect("copy fixture");
    root
}

fn run_check(root: &Path) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_rptcn-analysis"))
        .args(["check", "--root"])
        .arg(root)
        .output()
        .expect("spawn rptcn-analysis")
}

#[test]
fn check_fails_loudly_on_a_bad_tree() {
    let root = scratch_root("bad", "r2_bad.rs");
    let out = run_check(&root);
    fs::remove_dir_all(&root).ok();
    assert!(!out.status.success(), "bad tree must fail the check");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("r2_bad.rs:4: [R2]"),
        "diagnostics must carry file:line: {stdout}"
    );
}

#[test]
fn check_passes_on_a_clean_tree() {
    let root = scratch_root("clean", "clean.rs");
    let out = run_check(&root);
    fs::remove_dir_all(&root).ok();
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "clean tree must pass: stdout={stdout} stderr={stderr}"
    );
}

#[test]
fn check_writes_a_sarif_report_alongside_text_diagnostics() {
    let root = scratch_root("sarif", "r2_bad.rs");
    let report = root.join("analysis.sarif");
    let out = Command::new(env!("CARGO_BIN_EXE_rptcn-analysis"))
        .args(["check", "--format", "sarif", "--out"])
        .arg(&report)
        .arg("--root")
        .arg(&root)
        .output()
        .expect("spawn rptcn-analysis");
    let sarif = fs::read_to_string(&report).expect("SARIF report must exist");
    fs::remove_dir_all(&root).ok();
    assert!(!out.status.success(), "deny findings must still fail");
    assert!(sarif.contains("\"version\": \"2.1.0\""));
    assert!(sarif.contains("\"ruleId\": \"R2\""));
    // Text diagnostics still land on stdout when --out takes the report.
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("r2_bad.rs:4: [R2]"), "stdout: {stdout}");
}

#[test]
fn baseline_gates_warn_findings_both_ways() {
    // shard.rs in serve is warn scope for R7; the fixture's hash-map
    // iteration produces warn findings only.
    let root = scratch_root("baseline", "r7_bad.rs");
    fs::rename(
        root.join("crates/serve/src/r7_bad.rs"),
        root.join("crates/serve/src/shard.rs"),
    )
    .unwrap();

    // Without a baseline file, warn findings are informational.
    let out = run_check(&root);
    assert!(
        out.status.success(),
        "warn-only tree without a baseline must pass: {}",
        String::from_utf8_lossy(&out.stdout)
    );

    // A baseline that misses the findings fails with drift diagnostics.
    fs::write(
        root.join("analysis-baseline.json"),
        "{\n  \"version\": 1,\n  \"accepted\": [\"crates/serve/src/gone.rs:1:R7\"]\n}\n",
    )
    .unwrap();
    let out = run_check(&root);
    let stdout = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(!out.status.success(), "drift must fail: {stdout}");
    assert!(
        stdout.contains("new warn finding not in baseline"),
        "{stdout}"
    );
    assert!(stdout.contains("stale baseline entry"), "{stdout}");

    // --update-baseline rewrites it; the next run is clean.
    let out = Command::new(env!("CARGO_BIN_EXE_rptcn-analysis"))
        .args(["check", "--update-baseline", "--root"])
        .arg(&root)
        .output()
        .expect("spawn rptcn-analysis");
    assert!(out.status.success(), "update run must pass");
    let out = run_check(&root);
    fs::remove_dir_all(&root).ok();
    assert!(out.status.success(), "baselined tree must pass");
}

#[test]
fn rules_lists_the_full_catalogue() {
    let out = Command::new(env!("CARGO_BIN_EXE_rptcn-analysis"))
        .arg("rules")
        .output()
        .expect("spawn rptcn-analysis");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for id in ["R1", "R2", "R3", "R4", "R5", "R6", "R7", "R8", "R9"] {
        assert!(
            stdout.contains(&format!("{id}: ")),
            "missing {id}: {stdout}"
        );
    }
}
