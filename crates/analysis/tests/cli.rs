//! Exit-code contract of the `rptcn-analysis` binary: zero on a clean tree,
//! non-zero with `file:line` diagnostics when any fixture rule fires.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

/// Builds a throwaway workspace root containing `crates/serve/src/<file>`
/// copied from the named fixture, so the CLI's `crates/*/src` walk finds it
/// and the serve-crate rule policy (R2/R4/R5) applies.
fn scratch_root(tag: &str, fixture: &str) -> PathBuf {
    let root =
        std::env::temp_dir().join(format!("rptcn-analysis-cli-{}-{tag}", std::process::id()));
    let src_dir = root.join("crates/serve/src");
    fs::create_dir_all(&src_dir).expect("create scratch workspace");
    let from = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(fixture);
    fs::copy(&from, src_dir.join(fixture)).expect("copy fixture");
    root
}

fn run_check(root: &Path) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_rptcn-analysis"))
        .args(["check", "--root"])
        .arg(root)
        .output()
        .expect("spawn rptcn-analysis")
}

#[test]
fn check_fails_loudly_on_a_bad_tree() {
    let root = scratch_root("bad", "r2_bad.rs");
    let out = run_check(&root);
    fs::remove_dir_all(&root).ok();
    assert!(!out.status.success(), "bad tree must fail the check");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("r2_bad.rs:4: [R2]"),
        "diagnostics must carry file:line: {stdout}"
    );
}

#[test]
fn check_passes_on_a_clean_tree() {
    let root = scratch_root("clean", "clean.rs");
    let out = run_check(&root);
    fs::remove_dir_all(&root).ok();
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "clean tree must pass: stdout={stdout} stderr={stderr}"
    );
}
