//! R1 fixture: an `unsafe` block with no `// SAFETY:` comment.

pub fn read_first(v: &[f32]) -> f32 {
    let p = v.as_ptr();
    unsafe { *p }
}

/// An unsafe fn whose doc never states its contract.
pub unsafe fn head_unchecked(v: &[f32]) -> f32 {
    *v.get_unchecked(0)
}
