//! R7 fixture: wall clocks, entropy RNG, bare thread counts and hash
//! iteration, next to the two blessed shapes (BTreeMap, sorted drain).

use std::collections::{BTreeMap, HashMap};
use std::time::{Instant, SystemTime};

/// Pending work keyed by entity id.
pub struct State {
    pending: HashMap<String, u32>,
    done: BTreeMap<String, u32>,
}

impl State {
    /// Every violation at once; returns a nonsense number.
    pub fn step(&mut self) -> u64 {
        let t0 = Instant::now();
        let wall = SystemTime::now();
        let seed = thread_rng();
        let workers = std::thread::available_parallelism();
        for (k, v) in &self.pending {
            let _ = (k, v);
        }
        for k in self.pending.keys() {
            let _ = k;
        }
        // Blessed: BTreeMap iteration is deterministic.
        for (k, v) in &self.done {
            let _ = (k, v);
        }
        // Blessed: hash iteration immediately followed by a sort.
        let mut ids: Vec<&String> = self.pending.keys().collect();
        ids.sort();
        let _ = (t0, wall, seed, workers);
        ids.len() as u64
    }
}
