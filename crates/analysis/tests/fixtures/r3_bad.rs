//! R3 fixture: allocation and timing inside a `// hot-path` function.

// hot-path: one call per ingested sample
pub fn score_row(xs: &[f32]) -> Vec<f32> {
    let started = std::time::Instant::now();
    let mut out = Vec::new();
    out.extend_from_slice(xs);
    let copy = xs.to_vec();
    drop(copy);
    let _elapsed = started.elapsed();
    out
}

/// Not marked: the same body is fine outside a hot path.
pub fn score_row_cold(xs: &[f32]) -> Vec<f32> {
    xs.to_vec()
}
