//! R5 fixture: public items without doc comments.

pub struct Widget {
    size: usize,
}

impl Widget {
    pub fn poke(&self) -> usize {
        self.size
    }
}

pub enum Mode {
    /// Documented variant (variants are not checked; the enum is).
    On,
}

pub const LIMIT: usize = 8;
