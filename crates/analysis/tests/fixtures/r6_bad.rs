//! R6 fixture: `rx` and `stats` acquired in opposite orders on two
//! paths, plus a `queue` re-acquisition through a one-level call.

use std::sync::{Mutex, MutexGuard};

/// Poison-recovering acquisition — the primitive the lock graph tracks.
pub fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// Shared state with three independently locked fields.
pub struct Shard {
    rx: Mutex<Vec<u32>>,
    stats: Mutex<u32>,
    queue: Mutex<Vec<u32>>,
}

impl Shard {
    /// Takes `rx` then `stats`.
    pub fn ingest(&self) {
        let g = lock_recover(&self.rx);
        let s = lock_recover(&self.stats);
        drop(s);
        drop(g);
    }

    /// Takes `stats` then `rx` — the reverse order.
    pub fn report(&self) {
        let s = lock_recover(&self.stats);
        let g = lock_recover(&self.rx);
        drop(g);
        drop(s);
    }

    /// Holds `queue` across a call into a helper that re-takes it.
    pub fn drain(&self) {
        let q = lock_recover(&self.queue);
        self.push_one(7);
        drop(q);
    }

    fn push_one(&self, v: u32) {
        lock_recover(&self.queue).push(v);
    }
}
