//! R9 fixture: one live marker, one stale marker, one unknown rule id.

/// Returns the inner value; the marker here genuinely suppresses R2.
pub fn take(v: Option<u32>) -> u32 {
    v.unwrap() // lint: allow(r2) — fixture-blessed panic
}

/// Nothing on this line violates anything; the marker is stale.
pub fn quiet() -> u32 {
    7 // lint: allow(r2) — silences nothing
}

/// Unknown rule ids are typos, not suppressions.
pub fn typo() -> u32 {
    9 // lint: allow(r42)
}
