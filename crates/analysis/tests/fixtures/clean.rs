//! Clean fixture: every rule satisfied at once — SAFETY-commented unsafe,
//! typed errors, allocation-free hot path, recovered locks, documented
//! public items, plus one justified allowlist entry and a test module
//! (exempt from R2/R4).

use std::sync::{Mutex, MutexGuard};

/// Upper bound on retained samples.
pub const CAPACITY: usize = 64;

/// A documented public container.
pub struct Window {
    values: Vec<f32>,
}

impl Window {
    /// Documented constructor.
    pub fn new() -> Self {
        Self { values: Vec::with_capacity(CAPACITY) }
    }

    /// First element without bounds checking.
    pub fn first_unchecked(&self) -> f32 {
        debug_assert!(!self.values.is_empty());
        // SAFETY: the caller guarantees at least one element is present;
        // the debug assertion above checks it in debug builds.
        unsafe { *self.values.as_ptr() }
    }

    /// First element, `None` when empty — the typed-error path R2 wants.
    pub fn first(&self) -> Option<f32> {
        self.values.first().copied()
    }
}

impl Default for Window {
    /// Delegates to [`Window::new`].
    fn default() -> Self {
        Self::new()
    }
}

/// Poison-recovering lock helper, mirroring `serve::stats::lock_recover`.
pub fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner()) // lint: allow(r4) — the one blessed acquisition
}

// hot-path: per-sample scoring, must not allocate
/// Sum of the window (documented and allocation-free).
pub fn score(xs: &[f32]) -> f32 {
    let mut acc = 0.0;
    for &x in xs {
        acc += x;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwraps_are_fine_in_tests() {
        let w = Window::new();
        assert!(w.first().is_none());
        let m = Mutex::new(1u32);
        assert_eq!(*m.lock().unwrap(), 1);
    }
}
