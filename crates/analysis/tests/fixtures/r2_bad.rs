//! R2 fixture: panicking calls in library code.

pub fn head(v: &[f32]) -> f32 {
    *v.first().unwrap()
}

pub fn lookup(v: &[f32], i: usize) -> f32 {
    *v.get(i).expect("index in range")
}

pub fn unreachable_branch(flag: bool) -> u32 {
    if flag {
        1
    } else {
        panic!("flag must be set")
    }
}

pub fn not_done() {
    todo!()
}
