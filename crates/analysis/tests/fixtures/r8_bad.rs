//! R8 fixture: one kernel fully covered, one missing its parity test,
//! one missing both its scalar twin and the parity reference.

/// Covered: has a `_scalar` twin and a `gemm_parity` reference.
#[target_feature(enable = "avx2")]
pub unsafe fn tile_avx(a: &[f32], b: &[f32]) -> f32 {
    a[0] * b[0]
}

/// Scalar twin of `tile_avx`.
pub fn tile_avx_scalar(a: &[f32], b: &[f32]) -> f32 {
    a[0] * b[0]
}

/// Twinned but never referenced from a parity test.
#[target_feature(enable = "avx2")]
pub unsafe fn row_avx(a: &[f32]) -> f32 {
    a[0]
}

/// Scalar twin of `row_avx`.
pub fn row_avx_scalar(a: &[f32]) -> f32 {
    a[0]
}

/// Calls intrinsics directly; no twin, no parity reference.
pub unsafe fn dot_avx(a: &[f32]) -> f32 {
    let v = _mm256_loadu_ps(a.as_ptr());
    _mm256_cvtss_f32(v)
}

mod gemm_parity {
    use super::{tile_avx, tile_avx_scalar};

    fn check() {
        let a = [1.0f32; 8];
        let fast = unsafe { tile_avx(&a, &a) };
        assert_eq!(fast, tile_avx_scalar(&a, &a));
    }
}
