//! R4 fixture: bare lock acquisitions instead of `lock_recover`.

use std::sync::{Mutex, RwLock};

pub fn bump(m: &Mutex<u64>) {
    let mut guard = m.lock().unwrap();
    *guard += 1;
}

pub fn peek(l: &RwLock<u64>) -> u64 {
    *l.read().unwrap()
}
