//! Machine-readable diagnostic output: a compact JSON report, a SARIF
//! 2.1.0 log (what CI uploads as an artifact), and the warn-finding
//! baseline format.
//!
//! Everything is hand-rolled — the offline build vendors every
//! dependency, so there is no serde. Output is deterministic: findings
//! are emitted in the caller's order (the workspace walk sorts by
//! `(file, line, rule)`), and object keys are fixed.

use std::path::Path;

use crate::rules::{severity, Diagnostic, Rule, Severity};

/// JSON-escape `s` into `out` (quotes, backslashes, control bytes).
fn esc(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// Forward-slashed display path for a diagnostic.
fn uri(file: &Path) -> String {
    file.to_string_lossy().replace('\\', "/")
}

/// Count of deny- and warn-level findings, in that order.
pub fn severity_counts(diags: &[Diagnostic]) -> (usize, usize) {
    let mut deny = 0;
    let mut warn = 0;
    for d in diags {
        match severity(d.rule, &d.file) {
            Severity::Deny => deny += 1,
            Severity::Warn => warn += 1,
        }
    }
    (deny, warn)
}

/// The compact JSON report: tool id, one object per finding with its
/// resolved severity, and a deny/warn summary.
pub fn to_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("{\n  \"tool\": \"rptcn-analysis\",\n  \"findings\": [");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {\"file\": \"");
        esc(&uri(&d.file), &mut out);
        out.push_str(&format!(
            "\", \"line\": {}, \"rule\": \"{}\", \"severity\": \"{}\", \"message\": \"",
            d.line,
            d.rule.id(),
            severity(d.rule, &d.file).label()
        ));
        esc(&d.message, &mut out);
        out.push_str("\"}");
    }
    if !diags.is_empty() {
        out.push_str("\n  ");
    }
    let (deny, warn) = severity_counts(diags);
    out.push_str(&format!(
        "],\n  \"summary\": {{\"deny\": {deny}, \"warn\": {warn}}}\n}}\n"
    ));
    out
}

/// A minimal SARIF 2.1.0 log: one run, the full rule catalogue as
/// `tool.driver.rules`, one `result` per finding (deny → `error`,
/// warn → `warning`).
pub fn to_sarif(diags: &[Diagnostic]) -> String {
    let mut out = String::from(
        "{\n  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n  \"version\": \"2.1.0\",\n  \"runs\": [\n    {\n      \"tool\": {\n        \"driver\": {\n          \"name\": \"rptcn-analysis\",\n          \"rules\": [",
    );
    for (i, rule) in Rule::all().into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n            {{\"id\": \"{}\", \"shortDescription\": {{\"text\": \"",
            rule.id()
        ));
        esc(rule.describe(), &mut out);
        out.push_str("\"}}");
    }
    out.push_str("\n          ]\n        }\n      },\n      \"results\": [");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let level = match severity(d.rule, &d.file) {
            Severity::Deny => "error",
            Severity::Warn => "warning",
        };
        out.push_str(&format!(
            "\n        {{\"ruleId\": \"{}\", \"level\": \"{level}\", \"message\": {{\"text\": \"",
            d.rule.id()
        ));
        esc(&d.message, &mut out);
        out.push_str(
            "\"}, \"locations\": [{\"physicalLocation\": {\"artifactLocation\": {\"uri\": \"",
        );
        esc(&uri(&d.file), &mut out);
        out.push_str(&format!(
            "\"}}, \"region\": {{\"startLine\": {}}}}}}}]}}",
            d.line
        ));
    }
    if !diags.is_empty() {
        out.push_str("\n      ");
    }
    out.push_str("]\n    }\n  ]\n}\n");
    out
}

/// Stable baseline key for a finding: `file:line:RULE`.
pub fn baseline_key(d: &Diagnostic) -> String {
    format!("{}:{}:{}", uri(&d.file), d.line, d.rule.id())
}

/// Render a baseline file from accepted warn-finding keys (sorted by the
/// caller for a stable diff).
pub fn render_baseline(keys: &[String]) -> String {
    let mut out = String::from("{\n  \"version\": 1,\n  \"accepted\": [");
    for (i, k) in keys.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    \"");
        esc(k, &mut out);
        out.push('"');
    }
    if !keys.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// Parse a baseline file back into its accepted keys. The format is the
/// `render_baseline` shape: the strings inside the `accepted` array.
/// Returns `None` when the text has no `accepted` array at all.
pub fn parse_baseline(text: &str) -> Option<Vec<String>> {
    let start = text.find("\"accepted\"")?;
    let open = text[start..].find('[')? + start;
    let close = text[open..].find(']')? + open;
    let body = &text[open + 1..close];
    let mut keys = Vec::new();
    let mut rest = body;
    while let Some(q0) = rest.find('"') {
        let tail = &rest[q0 + 1..];
        let mut key = String::new();
        let mut chars = tail.char_indices();
        let mut end = None;
        while let Some((i, c)) = chars.next() {
            match c {
                '\\' => {
                    if let Some((_, esc)) = chars.next() {
                        key.push(match esc {
                            'n' => '\n',
                            't' => '\t',
                            'r' => '\r',
                            other => other,
                        });
                    }
                }
                '"' => {
                    end = Some(i);
                    break;
                }
                c => key.push(c),
            }
        }
        let end = end?;
        keys.push(key);
        rest = &tail[end + 1..];
    }
    Some(keys)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn sample() -> Vec<Diagnostic> {
        vec![
            Diagnostic {
                file: PathBuf::from("crates/net/src/sim.rs"),
                line: 3,
                rule: Rule::DeterminismScope,
                message: "say \"hi\"".to_string(),
            },
            Diagnostic {
                file: PathBuf::from("crates/serve/src/shard.rs"),
                line: 9,
                rule: Rule::DeterminismScope,
                message: "warn here".to_string(),
            },
        ]
    }

    #[test]
    fn json_escapes_and_counts() {
        let j = to_json(&sample());
        assert!(j.contains("\"say \\\"hi\\\"\""));
        // sim.rs is deny scope for R7; shard.rs is warn scope.
        assert!(j.contains("\"summary\": {\"deny\": 1, \"warn\": 1}"));
    }

    #[test]
    fn sarif_levels_follow_severity() {
        let s = to_sarif(&sample());
        assert!(s.contains("\"level\": \"error\""));
        assert!(s.contains("\"level\": \"warning\""));
        assert!(s.contains("\"id\": \"R9\""), "rule catalogue incomplete");
    }

    #[test]
    fn baseline_round_trips() {
        let keys = vec![
            "crates/serve/src/shard.rs:9:R7".to_string(),
            "a\\b:1:R2".to_string(),
        ];
        let text = render_baseline(&keys);
        assert_eq!(parse_baseline(&text).as_deref(), Some(&keys[..]));
        assert_eq!(parse_baseline("{}"), None);
        assert_eq!(
            parse_baseline("{\"accepted\": []}").as_deref(),
            Some(&[][..])
        );
    }
}
