//! Per-function reference index derived from the item tree.
//!
//! For every function (including functions a `macro_rules!` body
//! generates, resolved per invocation site) the index records the set of
//! identifiers its body references. That is deliberately coarser than a
//! resolved call graph — field names and locals land in the set too —
//! but it is *sound* for the two uses the rules make of it: one-level
//! inlining of lock acquisitions (R6 widens, never narrows, the held-set)
//! and reachability from parity tests (R8 only needs "some test path
//! mentions this kernel").

use std::collections::{BTreeMap, BTreeSet};

use crate::item_tree::ItemTree;
use crate::lex::{Lexed, TokKind};

/// One function node in the index.
#[derive(Debug, Clone)]
pub struct FnNode {
    /// Function name (concrete; macro metavariables are resolved).
    pub name: String,
    /// File the node was defined in (repo-relative display path).
    pub file: String,
    /// 1-based definition line (for macro-generated fns: the invocation).
    pub line: usize,
    /// Identifiers referenced in the body (macro-generated fns: the macro
    /// body's concrete refs plus the other idents of the invocation).
    pub refs: BTreeSet<String>,
    /// Declared with `#[target_feature(...)]`.
    pub target_feature: bool,
    /// Body mentions `_mm*` SIMD intrinsics.
    pub intrinsics: bool,
    /// Synthesized from a macro invocation rather than a literal `fn`.
    pub from_macro: bool,
}

/// Reference index over a set of files: function name → definitions.
/// Same-name definitions (cfg pairs, macro twins) all appear.
#[derive(Debug, Default)]
pub struct FnIndex {
    /// All nodes keyed by function name.
    pub by_name: BTreeMap<String, Vec<FnNode>>,
}

impl FnIndex {
    /// Index one file's functions into the map.
    pub fn add_file(&mut self, file: &str, lexed: &Lexed, tree: &ItemTree) {
        for f in &tree.fns {
            if f.name.starts_with('$') {
                continue; // resolved below, per invocation
            }
            let mut refs = BTreeSet::new();
            let mut intrinsics = false;
            if let Some((lo, hi)) = f.body {
                for t in &lexed.tokens[lo..hi] {
                    if let TokKind::Ident(s) = &t.kind {
                        if s.starts_with("_mm") {
                            intrinsics = true;
                        }
                        if s != &f.name {
                            refs.insert(s.clone());
                        }
                    }
                }
            }
            self.push(FnNode {
                name: f.name.clone(),
                file: file.to_string(),
                line: f.line,
                refs,
                target_feature: f.target_feature,
                intrinsics,
                from_macro: false,
            });
        }
        // Macro-expansion lite: each invocation of a local macro that
        // defines `fn $meta` produces one node per fn-metavariable, named
        // by the positional argument bound to that metavariable.
        for inv in &tree.invocations {
            let Some(def) = tree.macros.iter().find(|m| m.name == inv.name) else {
                continue;
            };
            // Shared refs: the macro body's concrete identifiers plus the
            // invocation's other single-ident arguments (a driver macro
            // that takes kernel names references those kernels).
            let mut shared: BTreeSet<String> = def.body_refs.iter().cloned().collect();
            shared.extend(inv.arg_idents.iter().flatten().cloned());
            for (meta, tf) in &def.fn_params {
                let pos = def.params.iter().position(|p| p == meta);
                let Some(name) = pos
                    .and_then(|p| inv.arg_idents.get(p))
                    .and_then(|a| a.clone())
                else {
                    continue;
                };
                let mut refs = shared.clone();
                refs.remove(&name);
                self.push(FnNode {
                    name,
                    file: file.to_string(),
                    line: inv.line,
                    refs,
                    target_feature: *tf,
                    intrinsics: def.intrinsics,
                    from_macro: true,
                });
            }
        }
    }

    fn push(&mut self, node: FnNode) {
        self.by_name
            .entry(node.name.clone())
            .or_default()
            .push(node);
    }

    /// All definition sites of `name`.
    pub fn defs(&self, name: &str) -> &[FnNode] {
        self.by_name.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Every function name transitively reachable from `seeds` by
    /// following reference edges (name-level, unbounded depth).
    pub fn reachable(&self, seeds: &BTreeSet<String>) -> BTreeSet<String> {
        let mut seen: BTreeSet<String> = BTreeSet::new();
        let mut queue: Vec<String> = seeds
            .iter()
            .filter(|s| self.by_name.contains_key(*s))
            .cloned()
            .collect();
        // Seeds that are mentioned but not defined here still count as
        // "covered names" for the caller's membership test.
        seen.extend(seeds.iter().cloned());
        while let Some(name) = queue.pop() {
            for node in self.defs(&name) {
                for r in &node.refs {
                    if self.by_name.contains_key(r) && seen.insert(r.clone()) {
                        queue.push(r.clone());
                    }
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item_tree::ItemTree;
    use crate::lex::lex;

    fn index(src: &str) -> FnIndex {
        let lexed = lex(src);
        let tree = ItemTree::build(&lexed);
        let mut idx = FnIndex::default();
        idx.add_file("t.rs", &lexed, &tree);
        idx
    }

    #[test]
    fn body_refs_feed_reachability() {
        let idx = index("fn a() { b(); }\nfn b() { c(); }\nfn c() {}\nfn lonely() {}");
        let mut seeds = BTreeSet::new();
        seeds.insert("a".to_string());
        let reach = idx.reachable(&seeds);
        assert!(reach.contains("c"));
        assert!(!reach.contains("lonely"));
    }

    #[test]
    fn macro_invocations_synthesize_kernel_nodes() {
        let src = r#"
macro_rules! define_kernels {
    ($tile:ident, $row:ident, $feat:literal) => {
        #[target_feature(enable = $feat)]
        pub unsafe fn $tile() { _mm256_setzero_ps(); }
        pub unsafe fn $row() {}
    };
}
define_kernels!(tile_fma, row_fma, "fma");
define_kernels!(tile_avx, row_avx, "avx");
"#;
        let idx = index(src);
        let tile = &idx.defs("tile_fma")[0];
        assert!(tile.target_feature);
        assert!(tile.intrinsics);
        assert!(tile.from_macro);
        assert_eq!(idx.defs("row_avx").len(), 1);
        assert!(!idx.defs("row_avx")[0].target_feature);
        // Sibling args of the invocation are cross-referenced.
        assert!(tile.refs.contains("row_fma"));
    }
}
