//! A small hand-rolled Rust lexer — just enough syntax awareness for the
//! rule engine: comments (line, nested block, doc), string literals
//! (cooked, raw, byte), char literals vs lifetimes, identifiers, numbers
//! and single-character punctuation, each tagged with its 1-based source
//! line. No external parser: the vendored-deps-only build cannot pull in
//! `syn`, and the rules only need token-level structure plus brace
//! tracking.

use std::collections::{BTreeMap, BTreeSet};

/// One lexical token of the source file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (the lexer does not distinguish).
    Ident(String),
    /// Any string literal (cooked, raw or byte); contents discarded so
    /// string text can never trip a token-pattern rule.
    Str,
    /// Character literal.
    Char,
    /// Lifetime such as `'a`.
    Lifetime,
    /// Numeric literal (integer or float, any base, with suffix).
    Num,
    /// A single punctuation character.
    Punct(char),
}

/// A token plus the 1-based line it starts on.
#[derive(Debug, Clone)]
pub struct Token {
    /// Token kind and payload.
    pub kind: TokKind,
    /// 1-based source line of the token's first character.
    pub line: usize,
}

/// The lexed view of one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order (comments and whitespace stripped).
    pub tokens: Vec<Token>,
    /// Comment text per line, concatenated when a line holds several
    /// pieces. Text keeps its delimiters (`//`, `///`, `/*`…) so rules can
    /// tell doc comments from plain ones.
    pub comments: BTreeMap<usize, String>,
    /// Lines carrying at least one code token.
    pub code_lines: BTreeSet<usize>,
}

impl Lexed {
    /// True when `line` holds comment text and no code tokens.
    pub fn is_comment_only(&self, line: usize) -> bool {
        self.comments.contains_key(&line) && !self.code_lines.contains(&line)
    }

    /// Comment text on `line`, empty when there is none.
    pub fn comment_on(&self, line: usize) -> &str {
        self.comments.get(&line).map(String::as_str).unwrap_or("")
    }
}

/// Lex `src` into tokens and a per-line comment map.
pub fn lex(src: &str) -> Lexed {
    let bytes = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1usize;

    let push = |out: &mut Lexed, kind: TokKind, line: usize| {
        out.code_lines.insert(line);
        out.tokens.push(Token { kind, line });
    };
    let note_comment = |out: &mut Lexed, line: usize, text: &str| {
        let slot = out.comments.entry(line).or_default();
        if !slot.is_empty() {
            slot.push(' ');
        }
        slot.push_str(text);
    };

    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                let start = i;
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                note_comment(&mut out, line, src[start..i].trim_end());
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                // Nested block comment; record the text each line carries.
                let mut depth = 1usize;
                let mut seg_start = i;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else if bytes[i] == b'\n' {
                        note_comment(&mut out, line, src[seg_start..i].trim());
                        line += 1;
                        i += 1;
                        seg_start = i;
                    } else {
                        i += 1;
                    }
                }
                if seg_start < i {
                    note_comment(&mut out, line, src[seg_start..i].trim());
                }
            }
            b'"' => {
                let tok_line = line;
                i = skip_cooked_string(bytes, i, &mut line);
                push(&mut out, TokKind::Str, tok_line);
            }
            b'\'' => {
                let tok_line = line;
                // Lifetime (`'a`) vs char literal (`'x'`, `'\n'`, `'\u{..}'`).
                let next = bytes.get(i + 1).copied();
                let is_lifetime = match next {
                    Some(n) if n == b'_' || n.is_ascii_alphabetic() => {
                        // `'a'` is a char; `'a` followed by non-quote is a
                        // lifetime. Multi-byte idents (`'static`) always are.
                        bytes.get(i + 2) != Some(&b'\'')
                    }
                    _ => false,
                };
                if is_lifetime {
                    i += 1;
                    while i < bytes.len() && (bytes[i] == b'_' || bytes[i].is_ascii_alphanumeric())
                    {
                        i += 1;
                    }
                    push(&mut out, TokKind::Lifetime, tok_line);
                } else {
                    i = skip_char_literal(bytes, i, &mut line);
                    push(&mut out, TokKind::Char, tok_line);
                }
            }
            c if c == b'_' || c.is_ascii_alphabetic() => {
                let tok_line = line;
                let start = i;
                while i < bytes.len() && (bytes[i] == b'_' || bytes[i].is_ascii_alphanumeric()) {
                    i += 1;
                }
                let ident = &src[start..i];
                // String-literal prefixes: r"", r#""#, b"", b'', br#"..."#…
                // (`rb` is not a Rust prefix but costs nothing to accept.)
                let raw_capable = matches!(ident, "r" | "br" | "rb");
                if matches!(ident, "r" | "b" | "br" | "rb") && bytes.get(i) == Some(&b'"') {
                    // Zero-hash literal. Raw forms (`r"…"`) have no escapes
                    // and end at the first quote — routing them through the
                    // cooked scanner would mis-scan `r"…\"` — while `b"…"`
                    // escapes exactly like a cooked string.
                    i = if raw_capable {
                        skip_raw_string(bytes, i, 0, &mut line)
                    } else {
                        skip_cooked_string(bytes, i, &mut line)
                    };
                    push(&mut out, TokKind::Str, tok_line);
                } else if ident == "b" && bytes.get(i) == Some(&b'\'') {
                    // Byte char literal `b'x'` / `b'\n'`: one Char token, no
                    // stray `b` identifier.
                    i = skip_char_literal(bytes, i, &mut line);
                    push(&mut out, TokKind::Char, tok_line);
                } else if raw_capable && bytes.get(i) == Some(&b'#') {
                    let mut hashes = 0usize;
                    while bytes.get(i + hashes) == Some(&b'#') {
                        hashes += 1;
                    }
                    if bytes.get(i + hashes) == Some(&b'"') {
                        i = skip_raw_string(bytes, i + hashes, hashes, &mut line);
                        push(&mut out, TokKind::Str, tok_line);
                    } else if ident == "r" {
                        // Raw identifier `r#ident`. The payload keeps the
                        // `r#` prefix: `r#type` is *not* the `type` keyword
                        // and must never satisfy a keyword match (R5), nor
                        // can `r#unwrap` be confused with a method the rules
                        // pattern on.
                        i += 1; // consume '#'
                        let id_start = i;
                        while i < bytes.len()
                            && (bytes[i] == b'_' || bytes[i].is_ascii_alphanumeric())
                        {
                            i += 1;
                        }
                        push(
                            &mut out,
                            TokKind::Ident(format!("r#{}", &src[id_start..i])),
                            tok_line,
                        );
                    } else {
                        push(&mut out, TokKind::Ident(ident.to_string()), tok_line);
                    }
                } else {
                    push(&mut out, TokKind::Ident(ident.to_string()), tok_line);
                }
            }
            c if c.is_ascii_digit() => {
                let tok_line = line;
                i += 1;
                while i < bytes.len() {
                    let b = bytes[i];
                    if b == b'_' || b.is_ascii_alphanumeric() {
                        i += 1;
                    } else if b == b'.'
                        && bytes
                            .get(i + 1)
                            .map(|n| n.is_ascii_digit())
                            .unwrap_or(false)
                    {
                        // `1.5` continues the number; `1..n` and `1.max()`
                        // leave the dot to punctuation.
                        i += 1;
                    } else {
                        break;
                    }
                }
                push(&mut out, TokKind::Num, tok_line);
            }
            c => {
                push(&mut out, TokKind::Punct(c as char), line);
                i += 1;
            }
        }
    }
    out
}

/// Skip a cooked (escaped) string starting at the opening quote; returns
/// the index one past the closing quote.
fn skip_cooked_string(bytes: &[u8], mut i: usize, line: &mut usize) -> usize {
    i += 1; // opening quote
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Skip a raw string `"..."###` with `hashes` trailing hashes (zero for
/// `r"…"`); `i` is the opening quote. Raw strings have no escapes: the
/// literal ends at the first quote followed by `hashes` hashes.
fn skip_raw_string(bytes: &[u8], mut i: usize, hashes: usize, line: &mut usize) -> usize {
    i += 1;
    while i < bytes.len() {
        if bytes[i] == b'\n' {
            *line += 1;
            i += 1;
            continue;
        }
        if bytes[i] == b'"' {
            let mut ok = true;
            for h in 0..hashes {
                if bytes.get(i + 1 + h) != Some(&b'#') {
                    ok = false;
                    break;
                }
            }
            if ok {
                return i + 1 + hashes;
            }
        }
        i += 1;
    }
    i
}

/// Skip a char literal starting at the opening quote.
fn skip_char_literal(bytes: &[u8], mut i: usize, line: &mut usize) -> usize {
    i += 1; // opening quote
    if bytes.get(i) == Some(&b'\\') {
        i += 2; // escape lead-in plus escaped char
                // `\u{...}` spans to the closing brace.
        while i < bytes.len() && bytes[i] != b'\'' {
            i += 1;
        }
        return (i + 1).min(bytes.len());
    }
    while i < bytes.len() && bytes[i] != b'\'' {
        if bytes[i] == b'\n' {
            *line += 1;
        }
        i += 1;
    }
    (i + 1).min(bytes.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.kind {
                TokKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn comments_are_not_tokens() {
        let l = lex("let x = 1; // unwrap() here is text\n/* expect( */ let y;\n");
        assert!(idents("let x = 1; // unwrap()").contains(&"let".to_string()));
        assert!(l.comments.get(&1).is_some_and(|c| c.contains("unwrap")));
        assert!(!l
            .tokens
            .iter()
            .any(|t| matches!(&t.kind, TokKind::Ident(s) if s == "unwrap" || s == "expect")));
    }

    #[test]
    fn strings_hide_their_contents() {
        let l = lex(r##"let s = "call .unwrap() now"; let r = r#"panic!"#; "##);
        assert!(!l
            .tokens
            .iter()
            .any(|t| matches!(&t.kind, TokKind::Ident(s) if s == "unwrap" || s == "panic")));
        assert_eq!(
            l.tokens
                .iter()
                .filter(|t| matches!(t.kind, TokKind::Str))
                .count(),
            2
        );
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let l = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifetimes = l
            .tokens
            .iter()
            .filter(|t| matches!(t.kind, TokKind::Lifetime))
            .count();
        let chars = l
            .tokens
            .iter()
            .filter(|t| matches!(t.kind, TokKind::Char))
            .count();
        assert_eq!((lifetimes, chars), (2, 1));
    }

    #[test]
    fn nested_block_comments_and_lines() {
        let l = lex("a /* outer /* inner */ still */ b\nc\n");
        assert_eq!(idents("a /* x */ b"), vec!["a", "b"]);
        assert_eq!(l.tokens.len(), 3);
        assert_eq!(l.tokens[1].line, 1);
        let c = lex("x\n/* spans\ntwo lines */\ny\n");
        assert_eq!(c.tokens[1].line, 4);
        assert!(c.comments.contains_key(&2) && c.comments.contains_key(&3));
    }

    #[test]
    fn numbers_do_not_swallow_ranges_or_methods() {
        let l = lex("for i in 0..n { 1.max(2); 1.5f32; }");
        let nums = l
            .tokens
            .iter()
            .filter(|t| matches!(t.kind, TokKind::Num))
            .count();
        assert_eq!(nums, 4); // 0, 1, 2, 1.5f32
        assert!(idents("1.max(2)").contains(&"max".to_string()));
    }

    #[test]
    fn raw_identifiers_keep_their_prefix() {
        // `r#type` must not satisfy a `type` keyword match, and `r#unwrap`
        // must not look like the `unwrap` method R2 patterns on.
        let l = lex("pub r#type: u32, let r#fn = x.r#unwrap();");
        assert!(idents("let r#fn = 1;").contains(&"r#fn".to_string()));
        assert!(!l
            .tokens
            .iter()
            .any(|t| matches!(&t.kind, TokKind::Ident(s) if s == "type"
                || s == "fn"
                || s == "unwrap")));
        assert!(l
            .tokens
            .iter()
            .any(|t| matches!(&t.kind, TokKind::Ident(s) if s == "r#type")));
    }

    #[test]
    fn byte_and_raw_byte_strings_hide_their_contents() {
        let l = lex(r###"let a = b"call unwrap() now"; let b = br#"panic! expect("#; "###);
        assert!(!l
            .tokens
            .iter()
            .any(|t| matches!(&t.kind, TokKind::Ident(s) if s == "unwrap"
                || s == "panic"
                || s == "expect")));
        assert_eq!(
            l.tokens
                .iter()
                .filter(|t| matches!(t.kind, TokKind::Str))
                .count(),
            2
        );
    }

    #[test]
    fn zero_hash_raw_strings_do_not_escape() {
        // `r"…\"` ends at the quote: the backslash is a literal character,
        // not an escape. The cooked scanner would swallow the closing quote
        // and mis-lex everything after it.
        let l = lex(r#"let p = r"C:\"; x.unwrap();"#);
        assert!(l
            .tokens
            .iter()
            .any(|t| matches!(&t.kind, TokKind::Ident(s) if s == "unwrap")));
        let m = lex("let nl = b'\\n'; let c = b'x';");
        assert_eq!(
            m.tokens
                .iter()
                .filter(|t| matches!(t.kind, TokKind::Char))
                .count(),
            2
        );
        assert!(!m
            .tokens
            .iter()
            .any(|t| matches!(&t.kind, TokKind::Ident(s) if s == "b")));
    }

    #[test]
    fn line_numbers_survive_multiline_strings() {
        let l = lex("let s = \"line one\nline two\";\nlet t = 1;");
        let last = l.tokens.last().expect("tokens");
        assert_eq!(last.line, 3);
    }
}
