//! `rptcn-analysis` — workspace-native static analysis.
//!
//! The serving stack promises things the compiler cannot check: every
//! `unsafe` block justified, no panics in library paths, allocation-free
//! hot paths, poison-safe locking, documented public API. This crate
//! machine-checks those promises on every commit:
//!
//! * a hand-rolled lexer ([`lex`]) — comment/string/raw-string aware,
//!   brace-tracking, no external parser (the offline build vendors every
//!   dependency, so `syn` is out of reach by design);
//! * a rule engine ([`rules`]) walking every `crates/*/src` file and
//!   emitting CI-failing diagnostics with `file:line` output.
//!
//! The rule catalogue (see [`Rule`]) and the per-line allowlist syntax
//! (`// lint: allow(r2)`) are documented in DESIGN.md under
//! "Static analysis & sanitizers". Run locally with
//! `cargo run -p rptcn-analysis -- check`.

pub mod callgraph;
pub mod export;
pub mod item_tree;
pub mod lex;
pub mod lockgraph;
pub mod rules;

pub use rules::{
    check_lock_order, check_source, check_twin_coverage, rules_for, severity, Diagnostic,
    FileContext, Rule, Severity,
};

use std::io;
use std::path::{Path, PathBuf};

/// Check every `crates/*/src/**/*.rs` file under `root` with the rules
/// the repo policy assigns to it ([`rules_for`]), then run the
/// cross-file rules: R6 (lock order) over one graph spanning `serve` and
/// `net`, R8 (twin coverage) over one reference index that also ingests
/// `crates/*/tests` so `*parity*` test files seed reachability, and
/// finally R9 (allow hygiene) once every other rule has recorded which
/// markers it consulted. `tests/fixtures` directories are excluded —
/// they are bad on purpose. Paths in diagnostics are relative to `root`
/// and files are visited in sorted order so output is deterministic.
pub fn check_workspace(root: &Path) -> io::Result<Vec<Diagnostic>> {
    let crates_dir = root.join("crates");
    let mut src_files = Vec::new();
    let mut test_files = Vec::new();
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        let src = dir.join("src");
        if src.is_dir() {
            collect_rs_files(&src, &mut src_files)?;
        }
        let tests = dir.join("tests");
        if tests.is_dir() {
            collect_rs_files(&tests, &mut test_files)?;
        }
    }
    src_files.sort();
    test_files.sort();
    // Fixture files are deliberately rule-breaking inputs, not code.
    test_files.retain(|p| !p.components().any(|c| c.as_os_str() == "fixtures"));

    let mut contexts = Vec::new();
    for file in &src_files {
        let text = std::fs::read_to_string(file)?;
        let rel = file.strip_prefix(root).unwrap_or(file);
        contexts.push(rules::FileContext::new(rel, &text));
    }
    let mut test_contexts = Vec::new();
    for file in &test_files {
        let text = std::fs::read_to_string(file)?;
        let rel = file.strip_prefix(root).unwrap_or(file);
        test_contexts.push(rules::FileContext::new(rel, &text));
    }

    let mut out = Vec::new();
    // Per-file rules. R6/R8 run over file sets below; R9 runs last.
    for ctx in &contexts {
        for rule in rules_for(ctx.path()) {
            if matches!(
                rule,
                Rule::LockOrder | Rule::TwinCoverage | Rule::AllowHygiene
            ) {
                continue;
            }
            ctx.run_rule(rule, &mut out);
        }
    }
    // R6: one lock graph across every file in lock scope (serve + net).
    let lock_scope: Vec<&rules::FileContext> = contexts
        .iter()
        .filter(|c| rules_for(c.path()).contains(&Rule::LockOrder))
        .collect();
    check_lock_order(&lock_scope, &mut out);
    // R8: kernels + twins from src, parity seeds from test files too.
    let twin_scope: Vec<&rules::FileContext> =
        contexts.iter().chain(test_contexts.iter()).collect();
    check_twin_coverage(&twin_scope, &mut out);
    // R9: now that every rule has recorded its marker usage.
    for ctx in &contexts {
        ctx.check_allow_hygiene(&mut out);
    }
    out.sort_by(|a, b| (&a.file, a.line, a.rule.id()).cmp(&(&b.file, b.line, b.rule.id())));
    Ok(out)
}

/// Recursively collect `.rs` files under `dir`.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}
