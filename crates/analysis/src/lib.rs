//! `rptcn-analysis` — workspace-native static analysis.
//!
//! The serving stack promises things the compiler cannot check: every
//! `unsafe` block justified, no panics in library paths, allocation-free
//! hot paths, poison-safe locking, documented public API. This crate
//! machine-checks those promises on every commit:
//!
//! * a hand-rolled lexer ([`lex`]) — comment/string/raw-string aware,
//!   brace-tracking, no external parser (the offline build vendors every
//!   dependency, so `syn` is out of reach by design);
//! * a rule engine ([`rules`]) walking every `crates/*/src` file and
//!   emitting CI-failing diagnostics with `file:line` output.
//!
//! The rule catalogue (see [`Rule`]) and the per-line allowlist syntax
//! (`// lint: allow(r2)`) are documented in DESIGN.md under
//! "Static analysis & sanitizers". Run locally with
//! `cargo run -p rptcn-analysis -- check`.

pub mod lex;
pub mod rules;

pub use rules::{check_source, rules_for, Diagnostic, Rule};

use std::io;
use std::path::{Path, PathBuf};

/// Check every `crates/*/src/**/*.rs` file under `root` with the rules the
/// repo policy assigns to it ([`rules_for`]). Paths in diagnostics are
/// relative to `root`. Files are visited in sorted order so output is
/// deterministic.
pub fn check_workspace(root: &Path) -> io::Result<Vec<Diagnostic>> {
    let crates_dir = root.join("crates");
    let mut files = Vec::new();
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        let src = dir.join("src");
        if src.is_dir() {
            collect_rs_files(&src, &mut files)?;
        }
    }
    files.sort();

    let mut out = Vec::new();
    for file in files {
        let text = std::fs::read_to_string(&file)?;
        let rel = file.strip_prefix(root).unwrap_or(&file);
        out.extend(check_source(rel, &text, &rules_for(rel)));
    }
    Ok(out)
}

/// Recursively collect `.rs` files under `dir`.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}
