//! Brace-matched structural view of one lexed file: modules, functions
//! (free, impl and trait methods), `macro_rules!` definitions and macro
//! invocations, each with its token span and source line.
//!
//! The tree is what lifts the rule engine from token matching to
//! structural analysis: the call index ([`crate::callgraph`]) and lock
//! graph ([`crate::lockgraph`]) are both derived from it. Parsing is
//! deliberately shallow — no expression grammar, just item headers plus
//! exact brace/paren matching — which is enough to attribute every token
//! range to the function that owns it.

use std::collections::BTreeSet;

use crate::lex::{Lexed, TokKind, Token};

/// Item modifiers that may sit between an attribute run and the item
/// keyword (`#[x] pub unsafe fn …`).
const MODIFIERS: [&str; 6] = ["pub", "unsafe", "async", "const", "extern", "default"];

/// One function item: a free `fn`, an impl/trait method, or a function
/// defined inside a `macro_rules!` body under a metavariable name.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Function name. Metavariable-named macro fns carry the marker form
    /// `$name` and are resolved per invocation by the call index.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Token index of the `fn` keyword.
    pub fn_idx: usize,
    /// Body token range `[open brace, one past close]`, `None` for
    /// bodyless declarations (trait signatures).
    pub body: Option<(usize, usize)>,
    /// The item carries a `#[target_feature(...)]` attribute.
    pub target_feature: bool,
    /// Names of the enclosing modules, outermost first.
    pub module_path: Vec<String>,
}

/// One `macro_rules!` definition, summarized just enough to map
/// invocation arguments onto the functions the macro generates.
#[derive(Debug, Clone)]
pub struct MacroDef {
    /// Macro name.
    pub name: String,
    /// 1-based line of the definition.
    pub line: usize,
    /// Metavariable names of the first rule's matcher, in positional
    /// order (repetition groups contribute their inner metavariables).
    pub params: Vec<String>,
    /// Metavariables used as `fn $x` names in the body, with a flag for a
    /// directly-preceding `#[target_feature]` attribute.
    pub fn_params: Vec<(String, bool)>,
    /// Concrete identifiers referenced anywhere in the body.
    pub body_refs: BTreeSet<String>,
    /// The body contains `_mm*` intrinsic identifiers.
    pub intrinsics: bool,
}

/// One macro invocation `name!(args…)` / `name![…]` / `name!{…}`.
#[derive(Debug, Clone)]
pub struct MacroInvocation {
    /// Invoked macro name.
    pub name: String,
    /// 1-based line of the invocation.
    pub line: usize,
    /// Per positional argument (top-level comma split): `Some(ident)`
    /// when the argument is a single identifier, `None` otherwise.
    pub arg_idents: Vec<Option<String>>,
}

/// One module with its body span, for span attribution.
#[derive(Debug, Clone)]
pub struct ModItem {
    /// Module name.
    pub name: String,
    /// 1-based line of the `mod` keyword.
    pub line: usize,
    /// Body token range `[open brace, one past close]`.
    pub body: (usize, usize),
}

/// The structural view of one file.
#[derive(Debug, Default)]
pub struct ItemTree {
    /// Every function in the file, in source order (impl methods and
    /// nested-module fns included; fns nested inside other fn bodies are
    /// not items and are not walked).
    pub fns: Vec<FnItem>,
    /// Every `macro_rules!` definition.
    pub macros: Vec<MacroDef>,
    /// Every macro invocation outside `macro_rules!` bodies.
    pub invocations: Vec<MacroInvocation>,
    /// Every inline module.
    pub modules: Vec<ModItem>,
}

impl ItemTree {
    /// Build the tree from a lexed file.
    pub fn build(lexed: &Lexed) -> Self {
        let mut tree = ItemTree::default();
        let toks = &lexed.tokens;
        let mut path = Vec::new();
        walk_items(toks, 0, toks.len(), &mut path, &mut tree);
        tree
    }

    /// The function whose body span contains token index `idx`, if any.
    /// Nested spans resolve to the innermost (last-starting) function.
    pub fn fn_owning(&self, idx: usize) -> Option<&FnItem> {
        self.fns
            .iter()
            .filter(|f| f.body.is_some_and(|(lo, hi)| idx >= lo && idx < hi))
            .max_by_key(|f| f.body.map(|(lo, _)| lo).unwrap_or(0))
    }
}

/// Index one past the close delimiter matching the open delimiter at
/// `open` (`{}`/`()`/`[]` chosen by the token at `open`); all three
/// nestings are tracked together so mixed nesting cannot desync.
pub fn matching_close(toks: &[Token], open: usize) -> usize {
    let (mut brace, mut paren, mut bracket) = (0i64, 0i64, 0i64);
    for (off, t) in toks.iter().enumerate().skip(open) {
        match t.kind {
            TokKind::Punct('{') => brace += 1,
            TokKind::Punct('}') => brace -= 1,
            TokKind::Punct('(') => paren += 1,
            TokKind::Punct(')') => paren -= 1,
            TokKind::Punct('[') => bracket += 1,
            TokKind::Punct(']') => bracket -= 1,
            _ => continue,
        }
        if brace == 0 && paren == 0 && bracket == 0 && off > open {
            return off + 1;
        }
        // A close delimiter that drops any counter below zero means the
        // span we were asked about was not an open delimiter; bail at it.
        if brace < 0 || paren < 0 || bracket < 0 {
            return off + 1;
        }
    }
    toks.len()
}

fn ident_at(toks: &[Token], i: usize) -> Option<&str> {
    match toks.get(i).map(|t| &t.kind) {
        Some(TokKind::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

fn punct_at(toks: &[Token], i: usize) -> Option<char> {
    match toks.get(i).map(|t| &t.kind) {
        Some(TokKind::Punct(c)) => Some(*c),
        _ => None,
    }
}

fn is_open_delim(c: char) -> bool {
    matches!(c, '{' | '(' | '[')
}

/// Walk the item grammar of `toks[start..end]`, appending found items.
fn walk_items(
    toks: &[Token],
    start: usize,
    end: usize,
    path: &mut Vec<String>,
    tree: &mut ItemTree,
) {
    let mut i = start;
    // Token index where the attribute run directly above the current item
    // begins; `target_feature` presence is checked inside that run.
    let mut attr_run: Option<(usize, bool)> = None;
    while i < end {
        // Attributes: record the run, skip over it.
        if punct_at(toks, i) == Some('#')
            && (punct_at(toks, i + 1) == Some('[')
                || (punct_at(toks, i + 1) == Some('!') && punct_at(toks, i + 2) == Some('[')))
        {
            let open = if punct_at(toks, i + 1) == Some('[') {
                i + 1
            } else {
                i + 2
            };
            let close = matching_close(toks, open);
            let has_tf = toks[i..close]
                .iter()
                .any(|t| matches!(&t.kind, TokKind::Ident(s) if s == "target_feature"));
            attr_run = match attr_run {
                Some((first, tf)) => Some((first, tf || has_tf)),
                None => Some((i, has_tf)),
            };
            i = close;
            continue;
        }
        let Some(word) = ident_at(toks, i) else {
            attr_run = None;
            i += 1;
            continue;
        };
        match word {
            "mod" => {
                let name = ident_at(toks, i + 1).unwrap_or("?").to_string();
                // `mod name;` (out-of-line) has no body here.
                if punct_at(toks, i + 2) == Some('{') {
                    let open = i + 2;
                    let close = matching_close(toks, open);
                    tree.modules.push(ModItem {
                        name: name.clone(),
                        line: toks[i].line,
                        body: (open, close),
                    });
                    path.push(name);
                    walk_items(toks, open + 1, close.saturating_sub(1), path, tree);
                    path.pop();
                    i = close;
                } else {
                    i += 2;
                }
                attr_run = None;
            }
            "impl" | "trait" => {
                // Scan to the body `{` at delimiter depth 0 (generics use
                // `<>`, which the lexer emits as plain punct — they never
                // contain braces in this codebase), then walk the body for
                // methods.
                let mut j = i + 1;
                let (mut paren, mut bracket) = (0i64, 0i64);
                while j < end {
                    match punct_at(toks, j) {
                        Some('(') => paren += 1,
                        Some(')') => paren -= 1,
                        Some('[') => bracket += 1,
                        Some(']') => bracket -= 1,
                        Some('{') if paren == 0 && bracket == 0 => break,
                        Some(';') if paren == 0 && bracket == 0 => break,
                        _ => {}
                    }
                    j += 1;
                }
                if punct_at(toks, j) == Some('{') {
                    let close = matching_close(toks, j);
                    walk_items(toks, j + 1, close.saturating_sub(1), path, tree);
                    i = close;
                } else {
                    i = j + 1;
                }
                attr_run = None;
            }
            "fn" => {
                let tf = attr_run.map(|(_, tf)| tf).unwrap_or(false);
                let name = match ident_at(toks, i + 1) {
                    Some(n) => n.to_string(),
                    None if punct_at(toks, i + 1) == Some('$') => {
                        format!("${}", ident_at(toks, i + 2).unwrap_or("?"))
                    }
                    None => "?".to_string(),
                };
                let body = fn_body_open(toks, i, end).map(|open| {
                    let close = matching_close(toks, open);
                    (open, close)
                });
                tree.fns.push(FnItem {
                    name,
                    line: toks[i].line,
                    fn_idx: i,
                    body,
                    target_feature: tf,
                    module_path: path.clone(),
                });
                // Scan the body for invocations the fn makes of local
                // macros (e.g. a driver fn built around a kernel macro),
                // but do not treat nested `fn`s as items.
                if let Some((open, close)) = body {
                    collect_invocations(toks, open + 1, close.saturating_sub(1), tree);
                    i = close;
                } else {
                    // Bodyless: advance past the `;`.
                    let mut j = i + 1;
                    while j < end && punct_at(toks, j) != Some(';') {
                        j += 1;
                    }
                    i = j + 1;
                }
                attr_run = None;
            }
            "macro_rules" => {
                if let Some(def) = parse_macro_def(toks, i) {
                    let open = find_macro_body_open(toks, i);
                    tree.macros.push(def);
                    i = matching_close(toks, open);
                } else {
                    i += 1;
                }
                attr_run = None;
            }
            "struct" | "enum" | "union" => {
                // Skip the item: either to its `{…}` close or its `;`.
                let mut j = i + 1;
                let (mut paren, mut bracket) = (0i64, 0i64);
                while j < end {
                    match punct_at(toks, j) {
                        Some('(') => paren += 1,
                        Some(')') => paren -= 1,
                        Some('[') => bracket += 1,
                        Some(']') => bracket -= 1,
                        Some('{') if paren == 0 && bracket == 0 => {
                            j = matching_close(toks, j);
                            break;
                        }
                        Some(';') if paren == 0 && bracket == 0 => {
                            j += 1;
                            break;
                        }
                        _ => {}
                    }
                    j += 1;
                }
                i = j;
                attr_run = None;
            }
            _ => {
                // Macro invocation at item level (`define_kernels!(…)`).
                if punct_at(toks, i + 1) == Some('!')
                    && punct_at(toks, i + 2).is_some_and(is_open_delim)
                {
                    record_invocation(toks, i, tree);
                    i = matching_close(toks, i + 2);
                    attr_run = None;
                } else {
                    // Visibility/safety modifiers sit between an item's
                    // attributes and its keyword — keep the run alive.
                    if !MODIFIERS.contains(&word) {
                        attr_run = None;
                    }
                    i += 1;
                }
            }
        }
    }
}

/// Token index of the `{` opening the body of the fn whose `fn` keyword
/// is at `fn_idx`, or `None` for a bodyless declaration. Parens and
/// brackets in the signature (arguments, return types, defaults) are
/// skipped.
fn fn_body_open(toks: &[Token], fn_idx: usize, end: usize) -> Option<usize> {
    let (mut paren, mut bracket) = (0i64, 0i64);
    for j in fn_idx + 1..end {
        match punct_at(toks, j) {
            Some('(') => paren += 1,
            Some(')') => paren -= 1,
            Some('[') => bracket += 1,
            Some(']') => bracket -= 1,
            Some('{') if paren == 0 && bracket == 0 => return Some(j),
            Some(';') if paren == 0 && bracket == 0 => return None,
            _ => {}
        }
    }
    None
}

/// Record macro invocations found in a statement range (used for fn
/// bodies, where full item walking would mis-read statements as items).
fn collect_invocations(toks: &[Token], start: usize, end: usize, tree: &mut ItemTree) {
    let mut i = start;
    while i < end {
        if ident_at(toks, i).is_some()
            && punct_at(toks, i + 1) == Some('!')
            && punct_at(toks, i + 2).is_some_and(is_open_delim)
        {
            record_invocation(toks, i, tree);
            i = matching_close(toks, i + 2);
        } else {
            i += 1;
        }
    }
}

/// Parse `name!(args…)` at `i` into an invocation record.
fn record_invocation(toks: &[Token], i: usize, tree: &mut ItemTree) {
    let Some(name) = ident_at(toks, i) else {
        return;
    };
    let open = i + 2;
    let close = matching_close(toks, open);
    let mut arg_idents = Vec::new();
    let mut current: Vec<&Token> = Vec::new();
    let (mut brace, mut paren, mut bracket) = (0i64, 0i64, 0i64);
    for t in toks.iter().take(close.saturating_sub(1)).skip(open + 1) {
        match t.kind {
            TokKind::Punct('{') => brace += 1,
            TokKind::Punct('}') => brace -= 1,
            TokKind::Punct('(') => paren += 1,
            TokKind::Punct(')') => paren -= 1,
            TokKind::Punct('[') => bracket += 1,
            TokKind::Punct(']') => bracket -= 1,
            TokKind::Punct(',') if brace == 0 && paren == 0 && bracket == 0 => {
                arg_idents.push(single_ident(&current));
                current.clear();
                continue;
            }
            _ => {}
        }
        current.push(t);
    }
    if !current.is_empty() {
        arg_idents.push(single_ident(&current));
    }
    tree.invocations.push(MacroInvocation {
        name: name.to_string(),
        line: toks[i].line,
        arg_idents,
    });
}

fn single_ident(arg: &[&Token]) -> Option<String> {
    match arg {
        [t] => match &t.kind {
            TokKind::Ident(s) => Some(s.clone()),
            _ => None,
        },
        _ => None,
    }
}

/// Token index of the outer `{` of a `macro_rules! name { … }` at `i`.
fn find_macro_body_open(toks: &[Token], i: usize) -> usize {
    let mut j = i + 1;
    while j < toks.len() && punct_at(toks, j) != Some('{') {
        j += 1;
    }
    j
}

/// Summarize `macro_rules! name { (matcher) => { body } … }` starting at
/// the `macro_rules` keyword.
fn parse_macro_def(toks: &[Token], i: usize) -> Option<MacroDef> {
    let name = ident_at(toks, i + 2)?.to_string();
    let line = toks[i].line;
    let outer_open = find_macro_body_open(toks, i);
    let outer_close = matching_close(toks, outer_open);
    // First rule's matcher: the first `(` inside the outer braces.
    let mut m = outer_open + 1;
    while m < outer_close && punct_at(toks, m) != Some('(') {
        m += 1;
    }
    let matcher_close = matching_close(toks, m);
    let mut params = Vec::new();
    let mut j = m + 1;
    while j + 1 < matcher_close {
        if punct_at(toks, j) == Some('$') {
            if let Some(p) = ident_at(toks, j + 1) {
                // `$name:kind`; repetition groups `$(…)` have a delimiter
                // after `$` and fall through to the inner metavariables.
                if punct_at(toks, j + 2) == Some(':') {
                    params.push(p.to_string());
                }
            }
        }
        j += 1;
    }
    // Body: everything between the matcher's `=> {` and the outer close.
    let mut fn_params = Vec::new();
    let mut body_refs = BTreeSet::new();
    let mut intrinsics = false;
    let mut k = matcher_close;
    while k < outer_close {
        match &toks[k].kind {
            TokKind::Ident(s) if s == "fn" && punct_at(toks, k + 1) == Some('$') => {
                if let Some(meta) = ident_at(toks, k + 2) {
                    // `#[target_feature…]` in the run of attribute/modifier
                    // tokens directly above this `fn`.
                    let tf = attr_above_mentions(toks, k, "target_feature");
                    fn_params.push((meta.to_string(), tf));
                }
            }
            TokKind::Ident(s) => {
                if s.starts_with("_mm") {
                    intrinsics = true;
                }
                // Metavariable uses (`$x`) are not concrete references.
                if punct_at(toks, k.wrapping_sub(1)) != Some('$') {
                    body_refs.insert(s.clone());
                }
            }
            _ => {}
        }
        k += 1;
    }
    Some(MacroDef {
        name,
        line,
        params,
        fn_params,
        body_refs,
        intrinsics,
    })
}

/// Walk back from `fn_idx` over modifiers (`pub`, `unsafe`, …) and one or
/// more attributes, checking whether any attribute mentions `what`.
fn attr_above_mentions(toks: &[Token], fn_idx: usize, what: &str) -> bool {
    let mut j = fn_idx;
    loop {
        if j == 0 {
            return false;
        }
        let prev = j - 1;
        match &toks[prev].kind {
            TokKind::Ident(s) if MODIFIERS.contains(&s.as_str()) => {
                j = prev;
            }
            TokKind::Punct(']') => {
                // Walk back over the `#[…]` attribute.
                let mut depth = 0i64;
                let mut k = prev;
                loop {
                    match punct_at(toks, k) {
                        Some(']') => depth += 1,
                        Some('[') => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    if k == 0 {
                        return false;
                    }
                    k -= 1;
                }
                if toks[k + 1..prev]
                    .iter()
                    .any(|t| matches!(&t.kind, TokKind::Ident(s) if s == what))
                {
                    return true;
                }
                // `#` (and `#[doc…]` runs) sit before the bracket.
                j = k.saturating_sub(1);
                if punct_at(toks, j.wrapping_add(0)) != Some('#') && j > 0 {
                    j += 1;
                }
            }
            _ => return false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::lex;

    #[test]
    fn finds_fns_in_mods_and_impls() {
        let src =
            "mod a { impl Foo { pub fn bar(&self) -> u32 { 1 } }\n fn baz() {} }\nfn top() {}";
        let tree = ItemTree::build(&lex(src));
        let names: Vec<&str> = tree.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["bar", "baz", "top"]);
        assert_eq!(tree.fns[0].module_path, vec!["a"]);
        assert_eq!(tree.modules.len(), 1);
    }

    #[test]
    fn target_feature_attribute_is_detected() {
        let src =
            "#[cfg(x)]\n#[target_feature(enable = \"avx\")]\npub unsafe fn k() {}\nfn plain() {}";
        let tree = ItemTree::build(&lex(src));
        assert!(tree.fns[0].target_feature);
        assert!(!tree.fns[1].target_feature);
    }

    #[test]
    fn macro_defs_map_fn_metavariables() {
        let src = r#"
macro_rules! define_kernels {
    ($tile:ident, $row:ident, $($feat:literal),+) => {
        #[target_feature($(enable = $feat),+)]
        pub unsafe fn $tile() { helper(); }
        pub unsafe fn $row() {}
    };
}
define_kernels!(tile_fma, row_fma, "avx2", "fma");
"#;
        let tree = ItemTree::build(&lex(src));
        assert_eq!(tree.macros.len(), 1);
        let def = &tree.macros[0];
        assert_eq!(def.params, vec!["tile", "row", "feat"]);
        assert_eq!(
            def.fn_params,
            vec![("tile".to_string(), true), ("row".to_string(), false)]
        );
        assert!(def.body_refs.contains("helper"));
        assert_eq!(tree.invocations.len(), 1);
        assert_eq!(
            tree.invocations[0].arg_idents,
            vec![
                Some("tile_fma".to_string()),
                Some("row_fma".to_string()),
                None,
                None
            ]
        );
    }

    #[test]
    fn fn_owning_resolves_innermost_span() {
        let src = "fn outer() { inner_call(); }\nfn other() {}";
        let tree = ItemTree::build(&lex(src));
        let lexed = lex(src);
        let call_idx = lexed
            .tokens
            .iter()
            .position(|t| matches!(&t.kind, TokKind::Ident(s) if s == "inner_call"))
            .expect("token present");
        assert_eq!(
            tree.fn_owning(call_idx).map(|f| f.name.as_str()),
            Some("outer")
        );
    }
}
