//! Lock-acquisition order graph for static deadlock detection (R6).
//!
//! Every acquisition in `serve`/`net` goes through the poison-safe
//! primitives (`lock_recover`, `read_recover`, `write_recover` — R4
//! enforces this), which makes acquisitions syntactically recognizable.
//! A linear scan of each function body tracks which locks are held at
//! each point:
//!
//! * a lock's identity is the last identifier of the argument path
//!   (`lock_recover(&self.shared.dedup)` → `dedup`), shared across files
//!   so cross-crate orderings merge;
//! * `let g = lock_recover(…)` binds the guard to `g`; it is released at
//!   `drop(g)` or when its block closes;
//! * an unbound acquisition (`lock_recover(&rx).recv()`) is a temporary,
//!   released at the `;` that ends its statement (at its own brace
//!   depth, so guards live across `match`/`if` blocks opened inside the
//!   statement — conservative and correct for deadlock purposes);
//! * calling a function that itself acquires locks (one level of
//!   inlining, name-matched across the indexed file set) widens the
//!   held-set edges: `held → every lock the callee takes`.
//!
//! The result is a directed graph `A → B` = "B acquired while A held".
//! Any cycle — including a self-edge, since `std::sync` locks are not
//! reentrant — is a potential deadlock and fails the build.

use std::collections::{BTreeMap, BTreeSet};

use crate::item_tree::{matching_close, ItemTree};
use crate::lex::{Lexed, TokKind, Token};

/// Acquisition primitives whose first argument is the lock.
const PRIMITIVES: [&str; 3] = ["lock_recover", "read_recover", "write_recover"];

/// One `A → B` ordering observation with its acquisition site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockEdge {
    /// Lock already held.
    pub held: String,
    /// Lock acquired while `held` was held.
    pub acquired: String,
    /// File of the acquisition (display path).
    pub file: String,
    /// 1-based line of the acquisition.
    pub line: usize,
}

#[derive(Debug, Clone)]
struct CallEvent {
    held: Vec<String>,
    callee: String,
    file: String,
    line: usize,
}

/// Accumulates acquisition scans across files, then reports cycles.
#[derive(Debug, Default)]
pub struct LockGraph {
    /// First observation of each ordered pair.
    edges: BTreeMap<(String, String), (String, usize)>,
    /// Locks each scanned function acquires anywhere in its body.
    fn_locks: BTreeMap<String, BTreeSet<String>>,
    /// Calls made while locks were held (resolved in [`Self::finalize`]).
    calls: Vec<CallEvent>,
}

struct Active {
    name: String,
    var: Option<String>,
    depth: i64,
}

impl LockGraph {
    /// Scan every function body in `tree`, skipping bodies whose `fn`
    /// line the caller excludes (test regions).
    pub fn add_file(
        &mut self,
        file: &str,
        lexed: &Lexed,
        tree: &ItemTree,
        skip_line: &dyn Fn(usize) -> bool,
    ) {
        for f in &tree.fns {
            let Some((lo, hi)) = f.body else { continue };
            if skip_line(f.line) {
                continue;
            }
            self.scan_body(file, &f.name, &lexed.tokens, lo, hi);
        }
    }

    fn scan_body(&mut self, file: &str, fn_name: &str, toks: &[Token], lo: usize, hi: usize) {
        let mut depth = 0i64;
        let mut active: Vec<Active> = Vec::new();
        let mut acquired_here: BTreeSet<String> = BTreeSet::new();
        let mut i = lo + 1;
        let end = hi.saturating_sub(1);
        while i < end {
            match &toks[i].kind {
                TokKind::Punct('{') => depth += 1,
                TokKind::Punct('}') => {
                    depth -= 1;
                    active.retain(|a| a.depth <= depth);
                }
                TokKind::Punct(';') => {
                    active.retain(|a| !(a.var.is_none() && a.depth == depth));
                }
                TokKind::Ident(s) if s == "drop" && punct(toks, i + 1) == Some('(') => {
                    if let Some(TokKind::Ident(v)) = toks.get(i + 2).map(|t| &t.kind) {
                        if punct(toks, i + 3) == Some(')') {
                            if let Some(pos) = active
                                .iter()
                                .rposition(|a| a.var.as_deref() == Some(v.as_str()))
                            {
                                active.remove(pos);
                                i += 4;
                                continue;
                            }
                        }
                    }
                }
                TokKind::Ident(s)
                    if PRIMITIVES.contains(&s.as_str()) && punct(toks, i + 1) == Some('(') =>
                {
                    let close = matching_close(toks, i + 1);
                    let name = last_ident(&toks[i + 2..close.saturating_sub(1)])
                        .unwrap_or_else(|| "?".to_string());
                    let line = toks[i].line;
                    for a in &active {
                        self.edge(&a.name, &name, file, line);
                    }
                    acquired_here.insert(name.clone());
                    active.push(Active {
                        name,
                        var: binding_var(toks, i),
                        depth,
                    });
                    i = close;
                    continue;
                }
                TokKind::Ident(s)
                    if punct(toks, i + 1) == Some('(')
                        && !active.is_empty()
                        && punct_before(toks, i) != Some('.') =>
                {
                    // Plain call while locks are held: candidate for the
                    // one-level inlining pass.
                    self.calls.push(CallEvent {
                        held: active.iter().map(|a| a.name.clone()).collect(),
                        callee: s.clone(),
                        file: file.to_string(),
                        line: toks[i].line,
                    });
                }
                TokKind::Ident(s)
                    if punct(toks, i + 1) == Some('(')
                        && !active.is_empty()
                        && punct_before(toks, i) == Some('.') =>
                {
                    // Method call: same treatment, matched by bare name.
                    self.calls.push(CallEvent {
                        held: active.iter().map(|a| a.name.clone()).collect(),
                        callee: s.clone(),
                        file: file.to_string(),
                        line: toks[i].line,
                    });
                }
                _ => {}
            }
            i += 1;
        }
        self.fn_locks
            .entry(fn_name.to_string())
            .or_default()
            .extend(acquired_here);
    }

    fn edge(&mut self, held: &str, acquired: &str, file: &str, line: usize) {
        self.edges
            .entry((held.to_string(), acquired.to_string()))
            .or_insert_with(|| (file.to_string(), line));
    }

    /// Resolve recorded calls against the scanned functions: calling `f`
    /// while holding `L` adds `L → every lock f acquires`.
    pub fn finalize(&mut self) {
        let calls = std::mem::take(&mut self.calls);
        for c in calls {
            let Some(locks) = self.fn_locks.get(&c.callee).cloned() else {
                continue;
            };
            for acq in locks {
                for held in &c.held {
                    self.edge(held, &acq, &c.file, c.line);
                }
            }
        }
    }

    /// Every edge that participates in a cycle (its target can reach its
    /// source), sorted; self-edges included. Empty = deadlock-free order.
    pub fn cyclic_edges(&self) -> Vec<LockEdge> {
        let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
        for (held, acquired) in self.edges.keys() {
            adj.entry(held.as_str())
                .or_default()
                .insert(acquired.as_str());
        }
        let reaches = |from: &str, to: &str| -> bool {
            let mut seen = BTreeSet::new();
            let mut stack = vec![from];
            while let Some(n) = stack.pop() {
                if n == to {
                    return true;
                }
                if let Some(next) = adj.get(n) {
                    for m in next {
                        if seen.insert(*m) {
                            stack.push(m);
                        }
                    }
                }
            }
            false
        };
        self.edges
            .iter()
            .filter(|((held, acquired), _)| held == acquired || reaches(acquired, held))
            .map(|((held, acquired), (file, line))| LockEdge {
                held: held.clone(),
                acquired: acquired.clone(),
                file: file.clone(),
                line: *line,
            })
            .collect()
    }

    /// All observed ordering edges (for tests and debugging).
    pub fn edges(&self) -> impl Iterator<Item = LockEdge> + '_ {
        self.edges
            .iter()
            .map(|((held, acquired), (file, line))| LockEdge {
                held: held.clone(),
                acquired: acquired.clone(),
                file: file.clone(),
                line: *line,
            })
    }
}

fn punct(toks: &[Token], i: usize) -> Option<char> {
    match toks.get(i).map(|t| &t.kind) {
        Some(TokKind::Punct(c)) => Some(*c),
        _ => None,
    }
}

fn punct_before(toks: &[Token], i: usize) -> Option<char> {
    if i == 0 {
        None
    } else {
        punct(toks, i - 1)
    }
}

/// Last identifier in a token slice (the lock field of `&self.a.b`).
fn last_ident(toks: &[Token]) -> Option<String> {
    toks.iter().rev().find_map(|t| match &t.kind {
        TokKind::Ident(s) => Some(s.clone()),
        _ => None,
    })
}

/// For `let g = [path::]primitive(…)` at primitive index `i`, the bound
/// guard variable `g`; `None` for temporaries and destructured patterns.
fn binding_var(toks: &[Token], i: usize) -> Option<String> {
    let mut j = i;
    // Walk back over a `path::` qualifier.
    while j >= 3
        && punct(toks, j - 1) == Some(':')
        && punct(toks, j - 2) == Some(':')
        && matches!(toks.get(j - 3).map(|t| &t.kind), Some(TokKind::Ident(_)))
    {
        j -= 3;
    }
    if punct(toks, j - 1) != Some('=') || j < 2 {
        return None;
    }
    let var = match toks.get(j - 2).map(|t| &t.kind) {
        Some(TokKind::Ident(v)) => v.clone(),
        _ => return None,
    };
    // Require a `let [mut] var =` head so plain assignments to fields or
    // reused slots do not bind (their lifetime is not block-scoped).
    let head = |k: usize| match toks.get(k).map(|t| &t.kind) {
        Some(TokKind::Ident(s)) => Some(s.as_str().to_string()),
        _ => None,
    };
    if j >= 3 && head(j - 3).as_deref() == Some("let") {
        return Some(var);
    }
    if j >= 4 && head(j - 3).as_deref() == Some("mut") && head(j - 4).as_deref() == Some("let") {
        return Some(var);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item_tree::ItemTree;
    use crate::lex::lex;

    fn graph(src: &str) -> LockGraph {
        let lexed = lex(src);
        let tree = ItemTree::build(&lexed);
        let mut g = LockGraph::default();
        g.add_file("t.rs", &lexed, &tree, &|_| false);
        g.finalize();
        g
    }

    #[test]
    fn nested_acquisitions_order_and_cycle() {
        let src = r#"
fn ab(&self) {
    let a = lock_recover(&self.a);
    let b = lock_recover(&self.b);
    use_both(&a, &b);
}
fn ba(&self) {
    let b = lock_recover(&self.b);
    let a = lock_recover(&self.a);
}
"#;
        let g = graph(src);
        let cyc = g.cyclic_edges();
        assert_eq!(cyc.len(), 2, "a→b and b→a both cyclic: {cyc:?}");
    }

    #[test]
    fn drop_releases_before_next_acquisition() {
        let src = r#"
fn ok(&self) {
    let a = lock_recover(&self.a);
    work(&a);
    drop(a);
    let b = lock_recover(&self.b);
}
fn ok2(&self) {
    let b = lock_recover(&self.b);
    drop(b);
    let a = lock_recover(&self.a);
}
"#;
        let g = graph(src);
        assert!(
            g.edges().next().is_none(),
            "{:?}",
            g.edges().collect::<Vec<_>>()
        );
    }

    #[test]
    fn block_scoping_releases_guards() {
        let src = r#"
fn scoped(&self) {
    let x = { let s = read_recover(&self.service); s.value() };
    let d = lock_recover(&self.dedup);
}
fn other(&self) {
    let d = lock_recover(&self.dedup);
    drop(d);
    let s = read_recover(&self.service);
}
"#;
        let g = graph(src);
        assert!(g.cyclic_edges().is_empty());
    }

    #[test]
    fn temporaries_hold_through_match_blocks() {
        let src = r#"
fn temp(&self) {
    let n = match lock_recover(&self.rx).recv() {
        Ok(j) => lock_recover(&self.stats).push(j),
        Err(_) => return,
    };
    let late = lock_recover(&self.late);
}
"#;
        let g = graph(src);
        let edges: Vec<LockEdge> = g.edges().collect();
        // Held through the match arms; dead by the time `late` is taken.
        assert_eq!(edges.len(), 1, "{edges:?}");
        assert_eq!(edges[0].held, "rx");
        assert_eq!(edges[0].acquired, "stats");
    }

    #[test]
    fn one_level_inlining_widens_held_set() {
        let src = r#"
fn outer(&self) {
    let a = lock_recover(&self.a);
    helper(self);
}
fn helper(&self) {
    let b = lock_recover(&self.b);
}
fn reversed(&self) {
    let b = lock_recover(&self.b);
    let a = lock_recover(&self.a);
}
"#;
        let g = graph(src);
        let cyc = g.cyclic_edges();
        assert!(
            cyc.iter().any(|e| e.held == "a" && e.acquired == "b"),
            "inlined edge missing: {cyc:?}"
        );
    }

    #[test]
    fn self_edge_is_a_cycle() {
        let src = r#"
fn relock(&self) {
    let a = lock_recover(&self.a);
    let again = lock_recover(&self.a);
}
"#;
        let g = graph(src);
        let cyc = g.cyclic_edges();
        assert_eq!(cyc.len(), 1);
        assert_eq!(cyc[0].held, "a");
        assert_eq!(cyc[0].acquired, "a");
    }
}
