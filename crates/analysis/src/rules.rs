//! The rule engine: repo invariants enforced as CI-failing diagnostics.
//!
//! Every rule works on the token stream of [`crate::lex`], plus a few
//! derived views: attribute token ranges, `#[cfg(test)] mod` line regions
//! and `// hot-path`-marked function bodies. Findings carry `file:line`
//! and can be silenced per line with a trailing `// lint: allow(<rule>)`
//! marker (e.g. `// lint: allow(r2)`).

use std::fmt;
use std::path::{Path, PathBuf};

use crate::lex::{lex, Lexed, TokKind, Token};

/// The rule catalogue. Ids (`R1`…`R5`) are stable: CI logs, allowlist
/// markers and DESIGN.md all refer to them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// R1: every `unsafe` block / fn / impl is immediately preceded by a
    /// `// SAFETY:` comment (a doc `# Safety` section also counts).
    SafetyComment,
    /// R2: no `unwrap()` / `expect()` / `panic!` / `todo!` in non-test
    /// library code.
    NoPanicPaths,
    /// R3: no timing or allocation calls inside functions marked with a
    /// `// hot-path` comment.
    HotPathAlloc,
    /// R4: no bare `Mutex`/`RwLock` acquisition (`.lock()` / `.read()` /
    /// `.write()`); use the poison-safe `lock_recover` helper.
    LockRecover,
    /// R5: every public item (`pub fn` / `struct` / `enum` / `trait` /
    /// `type` / `const` / `static`) carries a doc comment.
    MissingDocs,
}

impl Rule {
    /// Stable short id (`R1`…`R5`).
    pub fn id(self) -> &'static str {
        match self {
            Rule::SafetyComment => "R1",
            Rule::NoPanicPaths => "R2",
            Rule::HotPathAlloc => "R3",
            Rule::LockRecover => "R4",
            Rule::MissingDocs => "R5",
        }
    }

    /// One-line description, shown by `rptcn-analysis rules`.
    pub fn describe(self) -> &'static str {
        match self {
            Rule::SafetyComment => {
                "unsafe block/fn/impl must be preceded by a `// SAFETY:` comment"
            }
            Rule::NoPanicPaths => {
                "no unwrap()/expect()/panic!/todo! in non-test library code (serve, net, core, models, obs + unsafe kernel files)"
            }
            Rule::HotPathAlloc => {
                "no Instant::now()/allocations inside functions marked `// hot-path`"
            }
            Rule::LockRecover => {
                "Mutex/RwLock acquisitions in serve and net must go through `lock_recover`"
            }
            Rule::MissingDocs => "public items in serve, net, core and obs must have doc comments",
        }
    }

    /// Every rule, in id order.
    pub fn all() -> [Rule; 5] {
        [
            Rule::SafetyComment,
            Rule::NoPanicPaths,
            Rule::HotPathAlloc,
            Rule::LockRecover,
            Rule::MissingDocs,
        ]
    }
}

/// One finding: a rule violated at `file:line`.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// File the finding is in (as passed to the checker).
    pub file: PathBuf,
    /// 1-based source line.
    pub line: usize,
    /// The violated rule.
    pub rule: Rule,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule.id(),
            self.message
        )
    }
}

/// Which rules apply to a workspace file, by repo policy:
/// R1 and R3 everywhere, R2 in `serve`/`net`/`core`/`models`/`obs` plus
/// the `unsafe` kernel files (GEMM, conv, batch executor), R4 in `serve`
/// and `net`, R5 in `serve`, `net`, `core` and `obs`.
pub fn rules_for(path: &Path) -> Vec<Rule> {
    let p = path.to_string_lossy().replace('\\', "/");
    let in_crate = |c: &str| p.contains(&format!("crates/{c}/src/"));
    // The files that hold the repo's `unsafe` compute kernels sit on the
    // serving hot path: a stray panic there aborts a forecast mid-batch,
    // so they carry R2 even though their crates as a whole do not. The
    // deliberate sites (worker-panic re-raise, spawn failure) are marked
    // `lint: allow(r2)` with their justification inline.
    let kernel_file = [
        "tensor/src/gemm.rs",
        "autograd/src/conv_kernels.rs",
        "autograd/src/batch_exec.rs",
    ]
    .iter()
    .any(|f| p.ends_with(f));
    let mut rules = vec![Rule::SafetyComment, Rule::HotPathAlloc];
    if in_crate("serve")
        || in_crate("net")
        || in_crate("core")
        || in_crate("models")
        || in_crate("obs")
        || kernel_file
    {
        rules.push(Rule::NoPanicPaths);
    }
    if in_crate("serve") || in_crate("net") {
        rules.push(Rule::LockRecover);
    }
    if in_crate("serve") || in_crate("net") || in_crate("core") || in_crate("obs") {
        rules.push(Rule::MissingDocs);
    }
    rules
}

/// Run `rules` over one file's source text.
pub fn check_source(path: &Path, src: &str, rules: &[Rule]) -> Vec<Diagnostic> {
    let ctx = FileContext::new(path, src);
    let mut out = Vec::new();
    for &rule in rules {
        match rule {
            Rule::SafetyComment => ctx.check_safety(&mut out),
            Rule::NoPanicPaths => ctx.check_no_panic(&mut out),
            Rule::HotPathAlloc => ctx.check_hot_path(&mut out),
            Rule::LockRecover => ctx.check_lock_recover(&mut out),
            Rule::MissingDocs => ctx.check_missing_docs(&mut out),
        }
    }
    out.sort_by_key(|d| d.line);
    out
}

/// Lexed file plus the derived views the rules share.
struct FileContext<'a> {
    path: &'a Path,
    lexed: Lexed,
    /// `in_attr[i]` — token `i` is inside a `#[...]` / `#![...]` attribute.
    in_attr: Vec<bool>,
    /// Line ranges (inclusive) of `#[cfg(test)] mod … { … }` bodies.
    test_regions: Vec<(usize, usize)>,
    /// Token index ranges (exclusive end) of `// hot-path` fn bodies.
    hot_fn_spans: Vec<(usize, usize)>,
    /// Lines whose tokens are all attribute tokens.
    attr_only_lines: Vec<usize>,
}

impl<'a> FileContext<'a> {
    fn new(path: &'a Path, src: &str) -> Self {
        let lexed = lex(src);
        let in_attr = mark_attributes(&lexed.tokens);
        let attr_only_lines = attr_only_lines(&lexed.tokens, &in_attr);
        let test_regions = find_test_regions(&lexed.tokens, &in_attr);
        let mut ctx = Self {
            path,
            lexed,
            in_attr,
            test_regions,
            hot_fn_spans: Vec::new(),
            attr_only_lines,
        };
        ctx.hot_fn_spans = ctx.find_hot_fn_spans();
        ctx
    }

    fn tokens(&self) -> &[Token] {
        &self.lexed.tokens
    }

    fn ident_at(&self, i: usize) -> Option<&str> {
        match self.tokens().get(i).map(|t| &t.kind) {
            Some(TokKind::Ident(s)) => Some(s.as_str()),
            _ => None,
        }
    }

    fn punct_at(&self, i: usize) -> Option<char> {
        match self.tokens().get(i).map(|t| &t.kind) {
            Some(TokKind::Punct(c)) => Some(*c),
            _ => None,
        }
    }

    fn line_of(&self, i: usize) -> usize {
        self.tokens()[i].line
    }

    fn in_test_region(&self, line: usize) -> bool {
        self.test_regions
            .iter()
            .any(|&(lo, hi)| line >= lo && line <= hi)
    }

    /// Trailing `// lint: allow(rN)` marker on `line`?
    fn allowed(&self, line: usize, rule: Rule) -> bool {
        let marker = format!("lint: allow({})", rule.id().to_ascii_lowercase());
        self.lexed
            .comment_on(line)
            .to_ascii_lowercase()
            .contains(&marker)
    }

    fn emit(&self, out: &mut Vec<Diagnostic>, line: usize, rule: Rule, message: String) {
        if self.in_test_region(line) || self.allowed(line, rule) {
            return;
        }
        out.push(Diagnostic {
            file: self.path.to_path_buf(),
            line,
            rule,
            message,
        });
    }

    /// The contiguous run of comment-only / attribute-only lines directly
    /// above `line`, concatenated (nearest line first).
    fn comment_run_above(&self, line: usize) -> String {
        let mut text = String::new();
        let mut l = line;
        while l > 1 {
            l -= 1;
            if self.lexed.is_comment_only(l) || self.attr_only_lines.binary_search(&l).is_ok() {
                text.push_str(self.lexed.comment_on(l));
                text.push('\n');
            } else {
                break;
            }
        }
        text
    }

    /// A `// hot-path` marker in the comment run directly above `line`?
    /// The marker must be a plain line comment whose text *starts* with
    /// `hot-path` (after the slashes) — a doc comment merely mentioning
    /// the phrase does not opt a function in.
    fn has_hot_path_marker_above(&self, line: usize) -> bool {
        let mut l = line;
        while l > 1 {
            l -= 1;
            if self.attr_only_lines.binary_search(&l).is_ok() {
                continue;
            }
            if self.lexed.is_comment_only(l) {
                let c = self.lexed.comment_on(l).trim_start();
                if !c.starts_with("///") && !c.starts_with("//!") {
                    let body = c.trim_start_matches('/').trim_start();
                    if body.starts_with("hot-path") {
                        return true;
                    }
                }
                continue;
            }
            break;
        }
        false
    }

    /// Does the comment run above `line` contain a `///` doc comment?
    fn has_doc_above(&self, line: usize) -> bool {
        let mut l = line;
        while l > 1 {
            l -= 1;
            if self.attr_only_lines.binary_search(&l).is_ok() {
                continue;
            }
            if self.lexed.is_comment_only(l) {
                let c = self.lexed.comment_on(l);
                let t = c.trim_start();
                if t.starts_with("///") || t.starts_with("/**") {
                    return true;
                }
                continue;
            }
            break;
        }
        false
    }

    /// Walk back from token `i` over attributes and item modifiers
    /// (`pub`, `pub(crate)`, `unsafe`, `async`, `const`, `extern "C"`) to
    /// the first token of the item declaration; returns its index.
    fn item_start(&self, mut i: usize) -> usize {
        const MODIFIERS: [&str; 6] = ["pub", "unsafe", "async", "const", "extern", "default"];
        loop {
            if i == 0 {
                return 0;
            }
            let prev = i - 1;
            // Skip a trailing `)` of `pub(crate)` / `pub(super)`.
            if self.punct_at(prev) == Some(')') {
                let mut depth = 0usize;
                let mut j = prev;
                loop {
                    match self.punct_at(j) {
                        Some(')') => depth += 1,
                        Some('(') => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    if j == 0 {
                        break;
                    }
                    j -= 1;
                }
                if j > 0 && self.ident_at(j - 1) == Some("pub") {
                    i = j - 1;
                    continue;
                }
                return i;
            }
            if self.in_attr[prev] {
                // Skip the whole attribute.
                let mut j = prev;
                while j > 0 && self.in_attr[j - 1] {
                    j -= 1;
                }
                i = j;
                continue;
            }
            match self.ident_at(prev) {
                Some(m) if MODIFIERS.contains(&m) => {
                    i = prev;
                    continue;
                }
                _ => return i,
            }
        }
    }

    /// Token index of the `{` opening the body of the fn whose `fn`
    /// keyword is at `fn_idx`, or `None` for a bodyless declaration.
    fn fn_body_open(&self, fn_idx: usize) -> Option<usize> {
        let toks = self.tokens();
        let mut paren = 0i32;
        let mut bracket = 0i32;
        for (off, t) in toks.iter().enumerate().skip(fn_idx + 1) {
            match t.kind {
                TokKind::Punct('(') => paren += 1,
                TokKind::Punct(')') => paren -= 1,
                TokKind::Punct('[') => bracket += 1,
                TokKind::Punct(']') => bracket -= 1,
                TokKind::Punct('{') if paren == 0 && bracket == 0 => return Some(off),
                TokKind::Punct(';') if paren == 0 && bracket == 0 => return None,
                _ => {}
            }
        }
        None
    }

    /// Index one past the `}` matching the `{` at `open`.
    fn matching_close(&self, open: usize) -> usize {
        let toks = self.tokens();
        let mut depth = 0i32;
        for (off, t) in toks.iter().enumerate().skip(open) {
            match t.kind {
                TokKind::Punct('{') => depth += 1,
                TokKind::Punct('}') => {
                    depth -= 1;
                    if depth == 0 {
                        return off + 1;
                    }
                }
                _ => {}
            }
        }
        toks.len()
    }

    /// Body spans of functions whose leading comment run contains a
    /// `hot-path` marker.
    fn find_hot_fn_spans(&self) -> Vec<(usize, usize)> {
        let mut spans = Vec::new();
        for i in 0..self.tokens().len() {
            if self.ident_at(i) != Some("fn") || self.in_attr[i] {
                continue;
            }
            let start = self.item_start(i);
            if !self.has_hot_path_marker_above(self.line_of(start)) {
                continue;
            }
            if let Some(open) = self.fn_body_open(i) {
                spans.push((open, self.matching_close(open)));
            }
        }
        spans
    }

    // ---- R1 ---------------------------------------------------------------

    fn check_safety(&self, out: &mut Vec<Diagnostic>) {
        for i in 0..self.tokens().len() {
            if self.ident_at(i) != Some("unsafe") || self.in_attr[i] {
                continue;
            }
            // `unsafe` in a type position (`unsafe fn` pointer types,
            // `unsafe extern` blocks) is rare here; treat every keyword
            // use as a site needing justification.
            let start = self.item_start(i);
            let line = self.line_of(start);
            let same_line = self.lexed.comment_on(self.line_of(i));
            let above = self.comment_run_above(line);
            let ok = same_line.contains("SAFETY:")
                || above.contains("SAFETY:")
                || above.contains("# Safety");
            if !ok {
                let what = match self.ident_at(i + 1) {
                    Some("fn") => "unsafe fn",
                    Some("impl") => "unsafe impl",
                    _ => "unsafe block",
                };
                self.emit(
                    out,
                    self.line_of(i),
                    Rule::SafetyComment,
                    format!("{what} without an immediately-preceding `// SAFETY:` comment"),
                );
            }
        }
    }

    // ---- R2 ---------------------------------------------------------------

    fn check_no_panic(&self, out: &mut Vec<Diagnostic>) {
        for i in 0..self.tokens().len() {
            let Some(name) = self.ident_at(i) else {
                continue;
            };
            if self.in_attr[i] {
                continue;
            }
            match name {
                "unwrap" | "expect" => {
                    let method = i > 0
                        && self.punct_at(i - 1) == Some('.')
                        && self.punct_at(i + 1) == Some('(');
                    if method {
                        self.emit(
                            out,
                            self.line_of(i),
                            Rule::NoPanicPaths,
                            format!("`.{name}()` in library code; return a typed error instead"),
                        );
                    }
                }
                "panic" | "todo" | "unimplemented" if self.punct_at(i + 1) == Some('!') => {
                    self.emit(
                        out,
                        self.line_of(i),
                        Rule::NoPanicPaths,
                        format!("`{name}!` in library code; return a typed error instead"),
                    );
                }
                _ => {}
            }
        }
    }

    // ---- R3 ---------------------------------------------------------------

    fn check_hot_path(&self, out: &mut Vec<Diagnostic>) {
        for &(lo, hi) in &self.hot_fn_spans {
            for i in lo..hi {
                let Some(name) = self.ident_at(i) else {
                    continue;
                };
                if self.in_attr[i] {
                    continue;
                }
                let flagged: Option<&str> = match name {
                    "now" if self.path_prefix_is(i, "Instant") => Some("Instant::now()"),
                    "new" if self.path_prefix_is(i, "Vec") => Some("Vec::new()"),
                    "new" if self.path_prefix_is(i, "Box") => Some("Box::new()"),
                    "vec" if self.punct_at(i + 1) == Some('!') => Some("vec!"),
                    "with_capacity" if self.punct_at(i + 1) == Some('(') => Some("with_capacity()"),
                    "to_vec" | "clone" | "to_string" | "to_owned" | "collect"
                        if i > 0
                            && self.punct_at(i - 1) == Some('.')
                            && self.punct_at(i + 1) == Some('(') =>
                    {
                        Some("allocating method call")
                    }
                    "format" if self.punct_at(i + 1) == Some('!') => Some("format!"),
                    _ => None,
                };
                if let Some(what) = flagged {
                    self.emit(
                        out,
                        self.line_of(i),
                        Rule::HotPathAlloc,
                        format!("{what} (`{name}`) inside a `// hot-path` function"),
                    );
                }
            }
        }
    }

    /// Token `i` is preceded by `prefix ::` (e.g. `Instant :: now`).
    fn path_prefix_is(&self, i: usize, prefix: &str) -> bool {
        i >= 3
            && self.punct_at(i - 1) == Some(':')
            && self.punct_at(i - 2) == Some(':')
            && self.ident_at(i - 3) == Some(prefix)
    }

    // ---- R4 ---------------------------------------------------------------

    fn check_lock_recover(&self, out: &mut Vec<Diagnostic>) {
        for i in 0..self.tokens().len() {
            let Some(name) = self.ident_at(i) else {
                continue;
            };
            if !matches!(name, "lock" | "read" | "write") || self.in_attr[i] {
                continue;
            }
            // `.lock()` / `.read()` / `.write()` with an empty argument
            // list — the Mutex/RwLock acquisition shape. IO calls such as
            // `write_all(buf)` have arguments and stay untouched.
            let bare_acquire = i > 0
                && self.punct_at(i - 1) == Some('.')
                && self.punct_at(i + 1) == Some('(')
                && self.punct_at(i + 2) == Some(')');
            if bare_acquire {
                self.emit(
                    out,
                    self.line_of(i),
                    Rule::LockRecover,
                    format!(
                        "bare `.{name}()` acquisition; use the poison-safe `lock_recover` helper"
                    ),
                );
            }
        }
    }

    // ---- R5 ---------------------------------------------------------------

    fn check_missing_docs(&self, out: &mut Vec<Diagnostic>) {
        const ITEM_KEYWORDS: [&str; 7] =
            ["fn", "struct", "enum", "trait", "type", "const", "static"];
        for i in 0..self.tokens().len() {
            if self.ident_at(i) != Some("pub") || self.in_attr[i] {
                continue;
            }
            // `pub(crate)` / `pub(super)` are not public API.
            if self.punct_at(i + 1) == Some('(') {
                continue;
            }
            // Item position: previous non-attribute token opens/closes a
            // block or ends a statement. Tuple-struct fields (`(pub f32)`)
            // and similar positions are skipped.
            let mut p = i;
            while p > 0 && self.in_attr[p - 1] {
                p -= 1;
            }
            if p > 0 && !matches!(self.punct_at(p - 1), Some('{') | Some('}') | Some(';')) {
                continue;
            }
            // Reach the item keyword through modifiers.
            let mut j = i + 1;
            while matches!(
                self.ident_at(j),
                Some("unsafe") | Some("async") | Some("extern") | Some("default")
            ) || matches!(self.tokens().get(j).map(|t| &t.kind), Some(TokKind::Str))
            {
                j += 1;
            }
            // `pub const fn` is a fn; bare `pub const NAME` is a const.
            if self.ident_at(j) == Some("const") && self.ident_at(j + 1) == Some("fn") {
                j += 1;
            }
            let Some(kw) = self.ident_at(j) else { continue };
            if !ITEM_KEYWORDS.contains(&kw) {
                continue;
            }
            let item_name = self.ident_at(j + 1).unwrap_or("?").to_string();
            let start = self.item_start(j);
            if !self.has_doc_above(self.line_of(start)) {
                self.emit(
                    out,
                    self.line_of(i),
                    Rule::MissingDocs,
                    format!("public {kw} `{item_name}` has no doc comment"),
                );
            }
        }
    }
}

/// Mark tokens inside `#[...]` / `#![...]` attributes.
fn mark_attributes(tokens: &[Token]) -> Vec<bool> {
    let mut out = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        let hash = matches!(tokens[i].kind, TokKind::Punct('#'));
        let open = |k: usize| matches!(tokens.get(k).map(|t| &t.kind), Some(TokKind::Punct('[')));
        let bang = |k: usize| matches!(tokens.get(k).map(|t| &t.kind), Some(TokKind::Punct('!')));
        if hash && (open(i + 1) || (bang(i + 1) && open(i + 2))) {
            let bracket_at = if open(i + 1) { i + 1 } else { i + 2 };
            let mut depth = 0i32;
            let mut j = bracket_at;
            while j < tokens.len() {
                match tokens[j].kind {
                    TokKind::Punct('[') => depth += 1,
                    TokKind::Punct(']') => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            for slot in out.iter_mut().take((j + 1).min(tokens.len())).skip(i) {
                *slot = true;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    out
}

/// Lines whose tokens are all attribute tokens (sorted, for binary search).
fn attr_only_lines(tokens: &[Token], in_attr: &[bool]) -> Vec<usize> {
    use std::collections::BTreeMap;
    let mut per_line: BTreeMap<usize, (bool, bool)> = BTreeMap::new();
    for (t, &ia) in tokens.iter().zip(in_attr) {
        let e = per_line.entry(t.line).or_insert((false, false));
        if ia {
            e.0 = true;
        } else {
            e.1 = true;
        }
    }
    per_line
        .into_iter()
        .filter_map(|(line, (attr, code))| (attr && !code).then_some(line))
        .collect()
}

/// Line ranges of `#[cfg(test)] mod name { … }` bodies.
fn find_test_regions(tokens: &[Token], in_attr: &[bool]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Find an attribute opening at i that contains cfg(test).
        let is_hash = matches!(tokens[i].kind, TokKind::Punct('#'))
            && matches!(
                tokens.get(i + 1).map(|t| &t.kind),
                Some(TokKind::Punct('['))
            );
        if !is_hash {
            i += 1;
            continue;
        }
        // Attribute extent.
        let mut depth = 0i32;
        let mut j = i + 1;
        while j < tokens.len() {
            match tokens[j].kind {
                TokKind::Punct('[') => depth += 1,
                TokKind::Punct(']') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        let attr_tokens = &tokens[i..=j.min(tokens.len() - 1)];
        let has = |name: &str| {
            attr_tokens
                .iter()
                .any(|t| matches!(&t.kind, TokKind::Ident(s) if s == name))
        };
        if has("cfg") && has("test") {
            // Skip further attributes, then expect `mod name {`.
            let mut k = j + 1;
            while k < tokens.len() && in_attr[k] {
                k += 1;
            }
            if matches!(tokens.get(k).map(|t| &t.kind), Some(TokKind::Ident(s)) if s == "mod") {
                // Find the opening brace of the module body.
                let mut open = k + 1;
                while open < tokens.len()
                    && !matches!(tokens[open].kind, TokKind::Punct('{') | TokKind::Punct(';'))
                {
                    open += 1;
                }
                if open < tokens.len() && matches!(tokens[open].kind, TokKind::Punct('{')) {
                    let mut d = 0i32;
                    let mut c = open;
                    while c < tokens.len() {
                        match tokens[c].kind {
                            TokKind::Punct('{') => d += 1,
                            TokKind::Punct('}') => {
                                d -= 1;
                                if d == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        c += 1;
                    }
                    let end_line = tokens.get(c).map(|t| t.line).unwrap_or(usize::MAX);
                    regions.push((tokens[i].line, end_line));
                    i = c + 1;
                    continue;
                }
            }
        }
        i = j + 1;
    }
    regions
}
