//! The rule engine: repo invariants enforced as CI-failing diagnostics.
//!
//! Every rule works on the token stream of [`crate::lex`], plus a few
//! derived views: attribute token ranges, `#[cfg(test)] mod` line regions
//! and `// hot-path`-marked function bodies. Findings carry `file:line`
//! and can be silenced per line with a trailing `// lint: allow(<rule>)`
//! marker (e.g. `// lint: allow(r2)`).

use std::cell::RefCell;
use std::collections::BTreeSet;
use std::fmt;
use std::path::{Path, PathBuf};

use crate::callgraph::FnIndex;
use crate::item_tree::ItemTree;
use crate::lex::{lex, Lexed, TokKind, Token};
use crate::lockgraph::LockGraph;

/// The rule catalogue. Ids (`R1`…`R9`) are stable: CI logs, allowlist
/// markers and DESIGN.md all refer to them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Rule {
    /// R1: every `unsafe` block / fn / impl is immediately preceded by a
    /// `// SAFETY:` comment (a doc `# Safety` section also counts).
    SafetyComment,
    /// R2: no `unwrap()` / `expect()` / `panic!` / `todo!` in non-test
    /// library code.
    NoPanicPaths,
    /// R3: no timing or allocation calls inside functions marked with a
    /// `// hot-path` comment.
    HotPathAlloc,
    /// R4: no bare `Mutex`/`RwLock` acquisition (`.lock()` / `.read()` /
    /// `.write()`); use the poison-safe `lock_recover` helper.
    LockRecover,
    /// R5: every public item (`pub fn` / `struct` / `enum` / `trait` /
    /// `type` / `const` / `static`) carries a doc comment.
    MissingDocs,
    /// R6: the partial order of `*_recover` lock acquisitions held
    /// simultaneously must be acyclic (static deadlock detection, one
    /// level of call inlining).
    LockOrder,
    /// R7: no nondeterminism sources (`Instant::now`, `SystemTime`,
    /// hash-map iteration, entropy-seeded RNGs, bare
    /// `available_parallelism`) in determinism-critical scopes.
    DeterminismScope,
    /// R8: every `#[target_feature]` / intrinsic-calling kernel fn has a
    /// scalar twin and is reachable from a `*parity*` test.
    TwinCoverage,
    /// R9: every `// lint: allow(rN)` marker must actually silence a
    /// finding; dead markers are findings themselves.
    AllowHygiene,
}

impl Rule {
    /// Stable short id (`R1`…`R9`).
    pub fn id(self) -> &'static str {
        match self {
            Rule::SafetyComment => "R1",
            Rule::NoPanicPaths => "R2",
            Rule::HotPathAlloc => "R3",
            Rule::LockRecover => "R4",
            Rule::MissingDocs => "R5",
            Rule::LockOrder => "R6",
            Rule::DeterminismScope => "R7",
            Rule::TwinCoverage => "R8",
            Rule::AllowHygiene => "R9",
        }
    }

    /// The rule with the given lower-case id (`"r1"`…`"r9"`), if any.
    pub fn from_marker_id(id: &str) -> Option<Rule> {
        Rule::all()
            .into_iter()
            .find(|r| r.id().eq_ignore_ascii_case(id))
    }

    /// One-line description, shown by `rptcn-analysis rules`.
    pub fn describe(self) -> &'static str {
        match self {
            Rule::SafetyComment => {
                "unsafe block/fn/impl must be preceded by a `// SAFETY:` comment"
            }
            Rule::NoPanicPaths => {
                "no unwrap()/expect()/panic!/todo! in non-test library code (serve, net, core, models, obs, analysis + unsafe kernel files)"
            }
            Rule::HotPathAlloc => {
                "no Instant::now()/allocations inside functions marked `// hot-path`"
            }
            Rule::LockRecover => {
                "Mutex/RwLock acquisitions in serve and net must go through `lock_recover`"
            }
            Rule::MissingDocs => {
                "public items in serve, net, core, obs and analysis must have doc comments"
            }
            Rule::LockOrder => {
                "lock acquisition order across serve/net must be acyclic (static deadlock check)"
            }
            Rule::DeterminismScope => {
                "no wall clocks, hash-map iteration, entropy RNGs or bare available_parallelism in determinism-critical scopes"
            }
            Rule::TwinCoverage => {
                "every #[target_feature]/intrinsic kernel fn needs a scalar twin and a *parity* test reference"
            }
            Rule::AllowHygiene => {
                "a `// lint: allow(rN)` marker that silences nothing is itself a finding"
            }
        }
    }

    /// Every rule, in id order.
    pub fn all() -> [Rule; 9] {
        [
            Rule::SafetyComment,
            Rule::NoPanicPaths,
            Rule::HotPathAlloc,
            Rule::LockRecover,
            Rule::MissingDocs,
            Rule::LockOrder,
            Rule::DeterminismScope,
            Rule::TwinCoverage,
            Rule::AllowHygiene,
        ]
    }
}

/// How a finding gates CI.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Severity {
    /// Fails the check unconditionally; must be fixed or explicitly
    /// allow-marked with a justification.
    Deny,
    /// Reported, and gated through `analysis-baseline.json`: accepted
    /// findings live there, anything new (or any stale entry) fails.
    Warn,
}

impl Severity {
    /// Lower-case label used in JSON output and summaries.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Deny => "deny",
            Severity::Warn => "warn",
        }
    }
}

/// The files that hold the repo's `unsafe` compute kernels. They sit on
/// the serving hot path and double as determinism-critical scope: their
/// outputs are under a bitwise parity contract.
const KERNEL_FILES: [&str; 3] = [
    "tensor/src/gemm.rs",
    "autograd/src/conv_kernels.rs",
    "autograd/src/batch_exec.rs",
];

/// Severity of a rule for a given file, by repo policy: everything is
/// deny except R7, which denies only in its determinism-critical core
/// (`net/src/sim*`, the SimClock seam file, the unsafe kernel files) and
/// warns elsewhere so the hash-iteration lint can roll out through the
/// baseline instead of blocking.
pub fn severity(rule: Rule, file: &Path) -> Severity {
    match rule {
        Rule::DeterminismScope => {
            let p = file.to_string_lossy().replace('\\', "/");
            let deny = p.contains("net/src/sim")
                || p.ends_with("obs/src/clock.rs")
                || p.contains("core/src/decide")
                || KERNEL_FILES.iter().any(|f| p.ends_with(f));
            if deny {
                Severity::Deny
            } else {
                Severity::Warn
            }
        }
        _ => Severity::Deny,
    }
}

/// One finding: a rule violated at `file:line`.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// File the finding is in (as passed to the checker).
    pub file: PathBuf,
    /// 1-based source line.
    pub line: usize,
    /// The violated rule.
    pub rule: Rule,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule.id(),
            self.message
        )
    }
}

/// Which rules apply to a workspace file, by repo policy:
/// R1, R3 and R9 everywhere; R2 in `serve`/`net`/`core`/`models`/`obs`/
/// `analysis` plus the `unsafe` kernel files (GEMM, conv, batch
/// executor); R4 and R6 in `serve` and `net`; R5 in `serve`, `net`,
/// `core`, `obs` and `analysis`; R7 in `serve`/`net`/`obs` plus the
/// kernel files and the `core/src/decide` module (deny inside the
/// determinism core — which includes `decide`, whose reservation replays
/// must be reproducible — warn elsewhere; see [`severity`]); R8 on the
/// kernel files under the parity contract.
pub fn rules_for(path: &Path) -> Vec<Rule> {
    let p = path.to_string_lossy().replace('\\', "/");
    let in_crate = |c: &str| p.contains(&format!("crates/{c}/src/"));
    // The kernel files sit on the serving hot path: a stray panic there
    // aborts a forecast mid-batch, so they carry R2 even though their
    // crates as a whole do not. The deliberate sites (worker-panic
    // re-raise, spawn failure) carry r2 allow markers with their
    // justification inline.
    let kernel_file = KERNEL_FILES.iter().any(|f| p.ends_with(f));
    let mut rules = vec![Rule::SafetyComment, Rule::HotPathAlloc];
    if in_crate("serve")
        || in_crate("net")
        || in_crate("core")
        || in_crate("models")
        || in_crate("obs")
        || in_crate("analysis")
        || kernel_file
    {
        rules.push(Rule::NoPanicPaths);
    }
    if in_crate("serve") || in_crate("net") {
        rules.push(Rule::LockRecover);
        rules.push(Rule::LockOrder);
    }
    if in_crate("serve")
        || in_crate("net")
        || in_crate("core")
        || in_crate("obs")
        || in_crate("analysis")
    {
        rules.push(Rule::MissingDocs);
    }
    if in_crate("serve")
        || in_crate("net")
        || in_crate("obs")
        || p.contains("core/src/decide")
        || kernel_file
    {
        rules.push(Rule::DeterminismScope);
    }
    if p.ends_with("tensor/src/gemm.rs") || p.ends_with("autograd/src/conv_kernels.rs") {
        rules.push(Rule::TwinCoverage);
    }
    rules.push(Rule::AllowHygiene);
    rules
}

/// Run `rules` over one file's source text. R6 and R8 run in their
/// single-file form (lock graph / twin index restricted to this file);
/// R9 always runs last so every other rule's marker usage is recorded
/// first.
pub fn check_source(path: &Path, src: &str, rules: &[Rule]) -> Vec<Diagnostic> {
    let ctx = FileContext::new(path, src);
    let mut out = Vec::new();
    for &rule in rules.iter().filter(|&&r| r != Rule::AllowHygiene) {
        ctx.run_rule(rule, &mut out);
    }
    if rules.contains(&Rule::AllowHygiene) {
        ctx.check_allow_hygiene(&mut out);
    }
    out.sort_by_key(|d| d.line);
    out
}

/// Lexed file plus the derived views the rules share. Public so the
/// workspace walk can run the cross-file rules (R6/R8) over many files
/// while sharing the marker-usage state R9 audits.
pub struct FileContext {
    path: PathBuf,
    lexed: Lexed,
    /// Structural view (fns, macros, invocations) for R6/R8.
    tree: ItemTree,
    /// `in_attr[i]` — token `i` is inside a `#[...]` / `#![...]` attribute.
    in_attr: Vec<bool>,
    /// Line ranges (inclusive) of `#[cfg(test)] mod … { … }` bodies.
    test_regions: Vec<(usize, usize)>,
    /// Token index ranges (exclusive end) of `// hot-path` fn bodies.
    hot_fn_spans: Vec<(usize, usize)>,
    /// Lines whose tokens are all attribute tokens.
    attr_only_lines: Vec<usize>,
    /// `(line, rule id)` of every allow marker that suppressed a finding;
    /// R9 flags the markers that never land here.
    used_markers: RefCell<BTreeSet<(usize, &'static str)>>,
}

impl FileContext {
    /// Lex `src` and precompute the shared views.
    pub fn new(path: &Path, src: &str) -> Self {
        let lexed = lex(src);
        let tree = ItemTree::build(&lexed);
        let in_attr = mark_attributes(&lexed.tokens);
        let attr_only_lines = attr_only_lines(&lexed.tokens, &in_attr);
        let test_regions = find_test_regions(&lexed.tokens, &in_attr);
        let mut ctx = Self {
            path: path.to_path_buf(),
            lexed,
            tree,
            in_attr,
            test_regions,
            hot_fn_spans: Vec::new(),
            attr_only_lines,
            used_markers: RefCell::new(BTreeSet::new()),
        };
        ctx.hot_fn_spans = ctx.find_hot_fn_spans();
        ctx
    }

    /// The path this context was built for.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The lexed token stream.
    pub fn lexed(&self) -> &Lexed {
        &self.lexed
    }

    /// The structural item tree.
    pub fn tree(&self) -> &ItemTree {
        &self.tree
    }

    /// Dispatch one rule in its single-file form (R9 excluded: it must
    /// run after every other rule, via [`FileContext::check_allow_hygiene`]).
    pub fn run_rule(&self, rule: Rule, out: &mut Vec<Diagnostic>) {
        match rule {
            Rule::SafetyComment => self.check_safety(out),
            Rule::NoPanicPaths => self.check_no_panic(out),
            Rule::HotPathAlloc => self.check_hot_path(out),
            Rule::LockRecover => self.check_lock_recover(out),
            Rule::MissingDocs => self.check_missing_docs(out),
            Rule::LockOrder => check_lock_order(&[self], out),
            Rule::DeterminismScope => self.check_determinism(out),
            Rule::TwinCoverage => check_twin_coverage(&[self], out),
            Rule::AllowHygiene => {}
        }
    }

    fn tokens(&self) -> &[Token] {
        &self.lexed.tokens
    }

    fn ident_at(&self, i: usize) -> Option<&str> {
        match self.tokens().get(i).map(|t| &t.kind) {
            Some(TokKind::Ident(s)) => Some(s.as_str()),
            _ => None,
        }
    }

    fn punct_at(&self, i: usize) -> Option<char> {
        match self.tokens().get(i).map(|t| &t.kind) {
            Some(TokKind::Punct(c)) => Some(*c),
            _ => None,
        }
    }

    fn line_of(&self, i: usize) -> usize {
        self.tokens()[i].line
    }

    fn in_test_region(&self, line: usize) -> bool {
        self.test_regions
            .iter()
            .any(|&(lo, hi)| line >= lo && line <= hi)
    }

    /// Trailing `// lint: allow(rN)` marker on `line`? A hit is recorded
    /// so R9 can tell live markers from dead ones.
    fn allowed(&self, line: usize, rule: Rule) -> bool {
        let marker = format!("lint: allow({})", rule.id().to_ascii_lowercase());
        let hit = self
            .lexed
            .comment_on(line)
            .to_ascii_lowercase()
            .contains(&marker);
        if hit {
            self.used_markers.borrow_mut().insert((line, rule.id()));
        }
        hit
    }

    fn emit(&self, out: &mut Vec<Diagnostic>, line: usize, rule: Rule, message: String) {
        if self.in_test_region(line) || self.allowed(line, rule) {
            return;
        }
        out.push(Diagnostic {
            file: self.path.to_path_buf(),
            line,
            rule,
            message,
        });
    }

    /// The contiguous run of comment-only / attribute-only lines directly
    /// above `line`, concatenated (nearest line first).
    fn comment_run_above(&self, line: usize) -> String {
        let mut text = String::new();
        let mut l = line;
        while l > 1 {
            l -= 1;
            if self.lexed.is_comment_only(l) || self.attr_only_lines.binary_search(&l).is_ok() {
                text.push_str(self.lexed.comment_on(l));
                text.push('\n');
            } else {
                break;
            }
        }
        text
    }

    /// A `// hot-path` marker in the comment run directly above `line`?
    /// The marker must be a plain line comment whose text *starts* with
    /// `hot-path` (after the slashes) — a doc comment merely mentioning
    /// the phrase does not opt a function in.
    fn has_hot_path_marker_above(&self, line: usize) -> bool {
        let mut l = line;
        while l > 1 {
            l -= 1;
            if self.attr_only_lines.binary_search(&l).is_ok() {
                continue;
            }
            if self.lexed.is_comment_only(l) {
                let c = self.lexed.comment_on(l).trim_start();
                if !c.starts_with("///") && !c.starts_with("//!") {
                    let body = c.trim_start_matches('/').trim_start();
                    if body.starts_with("hot-path") {
                        return true;
                    }
                }
                continue;
            }
            break;
        }
        false
    }

    /// Does the comment run above `line` contain a `///` doc comment?
    fn has_doc_above(&self, line: usize) -> bool {
        let mut l = line;
        while l > 1 {
            l -= 1;
            if self.attr_only_lines.binary_search(&l).is_ok() {
                continue;
            }
            if self.lexed.is_comment_only(l) {
                let c = self.lexed.comment_on(l);
                let t = c.trim_start();
                if t.starts_with("///") || t.starts_with("/**") {
                    return true;
                }
                continue;
            }
            break;
        }
        false
    }

    /// Walk back from token `i` over attributes and item modifiers
    /// (`pub`, `pub(crate)`, `unsafe`, `async`, `const`, `extern "C"`) to
    /// the first token of the item declaration; returns its index.
    fn item_start(&self, mut i: usize) -> usize {
        const MODIFIERS: [&str; 6] = ["pub", "unsafe", "async", "const", "extern", "default"];
        loop {
            if i == 0 {
                return 0;
            }
            let prev = i - 1;
            // Skip a trailing `)` of `pub(crate)` / `pub(super)`.
            if self.punct_at(prev) == Some(')') {
                let mut depth = 0usize;
                let mut j = prev;
                loop {
                    match self.punct_at(j) {
                        Some(')') => depth += 1,
                        Some('(') => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    if j == 0 {
                        break;
                    }
                    j -= 1;
                }
                if j > 0 && self.ident_at(j - 1) == Some("pub") {
                    i = j - 1;
                    continue;
                }
                return i;
            }
            if self.in_attr[prev] {
                // Skip the whole attribute.
                let mut j = prev;
                while j > 0 && self.in_attr[j - 1] {
                    j -= 1;
                }
                i = j;
                continue;
            }
            match self.ident_at(prev) {
                Some(m) if MODIFIERS.contains(&m) => {
                    i = prev;
                    continue;
                }
                _ => return i,
            }
        }
    }

    /// Token index of the `{` opening the body of the fn whose `fn`
    /// keyword is at `fn_idx`, or `None` for a bodyless declaration.
    fn fn_body_open(&self, fn_idx: usize) -> Option<usize> {
        let toks = self.tokens();
        let mut paren = 0i32;
        let mut bracket = 0i32;
        for (off, t) in toks.iter().enumerate().skip(fn_idx + 1) {
            match t.kind {
                TokKind::Punct('(') => paren += 1,
                TokKind::Punct(')') => paren -= 1,
                TokKind::Punct('[') => bracket += 1,
                TokKind::Punct(']') => bracket -= 1,
                TokKind::Punct('{') if paren == 0 && bracket == 0 => return Some(off),
                TokKind::Punct(';') if paren == 0 && bracket == 0 => return None,
                _ => {}
            }
        }
        None
    }

    /// Index one past the `}` matching the `{` at `open`.
    fn matching_close(&self, open: usize) -> usize {
        let toks = self.tokens();
        let mut depth = 0i32;
        for (off, t) in toks.iter().enumerate().skip(open) {
            match t.kind {
                TokKind::Punct('{') => depth += 1,
                TokKind::Punct('}') => {
                    depth -= 1;
                    if depth == 0 {
                        return off + 1;
                    }
                }
                _ => {}
            }
        }
        toks.len()
    }

    /// Body spans of functions whose leading comment run contains a
    /// `hot-path` marker.
    fn find_hot_fn_spans(&self) -> Vec<(usize, usize)> {
        let mut spans = Vec::new();
        for i in 0..self.tokens().len() {
            if self.ident_at(i) != Some("fn") || self.in_attr[i] {
                continue;
            }
            let start = self.item_start(i);
            if !self.has_hot_path_marker_above(self.line_of(start)) {
                continue;
            }
            if let Some(open) = self.fn_body_open(i) {
                spans.push((open, self.matching_close(open)));
            }
        }
        spans
    }

    // ---- R1 ---------------------------------------------------------------

    fn check_safety(&self, out: &mut Vec<Diagnostic>) {
        for i in 0..self.tokens().len() {
            if self.ident_at(i) != Some("unsafe") || self.in_attr[i] {
                continue;
            }
            // `unsafe` in a type position (`unsafe fn` pointer types,
            // `unsafe extern` blocks) is rare here; treat every keyword
            // use as a site needing justification.
            let start = self.item_start(i);
            let line = self.line_of(start);
            let same_line = self.lexed.comment_on(self.line_of(i));
            let above = self.comment_run_above(line);
            let ok = same_line.contains("SAFETY:")
                || above.contains("SAFETY:")
                || above.contains("# Safety");
            if !ok {
                let what = match self.ident_at(i + 1) {
                    Some("fn") => "unsafe fn",
                    Some("impl") => "unsafe impl",
                    _ => "unsafe block",
                };
                self.emit(
                    out,
                    self.line_of(i),
                    Rule::SafetyComment,
                    format!("{what} without an immediately-preceding `// SAFETY:` comment"),
                );
            }
        }
    }

    // ---- R2 ---------------------------------------------------------------

    fn check_no_panic(&self, out: &mut Vec<Diagnostic>) {
        for i in 0..self.tokens().len() {
            let Some(name) = self.ident_at(i) else {
                continue;
            };
            if self.in_attr[i] {
                continue;
            }
            match name {
                "unwrap" | "expect" => {
                    let method = i > 0
                        && self.punct_at(i - 1) == Some('.')
                        && self.punct_at(i + 1) == Some('(');
                    if method {
                        self.emit(
                            out,
                            self.line_of(i),
                            Rule::NoPanicPaths,
                            format!("`.{name}()` in library code; return a typed error instead"),
                        );
                    }
                }
                "panic" | "todo" | "unimplemented" if self.punct_at(i + 1) == Some('!') => {
                    self.emit(
                        out,
                        self.line_of(i),
                        Rule::NoPanicPaths,
                        format!("`{name}!` in library code; return a typed error instead"),
                    );
                }
                _ => {}
            }
        }
    }

    // ---- R3 ---------------------------------------------------------------

    fn check_hot_path(&self, out: &mut Vec<Diagnostic>) {
        for &(lo, hi) in &self.hot_fn_spans {
            for i in lo..hi {
                let Some(name) = self.ident_at(i) else {
                    continue;
                };
                if self.in_attr[i] {
                    continue;
                }
                let flagged: Option<&str> = match name {
                    "now" if self.path_prefix_is(i, "Instant") => Some("Instant::now()"),
                    "new" if self.path_prefix_is(i, "Vec") => Some("Vec::new()"),
                    "new" if self.path_prefix_is(i, "Box") => Some("Box::new()"),
                    "vec" if self.punct_at(i + 1) == Some('!') => Some("vec!"),
                    "with_capacity" if self.punct_at(i + 1) == Some('(') => Some("with_capacity()"),
                    "to_vec" | "clone" | "to_string" | "to_owned" | "collect"
                        if i > 0
                            && self.punct_at(i - 1) == Some('.')
                            && self.punct_at(i + 1) == Some('(') =>
                    {
                        Some("allocating method call")
                    }
                    "format" if self.punct_at(i + 1) == Some('!') => Some("format!"),
                    _ => None,
                };
                if let Some(what) = flagged {
                    self.emit(
                        out,
                        self.line_of(i),
                        Rule::HotPathAlloc,
                        format!("{what} (`{name}`) inside a `// hot-path` function"),
                    );
                }
            }
        }
    }

    /// Token `i` is preceded by `prefix ::` (e.g. `Instant :: now`).
    fn path_prefix_is(&self, i: usize, prefix: &str) -> bool {
        i >= 3
            && self.punct_at(i - 1) == Some(':')
            && self.punct_at(i - 2) == Some(':')
            && self.ident_at(i - 3) == Some(prefix)
    }

    // ---- R4 ---------------------------------------------------------------

    fn check_lock_recover(&self, out: &mut Vec<Diagnostic>) {
        for i in 0..self.tokens().len() {
            let Some(name) = self.ident_at(i) else {
                continue;
            };
            if !matches!(name, "lock" | "read" | "write") || self.in_attr[i] {
                continue;
            }
            // `.lock()` / `.read()` / `.write()` with an empty argument
            // list — the Mutex/RwLock acquisition shape. IO calls such as
            // `write_all(buf)` have arguments and stay untouched.
            let bare_acquire = i > 0
                && self.punct_at(i - 1) == Some('.')
                && self.punct_at(i + 1) == Some('(')
                && self.punct_at(i + 2) == Some(')');
            if bare_acquire {
                self.emit(
                    out,
                    self.line_of(i),
                    Rule::LockRecover,
                    format!(
                        "bare `.{name}()` acquisition; use the poison-safe `lock_recover` helper"
                    ),
                );
            }
        }
    }

    // ---- R5 ---------------------------------------------------------------

    fn check_missing_docs(&self, out: &mut Vec<Diagnostic>) {
        const ITEM_KEYWORDS: [&str; 7] =
            ["fn", "struct", "enum", "trait", "type", "const", "static"];
        for i in 0..self.tokens().len() {
            if self.ident_at(i) != Some("pub") || self.in_attr[i] {
                continue;
            }
            // `pub(crate)` / `pub(super)` are not public API.
            if self.punct_at(i + 1) == Some('(') {
                continue;
            }
            // Item position: previous non-attribute token opens/closes a
            // block or ends a statement. Tuple-struct fields (`(pub f32)`)
            // and similar positions are skipped.
            let mut p = i;
            while p > 0 && self.in_attr[p - 1] {
                p -= 1;
            }
            if p > 0 && !matches!(self.punct_at(p - 1), Some('{') | Some('}') | Some(';')) {
                continue;
            }
            // Reach the item keyword through modifiers.
            let mut j = i + 1;
            while matches!(
                self.ident_at(j),
                Some("unsafe") | Some("async") | Some("extern") | Some("default")
            ) || matches!(self.tokens().get(j).map(|t| &t.kind), Some(TokKind::Str))
            {
                j += 1;
            }
            // `pub const fn` is a fn; bare `pub const NAME` is a const.
            if self.ident_at(j) == Some("const") && self.ident_at(j + 1) == Some("fn") {
                j += 1;
            }
            let Some(kw) = self.ident_at(j) else { continue };
            if !ITEM_KEYWORDS.contains(&kw) {
                continue;
            }
            let item_name = self.ident_at(j + 1).unwrap_or("?").to_string();
            let start = self.item_start(j);
            if !self.has_doc_above(self.line_of(start)) {
                self.emit(
                    out,
                    self.line_of(i),
                    Rule::MissingDocs,
                    format!("public {kw} `{item_name}` has no doc comment"),
                );
            }
        }
    }

    // ---- R7 ---------------------------------------------------------------

    /// Identifiers declared with a std hash-container type in this file:
    /// `name: [&][mut] HashMap<…>` fields/params/annotations and
    /// `let name = HashMap::new()`-style bindings.
    fn hash_typed_names(&self) -> BTreeSet<String> {
        let mut names = BTreeSet::new();
        for i in 0..self.tokens().len() {
            let Some(ty) = self.ident_at(i) else { continue };
            if !(ty == "HashMap" || ty == "HashSet") || self.in_attr[i] {
                continue;
            }
            let mut j = i;
            while j > 0
                && (self.punct_at(j - 1) == Some('&') || self.ident_at(j - 1) == Some("mut"))
            {
                j -= 1;
            }
            if j < 2 {
                continue;
            }
            // `a :: HashMap` is a use/path position, not a declaration.
            let decl = (self.punct_at(j - 1) == Some(':') && self.punct_at(j - 2) != Some(':'))
                || self.punct_at(j - 1) == Some('=');
            if decl {
                if let Some(v) = self.ident_at(j - 2) {
                    names.insert(v.to_string());
                }
            }
        }
        names
    }

    /// The iteration at token `i` feeds a `let [mut] v = ….collect();`
    /// binding that is sorted in the immediately following statement —
    /// the blessed "sorted drain" shape.
    fn sorted_after(&self, i: usize) -> bool {
        // Find the binding variable: walk back to the statement start and
        // expect `let [mut] v =`.
        let mut j = i;
        while j > 0 {
            match self.punct_at(j - 1) {
                Some(';') | Some('{') | Some('}') => break,
                _ => j -= 1,
            }
        }
        let var = match (self.ident_at(j), self.ident_at(j + 1), self.ident_at(j + 2)) {
            (Some("let"), Some("mut"), Some(v)) => v.to_string(),
            (Some("let"), Some(v), _) => v.to_string(),
            _ => return false,
        };
        // Find the `;` ending this statement, then require `v.sort…(` next.
        let mut k = i;
        while k < self.tokens().len() && self.punct_at(k) != Some(';') {
            k += 1;
        }
        self.ident_at(k + 1) == Some(var.as_str())
            && self.punct_at(k + 2) == Some('.')
            && self.ident_at(k + 3).is_some_and(|m| m.starts_with("sort"))
            && self.punct_at(k + 4) == Some('(')
    }

    fn check_determinism(&self, out: &mut Vec<Diagnostic>) {
        const ITER_METHODS: [&str; 10] = [
            "iter",
            "iter_mut",
            "keys",
            "values",
            "values_mut",
            "drain",
            "into_iter",
            "into_keys",
            "into_values",
            "retain",
        ];
        let seam_file = self
            .path
            .to_string_lossy()
            .replace('\\', "/")
            .ends_with("batch_exec.rs");
        let hash_vars = self.hash_typed_names();
        let toks = self.tokens();
        for i in 0..toks.len() {
            let Some(name) = self.ident_at(i) else {
                continue;
            };
            if self.in_attr[i] {
                continue;
            }
            match name {
                "now"
                    if self.path_prefix_is(i, "Instant")
                        || self.path_prefix_is(i, "SystemTime") =>
                {
                    self.emit(
                        out,
                        self.line_of(i),
                        Rule::DeterminismScope,
                        "wall-clock `::now()` in a determinism-critical scope; take time from the injected `Clock`".to_string(),
                    );
                }
                "thread_rng" | "OsRng" | "from_entropy" | "getrandom" => {
                    self.emit(
                        out,
                        self.line_of(i),
                        Rule::DeterminismScope,
                        format!("entropy-seeded RNG (`{name}`); derive randomness from the run seed (splitmix64)"),
                    );
                }
                "available_parallelism" if !seam_file => {
                    self.emit(
                        out,
                        self.line_of(i),
                        Rule::DeterminismScope,
                        "bare `available_parallelism`; thread counts must come from the batch-executor seam".to_string(),
                    );
                }
                "in" => {
                    // `for x in [&][mut] path.to.hash { … }` — direct
                    // iteration of a hash container.
                    let mut j = i + 1;
                    while self.punct_at(j) == Some('&') || self.ident_at(j) == Some("mut") {
                        j += 1;
                    }
                    if self.ident_at(j).is_none() {
                        continue;
                    }
                    while self.punct_at(j + 1) == Some('.') && self.ident_at(j + 2).is_some() {
                        j += 2;
                    }
                    let last = self.ident_at(j).unwrap_or_default();
                    if self.punct_at(j + 1) == Some('{') && hash_vars.contains(last) {
                        self.emit(
                            out,
                            self.line_of(j),
                            Rule::DeterminismScope,
                            format!("iteration over std hash container `{last}` is order-nondeterministic; use BTreeMap/BTreeSet or sort after collecting"),
                        );
                    }
                }
                m if ITER_METHODS.contains(&m)
                    && i >= 2
                    && self.punct_at(i - 1) == Some('.')
                    && self.punct_at(i + 1) == Some('(') =>
                {
                    let Some(recv) = self.ident_at(i - 2) else {
                        continue;
                    };
                    if hash_vars.contains(recv) && !self.sorted_after(i) {
                        self.emit(
                            out,
                            self.line_of(i),
                            Rule::DeterminismScope,
                            format!("`.{m}()` on std hash container `{recv}` is order-nondeterministic; use BTreeMap/BTreeSet or a sorted drain"),
                        );
                    }
                }
                _ => {}
            }
        }
    }

    // ---- R9 ---------------------------------------------------------------

    /// Every `// lint: allow(rN)` marker in a plain line comment that no
    /// rule consulted when suppressing a finding. Must run after every
    /// other rule (including the cross-file ones) so usage is complete.
    pub fn check_allow_hygiene(&self, out: &mut Vec<Diagnostic>) {
        let markers: Vec<(usize, String)> = self
            .lexed
            .comments
            .iter()
            .flat_map(|(&line, comment)| {
                let t = comment.trim_start();
                // Doc comments talk *about* the syntax; only plain `//`
                // comments carry live markers.
                if t.starts_with("///") || t.starts_with("//!") || t.starts_with("/**") {
                    return Vec::new();
                }
                parse_markers(comment)
                    .into_iter()
                    .map(move |id| (line, id))
                    .collect()
            })
            .collect();
        for (line, id) in markers {
            if self.in_test_region(line) {
                continue;
            }
            match Rule::from_marker_id(&id) {
                None => self.emit(
                    out,
                    line,
                    Rule::AllowHygiene,
                    format!("allow marker names unknown rule `{id}`"),
                ),
                Some(rule) => {
                    let used = self.used_markers.borrow().contains(&(line, rule.id()));
                    if !used {
                        self.emit(
                            out,
                            line,
                            Rule::AllowHygiene,
                            format!(
                                "`lint: allow({id})` silences nothing on this line; remove the stale marker"
                            ),
                        );
                    }
                }
            }
        }
    }
}

/// Rule ids named by `lint: allow(<id>)` markers in `comment`.
fn parse_markers(comment: &str) -> Vec<String> {
    const NEEDLE: &str = "lint: allow(";
    let lower = comment.to_ascii_lowercase();
    let mut ids = Vec::new();
    let mut pos = 0;
    while let Some(off) = lower[pos..].find(NEEDLE) {
        let start = pos + off + NEEDLE.len();
        let Some(close) = lower[start..].find(')') else {
            break;
        };
        ids.push(lower[start..start + close].trim().to_string());
        pos = start + close + 1;
    }
    ids
}

// ---- R6 (cross-file) ------------------------------------------------------

/// R6 over a file set: build one lock graph across every function body
/// (test regions skipped), inline one call level, and report each
/// acquisition edge that participates in a cycle at its source site.
/// Single-file mode (fixtures, `check_source`) passes a one-element
/// slice.
pub fn check_lock_order(files: &[&FileContext], out: &mut Vec<Diagnostic>) {
    let mut graph = LockGraph::default();
    for f in files {
        let disp = f.path.to_string_lossy().replace('\\', "/");
        graph.add_file(&disp, &f.lexed, &f.tree, &|line| f.in_test_region(line));
    }
    graph.finalize();
    for e in graph.cyclic_edges() {
        let Some(f) = files
            .iter()
            .find(|f| f.path.to_string_lossy().replace('\\', "/") == e.file)
        else {
            continue;
        };
        let msg = if e.held == e.acquired {
            format!(
                "lock `{}` re-acquired while already held (std locks are not reentrant)",
                e.acquired
            )
        } else {
            format!(
                "lock `{}` acquired while `{}` is held, and the reverse order exists elsewhere — deadlock cycle",
                e.acquired, e.held
            )
        };
        f.emit(out, e.line, Rule::LockOrder, msg);
    }
}

// ---- R8 (cross-file) ------------------------------------------------------

/// R8 over a file set: every `#[target_feature]` or intrinsic-calling fn
/// in the kernel files must have a scalar twin (a second same-name
/// definition — the cfg pair — or a `*_scalar` sibling) and be
/// transitively reachable from a `*parity*` test file or module. When no
/// file in the set is a policy kernel file (fixture mode), every given
/// file is treated as one.
pub fn check_twin_coverage(files: &[&FileContext], out: &mut Vec<Diagnostic>) {
    let mut idx = FnIndex::default();
    for f in files {
        let disp = f.path.to_string_lossy().replace('\\', "/");
        idx.add_file(&disp, &f.lexed, &f.tree);
    }
    // Seeds: every identifier in *parity* files, plus identifiers inside
    // modules whose name contains "parity" (single-file fixtures).
    let mut seeds: BTreeSet<String> = BTreeSet::new();
    for f in files {
        let stem_parity = f
            .path
            .file_stem()
            .map(|s| s.to_string_lossy().contains("parity"))
            .unwrap_or(false);
        if stem_parity {
            for t in &f.lexed.tokens {
                if let TokKind::Ident(s) = &t.kind {
                    seeds.insert(s.clone());
                }
            }
        } else {
            for m in &f.tree.modules {
                if !m.name.contains("parity") {
                    continue;
                }
                for t in &f.lexed.tokens[m.body.0..m.body.1] {
                    if let TokKind::Ident(s) = &t.kind {
                        seeds.insert(s.clone());
                    }
                }
            }
        }
    }
    let covered = idx.reachable(&seeds);

    let policy_kernels: Vec<&FileContext> = files
        .iter()
        .copied()
        .filter(|f| rules_for(&f.path).contains(&Rule::TwinCoverage))
        .collect();
    let kernel_files: Vec<&FileContext> = if policy_kernels.is_empty() {
        files.to_vec()
    } else {
        policy_kernels
    };
    for f in kernel_files {
        let disp = f.path.to_string_lossy().replace('\\', "/");
        let mut reported: BTreeSet<&str> = BTreeSet::new();
        let nodes: Vec<_> = idx
            .by_name
            .values()
            .flatten()
            .filter(|n| n.file == disp && (n.target_feature || n.intrinsics))
            .collect();
        for node in nodes {
            if f.in_test_region(node.line) || !reported.insert(node.name.as_str()) {
                continue;
            }
            let defs = idx.defs(&node.name);
            let base = node
                .name
                .rsplit_once('_')
                .map(|(b, _)| b)
                .unwrap_or(&node.name);
            let twin = defs.len() >= 2
                || idx.by_name.contains_key(&format!("{}_scalar", node.name))
                || idx.by_name.contains_key(&format!("{base}_scalar"));
            if !twin {
                f.emit(
                    out,
                    node.line,
                    Rule::TwinCoverage,
                    format!(
                        "kernel fn `{}` has no scalar twin (no cfg-paired second definition or `*_scalar` sibling)",
                        node.name
                    ),
                );
            }
            if !covered.contains(&node.name) {
                f.emit(
                    out,
                    node.line,
                    Rule::TwinCoverage,
                    format!(
                        "kernel fn `{}` is not reachable from any *parity* test, so the bitwise twin contract is untested",
                        node.name
                    ),
                );
            }
        }
    }
}

/// Mark tokens inside `#[...]` / `#![...]` attributes.
fn mark_attributes(tokens: &[Token]) -> Vec<bool> {
    let mut out = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        let hash = matches!(tokens[i].kind, TokKind::Punct('#'));
        let open = |k: usize| matches!(tokens.get(k).map(|t| &t.kind), Some(TokKind::Punct('[')));
        let bang = |k: usize| matches!(tokens.get(k).map(|t| &t.kind), Some(TokKind::Punct('!')));
        if hash && (open(i + 1) || (bang(i + 1) && open(i + 2))) {
            let bracket_at = if open(i + 1) { i + 1 } else { i + 2 };
            let mut depth = 0i32;
            let mut j = bracket_at;
            while j < tokens.len() {
                match tokens[j].kind {
                    TokKind::Punct('[') => depth += 1,
                    TokKind::Punct(']') => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            for slot in out.iter_mut().take((j + 1).min(tokens.len())).skip(i) {
                *slot = true;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    out
}

/// Lines whose tokens are all attribute tokens (sorted, for binary search).
fn attr_only_lines(tokens: &[Token], in_attr: &[bool]) -> Vec<usize> {
    use std::collections::BTreeMap;
    let mut per_line: BTreeMap<usize, (bool, bool)> = BTreeMap::new();
    for (t, &ia) in tokens.iter().zip(in_attr) {
        let e = per_line.entry(t.line).or_insert((false, false));
        if ia {
            e.0 = true;
        } else {
            e.1 = true;
        }
    }
    per_line
        .into_iter()
        .filter_map(|(line, (attr, code))| (attr && !code).then_some(line))
        .collect()
}

/// Line ranges of `#[cfg(test)] mod name { … }` bodies.
fn find_test_regions(tokens: &[Token], in_attr: &[bool]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Find an attribute opening at i that contains cfg(test).
        let is_hash = matches!(tokens[i].kind, TokKind::Punct('#'))
            && matches!(
                tokens.get(i + 1).map(|t| &t.kind),
                Some(TokKind::Punct('['))
            );
        if !is_hash {
            i += 1;
            continue;
        }
        // Attribute extent.
        let mut depth = 0i32;
        let mut j = i + 1;
        while j < tokens.len() {
            match tokens[j].kind {
                TokKind::Punct('[') => depth += 1,
                TokKind::Punct(']') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        let attr_tokens = &tokens[i..=j.min(tokens.len() - 1)];
        let has = |name: &str| {
            attr_tokens
                .iter()
                .any(|t| matches!(&t.kind, TokKind::Ident(s) if s == name))
        };
        if has("cfg") && has("test") {
            // Skip further attributes, then expect `mod name {`.
            let mut k = j + 1;
            while k < tokens.len() && in_attr[k] {
                k += 1;
            }
            if matches!(tokens.get(k).map(|t| &t.kind), Some(TokKind::Ident(s)) if s == "mod") {
                // Find the opening brace of the module body.
                let mut open = k + 1;
                while open < tokens.len()
                    && !matches!(tokens[open].kind, TokKind::Punct('{') | TokKind::Punct(';'))
                {
                    open += 1;
                }
                if open < tokens.len() && matches!(tokens[open].kind, TokKind::Punct('{')) {
                    let mut d = 0i32;
                    let mut c = open;
                    while c < tokens.len() {
                        match tokens[c].kind {
                            TokKind::Punct('{') => d += 1,
                            TokKind::Punct('}') => {
                                d -= 1;
                                if d == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        c += 1;
                    }
                    let end_line = tokens.get(c).map(|t| t.line).unwrap_or(usize::MAX);
                    regions.push((tokens[i].line, end_line));
                    i = c + 1;
                    continue;
                }
            }
        }
        i = j + 1;
    }
    regions
}
