//! CLI driver: `rptcn-analysis check [--root DIR] [--format text|json|sarif]
//! [--out FILE] [--baseline FILE] [--update-baseline]` walks the
//! workspace, prints `file:line: [Rn] message` diagnostics and exits
//! non-zero when any deny-level invariant is violated or the warn
//! baseline drifts — wired into CI as the `analysis` job (which uploads
//! the SARIF report). `rptcn-analysis rules` prints the rule catalogue.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use analysis::export;
use analysis::{check_workspace, severity, Rule, Severity};

/// Default baseline file name, resolved relative to `--root`.
const BASELINE_FILE: &str = "analysis-baseline.json";

#[derive(PartialEq)]
enum Format {
    Text,
    Json,
    Sarif,
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let cmd = args.next().unwrap_or_default();
    match cmd.as_str() {
        "check" => {
            let mut root = PathBuf::from(".");
            let mut format = Format::Text;
            let mut out_file: Option<PathBuf> = None;
            let mut baseline: Option<PathBuf> = None;
            let mut update_baseline = false;
            while let Some(arg) = args.next() {
                match arg.as_str() {
                    "--root" => {
                        let Some(dir) = args.next() else {
                            eprintln!("--root needs a directory argument");
                            return ExitCode::from(2);
                        };
                        root = PathBuf::from(dir);
                    }
                    "--format" => {
                        format = match args.next().as_deref() {
                            Some("text") => Format::Text,
                            Some("json") => Format::Json,
                            Some("sarif") => Format::Sarif,
                            other => {
                                eprintln!(
                                    "--format needs text|json|sarif (got {:?})",
                                    other.unwrap_or("nothing")
                                );
                                return ExitCode::from(2);
                            }
                        };
                    }
                    "--out" => {
                        let Some(f) = args.next() else {
                            eprintln!("--out needs a file argument");
                            return ExitCode::from(2);
                        };
                        out_file = Some(PathBuf::from(f));
                    }
                    "--baseline" => {
                        let Some(f) = args.next() else {
                            eprintln!("--baseline needs a file argument");
                            return ExitCode::from(2);
                        };
                        baseline = Some(PathBuf::from(f));
                    }
                    "--update-baseline" => update_baseline = true,
                    other => {
                        eprintln!("unknown argument `{other}`");
                        return usage();
                    }
                }
            }
            run_check(&root, format, out_file, baseline, update_baseline)
        }
        "rules" => {
            for rule in Rule::all() {
                println!("{}: {}", rule.id(), rule.describe());
            }
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}

fn run_check(
    root: &Path,
    format: Format,
    out_file: Option<PathBuf>,
    baseline: Option<PathBuf>,
    update_baseline: bool,
) -> ExitCode {
    let diags = match check_workspace(root) {
        Ok(d) => d,
        Err(e) => {
            eprintln!(
                "rptcn-analysis: cannot walk workspace at `{}`: {e}",
                root.display()
            );
            return ExitCode::from(2);
        }
    };

    // Machine-readable report, to --out or (replacing text) stdout.
    let rendered = match format {
        Format::Text => None,
        Format::Json => Some(export::to_json(&diags)),
        Format::Sarif => Some(export::to_sarif(&diags)),
    };
    if let Some(report) = &rendered {
        match &out_file {
            Some(path) => {
                if let Err(e) = std::fs::write(path, report) {
                    eprintln!("rptcn-analysis: cannot write `{}`: {e}", path.display());
                    return ExitCode::from(2);
                }
            }
            None => print!("{report}"),
        }
    }
    // Human-readable findings on stdout unless it carries the report.
    if rendered.is_none() || out_file.is_some() {
        for d in &diags {
            println!("{d}");
        }
    }

    // Severity split + baseline gating for warn findings.
    let deny: Vec<_> = diags
        .iter()
        .filter(|d| severity(d.rule, &d.file) == Severity::Deny)
        .collect();
    let warn_keys: Vec<String> = diags
        .iter()
        .filter(|d| severity(d.rule, &d.file) == Severity::Warn)
        .map(export::baseline_key)
        .collect();

    let baseline_path = baseline.unwrap_or_else(|| root.join(BASELINE_FILE));
    if update_baseline {
        let mut keys = warn_keys.clone();
        keys.sort();
        if let Err(e) = std::fs::write(&baseline_path, export::render_baseline(&keys)) {
            eprintln!(
                "rptcn-analysis: cannot write baseline `{}`: {e}",
                baseline_path.display()
            );
            return ExitCode::from(2);
        }
        eprintln!(
            "rptcn-analysis: baseline updated ({} accepted warn finding(s))",
            keys.len()
        );
    }
    // No baseline file = warn findings are informational; with one, the
    // match must be exact both ways (new warns and stale entries fail).
    let mut drift = Vec::new();
    if !update_baseline {
        if let Ok(text) = std::fs::read_to_string(&baseline_path) {
            let accepted = export::parse_baseline(&text).unwrap_or_default();
            for k in &warn_keys {
                if !accepted.contains(k) {
                    drift.push(format!("new warn finding not in baseline: {k}"));
                }
            }
            for k in &accepted {
                if !warn_keys.contains(k) {
                    drift.push(format!("stale baseline entry (finding is gone): {k}"));
                }
            }
        }
    }
    for d in &drift {
        println!("baseline drift: {d}");
    }

    let warn_count = warn_keys.len();
    if deny.is_empty() && drift.is_empty() {
        eprintln!("rptcn-analysis: workspace clean ({warn_count} baselined warn finding(s))");
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "rptcn-analysis: {} deny finding(s), {} baseline drift(s), {warn_count} warn finding(s)",
            deny.len(),
            drift.len()
        );
        ExitCode::FAILURE
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: rptcn-analysis <check [--root DIR] [--format text|json|sarif] [--out FILE] [--baseline FILE] [--update-baseline] | rules>"
    );
    ExitCode::from(2)
}
