//! CLI driver: `rptcn-analysis check [--root DIR]` walks every
//! `crates/*/src` file, prints `file:line: [Rn] message` diagnostics and
//! exits non-zero when any invariant is violated — wired into CI as the
//! `analysis` job. `rptcn-analysis rules` prints the rule catalogue.

use std::path::PathBuf;
use std::process::ExitCode;

use analysis::{check_workspace, Rule};

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let cmd = args.next().unwrap_or_default();
    match cmd.as_str() {
        "check" => {
            let mut root = PathBuf::from(".");
            while let Some(arg) = args.next() {
                match arg.as_str() {
                    "--root" => {
                        let Some(dir) = args.next() else {
                            eprintln!("--root needs a directory argument");
                            return ExitCode::from(2);
                        };
                        root = PathBuf::from(dir);
                    }
                    other => {
                        eprintln!("unknown argument `{other}`");
                        return usage();
                    }
                }
            }
            run_check(&root)
        }
        "rules" => {
            for rule in Rule::all() {
                println!("{}: {}", rule.id(), rule.describe());
            }
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}

fn run_check(root: &std::path::Path) -> ExitCode {
    let diags = match check_workspace(root) {
        Ok(d) => d,
        Err(e) => {
            eprintln!(
                "rptcn-analysis: cannot walk workspace at `{}`: {e}",
                root.display()
            );
            return ExitCode::from(2);
        }
    };
    for d in &diags {
        println!("{d}");
    }
    if diags.is_empty() {
        eprintln!("rptcn-analysis: workspace clean");
        ExitCode::SUCCESS
    } else {
        eprintln!("rptcn-analysis: {} finding(s)", diags.len());
        ExitCode::FAILURE
    }
}

fn usage() -> ExitCode {
    eprintln!("usage: rptcn-analysis <check [--root DIR] | rules>");
    ExitCode::from(2)
}
