//! # bench_harness — shared machinery for the experiment binaries
//!
//! Every table and figure of the paper has a binary in `src/bin/`; this
//! library keeps them thin:
//!
//! * [`args`] — common `--seed/--steps/--entities/--quick/--out` flags.
//! * [`runners`] — standard datasets (containers, machines, the Fig. 8
//!   mutation machine, the fleet), model construction and per-cell runs.
//! * [`table`] — aligned text tables + CSV export.
//!
//! | Binary | Reproduces |
//! |---|---|
//! | `fig1_traces` | Fig. 1 — high-dynamic container utilisation |
//! | `fig2_cpu_boxplot` | Fig. 2 — fleet CPU boxplot per 6 h |
//! | `fig3_underused` | Fig. 3 — % machines below 50 % CPU |
//! | `fig7_correlation` | Fig. 7 — indicator PCC matrix + top-4 |
//! | `table2_accuracy` | Table II — MSE/MAE for all models × scenarios |
//! | `fig8_pred_vs_true` | Fig. 8 — predictions across a mutation point |
//! | `fig9_10_convergence` | Figs. 9–10 — loss convergence curves |
//! | `ablation_components` | FC / attention contribution (§V-C) |
//! | `ablation_expansion` | expansion variants (§III-C, §V-C) |
//! | `ablation_receptive_field` | kernel/level sweep (§V-C) |
//! | `ablation_vertical_vs_horizontal` | Fig. 4a vs 4b at fixed history |
//! | `ablation_horizon` | multi-step k = 1/3/6 (Algorithm 1 output) |
//! | `table2_extended` | full model zoo incl. GRU/ETS/Linear/TCN/Naive |

pub mod args;
pub mod runners;
pub mod table;

pub use args::ExperimentArgs;
pub use runners::ModelKind;
pub use table::TextTable;
