//! Plain-text table rendering and CSV serialisation for experiment output.

/// A simple column-aligned table builder.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    pub fn new(header: &[&str]) -> Self {
        Self {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn add_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Render with aligned columns and a separator under the header.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect::<Vec<_>>()
                .join("  ")
                .trim_end()
                .to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Serialise as CSV (no quoting needed for numeric lab output).
    pub fn to_csv(&self) -> String {
        let mut out = self.header.join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Format a metric in the paper's `×10⁻²` convention with 4 decimals.
pub fn x100(v: f64) -> String {
    format!("{:.4}", v * 100.0)
}

/// Format a plain float with 4 decimals.
pub fn f4(v: f64) -> String {
    format!("{v:.4}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(&["model", "mse"]);
        t.add_row(vec!["RPTCN".into(), "0.31".into()]);
        t.add_row(vec!["A".into(), "12.5".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("model"));
        assert!(lines[1].starts_with("---"));
        assert!(lines[2].contains("RPTCN"));
        assert_eq!(t.num_rows(), 2);
    }

    #[test]
    fn csv_output() {
        let mut t = TextTable::new(&["a", "b"]);
        t.add_row(vec!["1".into(), "2".into()]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn wrong_width_panics() {
        TextTable::new(&["a"]).add_row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(x100(0.004627), "0.4627");
        assert_eq!(f4(1.23456), "1.2346");
    }
}
