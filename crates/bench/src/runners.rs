//! Shared experiment machinery: standard datasets, model construction and
//! per-cell pipeline runs, so every table/figure binary stays small.

use cloudtrace::{ContainerConfig, MachineConfig, Trace, TraceConfig, WorkloadClass};
use models::{
    ArimaConfig, ArimaForecaster, CnnLstmConfig, CnnLstmForecaster, Forecaster, GbtConfig,
    GbtForecaster, LstmConfig, LstmForecaster, NaiveForecaster, NeuralTrainSpec, RptcnConfig,
    RptcnForecaster, TcnConfig, TcnForecaster,
};
use rptcn::{prepare, run_model, PipelineConfig, PipelineRun, Scenario};
use timeseries::TimeSeriesFrame;

use crate::args::ExperimentArgs;

/// The models of Table II (plus the extras used by ablations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    Arima,
    Lstm,
    CnnLstm,
    Xgboost,
    Rptcn,
    Tcn,
    Naive,
}

impl ModelKind {
    /// Table II's model set, in its row order.
    pub const TABLE2: [ModelKind; 5] = [
        ModelKind::Arima,
        ModelKind::Lstm,
        ModelKind::CnnLstm,
        ModelKind::Xgboost,
        ModelKind::Rptcn,
    ];

    pub fn label(self) -> &'static str {
        match self {
            ModelKind::Arima => "ARIMA",
            ModelKind::Lstm => "LSTM",
            ModelKind::CnnLstm => "CNN-LSTM",
            ModelKind::Xgboost => "XGBoost",
            ModelKind::Rptcn => "RPTCN",
            ModelKind::Tcn => "TCN",
            ModelKind::Naive => "Naive",
        }
    }

    /// ARIMA consumes only the target's own history, so the paper reports
    /// it in the Uni block only.
    pub fn is_univariate_only(self) -> bool {
        matches!(self, ModelKind::Arima | ModelKind::Naive)
    }
}

/// Deep-model training spec for an experiment run.
pub fn spec_for(args: &ExperimentArgs, seed: u64) -> NeuralTrainSpec {
    NeuralTrainSpec {
        epochs: if args.quick { 6 } else { 30 },
        batch_size: 64,
        learning_rate: 1e-3,
        clip_norm: 5.0,
        patience: 10,
        seed,
    }
}

/// Build a fresh model of `kind`, seeded deterministically.
pub fn build_model(kind: ModelKind, args: &ExperimentArgs, seed: u64) -> Box<dyn Forecaster> {
    let spec = spec_for(args, seed);
    match kind {
        ModelKind::Arima => Box::new(ArimaForecaster::new(ArimaConfig::default())),
        ModelKind::Naive => Box::new(NaiveForecaster::new()),
        ModelKind::Xgboost => Box::new(GbtForecaster::new(GbtConfig {
            n_rounds: if args.quick { 30 } else { 120 },
            seed,
            ..Default::default()
        })),
        ModelKind::Lstm => Box::new(LstmForecaster::new(LstmConfig {
            spec,
            ..Default::default()
        })),
        ModelKind::CnnLstm => Box::new(CnnLstmForecaster::new(CnnLstmConfig {
            spec,
            ..Default::default()
        })),
        ModelKind::Tcn => Box::new(TcnForecaster::new(TcnConfig {
            spec: NeuralTrainSpec {
                learning_rate: 2e-3,
                ..spec
            },
            ..Default::default()
        })),
        ModelKind::Rptcn => Box::new(RptcnForecaster::new(RptcnConfig {
            // RPTCN epochs are cheap relative to the LSTM family and the
            // model is the one still improving at 30 epochs (see
            // DESIGN.md §6), so it gets a longer schedule.
            spec: NeuralTrainSpec {
                learning_rate: 2e-3,
                epochs: spec.epochs * 2,
                ..spec
            },
            ..Default::default()
        })),
    }
}

/// Standard pipeline configuration for an experiment.
pub fn pipeline_config(scenario: Scenario) -> PipelineConfig {
    PipelineConfig {
        scenario,
        window: 30,
        ..Default::default()
    }
}

/// The experiment's container entities: one per index, high-dynamic mixes
/// with a couple of online services, mirroring the co-located population.
pub fn container_frames(args: &ExperimentArgs) -> Vec<TimeSeriesFrame> {
    (0..args.entities)
        .map(|i| {
            let class = match i % 3 {
                0 => WorkloadClass::HighDynamic,
                1 => WorkloadClass::OnlineService,
                _ => WorkloadClass::BatchJob,
            };
            cloudtrace::container::generate_container(
                &ContainerConfig::new(class, args.steps, args.seed.wrapping_add(i as u64 * 97))
                    .with_diurnal_period(720),
            )
        })
        .collect()
}

/// The experiment's machine entities.
pub fn machine_frames(args: &ExperimentArgs) -> Vec<TimeSeriesFrame> {
    (0..args.entities)
        .map(|i| {
            let seed = args.seed.wrapping_add(0x5AD + i as u64 * 131);
            let mut rng = tensor::Rng::seed_from(seed);
            cloudtrace::machine::generate_machine(
                &MachineConfig::new(args.steps, seed)
                    .with_mean_util(cloudtrace::machine::sample_mean_util(&mut rng))
                    .with_diurnal_period(720),
            )
        })
        .collect()
}

/// A machine whose test segment contains the Fig. 8 mutation: the step lands
/// `350` test samples past the train/valid boundary.
pub fn fig8_machine(args: &ExperimentArgs) -> TimeSeriesFrame {
    let window = 30usize;
    let n_windows = args.steps - window; // horizon 1
    let (_, valid_end) = timeseries::SplitRatios::PAPER.boundaries(n_windows);
    let mutation_at = valid_end + window + 350.min(n_windows - valid_end - 40);
    cloudtrace::machine::generate_machine(
        &MachineConfig::new(args.steps, args.seed.wrapping_add(0xF18))
            .with_mean_util(0.3)
            .with_diurnal_period(720)
            .with_mutation(mutation_at, 0.35),
    )
}

/// A small fleet trace shared by the Figs 1–3 analyses.
pub fn fleet_trace(args: &ExperimentArgs) -> Trace {
    Trace::generate(TraceConfig {
        num_machines: if args.quick { 8 } else { 40 },
        containers_per_machine: 3,
        steps: args.steps,
        diurnal_period: 720,
        seed: args.seed,
        ..Default::default()
    })
}

/// Train and evaluate one `(model, scenario)` cell on one entity frame.
pub fn run_cell(
    frame: &TimeSeriesFrame,
    scenario: Scenario,
    kind: ModelKind,
    args: &ExperimentArgs,
    seed: u64,
) -> PipelineRun {
    let data = prepare(frame, &pipeline_config(scenario)).expect("pipeline prepare");
    let mut model = build_model(kind, args, seed);
    run_model(model.as_mut(), &data)
}

/// Average the test MSE/MAE of runs across entities.
pub fn mean_mse_mae(runs: &[PipelineRun]) -> (f64, f64) {
    let n = runs.len().max(1) as f64;
    let mse = runs.iter().map(|r| r.test_metrics.mse).sum::<f64>() / n;
    let mae = runs.iter().map(|r| r.test_metrics.mae).sum::<f64>() / n;
    (mse, mae)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_args() -> ExperimentArgs {
        ExperimentArgs {
            steps: 700,
            entities: 2,
            quick: true,
            ..Default::default()
        }
    }

    #[test]
    fn table2_model_set_matches_paper() {
        let labels: Vec<&str> = ModelKind::TABLE2.iter().map(|m| m.label()).collect();
        assert_eq!(
            labels,
            vec!["ARIMA", "LSTM", "CNN-LSTM", "XGBoost", "RPTCN"]
        );
        assert!(ModelKind::Arima.is_univariate_only());
        assert!(!ModelKind::Rptcn.is_univariate_only());
    }

    #[test]
    fn entity_frames_are_generated() {
        let args = quick_args();
        let cs = container_frames(&args);
        let ms = machine_frames(&args);
        assert_eq!(cs.len(), 2);
        assert_eq!(ms.len(), 2);
        for f in cs.iter().chain(&ms) {
            assert_eq!(f.len(), 700);
            assert!(f.is_clean());
        }
    }

    #[test]
    fn run_cell_with_cheap_models() {
        let args = quick_args();
        let frame = &container_frames(&args)[0];
        for kind in [ModelKind::Naive, ModelKind::Arima] {
            let run = run_cell(frame, Scenario::Uni, kind, &args, 1);
            assert!(run.test_metrics.mse.is_finite());
            assert!(run.test_metrics.mse > 0.0);
        }
        let run = run_cell(frame, Scenario::MulExp, ModelKind::Xgboost, &args, 1);
        assert!(run.test_metrics.mse.is_finite());
    }

    #[test]
    fn fig8_machine_has_late_mutation() {
        let args = quick_args();
        let frame = fig8_machine(&args);
        let cpu = frame.column("cpu_util_percent").unwrap();
        // The first 60% must be calm; the tail must contain the jump.
        let early = tensor::stats::mean(&cpu[..400]);
        let late = tensor::stats::mean(&cpu[620..]);
        assert!(
            late > early + 0.15,
            "no visible mutation: {early} vs {late}"
        );
    }

    #[test]
    fn mean_mse_mae_averages() {
        let args = quick_args();
        let frame = &container_frames(&args)[0];
        let r1 = run_cell(frame, Scenario::Uni, ModelKind::Naive, &args, 1);
        let r2 = run_cell(frame, Scenario::Uni, ModelKind::Naive, &args, 1);
        let (mse, mae) = mean_mse_mae(&[r1.clone(), r2]);
        assert!((mse - r1.test_metrics.mse).abs() < 1e-12);
        assert!((mae - r1.test_metrics.mae).abs() < 1e-12);
    }
}
