//! Minimal CLI flag parsing shared by the experiment binaries.
//! Every binary accepts `--seed`, `--steps`, `--entities`, `--quick` and
//! `--out <dir>` so runs are reproducible and exportable without extra
//! dependencies.

use std::path::PathBuf;

/// Flags common to all experiment binaries.
#[derive(Debug, Clone)]
pub struct ExperimentArgs {
    /// Master seed; every stochastic component derives from it.
    pub seed: u64,
    /// Samples per entity series.
    pub steps: usize,
    /// Entities (containers / machines) per cell, averaged.
    pub entities: usize,
    /// Cut epochs/rounds for a fast smoke run.
    pub quick: bool,
    /// Optional directory for CSV artefacts.
    pub out: Option<PathBuf>,
}

impl Default for ExperimentArgs {
    fn default() -> Self {
        Self {
            seed: 2018,
            steps: 3000,
            entities: 3,
            quick: false,
            out: None,
        }
    }
}

impl ExperimentArgs {
    /// Parse from `std::env::args`, panicking with a usage message on
    /// unknown flags (fail-fast is the right behaviour for lab tooling).
    pub fn parse() -> Self {
        Self::from_args(std::env::args().skip(1))
    }

    pub fn from_args(args: impl IntoIterator<Item = String>) -> Self {
        let mut out = Self::default();
        let mut it = args.into_iter();
        while let Some(flag) = it.next() {
            let mut take = |name: &str| -> String {
                it.next()
                    .unwrap_or_else(|| panic!("{name} requires a value"))
            };
            match flag.as_str() {
                "--seed" => out.seed = take("--seed").parse().expect("--seed: u64"),
                "--steps" => out.steps = take("--steps").parse().expect("--steps: usize"),
                "--entities" => {
                    out.entities = take("--entities").parse().expect("--entities: usize")
                }
                "--quick" => out.quick = true,
                "--out" => out.out = Some(PathBuf::from(take("--out"))),
                "--help" | "-h" => {
                    eprintln!("flags: --seed <u64> --steps <n> --entities <n> --quick --out <dir>");
                    std::process::exit(0);
                }
                other => panic!("unknown flag '{other}' (try --help)"),
            }
        }
        out
    }

    /// Write `content` to `<out>/<name>` when `--out` was given.
    pub fn export(&self, name: &str, content: &str) {
        if let Some(dir) = &self.out {
            std::fs::create_dir_all(dir).expect("create --out dir");
            let path = dir.join(name);
            std::fs::write(&path, content).expect("write artefact");
            eprintln!("wrote {}", path.display());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> ExperimentArgs {
        ExperimentArgs::from_args(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_without_flags() {
        let a = parse(&[]);
        assert_eq!(a.seed, 2018);
        assert_eq!(a.steps, 3000);
        assert!(!a.quick);
        assert!(a.out.is_none());
    }

    #[test]
    fn all_flags_parse() {
        let a = parse(&[
            "--seed",
            "7",
            "--steps",
            "500",
            "--entities",
            "2",
            "--quick",
            "--out",
            "/tmp/x",
        ]);
        assert_eq!(a.seed, 7);
        assert_eq!(a.steps, 500);
        assert_eq!(a.entities, 2);
        assert!(a.quick);
        assert_eq!(a.out.unwrap(), PathBuf::from("/tmp/x"));
    }

    #[test]
    #[should_panic(expected = "unknown flag")]
    fn unknown_flag_panics() {
        parse(&["--frobnicate"]);
    }
}
