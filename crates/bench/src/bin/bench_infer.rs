//! Inference-engine microbenchmark: taped vs tape-free single-entity
//! forecast latency at the paper configuration (RPTCN channels 16, levels
//! 4, kernel 3; lookback 30), steady-state scratch-arena allocations per
//! forecast, streaming-push latency across lookback lengths (flat ⇒
//! O(1) in window length), the runtime-dispatched GEMM microkernel vs its
//! scalar twin on representative layer shapes, a per-layer breakdown
//! (conv vs matmul vs pointwise), and stacked-batch throughput across
//! batch-executor worker counts. Emits `BENCH_infer.json` for the CI
//! smoke job; every timing loop also feeds an `obs` histogram, so the
//! report carries full bucketed distributions alongside the exact sorted
//! quantiles.
//!
//! Flags: `--quick` cuts iteration counts, `--seed` varies the weights.

use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

use autograd::batch_exec::BatchExecutor;
use autograd::conv1d_into;
use autograd::infer::{relu_in_place, softmax_rows_in_place};
use bench_harness::ExperimentArgs;
use models::{Forecaster, RptcnForecaster, StreamingRptcn};
use obs::{Histogram, Registry};
use tensor::gemm::{self, Tier};
use tensor::{Rng, Tensor};

const FEATURES: usize = 8;
const WINDOW: usize = 30;
const LOOKBACKS: [usize; 3] = [32, 64, 128];
/// Stacked batch size for the executor-scaling section — large enough that
/// `predict` always takes the parallel path.
const BATCH_ROWS: usize = 128;
/// Worker counts swept by the executor-scaling section.
const WORKER_COUNTS: [usize; 3] = [1, 2, 4];
/// GEMM shapes representative of the paper-default forward pass:
/// `(label, m, k, n)`.
const GEMM_SHAPES: [(&str, usize, usize, usize); 4] = [
    ("streaming_row", 1, 240, 64),
    ("fc_per_step", 30, 16, 32),
    ("attention_scores", 30, 32, 30),
    ("stacked_batch", 128, 240, 64),
];

fn quantiles(mut ns: Vec<u64>) -> (u64, u64) {
    ns.sort_unstable();
    let q = |p: f64| ns[((ns.len() - 1) as f64 * p).round() as usize];
    (q(0.50), q(0.99))
}

/// Per-call latency quantiles `(p50, p99)` in nanoseconds, computed from
/// the exact sorted samples. Each sample is also recorded into `hist`, so
/// the emitted report can show the bucketed distribution next to the
/// exact quantiles.
fn time_loop(iters: usize, hist: &Histogram, mut f: impl FnMut()) -> (u64, u64) {
    let mut samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t = Instant::now();
        f();
        let ns = t.elapsed().as_nanos() as u64;
        hist.record(ns);
        samples.push(ns);
    }
    quantiles(samples)
}

fn main() {
    let args = ExperimentArgs::parse();
    let iters = if args.quick { 40 } else { 400 };
    let warmup = iters / 10 + 1;
    let registry = Registry::new();

    let mut model = RptcnForecaster::paper_default();
    model.init_untrained(FEATURES, 1);
    let mut rng = Rng::seed_from(args.seed);
    let x = Tensor::rand_normal(&[1, WINDOW, FEATURES], 0.5, 0.2, &mut rng);

    for _ in 0..warmup {
        black_box(model.predict(&x));
        black_box(model.predict_taped(&x));
    }
    let (taped_p50, taped_p99) = time_loop(iters, &registry.latency_histogram("taped_ns"), || {
        black_box(model.predict_taped(&x));
    });
    let (free_p50, free_p99) =
        time_loop(iters, &registry.latency_histogram("tape_free_ns"), || {
            black_box(model.predict(&x));
        });
    let speedup = taped_p50 as f64 / free_p50.max(1) as f64;

    // Steady-state heap traffic: after warm-up the thread-local arena
    // satisfies every buffer request from its pool.
    let probe = 32u64;
    let before = autograd::infer::thread_context_allocs();
    for _ in 0..probe {
        black_box(model.predict(&x));
    }
    let allocs_per_forecast =
        (autograd::infer::thread_context_allocs() - before) as f64 / probe as f64;

    // Streaming push must cost the same no matter how much history the
    // stream has absorbed; the batch forward over the same history grows
    // linearly and is shown for contrast.
    let mut streaming = Vec::new();
    for &lookback in &LOOKBACKS {
        let mut stream = StreamingRptcn::new(&model).expect("paper config streams");
        let history = Tensor::rand_normal(&[1, lookback, FEATURES], 0.5, 0.2, &mut rng);
        for t in 0..lookback {
            stream.push(&history.as_slice()[t * FEATURES..(t + 1) * FEATURES]);
        }
        let sample: Vec<f32> = history.as_slice()[..FEATURES].to_vec();
        let push_hist = registry.latency_histogram(&format!("push_ns.lookback{lookback}"));
        let (push_p50, push_p99) = time_loop(iters, &push_hist, || {
            black_box(stream.push(&sample));
        });
        let batch_hist = registry.latency_histogram(&format!("batch_ns.lookback{lookback}"));
        let (batch_p50, _) = time_loop(warmup.max(10), &batch_hist, || {
            black_box(model.predict(&history));
        });
        streaming.push((lookback, push_p50, push_p99, batch_p50));
    }

    // GEMM microkernel vs its scalar twin on forward-pass shapes. The
    // dispatched path picks the best runtime tier (FMA/AVX/scalar); the
    // baseline forces the scalar tier, i.e. the exact code a non-x86 or
    // Miri build runs. Same inputs, bitwise-identical outputs — only the
    // clock differs.
    let gemm_tier = gemm::active_tier();
    let mut gemm_rows = Vec::new();
    for &(label, m, k, n) in &GEMM_SHAPES {
        let a = Tensor::rand_normal(&[m, k], 0.0, 1.0, &mut rng);
        let b = Tensor::rand_normal(&[k, n], 0.0, 1.0, &mut rng);
        let mut out = vec![0.0f32; m * n];
        let scalar_hist = registry.latency_histogram(&format!("gemm.scalar.{label}"));
        let (scalar_p50, _) = time_loop(iters, &scalar_hist, || {
            gemm::gemm_with_tier(
                Tier::Scalar,
                a.as_slice(),
                b.as_slice(),
                &mut out,
                m,
                k,
                n,
                false,
            );
            black_box(&out);
        });
        let dispatch_hist = registry.latency_histogram(&format!("gemm.dispatch.{label}"));
        let (dispatch_p50, _) = time_loop(iters, &dispatch_hist, || {
            gemm::gemm_into(a.as_slice(), b.as_slice(), &mut out, m, k, n, false);
            black_box(&out);
        });
        let speedup = scalar_p50 as f64 / dispatch_p50.max(1) as f64;
        gemm_rows.push((label, m, k, n, scalar_p50, dispatch_p50, speedup));
    }
    let gemm_speedup_p50 = {
        let mut s: Vec<f64> = gemm_rows.iter().map(|r| r.6).collect();
        s.sort_by(|a, b| a.total_cmp(b));
        s[s.len() / 2]
    };

    // Per-layer breakdown: one representative kernel invocation per layer
    // family at the paper-default shapes, each feeding its own obs
    // histogram. Shows where a forecast's nanoseconds actually go.
    let conv_x = Tensor::rand_normal(&[1, FEATURES, WINDOW], 0.0, 1.0, &mut rng);
    let conv_w = Tensor::rand_normal(&[16, FEATURES, 3], 0.0, 0.3, &mut rng);
    let mut conv_out = vec![0.0f32; 16 * WINDOW];
    let (conv_p50, conv_p99) =
        time_loop(iters, &registry.latency_histogram("layer.conv_ns"), || {
            conv1d_into(
                conv_x.as_slice(),
                conv_w.as_slice(),
                &mut conv_out,
                1,
                FEATURES,
                16,
                WINDOW,
                3,
                1,
            );
            black_box(&conv_out);
        });
    let fc_a = Tensor::rand_normal(&[WINDOW, 16], 0.0, 1.0, &mut rng);
    let fc_b = Tensor::rand_normal(&[16, 32], 0.0, 1.0, &mut rng);
    let mut fc_out = vec![0.0f32; WINDOW * 32];
    let (matmul_p50, matmul_p99) = time_loop(
        iters,
        &registry.latency_histogram("layer.matmul_ns"),
        || {
            gemm::gemm_into(
                fc_a.as_slice(),
                fc_b.as_slice(),
                &mut fc_out,
                WINDOW,
                16,
                32,
                false,
            );
            black_box(&fc_out);
        },
    );
    let mut act = vec![0.0f32; WINDOW * 32];
    let mut scores = vec![0.0f32; WINDOW * WINDOW];
    let (pointwise_p50, pointwise_p99) = time_loop(
        iters,
        &registry.latency_histogram("layer.pointwise_ns"),
        || {
            act.copy_from_slice(fc_out.as_slice());
            relu_in_place(&mut act);
            for (i, s) in scores.iter_mut().enumerate() {
                *s = (i % 17) as f32 * 0.1;
            }
            softmax_rows_in_place(&mut scores, WINDOW, WINDOW);
            black_box((&act, &scores));
        },
    );

    // Stacked-batch throughput across explicit worker pools. Each pool is
    // built fresh so one process can sweep worker counts; `predict` itself
    // uses the identical code path through the process-global pool. On a
    // 1-core host the sweep is flat — `available_parallelism` is recorded
    // so readers can tell capped from broken scaling.
    let x_batch = Tensor::rand_normal(&[BATCH_ROWS, WINDOW, FEATURES], 0.5, 0.2, &mut rng);
    let batch_iters = if args.quick { 10 } else { 60 };
    let mut scaling = Vec::new();
    let mut best_fps = 0.0f64;
    for &w in &WORKER_COUNTS {
        let exec = BatchExecutor::new(w);
        for _ in 0..3 {
            black_box(model.predict_with_executor(&x_batch, &exec));
        }
        let hist = registry.latency_histogram(&format!("batch_exec.workers{w}_ns"));
        let (p50, _) = time_loop(batch_iters, &hist, || {
            black_box(model.predict_with_executor(&x_batch, &exec));
        });
        let fps = BATCH_ROWS as f64 * 1e9 / p50.max(1) as f64;
        best_fps = best_fps.max(fps);
        scaling.push((w, exec.pinned_workers(), p50, fps));
    }
    let available_parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let mut json = String::new();
    writeln!(json, "{{").unwrap();
    writeln!(json, "  \"model\": \"RPTCN paper_default\",").unwrap();
    writeln!(
        json,
        "  \"config\": {{\"features\": {FEATURES}, \"window\": {WINDOW}, \"iters\": {iters}}},"
    )
    .unwrap();
    writeln!(json, "  \"single_entity_forecast_ns\": {{").unwrap();
    writeln!(json, "    \"taped_p50\": {taped_p50},").unwrap();
    writeln!(json, "    \"taped_p99\": {taped_p99},").unwrap();
    writeln!(json, "    \"tape_free_p50\": {free_p50},").unwrap();
    writeln!(json, "    \"tape_free_p99\": {free_p99},").unwrap();
    writeln!(json, "    \"speedup_p50\": {speedup:.2}").unwrap();
    writeln!(json, "  }},").unwrap();
    writeln!(
        json,
        "  \"allocations_per_forecast\": {allocs_per_forecast:.2},"
    )
    .unwrap();
    writeln!(json, "  \"streaming_push_ns\": [").unwrap();
    for (i, (lookback, p50, p99, batch)) in streaming.iter().enumerate() {
        let sep = if i + 1 == streaming.len() { "" } else { "," };
        writeln!(
            json,
            "    {{\"lookback\": {lookback}, \"push_p50\": {p50}, \"push_p99\": {p99}, \"batch_forward_p50\": {batch}}}{sep}"
        )
        .unwrap();
    }
    writeln!(json, "  ],").unwrap();
    writeln!(json, "  \"gemm\": {{").unwrap();
    writeln!(json, "    \"tier\": \"{}\",", gemm_tier.name()).unwrap();
    writeln!(json, "    \"shapes\": [").unwrap();
    for (i, (label, m, k, n, scalar, dispatch, speedup)) in gemm_rows.iter().enumerate() {
        let sep = if i + 1 == gemm_rows.len() { "" } else { "," };
        writeln!(
            json,
            "      {{\"label\": \"{label}\", \"m\": {m}, \"k\": {k}, \"n\": {n}, \"scalar_p50_ns\": {scalar}, \"dispatch_p50_ns\": {dispatch}, \"speedup\": {speedup:.2}}}{sep}"
        )
        .unwrap();
    }
    writeln!(json, "    ],").unwrap();
    writeln!(json, "    \"speedup_p50\": {gemm_speedup_p50:.2}").unwrap();
    writeln!(json, "  }},").unwrap();
    writeln!(json, "  \"per_layer_breakdown_ns\": {{").unwrap();
    writeln!(json, "    \"conv_p50\": {conv_p50},").unwrap();
    writeln!(json, "    \"conv_p99\": {conv_p99},").unwrap();
    writeln!(json, "    \"matmul_p50\": {matmul_p50},").unwrap();
    writeln!(json, "    \"matmul_p99\": {matmul_p99},").unwrap();
    writeln!(json, "    \"pointwise_p50\": {pointwise_p50},").unwrap();
    writeln!(json, "    \"pointwise_p99\": {pointwise_p99}").unwrap();
    writeln!(json, "  }},").unwrap();
    writeln!(json, "  \"batch_executor\": {{").unwrap();
    writeln!(json, "    \"rows\": {BATCH_ROWS},").unwrap();
    writeln!(
        json,
        "    \"available_parallelism\": {available_parallelism},"
    )
    .unwrap();
    writeln!(json, "    \"scaling\": [").unwrap();
    for (i, (w, pinned, p50, fps)) in scaling.iter().enumerate() {
        let sep = if i + 1 == scaling.len() { "" } else { "," };
        writeln!(
            json,
            "      {{\"workers\": {w}, \"pinned_workers\": {pinned}, \"batch_p50_ns\": {p50}, \"forecasts_per_sec\": {fps:.0}}}{sep}"
        )
        .unwrap();
    }
    writeln!(json, "    ],").unwrap();
    writeln!(json, "    \"forecasts_per_sec_aggregate\": {best_fps:.0}").unwrap();
    writeln!(json, "  }},").unwrap();
    // Bucketed distribution summaries from the obs histograms that every
    // timing loop fed. The `*_p50`/`*_p99` fields above stay the exact
    // sorted-sample quantiles; these add count/mean/max and bucket-resolved
    // quantiles per instrument.
    let snap = registry.snapshot();
    writeln!(json, "  \"latency_histograms\": {{").unwrap();
    for (i, (name, h)) in snap.histograms.iter().enumerate() {
        let sep = if i + 1 == snap.histograms.len() {
            ""
        } else {
            ","
        };
        writeln!(
            json,
            "    \"{name}\": {{\"count\": {}, \"mean_ns\": {:.0}, \"p50_le_ns\": {}, \"p99_le_ns\": {}, \"max_ns\": {}}}{sep}",
            h.count,
            h.mean().unwrap_or(0.0),
            h.quantile(0.50).unwrap_or(0),
            h.quantile(0.99).unwrap_or(0),
            h.max.unwrap_or(0),
        )
        .unwrap();
    }
    writeln!(json, "  }}").unwrap();
    writeln!(json, "}}").unwrap();

    std::fs::write("BENCH_infer.json", &json).expect("write BENCH_infer.json");
    print!("{json}");
    eprintln!(
        "tape-free forecast: p50 {:.1}us vs taped {:.1}us ({speedup:.1}x), {allocs_per_forecast:.2} allocs/forecast",
        free_p50 as f64 / 1_000.0,
        taped_p50 as f64 / 1_000.0,
    );
    eprintln!(
        "gemm [{}]: median {gemm_speedup_p50:.1}x over scalar; batch executor: {best_fps:.0} forecasts/sec aggregate ({available_parallelism} cores)",
        gemm_tier.name(),
    );
}
