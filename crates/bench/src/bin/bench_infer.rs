//! Inference-engine microbenchmark: taped vs tape-free single-entity
//! forecast latency at the paper configuration (RPTCN channels 16, levels
//! 4, kernel 3; lookback 30), steady-state scratch-arena allocations per
//! forecast, and streaming-push latency across lookback lengths (flat ⇒
//! O(1) in window length). Emits `BENCH_infer.json` for the CI smoke job;
//! every timing loop also feeds an `obs` histogram, so the report carries
//! full bucketed distributions alongside the exact sorted quantiles.
//!
//! Flags: `--quick` cuts iteration counts, `--seed` varies the weights.

use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

use bench_harness::ExperimentArgs;
use models::{Forecaster, RptcnForecaster, StreamingRptcn};
use obs::{Histogram, Registry};
use tensor::{Rng, Tensor};

const FEATURES: usize = 8;
const WINDOW: usize = 30;
const LOOKBACKS: [usize; 3] = [32, 64, 128];

fn quantiles(mut ns: Vec<u64>) -> (u64, u64) {
    ns.sort_unstable();
    let q = |p: f64| ns[((ns.len() - 1) as f64 * p).round() as usize];
    (q(0.50), q(0.99))
}

/// Per-call latency quantiles `(p50, p99)` in nanoseconds, computed from
/// the exact sorted samples. Each sample is also recorded into `hist`, so
/// the emitted report can show the bucketed distribution next to the
/// exact quantiles.
fn time_loop(iters: usize, hist: &Histogram, mut f: impl FnMut()) -> (u64, u64) {
    let mut samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t = Instant::now();
        f();
        let ns = t.elapsed().as_nanos() as u64;
        hist.record(ns);
        samples.push(ns);
    }
    quantiles(samples)
}

fn main() {
    let args = ExperimentArgs::parse();
    let iters = if args.quick { 40 } else { 400 };
    let warmup = iters / 10 + 1;
    let registry = Registry::new();

    let mut model = RptcnForecaster::paper_default();
    model.init_untrained(FEATURES, 1);
    let mut rng = Rng::seed_from(args.seed);
    let x = Tensor::rand_normal(&[1, WINDOW, FEATURES], 0.5, 0.2, &mut rng);

    for _ in 0..warmup {
        black_box(model.predict(&x));
        black_box(model.predict_taped(&x));
    }
    let (taped_p50, taped_p99) = time_loop(iters, &registry.latency_histogram("taped_ns"), || {
        black_box(model.predict_taped(&x));
    });
    let (free_p50, free_p99) =
        time_loop(iters, &registry.latency_histogram("tape_free_ns"), || {
            black_box(model.predict(&x));
        });
    let speedup = taped_p50 as f64 / free_p50.max(1) as f64;

    // Steady-state heap traffic: after warm-up the thread-local arena
    // satisfies every buffer request from its pool.
    let probe = 32u64;
    let before = autograd::infer::thread_context_allocs();
    for _ in 0..probe {
        black_box(model.predict(&x));
    }
    let allocs_per_forecast =
        (autograd::infer::thread_context_allocs() - before) as f64 / probe as f64;

    // Streaming push must cost the same no matter how much history the
    // stream has absorbed; the batch forward over the same history grows
    // linearly and is shown for contrast.
    let mut streaming = Vec::new();
    for &lookback in &LOOKBACKS {
        let mut stream = StreamingRptcn::new(&model).expect("paper config streams");
        let history = Tensor::rand_normal(&[1, lookback, FEATURES], 0.5, 0.2, &mut rng);
        for t in 0..lookback {
            stream.push(&history.as_slice()[t * FEATURES..(t + 1) * FEATURES]);
        }
        let sample: Vec<f32> = history.as_slice()[..FEATURES].to_vec();
        let push_hist = registry.latency_histogram(&format!("push_ns.lookback{lookback}"));
        let (push_p50, push_p99) = time_loop(iters, &push_hist, || {
            black_box(stream.push(&sample));
        });
        let batch_hist = registry.latency_histogram(&format!("batch_ns.lookback{lookback}"));
        let (batch_p50, _) = time_loop(warmup.max(10), &batch_hist, || {
            black_box(model.predict(&history));
        });
        streaming.push((lookback, push_p50, push_p99, batch_p50));
    }

    let mut json = String::new();
    writeln!(json, "{{").unwrap();
    writeln!(json, "  \"model\": \"RPTCN paper_default\",").unwrap();
    writeln!(
        json,
        "  \"config\": {{\"features\": {FEATURES}, \"window\": {WINDOW}, \"iters\": {iters}}},"
    )
    .unwrap();
    writeln!(json, "  \"single_entity_forecast_ns\": {{").unwrap();
    writeln!(json, "    \"taped_p50\": {taped_p50},").unwrap();
    writeln!(json, "    \"taped_p99\": {taped_p99},").unwrap();
    writeln!(json, "    \"tape_free_p50\": {free_p50},").unwrap();
    writeln!(json, "    \"tape_free_p99\": {free_p99},").unwrap();
    writeln!(json, "    \"speedup_p50\": {speedup:.2}").unwrap();
    writeln!(json, "  }},").unwrap();
    writeln!(
        json,
        "  \"allocations_per_forecast\": {allocs_per_forecast:.2},"
    )
    .unwrap();
    writeln!(json, "  \"streaming_push_ns\": [").unwrap();
    for (i, (lookback, p50, p99, batch)) in streaming.iter().enumerate() {
        let sep = if i + 1 == streaming.len() { "" } else { "," };
        writeln!(
            json,
            "    {{\"lookback\": {lookback}, \"push_p50\": {p50}, \"push_p99\": {p99}, \"batch_forward_p50\": {batch}}}{sep}"
        )
        .unwrap();
    }
    writeln!(json, "  ],").unwrap();
    // Bucketed distribution summaries from the obs histograms that every
    // timing loop fed. The `*_p50`/`*_p99` fields above stay the exact
    // sorted-sample quantiles; these add count/mean/max and bucket-resolved
    // quantiles per instrument.
    let snap = registry.snapshot();
    writeln!(json, "  \"latency_histograms\": {{").unwrap();
    for (i, (name, h)) in snap.histograms.iter().enumerate() {
        let sep = if i + 1 == snap.histograms.len() {
            ""
        } else {
            ","
        };
        writeln!(
            json,
            "    \"{name}\": {{\"count\": {}, \"mean_ns\": {:.0}, \"p50_le_ns\": {}, \"p99_le_ns\": {}, \"max_ns\": {}}}{sep}",
            h.count,
            h.mean().unwrap_or(0.0),
            h.quantile(0.50).unwrap_or(0),
            h.quantile(0.99).unwrap_or(0),
            h.max.unwrap_or(0),
        )
        .unwrap();
    }
    writeln!(json, "  }}").unwrap();
    writeln!(json, "}}").unwrap();

    std::fs::write("BENCH_infer.json", &json).expect("write BENCH_infer.json");
    print!("{json}");
    eprintln!(
        "tape-free forecast: p50 {:.1}us vs taped {:.1}us ({speedup:.1}x), {allocs_per_forecast:.2} allocs/forecast",
        free_p50 as f64 / 1_000.0,
        taped_p50 as f64 / 1_000.0,
    );
}
