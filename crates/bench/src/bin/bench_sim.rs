//! Deterministic fleet-simulator smoke bench: run the chaos harness
//! across a seed matrix and report per-seed invariant verdicts, fault
//! counts and recovery counters to `BENCH_sim.json`.
//!
//! Unlike `bench_fleet` (real TCP, real processes, wall-clock latency)
//! this bench runs whole fleets in-process over the simulated network on
//! virtual time — it measures *correctness under chaos*, not
//! throughput. A run fails (exit 1) if any seed violates a fleet
//! invariant; the failing seed's one-line repro command is printed and
//! recorded in the JSON.
//!
//! Flags: `--seeds <n>` (default 8), `--seed-base <u64>` (default
//! 0xC0FFEE), `--nodes <n>`, `--entities <n>`, `--rounds <n>`,
//! `--quick` (4 seeds, smaller fleet — CI smoke).

use std::fmt::Write as _;
use std::time::Instant;

use net::{run_fleet_chaos, ChaosConfig, ChaosOutcome};

struct SimArgs {
    seeds: u64,
    seed_base: u64,
    nodes: usize,
    entities: usize,
    rounds: usize,
    quick: bool,
}

impl Default for SimArgs {
    fn default() -> Self {
        SimArgs {
            seeds: 8,
            seed_base: 0x00C0_FFEE,
            nodes: 3,
            entities: 12,
            rounds: 12,
            quick: false,
        }
    }
}

fn parse_args(mut it: impl Iterator<Item = String>) -> SimArgs {
    let mut out = SimArgs::default();
    while let Some(flag) = it.next() {
        let mut take = |name: &str| -> String {
            it.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match flag.as_str() {
            "--seeds" => out.seeds = take("--seeds").parse().expect("--seeds: u64"),
            "--seed-base" => out.seed_base = take("--seed-base").parse().expect("--seed-base: u64"),
            "--nodes" => out.nodes = take("--nodes").parse().expect("--nodes: usize"),
            "--entities" => out.entities = take("--entities").parse().expect("--entities: usize"),
            "--rounds" => out.rounds = take("--rounds").parse().expect("--rounds: usize"),
            "--quick" => out.quick = true,
            "--help" | "-h" => {
                eprintln!(
                    "flags: --seeds <n> --seed-base <u64> --nodes <n> --entities <n> --rounds <n> --quick"
                );
                std::process::exit(0);
            }
            other => panic!("unknown flag '{other}' (try --help)"),
        }
    }
    if out.quick {
        out.seeds = out.seeds.min(4);
        out.entities = out.entities.min(8);
        out.rounds = out.rounds.min(8);
    }
    assert!(out.seeds >= 1, "need at least one seed");
    out
}

fn main() {
    let args = parse_args(std::env::args().skip(1));
    let started = Instant::now();
    let mut outcomes: Vec<ChaosOutcome> = Vec::new();
    for i in 0..args.seeds {
        let seed = args.seed_base + i * 101;
        let t0 = Instant::now();
        let o = run_fleet_chaos(&ChaosConfig {
            seed,
            nodes: args.nodes,
            entities: args.entities,
            rounds: args.rounds,
            ..ChaosConfig::default()
        })
        .expect("chaos harness must not error");
        println!(
            "seed {seed}: {} | {:.1}s | acked {}/{} ingests | faults {} | retries {} ({} exhausted) | dedup hits {} | downs {}",
            o.report.summary(),
            t0.elapsed().as_secs_f64(),
            o.acked_ingests,
            o.acked_ingests + o.nacked_ingests,
            o.faults.total_faults(),
            o.retries,
            o.retries_exhausted,
            o.dedup_hits,
            o.node_down_transitions,
        );
        if !o.report.is_clean() {
            println!("REPRO: {}", o.repro);
        }
        outcomes.push(o);
    }
    let all_clean = outcomes.iter().all(|o| o.report.is_clean());
    let json = render_json(&args, &outcomes, started.elapsed().as_secs_f64(), all_clean);
    std::fs::write("BENCH_sim.json", json).expect("write BENCH_sim.json");
    println!(
        "bench_sim: {} seeds in {:.1}s — {}",
        outcomes.len(),
        started.elapsed().as_secs_f64(),
        if all_clean {
            "all invariants hold"
        } else {
            "INVARIANT VIOLATIONS"
        }
    );
    if !all_clean {
        std::process::exit(1);
    }
}

fn render_json(
    args: &SimArgs,
    outcomes: &[ChaosOutcome],
    elapsed_s: f64,
    all_clean: bool,
) -> String {
    let mut json = String::new();
    writeln!(json, "{{").unwrap();
    writeln!(json, "  \"bench\": \"sim\",").unwrap();
    writeln!(
        json,
        "  \"config\": {{ \"seeds\": {}, \"seed_base\": {}, \"nodes\": {}, \"entities\": {}, \"rounds\": {}, \"quick\": {} }},",
        args.seeds, args.seed_base, args.nodes, args.entities, args.rounds, args.quick
    )
    .unwrap();
    writeln!(json, "  \"elapsed_s\": {elapsed_s:.3},").unwrap();
    writeln!(json, "  \"all_invariants_hold\": {all_clean},").unwrap();
    writeln!(json, "  \"seeds\": [").unwrap();
    for (i, o) in outcomes.iter().enumerate() {
        let sep = if i + 1 < outcomes.len() { "," } else { "" };
        writeln!(
            json,
            "    {{ \"seed\": {}, \"clean\": {}, \"lost_acks\": {}, \"duplicate_applies\": {}, \"ownership_violations\": {}, \"phantom_forecasts\": {}, \"acked_ingests\": {}, \"nacked_ingests\": {}, \"acked_forecasts\": {}, \"executed_forecasts\": {}, \"frame_faults\": {}, \"partition_drops\": {}, \"connects_refused\": {}, \"retries\": {}, \"retries_exhausted\": {}, \"dedup_hits\": {}, \"failed_over\": {}, \"node_down_transitions\": {}, \"stabilize_rounds\": {}, \"repro\": \"{}\" }}{sep}",
            o.seed,
            o.report.is_clean(),
            o.report.lost_acks.len(),
            o.report.duplicate_applies.len(),
            o.report.ownership_violations.len(),
            o.report.phantom_forecasts,
            o.acked_ingests,
            o.nacked_ingests,
            o.acked_forecasts,
            o.executed_forecasts,
            o.faults.total_faults(),
            o.faults.partition_drops,
            o.faults.connects_refused,
            o.retries,
            o.retries_exhausted,
            o.dedup_hits,
            o.failed_over,
            o.node_down_transitions,
            o.stabilize_rounds,
            o.repro,
        )
        .unwrap();
    }
    writeln!(json, "  ]").unwrap();
    writeln!(json, "}}").unwrap();
    json
}
