//! Multi-step horizon sweep — Algorithm 1 emits `cpu_{m+1} … cpu_{m+k}`;
//! this experiment quantifies how accuracy degrades with `k` (the paper's
//! "long-term prediction" claim) for RPTCN against XGBoost and persistence.

use bench_harness::{runners, table, ExperimentArgs, ModelKind, TextTable};
use rptcn::{prepare, run_model, Scenario};

fn main() {
    let args = ExperimentArgs::parse();
    let frames = runners::container_frames(&args);
    let kinds = [ModelKind::Naive, ModelKind::Xgboost, ModelKind::Rptcn];

    let mut out = TextTable::new(&["horizon", "model", "MSE(1e-2)", "MAE(1e-2)"]);
    for horizon in [1usize, 3, 6] {
        for kind in kinds {
            eprintln!("running horizon={horizon} {} ...", kind.label());
            let mut mse = 0.0;
            let mut mae = 0.0;
            for (i, frame) in frames.iter().enumerate() {
                let mut cfg = runners::pipeline_config(Scenario::MulExp);
                cfg.horizon = horizon;
                let data = prepare(frame, &cfg).expect("prepare");
                let mut model = runners::build_model(kind, &args, args.seed + i as u64);
                let run = run_model(model.as_mut(), &data);
                mse += run.test_metrics.mse;
                mae += run.test_metrics.mae;
            }
            let n = frames.len() as f64;
            out.add_row(vec![
                horizon.to_string(),
                kind.label().to_string(),
                table::x100(mse / n),
                table::x100(mae / n),
            ]);
        }
    }

    println!(
        "Horizon sweep — containers, Mul-Exp ({} entities, seed {})",
        args.entities, args.seed
    );
    println!("{}", out.render());
    println!("expected shape: every model degrades with k; the learned models' advantage over persistence widens at longer horizons.");
    args.export("ablation_horizon.csv", &out.to_csv());
}
