//! Data-expansion ablation (paper §III-C and the §V-C discussion): compare
//! no expansion, horizontal lag expansion (the paper's Fig. 4b method), the
//! correlation-weighted variant and first-difference augmentation, holding
//! the model (RPTCN) fixed.

use bench_harness::{runners, table, ExperimentArgs, TextTable};
use models::{Forecaster, NeuralTrainSpec, RptcnConfig, RptcnForecaster};
use rptcn::run_model;
use timeseries::{
    clean, make_windows, screen_top_half, split_windows, Expansion, MinMaxScaler, RepairPolicy,
    SplitRatios,
};

fn main() {
    let args = ExperimentArgs::parse();
    let target = "cpu_util_percent";
    let window = 30usize;
    let expansions: Vec<(&str, Expansion)> = vec![
        ("none (Mul)", Expansion::None),
        (
            "horizontal x3 (Mul-Exp)",
            Expansion::Horizontal { copies: 3 },
        ),
        ("horizontal x5", Expansion::Horizontal { copies: 5 }),
        (
            "correlation-weighted",
            Expansion::CorrelationWeighted {
                target: target.to_string(),
                max_copies: 3,
            },
        ),
        ("first-difference", Expansion::FirstDifference),
    ];

    let frames = runners::container_frames(&args);
    let mut out = TextTable::new(&["expansion", "features", "MSE(1e-2)", "MAE(1e-2)"]);
    for (name, expansion) in expansions {
        eprintln!("running {name} ...");
        let mut mse = 0.0;
        let mut mae = 0.0;
        let mut feats = 0usize;
        for (i, frame) in frames.iter().enumerate() {
            // Manual Algorithm-1 pipeline with a pluggable expansion stage.
            let (cleaned, _) = clean(frame, RepairPolicy::DropRows);
            let (train_end, _) = SplitRatios::PAPER.boundaries(cleaned.len());
            let kept = screen_top_half(&cleaned.slice_rows(0, train_end).unwrap(), target).unwrap();
            let refs: Vec<&str> = kept.iter().map(String::as_str).collect();
            let screened = cleaned.select(&refs).unwrap();
            let scaler = MinMaxScaler::fit(&screened.slice_rows(0, train_end).unwrap());
            let normalized = scaler.transform(&screened);
            let expanded = expansion.apply(&normalized).unwrap();
            let expanded_target = match &expansion {
                Expansion::Horizontal { .. } | Expansion::CorrelationWeighted { .. } => {
                    format!("{target}#lag0")
                }
                _ => target.to_string(),
            };
            let ds = make_windows(&expanded, &expanded_target, window, 1).unwrap();
            let (train, valid, test) = split_windows(&ds, SplitRatios::PAPER);
            feats = train.num_features();

            let mut model = RptcnForecaster::new(RptcnConfig {
                spec: NeuralTrainSpec {
                    epochs: if args.quick { 6 } else { 30 },
                    learning_rate: 2e-3,
                    seed: args.seed + i as u64,
                    ..Default::default()
                },
                ..Default::default()
            });
            model.fit(&train, Some(&valid));
            let (truth, pred) = model.evaluate(&test);
            mse += timeseries::metrics::mse(&truth, &pred);
            mae += timeseries::metrics::mae(&truth, &pred);
            // Quiet the unused warning for run_model import parity.
            let _ = run_model;
        }
        let n = frames.len() as f64;
        out.add_row(vec![
            name.to_string(),
            feats.to_string(),
            table::x100(mse / n),
            table::x100(mae / n),
        ]);
    }

    println!(
        "Expansion ablation — RPTCN on containers ({} entities, seed {})",
        args.entities, args.seed
    );
    println!("{}", out.render());
    println!("expected shape: horizontal expansion improves on no expansion (paper Table II Mul vs Mul-Exp).");
    args.export("ablation_expansion.csv", &out.to_csv());
}
