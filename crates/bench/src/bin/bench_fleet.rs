//! Million-entity fleet benchmark for the distributed serving tier: the
//! orchestrator spawns several `bench_fleet node` child *processes* on
//! this host, places entities across them through a [`net::FleetRouter`],
//! then drives seed → ingest → abrupt node kill → more ingest → forecast
//! and reports throughput plus tail latency to `BENCH_fleet.json`.
//!
//! Modes:
//! - `bench_fleet` — orchestrator (default). Flags: `--entities <n>`
//!   (default 1_000_000), `--nodes <n>` (default 3), `--rounds <n>`
//!   (default 3), `--seed <u64>`, `--quick` (50k entities, CI smoke).
//! - `bench_fleet node --shards <n>` — one serving node; prints
//!   `RPTCN_NODE_LISTENING <addr>` on stdout and blocks until a wire
//!   `Shutdown` frame (or the orchestrator kills it).
//!
//! The kill phase is the point: one child is SIGKILLed mid-traffic and
//! the run only succeeds if the router fails over — zero lost
//! acknowledged ingests, the death journaled as `NodeDown`, and every
//! sampled forecast still answered by the survivors.

use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Write as _};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use net::{FleetRouter, NodeConfig, NodeServer, RouterConfig};
use obs::EventKind;
use serve::{PredictionService, ServiceConfig};

/// Ids per ingest request — one latency sample per chunk.
const INGEST_CHUNK: usize = 2_000;
/// Ids per forecast request — forecasts wait on shard processing, so
/// smaller chunks keep the latency samples honest.
const FORECAST_CHUNK: usize = 500;
/// Forecast latency/correctness is measured on a fleet sample this big;
/// forecasting a million entities one shard queue at a time would time
/// the queue, not the tier.
const FORECAST_SAMPLE: usize = 20_000;

struct FleetArgs {
    entities: usize,
    nodes: usize,
    rounds: usize,
    seed: u64,
    quick: bool,
    shards: usize,
}

impl Default for FleetArgs {
    fn default() -> Self {
        FleetArgs {
            entities: 1_000_000,
            nodes: 3,
            rounds: 3,
            seed: 2018,
            quick: false,
            shards: 2,
        }
    }
}

fn parse_args(mut it: impl Iterator<Item = String>) -> FleetArgs {
    let mut out = FleetArgs::default();
    while let Some(flag) = it.next() {
        let mut take = |name: &str| -> String {
            it.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match flag.as_str() {
            "--entities" => out.entities = take("--entities").parse().expect("--entities: usize"),
            "--nodes" => out.nodes = take("--nodes").parse().expect("--nodes: usize"),
            "--rounds" => out.rounds = take("--rounds").parse().expect("--rounds: usize"),
            "--seed" => out.seed = take("--seed").parse().expect("--seed: u64"),
            "--shards" => out.shards = take("--shards").parse().expect("--shards: usize"),
            "--quick" => out.quick = true,
            "--help" | "-h" => {
                eprintln!(
                    "flags: --entities <n> --nodes <n> --rounds <n> --seed <u64> --shards <n> --quick"
                );
                std::process::exit(0);
            }
            other => panic!("unknown flag '{other}' (try --help)"),
        }
    }
    if out.quick {
        out.entities = out.entities.min(50_000);
    }
    assert!(out.nodes >= 2, "a fleet needs at least two nodes");
    assert!(out.rounds >= 2, "need rounds before and after the kill");
    out
}

/// Child-process mode: one serving node on an ephemeral port.
fn run_node(args: FleetArgs) {
    let service = PredictionService::new(ServiceConfig {
        shards: args.shards,
        queue_capacity: 4096,
        refit_workers: 0,
        refit_every: 0,
        score_on_ingest: false,
        ..Default::default()
    })
    .expect("node service starts");
    let mut server = NodeServer::start(NodeConfig::default(), service).expect("node starts");
    // The orchestrator parses this exact line to learn the port.
    println!("RPTCN_NODE_LISTENING {}", server.addr());
    std::io::stdout().flush().expect("flush addr line");
    server.join();
}

/// Spawn one `bench_fleet node` child and read its listen address.
fn spawn_node(shards: usize) -> (Child, String) {
    let exe = std::env::current_exe().expect("current_exe");
    let mut child = Command::new(exe)
        .arg("node")
        .arg("--shards")
        .arg(shards.to_string())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn node process");
    let stdout = child.stdout.take().expect("child stdout piped");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("read node banner");
    let addr = line
        .trim()
        .strip_prefix("RPTCN_NODE_LISTENING ")
        .unwrap_or_else(|| panic!("unexpected node banner: {line:?}"))
        .to_string();
    (child, addr)
}

/// Exact `(p50, p99)` quantiles of per-request latencies, in nanoseconds.
fn quantiles(mut ns: Vec<u64>) -> (u64, u64) {
    if ns.is_empty() {
        return (0, 0);
    }
    ns.sort_unstable();
    let q = |p: f64| ns[((ns.len() - 1) as f64 * p).round() as usize];
    (q(0.50), q(0.99))
}

/// Deterministic per-entity, per-round sample (single column, matching
/// the seeded bootstrap arity).
fn sample(idx: usize, round: usize) -> Vec<f32> {
    vec![0.35 + 0.0005 * (idx % 97) as f32 + 0.01 * round as f32]
}

struct PhaseStats {
    seconds: f64,
    items: u64,
    p50_ns: u64,
    p99_ns: u64,
}

impl PhaseStats {
    fn per_sec(&self) -> f64 {
        self.items as f64 / self.seconds.max(1e-9)
    }
}

/// One full ingest round in `INGEST_CHUNK`-sized requests, timing each.
fn ingest_round(
    router: &mut FleetRouter,
    ids: &[String],
    round: usize,
    latencies: &mut Vec<u64>,
) -> (u64, u64) {
    let (mut accepted, mut failed_over) = (0u64, 0u64);
    for (chunk_idx, chunk) in ids.chunks(INGEST_CHUNK).enumerate() {
        let base = chunk_idx * INGEST_CHUNK;
        let batch: Vec<(String, Vec<f32>)> = chunk
            .iter()
            .enumerate()
            .map(|(i, id)| (id.clone(), sample(base + i, round)))
            .collect();
        let t = Instant::now();
        let report = router.ingest_batch(&batch).expect("ingest batch routes");
        latencies.push(t.elapsed().as_nanos() as u64);
        assert!(
            report.errors.is_empty(),
            "hard ingest errors: {:?}",
            &report.errors[..report.errors.len().min(3)]
        );
        accepted += report.accepted;
        failed_over += report.failed_over;
    }
    (accepted, failed_over)
}

fn run_orchestrator(args: FleetArgs) {
    eprintln!(
        "bench_fleet: {} entities across {} node processes ({} shards each), {} rounds",
        args.entities, args.nodes, args.shards, args.rounds
    );
    let mut children: Vec<(Child, String)> =
        (0..args.nodes).map(|_| spawn_node(args.shards)).collect();

    let mut router = FleetRouter::new(RouterConfig {
        request_timeout: Duration::from_secs(30),
        bulk_timeout: Duration::from_secs(600),
        probe_timeout: Duration::from_secs(2),
        replay_window: 4,
        seed: args.seed,
        bootstrap_len: 64,
        window: 12,
        ..Default::default()
    });
    for (i, (_, addr)) in children.iter().enumerate() {
        router
            .add_node(&format!("n{i}"), addr)
            .expect("node joins fleet");
    }

    // ---- Phase 1: seed the fleet ------------------------------------
    let ids: Vec<String> = (0..args.entities).map(|i| format!("f-{i:07}")).collect();
    let t = Instant::now();
    let installed = router.seed_entities(&ids).expect("seeding succeeds");
    let seed_secs = t.elapsed().as_secs_f64();
    assert_eq!(installed as usize, args.entities, "every entity seeded");
    eprintln!(
        "seeded {installed} entities in {seed_secs:.1}s ({:.0}/s)",
        installed as f64 / seed_secs
    );

    // ---- Phase 2: ingest rounds with a mid-run kill ------------------
    let kill_at = args.rounds / 2;
    let victim = args.nodes - 1;
    let mut latencies = Vec::new();
    let mut acked = 0u64;
    let mut failed_over = 0u64;
    let t = Instant::now();
    for round in 0..args.rounds {
        if round == kill_at {
            // SIGKILL, not drain: sockets die with the process and the
            // router must discover the death from transport errors.
            children[victim].0.kill().expect("kill victim node");
            children[victim].0.wait().expect("reap victim node");
            eprintln!("killed node n{victim} before round {round}");
        }
        let (a, f) = ingest_round(&mut router, &ids, round, &mut latencies);
        acked += a;
        failed_over += f;
        eprintln!("round {round}: acked {a}, failed_over {f}");
    }
    let ingest_secs = t.elapsed().as_secs_f64();
    let (ip50, ip99) = quantiles(latencies);
    let ingest = PhaseStats {
        seconds: ingest_secs,
        items: acked,
        p50_ns: ip50,
        p99_ns: ip99,
    };
    // Zero lost acknowledged ingests: every sample of every round acked.
    assert_eq!(acked, (args.rounds * args.entities) as u64);
    assert!(failed_over > 0, "the kill must surface as failovers");

    router.probe();
    let statuses = router.nodes();
    let node_down_events = router.journal().count(EventKind::NodeDown);
    assert!(node_down_events >= 1, "node death must be journaled");
    eprintln!(
        "ingested {acked} samples in {ingest_secs:.1}s ({:.0}/s), fleet: {statuses:?}",
        ingest.per_sec()
    );

    // ---- Phase 3: forecast a fleet sample ----------------------------
    let stride = (args.entities / FORECAST_SAMPLE).max(1);
    let sample_ids: Vec<String> = ids.iter().step_by(stride).cloned().collect();
    let mut latencies = Vec::new();
    let mut ok = 0u64;
    let t = Instant::now();
    for chunk in sample_ids.chunks(FORECAST_CHUNK) {
        let req = Instant::now();
        let results = router.forecast_batch(chunk);
        latencies.push(req.elapsed().as_nanos() as u64);
        for (id, result) in results {
            let f = result.expect("forecast after failover")[0];
            assert!(f.is_finite(), "{id}: non-finite forecast");
            ok += 1;
        }
    }
    let forecast_secs = t.elapsed().as_secs_f64();
    let (fp50, fp99) = quantiles(latencies);
    let forecast = PhaseStats {
        seconds: forecast_secs,
        items: ok,
        p50_ns: fp50,
        p99_ns: fp99,
    };
    assert_eq!(
        ok as usize,
        sample_ids.len(),
        "every sampled forecast answered"
    );
    eprintln!(
        "forecast {ok} entities in {forecast_secs:.1}s ({:.0}/s)",
        forecast.per_sec()
    );

    // ---- Report ------------------------------------------------------
    let reg = router.registry();
    let json = render_report(
        &args,
        ReportInputs {
            seed_secs,
            installed,
            ingest: &ingest,
            forecast: &forecast,
            failed_over,
            healed: reg.counter("router_healed").get(),
            migrated: reg.counter("router_migrated").get(),
            node_down_transitions: reg.counter("router_node_down_transitions").get(),
            node_down_events,
            victim,
            statuses: &statuses,
            router: &router,
        },
    );
    std::fs::write("BENCH_fleet.json", &json).expect("write BENCH_fleet.json");
    print!("{json}");

    router.shutdown_fleet();
    for (i, (child, _)) in children.iter_mut().enumerate() {
        if i != victim {
            child.wait().expect("node exits after Shutdown");
        }
    }
}

struct ReportInputs<'a> {
    seed_secs: f64,
    installed: u64,
    ingest: &'a PhaseStats,
    forecast: &'a PhaseStats,
    failed_over: u64,
    healed: u64,
    migrated: u64,
    node_down_transitions: u64,
    node_down_events: usize,
    victim: usize,
    statuses: &'a [(String, net::NodeStatus)],
    router: &'a FleetRouter,
}

fn render_report(args: &FleetArgs, r: ReportInputs<'_>) -> String {
    let mut json = String::new();
    writeln!(json, "{{").unwrap();
    writeln!(
        json,
        "  \"config\": {{\"entities\": {}, \"nodes\": {}, \"shards_per_node\": {}, \"rounds\": {}, \"seed\": {}, \"quick\": {}, \"ingest_chunk\": {INGEST_CHUNK}, \"forecast_chunk\": {FORECAST_CHUNK}}},",
        args.entities, args.nodes, args.shards, args.rounds, args.seed, args.quick
    )
    .unwrap();
    writeln!(
        json,
        "  \"seed_phase\": {{\"entities\": {}, \"seconds\": {:.2}, \"entities_per_sec\": {:.0}}},",
        r.installed,
        r.seed_secs,
        r.installed as f64 / r.seed_secs.max(1e-9)
    )
    .unwrap();
    writeln!(
        json,
        "  \"ingest_phase\": {{\"samples_acked\": {}, \"seconds\": {:.2}, \"samples_per_sec\": {:.0}, \"chunk_p50_us\": {:.1}, \"chunk_p99_us\": {:.1}}},",
        r.ingest.items,
        r.ingest.seconds,
        r.ingest.per_sec(),
        r.ingest.p50_ns as f64 / 1_000.0,
        r.ingest.p99_ns as f64 / 1_000.0
    )
    .unwrap();
    writeln!(
        json,
        "  \"forecast_phase\": {{\"forecasts\": {}, \"seconds\": {:.2}, \"forecasts_per_sec\": {:.0}, \"chunk_p50_us\": {:.1}, \"chunk_p99_us\": {:.1}}},",
        r.forecast.items,
        r.forecast.seconds,
        r.forecast.per_sec(),
        r.forecast.p50_ns as f64 / 1_000.0,
        r.forecast.p99_ns as f64 / 1_000.0
    )
    .unwrap();
    writeln!(
        json,
        "  \"failover\": {{\"killed_node\": \"n{}\", \"samples_failed_over\": {}, \"entities_healed\": {}, \"entities_migrated\": {}, \"node_down_transitions\": {}, \"node_down_journal_events\": {}}},",
        r.victim, r.failed_over, r.healed, r.migrated, r.node_down_transitions, r.node_down_events
    )
    .unwrap();
    writeln!(json, "  \"fleet\": [").unwrap();
    for (i, (name, status)) in r.statuses.iter().enumerate() {
        let sep = if i + 1 == r.statuses.len() { "" } else { "," };
        writeln!(
            json,
            "    {{\"node\": \"{name}\", \"status\": \"{status:?}\"}}{sep}"
        )
        .unwrap();
    }
    writeln!(json, "  ],").unwrap();
    // Per-request wire RTT distributions recorded by the router's spans.
    let snap = r.router.registry().snapshot();
    writeln!(json, "  \"router_rtt_ns\": {{").unwrap();
    let rtts: Vec<_> = snap
        .histograms
        .iter()
        .filter(|(name, _)| name.starts_with("router_rtt_"))
        .collect();
    for (i, (name, h)) in rtts.iter().enumerate() {
        let sep = if i + 1 == rtts.len() { "" } else { "," };
        writeln!(
            json,
            "    \"{name}\": {{\"count\": {}, \"mean_ns\": {:.0}, \"p50_le_ns\": {}, \"p99_le_ns\": {}, \"max_ns\": {}}}{sep}",
            h.count,
            h.mean().unwrap_or(0.0),
            h.quantile(0.50).unwrap_or(0),
            h.quantile(0.99).unwrap_or(0),
            h.max.unwrap_or(0),
        )
        .unwrap();
    }
    writeln!(json, "  }}").unwrap();
    writeln!(json, "}}").unwrap();
    json
}

fn main() {
    let mut argv = std::env::args().skip(1).peekable();
    if argv.peek().map(String::as_str) == Some("node") {
        argv.next();
        run_node(parse_args(argv));
    } else {
        run_orchestrator(parse_args(argv));
    }
}
