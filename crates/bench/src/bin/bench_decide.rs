//! Decision-layer bench: replay a synthetic container fleet through the
//! Bayesian reservation planner (`rptcn::DecisionPlanner` — conformal
//! interval at the newsvendor critical ratio, plus scale-down hysteresis)
//! and through a classic reactive threshold autoscaler, and compare them
//! on the violation × stranded-capacity frontier. Results go to
//! `BENCH_decide.json`.
//!
//! Both policies consume the SAME persistence point forecast over the
//! SAME seeded traces, so every difference in the outcome is the decision
//! rule, not the forecaster. The acceptance bar (checked by CI) is Pareto
//! dominance: the Bayesian layer must reach a lower violation rate at
//! equal-or-lower mean stranded capacity, with its scaling churn reported
//! alongside.
//!
//! Flags: `--entities <n>` (default 24), `--steps <n>` (default 2016),
//! `--seed-base <u64>` (default 0xDEC1DE), `--quick` (8 entities, 600
//! steps — CI smoke).

use std::fmt::Write as _;
use std::time::Instant;

use cloudtrace::container::cpu_series;
use cloudtrace::{ContainerConfig, WorkloadClass};
use rptcn::{DecisionConfig, DecisionPlanner, DecisionStats};
use tensor::Rng;

struct DecideArgs {
    entities: usize,
    steps: usize,
    seed_base: u64,
    quick: bool,
}

impl Default for DecideArgs {
    fn default() -> Self {
        DecideArgs {
            entities: 24,
            // A week of 5-minute samples.
            steps: 2016,
            seed_base: 0x00DE_C1DE,
            quick: false,
        }
    }
}

fn parse_args(mut it: impl Iterator<Item = String>) -> DecideArgs {
    let mut out = DecideArgs::default();
    while let Some(flag) = it.next() {
        let mut take = |name: &str| -> String {
            it.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match flag.as_str() {
            "--entities" => out.entities = take("--entities").parse().expect("--entities: usize"),
            "--steps" => out.steps = take("--steps").parse().expect("--steps: usize"),
            "--seed-base" => out.seed_base = take("--seed-base").parse().expect("--seed-base: u64"),
            "--quick" => out.quick = true,
            "--help" | "-h" => {
                eprintln!("flags: --entities <n> --steps <n> --seed-base <u64> --quick");
                std::process::exit(0);
            }
            other => panic!("unknown flag '{other}' (try --help)"),
        }
    }
    if out.quick {
        out.entities = out.entities.min(8);
        out.steps = out.steps.min(600);
    }
    assert!(out.entities >= 1, "need at least one entity");
    assert!(out.steps >= 32, "need enough steps to calibrate");
    out
}

/// Reservation bounds shared by both policies (fractions of machine
/// capacity), mirroring `DecisionConfig::default()`.
const MIN_ALLOC: f32 = 0.05;
const MAX_ALLOC: f32 = 1.0;

/// The reactive threshold baseline this PR replaces: a fixed multiplicative
/// headroom over the last observed demand, re-targeted whenever utilisation
/// breaches the high or low watermark of the standing reservation. This is
/// the textbook rule-based autoscaler — it only moves AFTER a breach, so a
/// burst is always one step of violation, and its headroom is a guess
/// rather than a calibrated residual quantile.
struct ReactivePolicy {
    headroom: f32,
    up_watermark: f32,
    down_watermark: f32,
}

impl Default for ReactivePolicy {
    fn default() -> Self {
        ReactivePolicy {
            headroom: 0.15,
            up_watermark: 0.90,
            down_watermark: 0.70,
        }
    }
}

impl ReactivePolicy {
    /// Replay a demand series. At each step the reservation is set from
    /// what was *last observed* (the same information the Bayesian planner
    /// gets through its persistence forecast), then scored against the
    /// demand that actually arrives.
    fn replay(&self, demand: &[f32]) -> DecisionStats {
        let mut stats = DecisionStats::default();
        let mut current = (demand[0] * (1.0 + self.headroom)).clamp(MIN_ALLOC, MAX_ALLOC);
        stats.decisions += 1;
        stats.scale_ups += 1; // the initial placement
        settle(&mut stats, current, demand[0]);
        for t in 1..demand.len() {
            let seen = demand[t - 1];
            let wanted = (seen * (1.0 + self.headroom)).clamp(MIN_ALLOC, MAX_ALLOC);
            if seen > self.up_watermark * current {
                if wanted > current {
                    stats.scale_ups += 1;
                } else {
                    stats.scale_downs += 1;
                }
                current = wanted;
            } else if seen < self.down_watermark * current && wanted < current {
                stats.scale_downs += 1;
                current = wanted;
            }
            stats.decisions += 1;
            settle(&mut stats, current, demand[t]);
        }
        stats
    }
}

fn settle(stats: &mut DecisionStats, reserved: f32, actual: f32) {
    if actual > reserved {
        stats.violations += 1;
        stats.total_deficit += (actual - reserved) as f64;
    } else {
        stats.total_waste += (reserved - actual) as f64;
    }
}

/// Replay the Bayesian planner over a demand series with a persistence
/// point forecast (predict the last observed value). The planner reserves
/// BEFORE each step's demand arrives — same information as the baseline.
fn bayesian_replay(demand: &[f32]) -> DecisionStats {
    let mut planner = DecisionPlanner::new(DecisionConfig::default(), 128);
    // First step: no history yet — the persistence forecast is the first
    // observation itself (cold start is covered by the planner's headroom,
    // and the initial placement counts as a scale-up, like the baseline).
    let d = planner.reserve(demand[0]);
    planner.settle(demand[0], d.reservation, demand[0]);
    for t in 1..demand.len() {
        let predicted = demand[t - 1];
        let d = planner.reserve(predicted);
        planner.settle(predicted, d.reservation, demand[t]);
    }
    planner.stats().clone()
}

struct EntityOutcome {
    id: String,
    class: &'static str,
    bayes: DecisionStats,
    reactive: DecisionStats,
}

fn class_for(i: usize) -> (WorkloadClass, &'static str) {
    match i % 3 {
        0 => (WorkloadClass::HighDynamic, "high_dynamic"),
        1 => (WorkloadClass::OnlineService, "online_service"),
        _ => (WorkloadClass::BatchJob, "batch_job"),
    }
}

fn aggregate(stats: impl Iterator<Item = DecisionStats>) -> DecisionStats {
    let mut total = DecisionStats::default();
    for s in stats {
        total.decisions += s.decisions;
        total.violations += s.violations;
        total.scale_ups += s.scale_ups;
        total.scale_downs += s.scale_downs;
        total.total_waste += s.total_waste;
        total.total_deficit += s.total_deficit;
    }
    total
}

fn main() {
    let args = parse_args(std::env::args().skip(1));
    let started = Instant::now();
    let reactive_policy = ReactivePolicy::default();

    let mut outcomes: Vec<EntityOutcome> = Vec::with_capacity(args.entities);
    for i in 0..args.entities {
        let (class, class_name) = class_for(i);
        let seed = args.seed_base + i as u64 * 7919;
        let mut cfg = ContainerConfig::new(class, args.steps, seed).with_diurnal_period(288);
        if i % 4 == 0 {
            // A quarter of the fleet carries a mutation point mid-trace.
            cfg = cfg.with_mutation(args.steps / 2, 0.2);
        }
        let mut rng = Rng::seed_from(seed);
        let demand = cpu_series(&cfg, &mut rng);
        outcomes.push(EntityOutcome {
            id: format!("c_{i}"),
            class: class_name,
            bayes: bayesian_replay(&demand),
            reactive: reactive_policy.replay(&demand),
        });
    }

    let bayes = aggregate(outcomes.iter().map(|o| o.bayes.clone()));
    let reactive = aggregate(outcomes.iter().map(|o| o.reactive.clone()));
    let pareto = bayes.violation_rate() < reactive.violation_rate()
        && bayes.mean_waste() <= reactive.mean_waste();

    println!(
        "bayesian: violation_rate {:.4} | mean stranded {:.4} | churn {:.4} ({} ups, {} downs)",
        bayes.violation_rate(),
        bayes.mean_waste(),
        bayes.churn(),
        bayes.scale_ups,
        bayes.scale_downs,
    );
    println!(
        "reactive: violation_rate {:.4} | mean stranded {:.4} | churn {:.4} ({} ups, {} downs)",
        reactive.violation_rate(),
        reactive.mean_waste(),
        reactive.churn(),
        reactive.scale_ups,
        reactive.scale_downs,
    );
    println!(
        "bench_decide: {} entities x {} steps in {:.1}s — {}",
        args.entities,
        args.steps,
        started.elapsed().as_secs_f64(),
        if pareto {
            "decision layer Pareto-dominates the reactive baseline"
        } else {
            "NO PARETO DOMINANCE"
        }
    );

    let json = render_json(
        &args,
        &outcomes,
        &bayes,
        &reactive,
        pareto,
        started.elapsed().as_secs_f64(),
    );
    std::fs::write("BENCH_decide.json", json).expect("write BENCH_decide.json");
    if !pareto {
        std::process::exit(1);
    }
}

fn policy_json(stats: &DecisionStats) -> String {
    format!(
        "{{ \"violation_rate\": {:.6}, \"mean_stranded\": {:.6}, \"churn\": {:.6}, \"decisions\": {}, \"violations\": {}, \"scale_ups\": {}, \"scale_downs\": {}, \"total_stranded\": {:.4}, \"total_deficit\": {:.4} }}",
        stats.violation_rate(),
        stats.mean_waste(),
        stats.churn(),
        stats.decisions,
        stats.violations,
        stats.scale_ups,
        stats.scale_downs,
        stats.total_waste,
        stats.total_deficit,
    )
}

fn render_json(
    args: &DecideArgs,
    outcomes: &[EntityOutcome],
    bayes: &DecisionStats,
    reactive: &DecisionStats,
    pareto: bool,
    elapsed_s: f64,
) -> String {
    let mut json = String::new();
    writeln!(json, "{{").unwrap();
    writeln!(json, "  \"bench\": \"decide\",").unwrap();
    writeln!(
        json,
        "  \"config\": {{ \"entities\": {}, \"steps\": {}, \"seed_base\": {}, \"quick\": {} }},",
        args.entities, args.steps, args.seed_base, args.quick
    )
    .unwrap();
    writeln!(json, "  \"elapsed_s\": {elapsed_s:.3},").unwrap();
    writeln!(json, "  \"pareto_dominates\": {pareto},").unwrap();
    writeln!(json, "  \"bayesian\": {},", policy_json(bayes)).unwrap();
    writeln!(json, "  \"reactive\": {},", policy_json(reactive)).unwrap();
    writeln!(json, "  \"entities\": [").unwrap();
    for (i, o) in outcomes.iter().enumerate() {
        let sep = if i + 1 < outcomes.len() { "," } else { "" };
        writeln!(
            json,
            "    {{ \"id\": \"{}\", \"class\": \"{}\", \"bayesian\": {}, \"reactive\": {} }}{sep}",
            o.id,
            o.class,
            policy_json(&o.bayes),
            policy_json(&o.reactive),
        )
        .unwrap();
    }
    writeln!(json, "  ]").unwrap();
    writeln!(json, "}}").unwrap();
    json
}
