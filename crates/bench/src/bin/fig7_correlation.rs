//! Fig. 7 — Pearson correlation analysis of all monitoring indicators for
//! one container (the paper uses c_18104). The screening result the paper
//! reports: the top four CPU-correlated indicators are cpu, mpki, cpi and
//! mem_gps.

use bench_harness::{ExperimentArgs, TextTable};
use cloudtrace::{ContainerConfig, WorkloadClass};
use timeseries::{correlation_matrix, rank_by_correlation, screen_top_half};

fn main() {
    let args = ExperimentArgs::parse();
    let frame = cloudtrace::container::generate_container(
        &ContainerConfig::new(WorkloadClass::HighDynamic, args.steps, args.seed)
            .with_diurnal_period(720),
    );

    // Full PCC matrix.
    let names = frame.names().to_vec();
    let matrix = correlation_matrix(&frame);
    let mut header: Vec<&str> = vec!["indicator"];
    header.extend(names.iter().map(String::as_str));
    let mut table = TextTable::new(&header);
    for (i, name) in names.iter().enumerate() {
        let mut row = vec![name.clone()];
        row.extend(matrix[i].iter().map(|v| format!("{v:+.3}")));
        table.add_row(row);
    }
    println!(
        "Fig. 7 — indicator correlation matrix (container, seed {})",
        args.seed
    );
    println!("{}", table.render());

    // Ranking against the target, as the pipeline's screening sees it.
    let ranks = rank_by_correlation(&frame, "cpu_util_percent").unwrap();
    let mut rank_table = TextTable::new(&["rank", "indicator", "pcc_with_cpu"]);
    for (i, r) in ranks.iter().enumerate() {
        rank_table.add_row(vec![
            (i + 1).to_string(),
            r.name.clone(),
            format!("{:+.4}", r.pcc),
        ]);
    }
    println!("{}", rank_table.render());

    let kept = screen_top_half(&frame, "cpu_util_percent").unwrap();
    println!("top-half screening keeps: {kept:?}");
    println!("paper's top four: [cpu, mpki, cpi, mem_gps]");
    args.export("fig7_correlation.csv", &table.to_csv());
    args.export("fig7_ranking.csv", &rank_table.to_csv());
}
