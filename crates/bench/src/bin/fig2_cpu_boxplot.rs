//! Fig. 2 — boxplot of the fleet's CPU-utilisation distribution per 6-hour
//! bucket, plus the red average line. The paper's headline observations:
//! the average is periodic, and the upper quartile sits below 0.6 for ~75 %
//! of the time.

use bench_harness::{runners, ExperimentArgs, TextTable};

fn main() {
    let args = ExperimentArgs::parse();
    let trace = runners::fleet_trace(&args);
    let fleet = trace.machine_cpu_matrix();
    let steps = args.steps;

    // A "6-hour" bucket: with the compressed 720-step diurnal period, a
    // quarter period plays the role six hours play against a real day.
    let bucket = (trace.config.diurnal_period / 4).max(1);
    let mut table = TextTable::new(&["bucket", "avg", "min", "q1", "median", "q3", "max"]);
    let mut buckets_below_06 = 0usize;
    let mut total_buckets = 0usize;
    for (b, start) in (0..steps).step_by(bucket).enumerate() {
        let end = (start + bucket).min(steps);
        // Per-machine average utilisation inside the bucket — the
        // distribution the boxplot draws.
        let samples: Vec<f32> = fleet
            .iter()
            .map(|m| tensor::stats::mean(&m[start..end]) as f32)
            .collect();
        let stats = tensor::stats::box_stats(&samples);
        let avg = tensor::stats::mean(&samples);
        total_buckets += 1;
        if stats.q3 < 0.6 {
            buckets_below_06 += 1;
        }
        table.add_row(vec![
            b.to_string(),
            format!("{avg:.4}"),
            format!("{:.4}", stats.min),
            format!("{:.4}", stats.q1),
            format!("{:.4}", stats.median),
            format!("{:.4}", stats.q3),
            format!("{:.4}", stats.max),
        ]);
    }

    println!(
        "Fig. 2 — fleet CPU distribution per bucket ({} machines, bucket = {bucket} samples)",
        fleet.len()
    );
    println!("{}", table.render());
    println!(
        "buckets with upper quartile < 0.6: {buckets_below_06}/{total_buckets} ({:.0}%)  (paper: ~75%)",
        100.0 * buckets_below_06 as f64 / total_buckets as f64
    );

    // Quantify the red line's periodicity claim: decompose the fleet-average
    // series at the diurnal period and report the seasonal strength.
    let fleet_avg: Vec<f32> = (0..steps)
        .map(|t| {
            let sum: f32 = fleet.iter().map(|m| m[t]).sum();
            sum / fleet.len() as f32
        })
        .collect();
    let period = trace.config.diurnal_period;
    if fleet_avg.len() >= 2 * period {
        let d = timeseries::decompose_additive(&fleet_avg, period);
        println!(
            "fleet-average seasonal strength at period {period}: {:.2}  (paper: 'the average CPU usage has a certain periodicity')",
            d.seasonal_strength()
        );
        let detected = timeseries::estimate_period(&fleet_avg, period / 2, period * 2, 0.2);
        println!("autocorrelation-detected period: {detected:?} (true: {period})");
    }
    args.export("fig2_cpu_boxplot.csv", &table.to_csv());
}
