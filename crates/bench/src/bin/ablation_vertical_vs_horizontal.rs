//! Fig. 4 ablation — vertical vs horizontal expansion. The paper argues
//! (§III-C) that widening features horizontally injects the same amount of
//! extra history as lengthening the window vertically, at lower training
//! cost. This binary holds the *effective history* fixed and compares:
//!
//! * baseline: window W, no expansion;
//! * vertical (Fig. 4a): window W + (copies − 1), no expansion;
//! * horizontal (Fig. 4b): window W, `copies` lag columns per indicator.

use bench_harness::{runners, table, ExperimentArgs, TextTable};
use models::{Forecaster, NeuralTrainSpec, RptcnConfig, RptcnForecaster};
use timeseries::{
    clean, make_windows, screen_top_half, split_windows, Expansion, MinMaxScaler, RepairPolicy,
    SplitRatios,
};

fn main() {
    let args = ExperimentArgs::parse();
    let target = "cpu_util_percent";
    let base_window = 30usize;
    let copies = 3usize;
    let variants: Vec<(&str, usize, Option<usize>)> = vec![
        // (label, window, horizontal copies)
        ("baseline (W=30)", base_window, None),
        ("vertical (W=32)", base_window + copies - 1, None),
        ("horizontal (W=30, x3)", base_window, Some(copies)),
    ];

    let frames = runners::container_frames(&args);
    let mut out = TextTable::new(&[
        "variant",
        "window",
        "features",
        "MSE(1e-2)",
        "MAE(1e-2)",
        "fit_secs",
    ]);
    for (label, window, horizontal) in variants {
        eprintln!("running {label} ...");
        let mut mse = 0.0;
        let mut mae = 0.0;
        let mut secs = 0.0;
        let mut feats = 0usize;
        for (i, frame) in frames.iter().enumerate() {
            let (cleaned, _) = clean(frame, RepairPolicy::DropRows);
            let (train_end, _) = SplitRatios::PAPER.boundaries(cleaned.len());
            let kept = screen_top_half(&cleaned.slice_rows(0, train_end).unwrap(), target).unwrap();
            let refs: Vec<&str> = kept.iter().map(String::as_str).collect();
            let screened = cleaned.select(&refs).unwrap();
            let scaler = MinMaxScaler::fit(&screened.slice_rows(0, train_end).unwrap());
            let normalized = scaler.transform(&screened);
            let (expanded, tgt) = match horizontal {
                Some(c) => (
                    Expansion::Horizontal { copies: c }
                        .apply(&normalized)
                        .unwrap(),
                    format!("{target}#lag0"),
                ),
                None => (normalized, target.to_string()),
            };
            let ds = make_windows(&expanded, &tgt, window, 1).unwrap();
            let (train, valid, test) = split_windows(&ds, SplitRatios::PAPER);
            feats = train.num_features();
            let mut model = RptcnForecaster::new(RptcnConfig {
                spec: NeuralTrainSpec {
                    epochs: if args.quick { 6 } else { 30 },
                    learning_rate: 2e-3,
                    seed: args.seed + i as u64,
                    ..Default::default()
                },
                ..Default::default()
            });
            let report = model.fit(&train, Some(&valid));
            secs += report.fit_time.as_secs_f64();
            let (truth, pred) = model.evaluate(&test);
            mse += timeseries::metrics::mse(&truth, &pred);
            mae += timeseries::metrics::mae(&truth, &pred);
        }
        let n = frames.len() as f64;
        out.add_row(vec![
            label.to_string(),
            window.to_string(),
            feats.to_string(),
            table::x100(mse / n),
            table::x100(mae / n),
            format!("{:.2}", secs / n),
        ]);
    }

    println!(
        "Vertical vs horizontal expansion — RPTCN on containers ({} entities, seed {})",
        args.entities, args.seed
    );
    println!("{}", out.render());
    println!("expected shape (paper §III-C): horizontal matches or beats vertical accuracy at lower fit time than the widened-window variant.");
    args.export("ablation_vertical_vs_horizontal.csv", &out.to_csv());
}
