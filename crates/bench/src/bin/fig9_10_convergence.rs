//! Figs. 9–10 — loss convergence. Fig. 9: training loss per epoch on a
//! container dataset; Fig. 10: validation loss per epoch on a machine
//! dataset. Claim to reproduce: RPTCN starts at a lower loss and stays
//! below the LSTM-family baselines; XGBoost's per-round curve is smooth.

use bench_harness::{runners, ExperimentArgs, ModelKind, TextTable};
use rptcn::{prepare, Scenario};

fn main() {
    let args = ExperimentArgs::parse();
    let kinds = [
        ModelKind::Lstm,
        ModelKind::Xgboost,
        ModelKind::CnnLstm,
        ModelKind::Rptcn,
    ];

    for (fig, entity, frame) in [
        (
            "Fig. 9 (train loss, containers)",
            "container",
            runners::container_frames(&args).remove(0),
        ),
        (
            "Fig. 10 (valid loss, machines)",
            "machine",
            runners::machine_frames(&args).remove(0),
        ),
    ] {
        let data = prepare(&frame, &runners::pipeline_config(Scenario::MulExp)).expect("prepare");
        let mut curves: Vec<(String, Vec<f64>)> = Vec::new();
        for (i, kind) in kinds.iter().enumerate() {
            eprintln!("{fig}: training {} ...", kind.label());
            let mut model = runners::build_model(*kind, &args, args.seed + i as u64);
            let report = model.fit(&data.train, Some(&data.valid));
            // Fig. 9 plots training loss; Fig. 10 plots validation loss
            // (falling back to training loss for models without one).
            let curve = if entity == "container" || report.valid_loss.is_empty() {
                report.train_loss.clone()
            } else {
                report.valid_loss.clone()
            };
            curves.push((kind.label().to_string(), curve));
        }

        let mut header = vec!["epoch".to_string()];
        header.extend(curves.iter().map(|(n, _)| n.clone()));
        let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
        let mut out = TextTable::new(&header_refs);
        let max_epochs = curves.iter().map(|(_, c)| c.len()).max().unwrap_or(0);
        for e in 0..max_epochs {
            let mut row = vec![e.to_string()];
            row.extend(
                curves
                    .iter()
                    .map(|(_, c)| c.get(e).map_or("-".to_string(), |v| format!("{v:.6}"))),
            );
            out.add_row(row);
        }
        println!("{fig}");
        println!("{}", out.render());

        // Quantify the figure's claims.
        let loss_at = |name: &str, e: usize| -> f64 {
            let c = &curves.iter().find(|(n, _)| n == name).unwrap().1;
            c.get(e.min(c.len() - 1)).copied().unwrap_or(f64::NAN)
        };
        println!(
            "epoch-0 loss: RPTCN {:.5} vs LSTM {:.5} vs CNN-LSTM {:.5} (paper: RPTCN starts lowest)",
            loss_at("RPTCN", 0),
            loss_at("LSTM", 0),
            loss_at("CNN-LSTM", 0)
        );
        let fname = if entity == "container" {
            "fig9_train_loss.csv"
        } else {
            "fig10_valid_loss.csv"
        };
        args.export(fname, &out.to_csv());
        println!();
    }
}
