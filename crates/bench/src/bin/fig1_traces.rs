//! Fig. 1 — "Different resource utilization of workloads on containers":
//! emits the CPU, memory and disk-I/O series of a high-dynamic container so
//! the irregular, non-periodic shape is visible.

use bench_harness::{ExperimentArgs, TextTable};
use cloudtrace::{ContainerConfig, WorkloadClass};

fn main() {
    let args = ExperimentArgs::parse();
    let frame = cloudtrace::container::generate_container(
        &ContainerConfig::new(WorkloadClass::HighDynamic, args.steps, args.seed)
            .with_diurnal_period(720),
    );
    let cpu = frame.column("cpu_util_percent").unwrap();
    let mem = frame.column("mem_util_percent").unwrap();
    let disk = frame.column("disk_io_percent").unwrap();

    let mut table = TextTable::new(&["t", "cpu_util", "mem_util", "disk_io"]);
    // Print a readable subsample; export the full series with --out.
    let stride = (args.steps / 60).max(1);
    for t in (0..args.steps).step_by(stride) {
        table.add_row(vec![
            t.to_string(),
            format!("{:.4}", cpu[t]),
            format!("{:.4}", mem[t]),
            format!("{:.4}", disk[t]),
        ]);
    }
    println!(
        "Fig. 1 — container resource utilisation (seed {}, every {stride} samples)",
        args.seed
    );
    println!("{}", table.render());

    // Quantify the "high dynamic, no regularity" claim.
    let std = tensor::stats::std_dev(cpu);
    let jumps = cpu.windows(2).filter(|w| (w[1] - w[0]).abs() > 0.1).count();
    println!(
        "cpu std-dev = {std:.4}; |Δ|>0.1 jumps = {jumps} / {} steps",
        args.steps - 1
    );

    let mut full = TextTable::new(&["t", "cpu_util", "mem_util", "disk_io"]);
    for t in 0..args.steps {
        full.add_row(vec![
            t.to_string(),
            format!("{:.6}", cpu[t]),
            format!("{:.6}", mem[t]),
            format!("{:.6}", disk[t]),
        ]);
    }
    args.export("fig1_traces.csv", &full.to_csv());
}
