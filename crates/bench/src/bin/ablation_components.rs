//! Component ablation (paper §V-C discussion): what do the fully connected
//! layer and the attention mechanism each contribute on top of a plain TCN?
//! Also evaluates the temporal-attention alternative the discussion
//! sketches as future work.

use bench_harness::{runners, table, ExperimentArgs, TextTable};
use models::{AttentionKind, NeuralTrainSpec, RptcnConfig, RptcnForecaster};
use rptcn::{prepare, run_model, Scenario};

fn variant(name: &str, f: impl FnOnce(&mut RptcnConfig)) -> (String, RptcnConfig) {
    let mut cfg = RptcnConfig::default();
    f(&mut cfg);
    (name.to_string(), cfg)
}

fn main() {
    let args = ExperimentArgs::parse();
    let spec = NeuralTrainSpec {
        epochs: if args.quick { 6 } else { 30 },
        learning_rate: 2e-3,
        seed: args.seed,
        ..Default::default()
    };
    let variants = vec![
        variant("RPTCN (full)", |_| {}),
        variant("RPTCN - attention", |c| c.use_attention = false),
        variant("RPTCN - FC", |c| c.use_fc = false),
        variant("TCN (no FC, no attention)", |c| {
            c.use_fc = false;
            c.use_attention = false;
        }),
        variant("RPTCN + temporal attention", |c| {
            c.attention = AttentionKind::Temporal
        }),
    ];

    let frames = runners::container_frames(&args);
    let mut out = TextTable::new(&["variant", "MSE(1e-2)", "MAE(1e-2)", "epochs", "params"]);
    for (name, mut cfg) in variants {
        cfg.spec = spec;
        eprintln!("training {name} ...");
        let mut mse = 0.0;
        let mut mae = 0.0;
        let mut epochs = 0usize;
        let mut params = 0usize;
        for (i, frame) in frames.iter().enumerate() {
            let data = prepare(frame, &runners::pipeline_config(Scenario::MulExp)).unwrap();
            let mut model = RptcnForecaster::new(RptcnConfig {
                spec: NeuralTrainSpec {
                    seed: args.seed + i as u64,
                    ..spec
                },
                ..cfg
            });
            let run = run_model(&mut model, &data);
            mse += run.test_metrics.mse;
            mae += run.test_metrics.mae;
            epochs = epochs.max(run.fit.train_loss.len());
            params = model.num_parameters().unwrap_or(0);
        }
        let n = frames.len() as f64;
        out.add_row(vec![
            name,
            table::x100(mse / n),
            table::x100(mae / n),
            epochs.to_string(),
            params.to_string(),
        ]);
    }

    println!(
        "Component ablation — RPTCN on containers, Mul-Exp ({} entities, seed {})",
        args.entities, args.seed
    );
    println!("{}", out.render());
    println!("expected shape: the full model is at least as good as each ablated variant.");
    args.export("ablation_components.csv", &out.to_csv());
}
