//! Fig. 8 — predicted vs true CPU utilisation in the Mul-Exp scenario, on a
//! machine whose test segment contains an abrupt, persistent usage increase
//! (the paper's mutation after the ~350th test sample). The claim to
//! reproduce: every baseline sees the jump late or mis-levels afterwards,
//! while RPTCN tracks the new level most closely.

use bench_harness::{runners, ExperimentArgs, ModelKind, TextTable};
use rptcn::Scenario;

fn main() {
    let args = ExperimentArgs::parse();
    let frame = runners::fig8_machine(&args);

    // The paper normalises the whole dataset before splitting (Algorithm 1),
    // which keeps the post-mutation level inside [0, 1]; replicate that here
    // so the models can express the new regime.
    let mut cfg = runners::pipeline_config(Scenario::MulExp);
    cfg.scaler_scope = rptcn::ScalerScope::Global;
    let kinds = [
        ModelKind::Lstm,
        ModelKind::Xgboost,
        ModelKind::CnnLstm,
        ModelKind::Rptcn,
    ];
    let mut series: Vec<(String, Vec<f32>)> = Vec::new();
    let mut truth: Vec<f32> = Vec::new();
    for (i, kind) in kinds.iter().enumerate() {
        eprintln!("training {} ...", kind.label());
        let data = rptcn::prepare(&frame, &cfg).expect("prepare");
        let mut model = runners::build_model(*kind, &args, args.seed + i as u64);
        let run = rptcn::run_model(model.as_mut(), &data);
        if truth.is_empty() {
            truth = run.truth.clone();
        }
        series.push((kind.label().to_string(), run.predictions));
    }

    // Locate the mutation in the test segment: the largest single-step jump.
    let jump_at = truth
        .windows(2)
        .enumerate()
        .max_by(|a, b| {
            (a.1[1] - a.1[0])
                .abs()
                .partial_cmp(&(b.1[1] - b.1[0]).abs())
                .unwrap()
        })
        .map(|(i, _)| i + 1)
        .unwrap_or(0);

    let mut table_header = vec!["t".to_string(), "true".to_string()];
    table_header.extend(series.iter().map(|(n, _)| n.clone()));
    let header_refs: Vec<&str> = table_header.iter().map(String::as_str).collect();
    let mut out = TextTable::new(&header_refs);
    let stride = (truth.len() / 80).max(1);
    for t in (0..truth.len()).step_by(stride) {
        let mut row = vec![t.to_string(), format!("{:.4}", truth[t])];
        row.extend(series.iter().map(|(_, p)| format!("{:.4}", p[t])));
        out.add_row(row);
    }
    println!(
        "Fig. 8 — predicted vs true (Mul-Exp, machine with mutation at test sample {jump_at})"
    );
    println!("{}", out.render());

    // Post-mutation tracking error: the figure's visual claim, quantified.
    let mut post = TextTable::new(&["model", "post_mutation_MAE(1e-2)", "pre_mutation_MAE(1e-2)"]);
    let start = (jump_at + 5).min(truth.len());
    for (name, pred) in &series {
        let post_mae = timeseries::metrics::mae(&truth[start..], &pred[start..]);
        let pre_mae = timeseries::metrics::mae(&truth[..jump_at], &pred[..jump_at]);
        post.add_row(vec![
            name.clone(),
            format!("{:.4}", post_mae * 100.0),
            format!("{:.4}", pre_mae * 100.0),
        ]);
    }
    println!("{}", post.render());
    println!("expected shape: RPTCN has the lowest post-mutation MAE (paper Fig. 8).");

    let mut full = TextTable::new(&header_refs);
    for t in 0..truth.len() {
        let mut row = vec![t.to_string(), format!("{:.6}", truth[t])];
        row.extend(series.iter().map(|(_, p)| format!("{:.6}", p[t])));
        full.add_row(row);
    }
    args.export("fig8_pred_vs_true.csv", &full.to_csv());
    args.export("fig8_post_mutation.csv", &post.to_csv());
}
