//! Fig. 3 — percentage of machines using less than 50 % CPU over time. The
//! paper finds more than 80 % of machines stay below 50 % in most periods.

use bench_harness::{runners, ExperimentArgs, TextTable};

fn main() {
    let args = ExperimentArgs::parse();
    let trace = runners::fleet_trace(&args);
    let fleet = trace.machine_cpu_matrix();
    let steps = args.steps;
    let bucket = (trace.config.diurnal_period / 4).max(1);

    let mut table = TextTable::new(&["bucket", "pct_below_50"]);
    let mut sum_pct = 0.0f64;
    let mut n_buckets = 0usize;
    for (b, start) in (0..steps).step_by(bucket).enumerate() {
        let end = (start + bucket).min(steps);
        let below = fleet
            .iter()
            .filter(|m| tensor::stats::mean(&m[start..end]) < 0.5)
            .count();
        let pct = 100.0 * below as f64 / fleet.len() as f64;
        sum_pct += pct;
        n_buckets += 1;
        table.add_row(vec![b.to_string(), format!("{pct:.1}")]);
    }

    println!(
        "Fig. 3 — % of machines under 50% CPU per bucket ({} machines)",
        fleet.len()
    );
    println!("{}", table.render());
    println!(
        "mean across buckets: {:.1}%  (paper: >80% of machines below 50%)",
        sum_pct / n_buckets as f64
    );
    args.export("fig3_underused.csv", &table.to_csv());
}
