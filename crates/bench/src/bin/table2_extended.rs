//! Extended model zoo — everything the workspace implements beyond the
//! paper's five Table-II models, on the containers / Mul-Exp cell:
//! persistence, ridge regression, Holt–Winters, GRU and plain TCN next to
//! the Table-II set. This is the "is each model pulling its weight" view.

use bench_harness::{runners, table, ExperimentArgs, TextTable};
use models::{
    ArimaConfig, ArimaForecaster, CnnLstmConfig, CnnLstmForecaster, EtsConfig, EtsForecaster,
    Forecaster, GbtConfig, GbtForecaster, GruConfig, GruForecaster, LinearConfig, LinearForecaster,
    LstmConfig, LstmForecaster, NaiveForecaster, NeuralTrainSpec, RptcnConfig, RptcnForecaster,
    TcnConfig, TcnForecaster,
};
use rptcn::{prepare, run_model, Scenario};

fn main() {
    let args = ExperimentArgs::parse();
    let spec = NeuralTrainSpec {
        epochs: if args.quick { 6 } else { 30 },
        seed: args.seed,
        ..Default::default()
    };
    let tcn_spec = NeuralTrainSpec {
        learning_rate: 2e-3,
        ..spec
    };

    let frames = runners::container_frames(&args);
    let mut out = TextTable::new(&["model", "MSE(1e-2)", "MAE(1e-2)", "R2", "fit_secs"]);

    let mut zoo: Vec<Box<dyn Forecaster>> = vec![
        Box::new(NaiveForecaster::new()),
        Box::new(LinearForecaster::new(LinearConfig::default())),
        Box::new(EtsForecaster::new(EtsConfig::default())),
        Box::new(ArimaForecaster::new(ArimaConfig::default())),
        Box::new(GbtForecaster::new(GbtConfig {
            n_rounds: if args.quick { 30 } else { 120 },
            ..Default::default()
        })),
        Box::new(LstmForecaster::new(LstmConfig {
            spec,
            ..Default::default()
        })),
        Box::new(GruForecaster::new(GruConfig {
            spec,
            ..Default::default()
        })),
        Box::new(CnnLstmForecaster::new(CnnLstmConfig {
            spec,
            ..Default::default()
        })),
        Box::new(TcnForecaster::new(TcnConfig {
            spec: tcn_spec,
            ..Default::default()
        })),
        Box::new(RptcnForecaster::new(RptcnConfig {
            spec: tcn_spec,
            ..Default::default()
        })),
    ];

    for model in &mut zoo {
        eprintln!("training {} ...", model.name());
        let mut mse = 0.0;
        let mut mae = 0.0;
        let mut r2 = 0.0;
        let mut secs = 0.0;
        for frame in &frames {
            let data = prepare(frame, &runners::pipeline_config(Scenario::MulExp)).unwrap();
            let run = run_model(model.as_mut(), &data);
            mse += run.test_metrics.mse;
            mae += run.test_metrics.mae;
            r2 += run.test_metrics.r2;
            secs += run.fit.fit_time.as_secs_f64();
        }
        let n = frames.len() as f64;
        out.add_row(vec![
            model.name().to_string(),
            table::x100(mse / n),
            table::x100(mae / n),
            format!("{:.3}", r2 / n),
            format!("{:.2}", secs / n),
        ]);
    }

    println!(
        "Extended model zoo — containers, Mul-Exp ({} entities, seed {})",
        args.entities, args.seed
    );
    println!("{}", out.render());
    args.export("table2_extended.csv", &out.to_csv());
}
