//! Table II — the paper's headline result: MSE and MAE (×10⁻²) of every
//! model under the Uni / Mul / Mul-Exp scenarios, on containers and on
//! machines. Values are averaged over `--entities` entities.
//!
//! Expected shape (not absolute numbers — the substrate is synthetic):
//! RPTCN wins Mul-Exp on both entity kinds, ARIMA is competitive on Uni,
//! multivariate input rescues LSTM relative to its univariate run, and
//! Mul-Exp beats Mul for the strong models on containers.

use bench_harness::{runners, table, ExperimentArgs, ModelKind, TextTable};
use rptcn::Scenario;

fn main() {
    let args = ExperimentArgs::parse();
    let containers = runners::container_frames(&args);
    let machines = runners::machine_frames(&args);

    let mut out = TextTable::new(&[
        "scenario",
        "model",
        "cont_MSE(1e-2)",
        "cont_MAE(1e-2)",
        "mach_MSE(1e-2)",
        "mach_MAE(1e-2)",
    ]);

    for scenario in Scenario::ALL {
        for kind in ModelKind::TABLE2 {
            // The paper reports ARIMA only in the univariate block.
            if kind.is_univariate_only() && scenario != Scenario::Uni {
                continue;
            }
            let cell = |frames: &[timeseries::TimeSeriesFrame]| -> (f64, f64) {
                let runs: Vec<_> = frames
                    .iter()
                    .enumerate()
                    .map(|(i, f)| runners::run_cell(f, scenario, kind, &args, args.seed + i as u64))
                    .collect();
                runners::mean_mse_mae(&runs)
            };
            eprintln!("running {} / {} ...", scenario.label(), kind.label());
            let (c_mse, c_mae) = cell(&containers);
            let (m_mse, m_mae) = cell(&machines);
            out.add_row(vec![
                scenario.label().to_string(),
                kind.label().to_string(),
                table::x100(c_mse),
                table::x100(c_mae),
                table::x100(m_mse),
                table::x100(m_mae),
            ]);
        }
    }

    println!(
        "Table II — accuracy on the synthetic Alibaba-style trace \
         ({} entities per kind, {} steps, seed {})",
        args.entities, args.steps, args.seed
    );
    println!("{}", out.render());
    println!("paper reference (Alibaba v2018, x1e-2):");
    println!("  containers Mul-Exp: LSTM 0.3169/4.1077  XGB 0.3274/4.2841  CNN-LSTM 0.3402/4.3305  RPTCN 0.2963/4.0910");
    println!("  machines   Mul-Exp: LSTM 2.2257/11.9627 XGB 4.4529/16.1577 CNN-LSTM 2.8865/13.4577 RPTCN 0.4884/5.0386");
    args.export("table2_accuracy.csv", &out.to_csv());
}
