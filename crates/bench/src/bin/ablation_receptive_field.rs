//! Receptive-field ablation (paper §V-C: "explore the influence of TCNs
//! parameters on the running time of this model"): sweep kernel size and
//! stack depth, reporting accuracy, receptive field and fit time.

use bench_harness::{runners, table, ExperimentArgs, TextTable};
use models::{Forecaster, NeuralTrainSpec, RptcnConfig, RptcnForecaster};
use rptcn::{prepare, Scenario};

fn main() {
    let args = ExperimentArgs::parse();
    let frame = runners::container_frames(&args).remove(0);
    let data = prepare(&frame, &runners::pipeline_config(Scenario::MulExp)).unwrap();

    let mut out = TextTable::new(&[
        "kernel",
        "levels",
        "receptive_field",
        "MSE(1e-2)",
        "MAE(1e-2)",
        "fit_secs",
        "params",
    ]);
    for kernel in [2usize, 3, 5] {
        for levels in [2usize, 3, 4] {
            eprintln!("training k={kernel} levels={levels} ...");
            let cfg = RptcnConfig {
                kernel,
                levels,
                spec: NeuralTrainSpec {
                    epochs: if args.quick { 4 } else { 20 },
                    learning_rate: 2e-3,
                    seed: args.seed,
                    ..Default::default()
                },
                ..Default::default()
            };
            let rf: usize = 1
                + (0..levels)
                    .map(|l| 2 * (kernel - 1) * (1 << l))
                    .sum::<usize>();
            let mut model = RptcnForecaster::new(cfg);
            let report = model.fit(&data.train, Some(&data.valid));
            let (truth, pred) = model.evaluate(&data.test);
            out.add_row(vec![
                kernel.to_string(),
                levels.to_string(),
                rf.to_string(),
                table::x100(timeseries::metrics::mse(&truth, &pred)),
                table::x100(timeseries::metrics::mae(&truth, &pred)),
                format!("{:.2}", report.fit_time.as_secs_f64()),
                model.num_parameters().unwrap_or(0).to_string(),
            ]);
        }
    }

    println!(
        "Receptive-field ablation — RPTCN on one container (window 30, seed {})",
        args.seed
    );
    println!("{}", out.render());
    println!("expected shape: accuracy saturates once the receptive field covers the window; fit time grows with depth and kernel.");
    args.export("ablation_receptive_field.csv", &out.to_csv());
}
