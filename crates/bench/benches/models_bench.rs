//! Model-level benchmarks: inference latency per model (what a resource
//! manager pays per forecast) and one training epoch (what periodic
//! retraining costs).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use models::{
    ArimaConfig, ArimaForecaster, CnnLstmConfig, CnnLstmForecaster, Forecaster, GbtConfig,
    GbtForecaster, LstmConfig, LstmForecaster, NeuralTrainSpec, RptcnConfig, RptcnForecaster,
};
use timeseries::{make_windows, WindowedDataset};

fn dataset(steps: usize) -> WindowedDataset {
    let frame = cloudtrace::container::generate_container(
        &cloudtrace::ContainerConfig::new(cloudtrace::WorkloadClass::HighDynamic, steps, 7)
            .with_diurnal_period(500),
    );
    let kept = timeseries::screen_top_half(&frame, "cpu_util_percent").unwrap();
    let refs: Vec<&str> = kept.iter().map(String::as_str).collect();
    let screened = frame.select(&refs).unwrap();
    let scaled = timeseries::MinMaxScaler::fit(&screened).transform(&screened);
    make_windows(&scaled, "cpu_util_percent", 30, 1).unwrap()
}

fn quick_spec(epochs: usize) -> NeuralTrainSpec {
    NeuralTrainSpec {
        epochs,
        patience: epochs,
        ..Default::default()
    }
}

fn fitted_models(ds: &WindowedDataset) -> Vec<Box<dyn Forecaster>> {
    let mut models: Vec<Box<dyn Forecaster>> = vec![
        Box::new(ArimaForecaster::new(ArimaConfig::default())),
        Box::new(GbtForecaster::new(GbtConfig {
            n_rounds: 20,
            ..Default::default()
        })),
        Box::new(LstmForecaster::new(LstmConfig {
            spec: quick_spec(2),
            ..Default::default()
        })),
        Box::new(CnnLstmForecaster::new(CnnLstmConfig {
            spec: quick_spec(2),
            ..Default::default()
        })),
        Box::new(RptcnForecaster::new(RptcnConfig {
            spec: quick_spec(2),
            ..Default::default()
        })),
    ];
    for m in &mut models {
        m.fit(ds, None);
    }
    models
}

fn bench_inference(c: &mut Criterion) {
    let ds = dataset(600);
    let models = fitted_models(&ds);
    let mut group = c.benchmark_group("inference_batch64");
    let batch = ds.slice(0, 64.min(ds.len()));
    for m in &models {
        group.bench_function(m.name(), |bench| {
            bench.iter(|| m.predict(black_box(&batch.x)));
        });
    }
    group.finish();
}

fn bench_training_epoch(c: &mut Criterion) {
    let ds = dataset(600);
    let mut group = c.benchmark_group("train_one_epoch");
    group.sample_size(10);
    group.bench_function("RPTCN", |bench| {
        bench.iter(|| {
            let mut m = RptcnForecaster::new(RptcnConfig {
                spec: quick_spec(1),
                ..Default::default()
            });
            m.fit(black_box(&ds), None)
        });
    });
    group.bench_function("LSTM", |bench| {
        bench.iter(|| {
            let mut m = LstmForecaster::new(LstmConfig {
                spec: quick_spec(1),
                ..Default::default()
            });
            m.fit(black_box(&ds), None)
        });
    });
    group.bench_function("XGBoost_20rounds", |bench| {
        bench.iter(|| {
            let mut m = GbtForecaster::new(GbtConfig {
                n_rounds: 20,
                early_stopping_rounds: None,
                ..Default::default()
            });
            m.fit(black_box(&ds), None)
        });
    });
    group.bench_function("ARIMA_fit", |bench| {
        bench.iter(|| {
            let mut m = ArimaForecaster::new(ArimaConfig::default());
            m.fit(black_box(&ds), None)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_inference, bench_training_epoch);
criterion_main!(benches);
