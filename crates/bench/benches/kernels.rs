//! Microbenchmarks for the numerical kernels underneath every model:
//! matmul (the LSTM/FC workhorse), dilated causal conv1d forward/backward
//! (the TCN workhorse) and row softmax (attention).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tensor::{matmul, reduce, Rng, Tensor};

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    let mut rng = Rng::seed_from(1);
    for &n in &[32usize, 64, 128] {
        let a = Tensor::rand_normal(&[n, n], 0.0, 1.0, &mut rng);
        let b = Tensor::rand_normal(&[n, n], 0.0, 1.0, &mut rng);
        group.bench_with_input(BenchmarkId::new("square", n), &n, |bench, _| {
            bench.iter(|| matmul::matmul(black_box(&a), black_box(&b)));
        });
    }
    // The LSTM gate shape: [batch, in] x [in, 4h].
    let a = Tensor::rand_normal(&[64, 12], 0.0, 1.0, &mut rng);
    let b = Tensor::rand_normal(&[12, 128], 0.0, 1.0, &mut rng);
    group.bench_function("lstm_gates_64x12x128", |bench| {
        bench.iter(|| matmul::matmul(black_box(&a), black_box(&b)));
    });
    group.finish();
}

fn bench_conv1d(c: &mut Criterion) {
    let mut group = c.benchmark_group("conv1d");
    let mut rng = Rng::seed_from(2);
    // The RPTCN block shape: batch 64, 16 channels, window 30, k=3.
    let x = Tensor::rand_normal(&[64, 16, 30], 0.0, 1.0, &mut rng);
    let w = Tensor::rand_normal(&[16, 16, 3], 0.0, 1.0, &mut rng);
    for &d in &[1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("forward_d", d), &d, |bench, &d| {
            bench.iter(|| autograd::conv1d_forward(black_box(&x), black_box(&w), d));
        });
    }
    let grad_out = Tensor::rand_normal(&[64, 16, 30], 0.0, 1.0, &mut rng);
    group.bench_function("backward_input_d2", |bench| {
        bench.iter(|| {
            autograd::conv1d_backward_input(black_box(&grad_out), black_box(&w), &[64, 16, 30], 2)
        });
    });
    group.bench_function("backward_weight_d2", |bench| {
        bench.iter(|| autograd::conv1d_backward_weight(black_box(&grad_out), black_box(&x), 3, 2));
    });
    group.finish();
}

fn bench_softmax(c: &mut Criterion) {
    let mut rng = Rng::seed_from(3);
    let logits = Tensor::rand_normal(&[64, 32], 0.0, 1.0, &mut rng);
    c.bench_function("softmax_rows_64x32", |bench| {
        bench.iter(|| reduce::softmax_rows(black_box(&logits)));
    });
}

criterion_group!(benches, bench_matmul, bench_conv1d, bench_softmax);
criterion_main!(benches);
