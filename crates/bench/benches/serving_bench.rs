//! Serving-path benchmarks: ingest throughput (samples/sec) of the sharded
//! prediction service as the shard count grows, plus the batched forecast
//! fan-out path. Each ingest triggers the shard-side rolling forecast
//! (`score_on_ingest`), so the measured work is the real serving hot path
//! and parallelises across shards. Shard-count scaling only shows on
//! multi-core hosts — on a single CPU every configuration is serialised
//! and the curve is expected to be flat.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use cloudtrace::{ContainerConfig, WorkloadClass};
use models::NaiveForecaster;
use rptcn::{PipelineConfig, Scenario};
use serve::{FaultPlan, PredictionService, ServiceConfig};
use timeseries::TimeSeriesFrame;

const ENTITIES: usize = 64;
const BOOTSTRAP: usize = 200;
/// Ingest rounds (one sample per entity) per timed iteration.
const ROUNDS: usize = 8;
/// Concurrent producer threads in the ingest benchmark.
const PRODUCERS: usize = 4;

fn bootstrap_frames() -> Vec<TimeSeriesFrame> {
    (0..ENTITIES)
        .map(|i| {
            cloudtrace::container::generate_container(
                &ContainerConfig::new(WorkloadClass::OnlineService, BOOTSTRAP, 7 + i as u64)
                    .with_diurnal_period(120),
            )
        })
        .collect()
}

fn fitted_service_with(
    shards: usize,
    frames: &[TimeSeriesFrame],
    faults: Option<FaultPlan>,
) -> (PredictionService, Vec<String>) {
    // Multivariate scenario: the per-ingest rolling forecast re-applies
    // screening + scaling over several indicator columns, so the shard-side
    // cost dominates the producer's send cost and scaling is visible.
    let cfg = PipelineConfig {
        scenario: Scenario::Mul,
        window: 24,
        horizon: 1,
        ..Default::default()
    };
    let mut service = PredictionService::new(ServiceConfig {
        shards,
        queue_capacity: 512,
        refit_workers: 0,
        refit_every: 0,
        faults,
        ..Default::default()
    })
    .expect("spawn service");
    let mut ids = Vec::with_capacity(ENTITIES);
    for (i, frame) in frames.iter().enumerate() {
        let id = format!("container_{i:03}");
        service
            .add_entity(&id, frame, cfg.clone(), Box::new(NaiveForecaster::new()))
            .expect("onboard");
        ids.push(id);
    }
    (service, ids)
}

fn fitted_service(shards: usize, frames: &[TimeSeriesFrame]) -> (PredictionService, Vec<String>) {
    fitted_service_with(shards, frames, None)
}

fn samples_for(frames: &[TimeSeriesFrame]) -> Vec<Vec<f32>> {
    frames
        .iter()
        .map(|f| {
            (0..f.num_columns())
                .map(|j| f.column_at(j)[BOOTSTRAP - 1])
                .collect()
        })
        .collect()
}

fn bench_ingest_scaling(c: &mut Criterion) {
    let frames = bootstrap_frames();
    let samples = samples_for(&frames);
    let mut group = c.benchmark_group("serving_ingest");
    group.sample_size(10);
    for shards in [1usize, 2, 4, 8] {
        let (service, ids) = fitted_service(shards, &frames);
        // Four producer threads feed disjoint entity ranges, so the shard
        // pool — not a single caller — is the measured resource.
        let chunk = ENTITIES / PRODUCERS;
        group.throughput(Throughput::Elements((ENTITIES * ROUNDS) as u64));
        group.bench_function(
            BenchmarkId::new("samples_per_sec", format!("{shards}_shards")),
            |b| {
                b.iter(|| {
                    std::thread::scope(|scope| {
                        for p in 0..PRODUCERS {
                            let service = &service;
                            let ids = &ids[p * chunk..(p + 1) * chunk];
                            let samples = &samples[p * chunk..(p + 1) * chunk];
                            scope.spawn(move || {
                                for _ in 0..ROUNDS {
                                    for (id, sample) in ids.iter().zip(samples) {
                                        service
                                            .ingest(black_box(id), black_box(sample.clone()))
                                            .expect("ingest");
                                    }
                                }
                            });
                        }
                    });
                    service.flush().expect("flush");
                });
            },
        );
    }
    group.finish();
}

fn bench_forecast_fanout(c: &mut Criterion) {
    let frames = bootstrap_frames();
    let mut group = c.benchmark_group("serving_forecast");
    group.sample_size(10);
    for shards in [1usize, 4] {
        let (service, ids) = fitted_service(shards, &frames);
        let refs: Vec<&str> = ids.iter().map(String::as_str).collect();
        group.throughput(Throughput::Elements(ENTITIES as u64));
        group.bench_function(
            BenchmarkId::new("batch_64", format!("{shards}_shards")),
            |b| {
                b.iter(|| {
                    let results = service.forecast_many(black_box(&refs));
                    assert_eq!(results.len(), ENTITIES);
                    results
                });
            },
        );
    }
    group.finish();
}

/// Degraded-mode overhead: the same ingest workload with 10% of the fleet
/// streaming NaN-poisoned samples (repaired at the shard boundary) versus a
/// clean fleet. The delta is the price of shard-boundary validation plus
/// repair and fallback bookkeeping on the poisoned entities.
fn bench_degraded_mode(c: &mut Criterion) {
    let frames = bootstrap_frames();
    let samples = samples_for(&frames);
    let mut group = c.benchmark_group("serving_degraded");
    group.sample_size(10);
    let shards = 4usize;
    let chunk = ENTITIES / PRODUCERS;
    for poisoned_pct in [0usize, 10] {
        let faults = 100usize.checked_div(poisoned_pct).map(|stride| {
            let mut plan = FaultPlan::seeded(17);
            // Poison every sample of every 10th entity — 10% of the fleet.
            for i in (0..ENTITIES).step_by(stride) {
                plan = plan.poison_entity(&format!("container_{i:03}"), 1.0);
            }
            plan
        });
        let (service, ids) = fitted_service_with(shards, &frames, faults);
        group.throughput(Throughput::Elements((ENTITIES * ROUNDS) as u64));
        group.bench_function(
            BenchmarkId::new("samples_per_sec", format!("{poisoned_pct}pct_poisoned")),
            |b| {
                b.iter(|| {
                    std::thread::scope(|scope| {
                        for p in 0..PRODUCERS {
                            let service = &service;
                            let ids = &ids[p * chunk..(p + 1) * chunk];
                            let samples = &samples[p * chunk..(p + 1) * chunk];
                            scope.spawn(move || {
                                for _ in 0..ROUNDS {
                                    for (id, sample) in ids.iter().zip(samples) {
                                        service
                                            .ingest(black_box(id), black_box(sample.clone()))
                                            .expect("ingest");
                                    }
                                }
                            });
                        }
                    });
                    service.flush().expect("flush");
                });
            },
        );
        if poisoned_pct > 0 {
            let stats = service.stats();
            assert!(
                stats.total_repaired_samples() > 0,
                "fault plan never fired; the degraded benchmark measured nothing"
            );
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_ingest_scaling,
    bench_forecast_fanout,
    bench_degraded_mode
);
criterion_main!(benches);
