//! End-to-end data-path benchmarks: trace generation, correlation
//! screening, data expansion, window construction and the full Algorithm-1
//! `prepare` step.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cloudtrace::{ContainerConfig, Trace, TraceConfig, WorkloadClass};
use rptcn::{prepare, PipelineConfig, Scenario};
use timeseries::{correlation_matrix, make_windows, Expansion, MinMaxScaler};

fn container_frame(steps: usize) -> timeseries::TimeSeriesFrame {
    cloudtrace::container::generate_container(
        &ContainerConfig::new(WorkloadClass::HighDynamic, steps, 5).with_diurnal_period(500),
    )
}

fn bench_trace_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_generation");
    group.sample_size(10);
    group.bench_function("container_3000_steps", |bench| {
        bench.iter(|| {
            cloudtrace::container::generate_container(
                &ContainerConfig::new(WorkloadClass::HighDynamic, 3000, black_box(5))
                    .with_diurnal_period(720),
            )
        });
    });
    group.bench_function("fleet_10x3_1000_steps", |bench| {
        bench.iter(|| {
            Trace::generate(TraceConfig {
                num_machines: 10,
                containers_per_machine: 3,
                steps: 1000,
                ..TraceConfig::default()
            })
        });
    });
    group.finish();
}

fn bench_preprocessing(c: &mut Criterion) {
    let frame = container_frame(3000);
    let mut group = c.benchmark_group("preprocessing");
    group.bench_function("pcc_matrix_8x3000", |bench| {
        bench.iter(|| correlation_matrix(black_box(&frame)));
    });
    group.bench_function("minmax_fit_transform", |bench| {
        bench.iter(|| MinMaxScaler::fit(black_box(&frame)).transform(&frame));
    });
    group.bench_function("horizontal_expansion_x3", |bench| {
        bench.iter(|| {
            Expansion::Horizontal { copies: 3 }
                .apply(black_box(&frame))
                .unwrap()
        });
    });
    let scaled = MinMaxScaler::fit(&frame).transform(&frame);
    group.bench_function("make_windows_w30", |bench| {
        bench.iter(|| make_windows(black_box(&scaled), "cpu_util_percent", 30, 1).unwrap());
    });
    group.finish();
}

fn bench_full_prepare(c: &mut Criterion) {
    let frame = container_frame(3000);
    let mut group = c.benchmark_group("algorithm1_prepare");
    group.sample_size(10);
    for scenario in [Scenario::Uni, Scenario::Mul, Scenario::MulExp] {
        group.bench_function(scenario.label(), |bench| {
            let cfg = PipelineConfig {
                scenario,
                ..Default::default()
            };
            bench.iter(|| prepare(black_box(&frame), &cfg).unwrap());
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_trace_generation,
    bench_preprocessing,
    bench_full_prepare
);
criterion_main!(benches);
