//! Property-based tests for the trace generator: every generated entity
//! must satisfy the structural invariants the downstream pipeline assumes,
//! for any seed and workload class.

use cloudtrace::{ContainerConfig, MachineConfig, WorkloadClass};
use proptest::prelude::*;

fn class(idx: usize) -> WorkloadClass {
    [
        WorkloadClass::OnlineService,
        WorkloadClass::BatchJob,
        WorkloadClass::HighDynamic,
    ][idx % 3]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn containers_are_always_valid(seed in 0u64..10_000, class_idx in 0usize..3, steps in 200usize..800) {
        let f = cloudtrace::container::generate_container(
            &ContainerConfig::new(class(class_idx), steps, seed).with_diurnal_period(200),
        );
        prop_assert_eq!(f.len(), steps);
        prop_assert_eq!(f.num_columns(), 8);
        prop_assert!(f.is_clean());
        for j in 0..8 {
            for &v in f.column_at(j) {
                prop_assert!((0.0..=1.0).contains(&v), "indicator out of [0,1]: {v}");
            }
        }
        // CPU must actually vary — a constant trace breaks correlation
        // screening downstream.
        prop_assert!(tensor::stats::std_dev(f.column("cpu_util_percent").unwrap()) > 1e-3);
    }

    #[test]
    fn machines_are_always_valid(seed in 0u64..10_000, mean in 0.15f32..0.7, steps in 200usize..800) {
        let f = cloudtrace::machine::generate_machine(
            &MachineConfig::new(steps, seed).with_mean_util(mean).with_diurnal_period(200),
        );
        prop_assert_eq!(f.len(), steps);
        prop_assert!(f.is_clean());
        let cpu_mean = tensor::stats::mean(f.column("cpu_util_percent").unwrap()) as f32;
        // Long-run mean stays within a broad band of the target.
        prop_assert!((cpu_mean - mean).abs() < 0.25, "target {mean} got {cpu_mean}");
    }

    #[test]
    fn mutation_is_monotone_nondecreasing_in_effect(seed in 0u64..5_000) {
        // A larger mutation height must produce a larger (or equal) level
        // shift in the generated CPU.
        let shift = |height: f32| -> f64 {
            let f = cloudtrace::container::generate_container(
                &ContainerConfig::new(WorkloadClass::OnlineService, 600, seed)
                    .with_diurnal_period(200)
                    .with_mutation(400, height),
            );
            let cpu = f.column("cpu_util_percent").unwrap();
            tensor::stats::mean(&cpu[430..590]) - tensor::stats::mean(&cpu[200..390])
        };
        let small = shift(0.1);
        let large = shift(0.45);
        prop_assert!(large >= small - 0.05, "mutation effect not monotone: {small} vs {large}");
    }

    #[test]
    fn activity_indicators_track_cpu(seed in 0u64..5_000) {
        let f = cloudtrace::container::generate_container(
            &ContainerConfig::new(WorkloadClass::HighDynamic, 1500, seed).with_diurnal_period(300),
        );
        let cpu = f.column("cpu_util_percent").unwrap();
        for name in ["mpki", "cpi", "mem_gps"] {
            let r = tensor::stats::pearson(f.column(name).unwrap(), cpu);
            prop_assert!(r > 0.3, "{name} decoupled from cpu: pcc {r}");
        }
    }

    #[test]
    fn interference_factors_are_monotone(load_a in 0.0f32..1.0, load_b in 0.0f32..1.0) {
        let m = cloudtrace::InterferenceModel::default();
        let (lo, hi) = if load_a <= load_b { (load_a, load_b) } else { (load_b, load_a) };
        prop_assert!(m.cpi_factor(lo) <= m.cpi_factor(hi));
        prop_assert!(m.mpki_factor(lo) <= m.mpki_factor(hi));
        prop_assert!(m.cpi_factor(lo) >= 1.0);
    }
}
