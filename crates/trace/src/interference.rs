//! Co-location interference model.
//!
//! The paper (and the authors' prior work on hardware-counter interference,
//! ref [19]) observes that containers sharing a host see their CPI and MPKI
//! inflate as the host gets busier — contention on caches and memory
//! bandwidth. We model that with a smooth superlinear factor applied to the
//! microarchitectural indicators of every co-located container.

/// Interference intensity knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InterferenceModel {
    /// Strength of the quadratic CPI inflation term.
    pub cpi_alpha: f32,
    /// Strength of the quadratic MPKI inflation term.
    pub mpki_alpha: f32,
}

impl Default for InterferenceModel {
    fn default() -> Self {
        // Calibrated so a fully-loaded host inflates CPI by ~45 % and MPKI
        // by ~60 % — in the range reported for co-located latency-critical +
        // batch workloads.
        Self {
            cpi_alpha: 0.45,
            mpki_alpha: 0.6,
        }
    }
}

impl InterferenceModel {
    /// Multiplicative CPI factor at host load `load ∈ [0, 1]`.
    pub fn cpi_factor(&self, load: f32) -> f32 {
        1.0 + self.cpi_alpha * load.clamp(0.0, 1.0).powi(2)
    }

    /// Multiplicative MPKI factor at host load `load ∈ [0, 1]`.
    pub fn mpki_factor(&self, load: f32) -> f32 {
        1.0 + self.mpki_alpha * load.clamp(0.0, 1.0).powi(2)
    }

    /// Apply the CPI factor elementwise along a host-load series.
    pub fn inflate_cpi(&self, cpi: &mut [f32], host_load: &[f32]) {
        assert_eq!(cpi.len(), host_load.len(), "series length mismatch");
        for (c, &l) in cpi.iter_mut().zip(host_load) {
            *c *= self.cpi_factor(l);
        }
    }

    /// Apply the MPKI factor elementwise along a host-load series.
    pub fn inflate_mpki(&self, mpki: &mut [f32], host_load: &[f32]) {
        assert_eq!(mpki.len(), host_load.len(), "series length mismatch");
        for (m, &l) in mpki.iter_mut().zip(host_load) {
            *m *= self.mpki_factor(l);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_host_leaves_counters_unchanged() {
        let m = InterferenceModel::default();
        assert_eq!(m.cpi_factor(0.0), 1.0);
        assert_eq!(m.mpki_factor(0.0), 1.0);
    }

    #[test]
    fn factors_grow_superlinearly() {
        let m = InterferenceModel::default();
        let low = m.cpi_factor(0.3) - 1.0;
        let high = m.cpi_factor(0.9) - 1.0;
        assert!(high > 3.0 * low, "not superlinear: {low} -> {high}");
        assert!((m.cpi_factor(1.0) - 1.45).abs() < 1e-6);
        assert!((m.mpki_factor(1.0) - 1.6).abs() < 1e-6);
    }

    #[test]
    fn load_is_clamped() {
        let m = InterferenceModel::default();
        assert_eq!(m.cpi_factor(2.0), m.cpi_factor(1.0));
        assert_eq!(m.cpi_factor(-1.0), 1.0);
    }

    #[test]
    fn inflate_applies_pointwise() {
        let m = InterferenceModel {
            cpi_alpha: 1.0,
            mpki_alpha: 1.0,
        };
        let mut cpi = vec![1.0f32, 1.0, 1.0];
        m.inflate_cpi(&mut cpi, &[0.0, 0.5, 1.0]);
        assert!((cpi[0] - 1.0).abs() < 1e-6);
        assert!((cpi[1] - 1.25).abs() < 1e-6);
        assert!((cpi[2] - 2.0).abs() < 1e-6);
    }
}
