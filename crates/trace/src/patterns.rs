//! Signal kernels composed by the trace generator.
//!
//! Each kernel produces a full series so stateful processes (AR noise,
//! Markov regimes, bursts) are straightforward. The generator sums kernels
//! and clamps into `[0, 1]`.

use tensor::Rng;

/// Sinusoidal diurnal cycle: `amplitude · sin(2πt/period + phase)`.
pub fn diurnal(len: usize, period: usize, amplitude: f32, phase: f32) -> Vec<f32> {
    assert!(period > 0);
    (0..len)
        .map(|t| {
            amplitude * ((2.0 * std::f32::consts::PI * t as f32 / period as f32) + phase).sin()
        })
        .collect()
}

/// First-order autoregressive noise: `x_t = φ·x_{t-1} + ε`, ε ~ N(0, σ).
/// φ near 1 gives the slow wandering real utilisation shows.
pub fn ar1_noise(len: usize, phi: f32, sigma: f32, rng: &mut Rng) -> Vec<f32> {
    assert!((0.0..1.0).contains(&phi), "ar1 phi must be in [0,1)");
    let mut out = Vec::with_capacity(len);
    let mut x = 0.0f32;
    for _ in 0..len {
        x = phi * x + rng.normal(0.0, sigma);
        out.push(x);
    }
    out
}

/// Poisson burst process: events arrive at `rate` per step; each adds a
/// spike of height ~ Exp(1/`mean_height`) decaying geometrically with
/// factor `decay`. Models the sudden load spikes of co-located batch jobs.
pub fn bursts(len: usize, rate: f64, mean_height: f32, decay: f32, rng: &mut Rng) -> Vec<f32> {
    assert!((0.0..1.0).contains(&decay));
    let mut out = vec![0.0f32; len];
    let mut level = 0.0f32;
    for slot in out.iter_mut() {
        let arrivals = rng.poisson(rate);
        for _ in 0..arrivals {
            level += rng.exponential(1.0 / mean_height.max(1e-6));
        }
        *slot = level;
        level *= decay;
    }
    out
}

/// Two-state Markov regime process: emits `low` or `high`, switching with
/// the given per-step probabilities. This is what makes container CPU
/// "high-dynamic": long quiet stretches punctuated by sustained busy plateaus.
pub fn regime_switch(
    len: usize,
    low: f32,
    high: f32,
    p_up: f64,
    p_down: f64,
    rng: &mut Rng,
) -> Vec<f32> {
    let mut out = Vec::with_capacity(len);
    let mut busy = false;
    for _ in 0..len {
        if busy {
            if rng.chance(p_down) {
                busy = false;
            }
        } else if rng.chance(p_up) {
            busy = true;
        }
        out.push(if busy { high } else { low });
    }
    out
}

/// A persistent step change (mutation point) of `height` starting at `at`,
/// with a short linear ramp of `ramp` steps. Fig. 8's machine shows exactly
/// this shape: an abrupt rise around sample 350 that then stays high.
pub fn mutation(len: usize, at: usize, height: f32, ramp: usize) -> Vec<f32> {
    (0..len)
        .map(|t| {
            if t < at {
                0.0
            } else if ramp > 0 && t < at + ramp {
                height * (t - at + 1) as f32 / ramp as f32
            } else {
                height
            }
        })
        .collect()
}

/// Bounded random-walk drift, reflecting at ±`bound`.
pub fn random_walk(len: usize, step_sigma: f32, bound: f32, rng: &mut Rng) -> Vec<f32> {
    let mut out = Vec::with_capacity(len);
    let mut x = 0.0f32;
    for _ in 0..len {
        x += rng.normal(0.0, step_sigma);
        if x > bound {
            x = 2.0 * bound - x;
        }
        if x < -bound {
            x = -2.0 * bound - x;
        }
        out.push(x);
    }
    out
}

/// Sum any number of component series and clamp each sample into
/// `[lo, hi]` — the composition step of the generator.
pub fn compose_clamped(base: f32, components: &[&[f32]], lo: f32, hi: f32) -> Vec<f32> {
    let len = components.iter().map(|c| c.len()).min().unwrap_or(0);
    (0..len)
        .map(|t| {
            let sum: f32 = base + components.iter().map(|c| c[t]).sum::<f32>();
            sum.clamp(lo, hi)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diurnal_has_period() {
        let d = diurnal(200, 50, 0.3, 0.0);
        for t in 0..100 {
            assert!((d[t] - d[t + 50]).abs() < 1e-5);
        }
        assert!(d.iter().all(|&v| v.abs() <= 0.3 + 1e-6));
        assert_eq!(d[0], 0.0);
    }

    #[test]
    fn ar1_noise_is_autocorrelated() {
        let mut rng = Rng::seed_from(1);
        let x = ar1_noise(5000, 0.95, 0.1, &mut rng);
        let ac = tensor::stats::autocorrelation(&x, 1);
        assert!(
            ac[1] > 0.8,
            "AR(0.95) lag-1 autocorrelation {:.3} too low",
            ac[1]
        );
        let mut rng = Rng::seed_from(2);
        let white = ar1_noise(5000, 0.0, 0.1, &mut rng);
        let ac_white = tensor::stats::autocorrelation(&white, 1);
        assert!(ac_white[1].abs() < 0.1);
    }

    #[test]
    fn bursts_are_nonnegative_and_decay() {
        let mut rng = Rng::seed_from(3);
        let b = bursts(2000, 0.01, 0.4, 0.9, &mut rng);
        assert!(b.iter().all(|&v| v >= 0.0));
        let peak = b.iter().copied().fold(0.0f32, f32::max);
        assert!(peak > 0.1, "no bursts fired");
        // Sparse: most steps are near zero.
        let quiet = b.iter().filter(|&&v| v < 0.05).count();
        assert!(quiet > b.len() / 2, "bursts not sparse: {quiet}");
    }

    #[test]
    fn regime_switch_emits_both_levels() {
        let mut rng = Rng::seed_from(4);
        let r = regime_switch(5000, 0.1, 0.8, 0.01, 0.02, &mut rng);
        let lows = r.iter().filter(|&&v| v == 0.1).count();
        let highs = r.iter().filter(|&&v| v == 0.8).count();
        assert_eq!(lows + highs, 5000);
        assert!(
            lows > 500 && highs > 500,
            "degenerate regimes: {lows}/{highs}"
        );
        // Dwell times are long (sustained plateaus, not flicker).
        let switches = r.windows(2).filter(|w| w[0] != w[1]).count();
        assert!(switches < 400, "too many switches: {switches}");
    }

    #[test]
    fn mutation_is_zero_before_and_flat_after() {
        let m = mutation(100, 30, 0.5, 10);
        assert!(m[..30].iter().all(|&v| v == 0.0));
        assert!((m[39] - 0.5).abs() < 1e-6);
        assert!(m[40..].iter().all(|&v| v == 0.5));
        // Ramp is monotone.
        for t in 30..40 {
            assert!(m[t] > m[t - 1]);
        }
    }

    #[test]
    fn mutation_without_ramp_is_a_step() {
        let m = mutation(10, 5, 0.3, 0);
        assert_eq!(m[4], 0.0);
        assert_eq!(m[5], 0.3);
    }

    #[test]
    fn random_walk_respects_bound() {
        let mut rng = Rng::seed_from(5);
        let w = random_walk(10_000, 0.05, 0.3, &mut rng);
        assert!(w.iter().all(|&v| v.abs() <= 0.3 + 1e-5));
        // It actually moves around.
        let span =
            w.iter().copied().fold(f32::MIN, f32::max) - w.iter().copied().fold(f32::MAX, f32::min);
        assert!(span > 0.3);
    }

    #[test]
    fn compose_clamps_and_sums() {
        let a = vec![0.5f32, 0.9];
        let b = vec![0.4f32, 0.4];
        let out = compose_clamped(0.1, &[&a, &b], 0.0, 1.0);
        assert_eq!(out, vec![1.0, 1.0]);
        let out = compose_clamped(-1.0, &[&a], 0.0, 1.0);
        assert_eq!(out, vec![0.0, 0.0]);
    }
}
