//! Fleet-level trace generation: machines, the containers placed on them,
//! co-location interference and CSV export. This is the stand-in for
//! downloading Alibaba trace v2018.

use rayon::prelude::*;
use tensor::Rng;
use timeseries::TimeSeriesFrame;

use crate::container::{self, ContainerConfig, WorkloadClass};
use crate::interference::InterferenceModel;
use crate::machine::{self, MachineConfig};

/// Knobs for a synthetic cluster trace.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    pub num_machines: usize,
    pub containers_per_machine: usize,
    /// Number of samples per entity.
    pub steps: usize,
    /// Sampling interval in seconds (the paper uses 10 s).
    pub interval_secs: u32,
    /// Steps per diurnal period. With 10 s sampling a day is 8640 steps;
    /// experiment-sized traces compress this so periodicity stays visible.
    pub diurnal_period: usize,
    /// Fraction of containers running online services (the rest split
    /// between batch and high-dynamic mixes).
    pub online_fraction: f64,
    pub interference: InterferenceModel,
    pub seed: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self {
            num_machines: 20,
            containers_per_machine: 4,
            steps: 4000,
            interval_secs: 10,
            diurnal_period: 720, // two-hour "days" keep periodicity visible
            online_fraction: 0.4,
            interference: InterferenceModel::default(),
            seed: 2018,
        }
    }
}

impl TraceConfig {
    /// A small config for unit tests and doc examples.
    pub fn tiny() -> Self {
        Self {
            num_machines: 3,
            containers_per_machine: 2,
            steps: 600,
            ..Self::default()
        }
    }
}

/// One monitored entity (machine or container) of the trace.
#[derive(Debug, Clone)]
pub struct EntityTrace {
    /// Identifier in the trace's naming convention (`m_…` / `c_…`).
    pub id: String,
    /// Index of the hosting machine, for containers.
    pub host: Option<usize>,
    pub frame: TimeSeriesFrame,
}

/// A generated cluster trace.
#[derive(Debug, Clone)]
pub struct Trace {
    pub config: TraceConfig,
    pub machines: Vec<EntityTrace>,
    pub containers: Vec<EntityTrace>,
}

impl Trace {
    /// Generate a full trace. Machines are generated in parallel; every
    /// entity derives its randomness from a forked, per-entity seed, so the
    /// output is identical regardless of thread scheduling.
    pub fn generate(config: TraceConfig) -> Trace {
        let mut seeder = Rng::seed_from(config.seed);
        // Pre-draw per-machine seeds and mean utilisations sequentially for
        // determinism, then fan the heavy generation out with rayon.
        let machine_plans: Vec<(u64, f32, u64)> = (0..config.num_machines)
            .map(|_| {
                (
                    seeder.fork_seed(),
                    machine::sample_mean_util(&mut seeder),
                    seeder.fork_seed(),
                )
            })
            .collect();

        let per_machine: Vec<(EntityTrace, Vec<EntityTrace>)> = machine_plans
            .par_iter()
            .enumerate()
            .map(|(mi, &(mseed, mean_util, cseed))| {
                let mcfg = MachineConfig {
                    steps: config.steps,
                    diurnal_period: config.diurnal_period,
                    mean_util,
                    mutation: None,
                    seed: mseed,
                };
                let mframe = machine::generate_machine(&mcfg);
                let host_load = mframe.column("cpu_util_percent").unwrap().to_vec();

                let mut crng = Rng::seed_from(cseed);
                let containers = (0..config.containers_per_machine)
                    .map(|ci| {
                        let class = draw_class(config.online_fraction, &mut crng);
                        let ccfg = ContainerConfig {
                            class,
                            steps: config.steps,
                            diurnal_period: config.diurnal_period,
                            mutation: None,
                            seed: crng.fork_seed(),
                        };
                        let mut frame = container::generate_container(&ccfg);
                        // Co-location interference from the host's load.
                        config
                            .interference
                            .inflate_cpi(frame.column_mut("cpi").unwrap(), &host_load);
                        config
                            .interference
                            .inflate_mpki(frame.column_mut("mpki").unwrap(), &host_load);
                        clamp_unit(frame.column_mut("cpi").unwrap());
                        clamp_unit(frame.column_mut("mpki").unwrap());
                        EntityTrace {
                            id: format!("c_{}", mi * config.containers_per_machine + ci),
                            host: Some(mi),
                            frame,
                        }
                    })
                    .collect();

                (
                    EntityTrace {
                        id: format!("m_{mi}"),
                        host: None,
                        frame: mframe,
                    },
                    containers,
                )
            })
            .collect();

        let mut machines = Vec::with_capacity(config.num_machines);
        let mut containers = Vec::new();
        for (m, cs) in per_machine {
            machines.push(m);
            containers.extend(cs);
        }
        Trace {
            config,
            machines,
            containers,
        }
    }

    /// Fleet CPU matrix `[steps, num_machines]` for the Fig. 2/3 analyses.
    pub fn machine_cpu_matrix(&self) -> Vec<Vec<f32>> {
        self.machines
            .iter()
            .map(|m| m.frame.column("cpu_util_percent").unwrap().to_vec())
            .collect()
    }

    /// Duration covered by the trace, in seconds.
    pub fn duration_secs(&self) -> u64 {
        self.config.steps as u64 * self.config.interval_secs as u64
    }

    /// Write every entity as `<dir>/<id>.csv`.
    pub fn write_csv_dir(&self, dir: &std::path::Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        for e in self.machines.iter().chain(&self.containers) {
            e.frame
                .write_csv(&dir.join(format!("{}.csv", e.id)))
                .map_err(|fe| std::io::Error::other(fe.to_string()))?;
        }
        Ok(())
    }
}

fn clamp_unit(col: &mut [f32]) {
    for v in col {
        *v = v.clamp(0.0, 1.0);
    }
}

fn draw_class(online_fraction: f64, rng: &mut Rng) -> WorkloadClass {
    if rng.chance(online_fraction) {
        WorkloadClass::OnlineService
    } else if rng.chance(0.5) {
        WorkloadClass::BatchJob
    } else {
        WorkloadClass::HighDynamic
    }
}

/// Convenience: seed-forking helper so parallel entity generation stays
/// deterministic.
trait ForkSeed {
    fn fork_seed(&mut self) -> u64;
}

impl ForkSeed for Rng {
    fn fork_seed(&mut self) -> u64 {
        // Draw a 64-bit seed through two uniform draws.
        let hi = (self.uniform(0.0, 1.0) as f64 * u32::MAX as f64) as u64;
        let lo = (self.uniform(0.0, 1.0) as f64 * u32::MAX as f64) as u64;
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_produces_expected_counts() {
        let t = Trace::generate(TraceConfig::tiny());
        assert_eq!(t.machines.len(), 3);
        assert_eq!(t.containers.len(), 6);
        for e in t.machines.iter().chain(&t.containers) {
            assert_eq!(e.frame.len(), 600);
            assert_eq!(e.frame.num_columns(), 8);
            assert!(e.frame.is_clean());
        }
        assert_eq!(t.duration_secs(), 6000);
    }

    #[test]
    fn containers_know_their_host() {
        let t = Trace::generate(TraceConfig::tiny());
        for (i, c) in t.containers.iter().enumerate() {
            assert_eq!(c.host, Some(i / 2));
            assert!(c.id.starts_with("c_"));
        }
        assert!(t.machines.iter().all(|m| m.host.is_none()));
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Trace::generate(TraceConfig::tiny());
        let b = Trace::generate(TraceConfig::tiny());
        assert_eq!(a.machines[0].frame, b.machines[0].frame);
        assert_eq!(a.containers[3].frame, b.containers[3].frame);
        let c = Trace::generate(TraceConfig {
            seed: 99,
            ..TraceConfig::tiny()
        });
        assert_ne!(a.machines[0].frame, c.machines[0].frame);
    }

    #[test]
    fn fleet_is_mostly_underutilised() {
        let cfg = TraceConfig {
            num_machines: 40,
            steps: 800,
            ..TraceConfig::default()
        };
        let t = Trace::generate(cfg);
        let means: Vec<f64> = t
            .machine_cpu_matrix()
            .iter()
            .map(|cpu| tensor::stats::mean(cpu))
            .collect();
        let below_half = means.iter().filter(|&&m| m < 0.5).count();
        assert!(
            below_half as f64 / means.len() as f64 > 0.6,
            "only {below_half}/40 machines under 50% mean CPU"
        );
    }

    #[test]
    fn interference_raises_container_cpi_on_busy_hosts() {
        // Compare the same container seed with and without interference by
        // zeroing the model's strengths.
        let base_cfg = TraceConfig {
            interference: InterferenceModel {
                cpi_alpha: 0.0,
                mpki_alpha: 0.0,
            },
            ..TraceConfig::tiny()
        };
        let quiet = Trace::generate(base_cfg.clone());
        let noisy = Trace::generate(TraceConfig {
            interference: InterferenceModel {
                cpi_alpha: 2.0,
                mpki_alpha: 2.0,
            },
            ..base_cfg
        });
        let q_mean = tensor::stats::mean(quiet.containers[0].frame.column("cpi").unwrap());
        let n_mean = tensor::stats::mean(noisy.containers[0].frame.column("cpi").unwrap());
        assert!(
            n_mean > q_mean,
            "interference had no effect: {q_mean} vs {n_mean}"
        );
    }

    #[test]
    fn csv_export_roundtrip() {
        let t = Trace::generate(TraceConfig {
            num_machines: 1,
            containers_per_machine: 1,
            steps: 50,
            ..TraceConfig::tiny()
        });
        let dir = std::env::temp_dir().join("rptcn_trace_export");
        t.write_csv_dir(&dir).unwrap();
        let m = TimeSeriesFrame::read_csv(&dir.join("m_0.csv")).unwrap();
        assert_eq!(m.len(), 50);
        let orig_cpu = t.machines[0].frame.column("cpu_util_percent").unwrap();
        let read_cpu = m.column("cpu_util_percent").unwrap();
        for (a, b) in orig_cpu.iter().zip(read_cpu) {
            assert!((a - b).abs() < 1e-5);
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
