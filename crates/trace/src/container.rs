//! Per-container indicator synthesis.
//!
//! A container gets a CPU-utilisation series shaped by its workload class,
//! and the remaining seven Table-I indicators are derived with a correlation
//! structure calibrated to the paper's Fig. 7: `mpki`, `cpi` and `mem_gps`
//! track CPU closely (they are all activity-driven), network is moderately
//! coupled, and memory utilisation / disk I/O move mostly on their own.

use tensor::Rng;
use timeseries::TimeSeriesFrame;

use crate::indicators::Indicator;
use crate::patterns;

/// Workload archetypes observed in the Alibaba cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadClass {
    /// Latency-critical online service: diurnal with request noise.
    OnlineService,
    /// Throughput batch job: bursty with sustained busy plateaus.
    BatchJob,
    /// High-dynamic mix (the paper's focus): regime switches, bursts and
    /// mutation points with no stable periodicity.
    HighDynamic,
}

/// Configuration for one synthetic container.
#[derive(Debug, Clone)]
pub struct ContainerConfig {
    pub class: WorkloadClass,
    /// Number of 10 s samples.
    pub steps: usize,
    /// Steps per diurnal period (8640 for a day at 10 s; tests use less).
    pub diurnal_period: usize,
    /// Optional persistent step change `(at, height)` — a mutation point.
    pub mutation: Option<(usize, f32)>,
    pub seed: u64,
}

impl ContainerConfig {
    pub fn new(class: WorkloadClass, steps: usize, seed: u64) -> Self {
        Self {
            class,
            steps,
            diurnal_period: 8640,
            mutation: None,
            seed,
        }
    }

    pub fn with_mutation(mut self, at: usize, height: f32) -> Self {
        self.mutation = Some((at, height));
        self
    }

    pub fn with_diurnal_period(mut self, period: usize) -> Self {
        self.diurnal_period = period;
        self
    }
}

/// Generate the container's CPU-utilisation series (in `[0, 1]`) along with
/// its *driver*: the sum of the abrupt components (regimes, bursts,
/// mutation) before smoothing noise is added. The driver is what the
/// activity-coupled indicators observe with a small lead — in real systems
/// the work arrives (requests queue, working sets migrate, memory bandwidth
/// ramps) a few sampling intervals before CPU saturates, which is exactly
/// why the paper's multivariate input helps at mutation points.
pub fn cpu_series_with_driver(cfg: &ContainerConfig, rng: &mut Rng) -> (Vec<f32>, Vec<f32>) {
    let n = cfg.steps;
    let base = match cfg.class {
        WorkloadClass::OnlineService => rng.uniform(0.25, 0.45),
        WorkloadClass::BatchJob => rng.uniform(0.15, 0.3),
        WorkloadClass::HighDynamic => rng.uniform(0.15, 0.35),
    };
    let phase = rng.uniform(0.0, std::f32::consts::TAU);
    let noise = patterns::ar1_noise(n, 0.9, 0.03, rng);
    let mutation = match cfg.mutation {
        Some((at, height)) => patterns::mutation(n, at, height, 8),
        None => vec![0.0; n],
    };
    match cfg.class {
        WorkloadClass::OnlineService => {
            let diurnal = patterns::diurnal(n, cfg.diurnal_period, rng.uniform(0.1, 0.2), phase);
            let small_bursts = patterns::bursts(n, 0.002, 0.15, 0.85, rng);
            let cpu = patterns::compose_clamped(
                base,
                &[&diurnal, &noise, &small_bursts, &mutation],
                0.01,
                1.0,
            );
            let driver = sum_components(&[&small_bursts, &mutation]);
            (cpu, driver)
        }
        WorkloadClass::BatchJob => {
            let regimes =
                patterns::regime_switch(n, 0.0, rng.uniform(0.35, 0.55), 0.01, 0.015, rng);
            let spikes = patterns::bursts(n, 0.008, 0.3, 0.9, rng);
            let cpu =
                patterns::compose_clamped(base, &[&regimes, &spikes, &noise, &mutation], 0.01, 1.0);
            let driver = sum_components(&[&regimes, &spikes, &mutation]);
            (cpu, driver)
        }
        WorkloadClass::HighDynamic => {
            let regimes = patterns::regime_switch(n, 0.0, rng.uniform(0.3, 0.5), 0.012, 0.018, rng);
            let spikes = patterns::bursts(n, 0.01, 0.35, 0.88, rng);
            let drift = patterns::random_walk(n, 0.01, 0.15, rng);
            let cpu = patterns::compose_clamped(
                base,
                &[&regimes, &spikes, &drift, &noise, &mutation],
                0.01,
                1.0,
            );
            let driver = sum_components(&[&regimes, &spikes, &mutation]);
            (cpu, driver)
        }
    }
}

/// Generate only the CPU series.
pub fn cpu_series(cfg: &ContainerConfig, rng: &mut Rng) -> Vec<f32> {
    cpu_series_with_driver(cfg, rng).0
}

fn sum_components(parts: &[&[f32]]) -> Vec<f32> {
    let n = parts.iter().map(|p| p.len()).min().unwrap_or(0);
    (0..n)
        .map(|t| parts.iter().map(|p| p[t]).sum::<f32>().clamp(0.0, 1.0))
        .collect()
}

/// Derive the remaining indicators from a CPU series (and optionally its
/// abrupt-component *driver*) and return the full eight-column frame.
///
/// The derivation constants set the |PCC|-with-CPU ordering the paper's
/// Fig. 7 reports: mpki > cpi > mem_gps ≫ net ≫ mem_util, disk_io. When a
/// driver is supplied, the activity counters observe it a few steps early
/// (`mem_gps` leads most, then `mpki`, then `cpi`): working sets and memory
/// traffic ramp before CPU saturates, so a multivariate model can
/// anticipate regime switches that are invisible to univariate history —
/// the mechanism behind the paper's Mul/Mul-Exp gains.
pub fn derive_indicators(
    cpu: &[f32],
    driver: Option<&[f32]>,
    diurnal_period: usize,
    rng: &mut Rng,
) -> TimeSeriesFrame {
    let n = cpu.len();
    // Activity signal seen `lead` steps ahead of its effect on CPU.
    let lead_signal = |lead: usize| -> Vec<f32> {
        match driver {
            Some(d) => (0..n).map(|t| d[(t + lead).min(n - 1)]).collect(),
            None => cpu.to_vec(),
        }
    };
    let couple = |gain: f32,
                  driver_gain: f32,
                  lead: usize,
                  sigma: f32,
                  offset: f32,
                  rng: &mut Rng|
     -> Vec<f32> {
        let noise = patterns::ar1_noise(n, 0.8, sigma, rng);
        let led = lead_signal(lead);
        cpu.iter()
            .zip(&led)
            .zip(&noise)
            .map(|((&c, &d), &e)| (offset + gain * c + driver_gain * d + e).clamp(0.0, 1.0))
            .collect()
    };

    // Activity-driven microarchitectural counters: tight coupling with a
    // small forward-looking component.
    let mpki = couple(0.55, 0.25, 2, 0.030, 0.05, rng);
    let cpi = couple(0.50, 0.20, 1, 0.045, 0.15, rng);
    let mem_gps = couple(0.40, 0.30, 4, 0.060, 0.10, rng);

    // Network: moderate coupling plus its own diurnal phase.
    let net_phase = rng.uniform(0.0, std::f32::consts::TAU);
    let net_diurnal = patterns::diurnal(n, diurnal_period.max(1), 0.15, net_phase);
    let mut net_in = couple(0.3, 0.0, 0, 0.10, 0.2, rng);
    let mut net_out = couple(0.25, 0.0, 0, 0.10, 0.2, rng);
    for t in 0..n {
        net_in[t] = (net_in[t] + net_diurnal[t]).clamp(0.0, 1.0);
        net_out[t] = (net_out[t] + net_diurnal[t] * 0.8).clamp(0.0, 1.0);
    }

    // Memory utilisation: a slow, mostly independent ramp (resident sets
    // grow and shrink with job lifecycles, not instantaneous CPU activity).
    let mem_walk = patterns::random_walk(n, 0.004, 0.25, rng);
    let mem_base = rng.uniform(0.35, 0.6);
    let mem_util: Vec<f32> = (0..n)
        .map(|t| (mem_base + mem_walk[t] + 0.08 * cpu[t]).clamp(0.0, 1.0))
        .collect();

    // Disk: sparse independent bursts.
    let disk_bursts = patterns::bursts(n, 0.006, 0.4, 0.8, rng);
    let disk_io: Vec<f32> = (0..n)
        .map(|t| (0.05 + disk_bursts[t] + 0.05 * cpu[t]).clamp(0.0, 1.0))
        .collect();

    TimeSeriesFrame::from_columns(&[
        (Indicator::CpuUtilPercent.name(), cpu.to_vec()),
        (Indicator::MemUtilPercent.name(), mem_util),
        (Indicator::Cpi.name(), cpi),
        (Indicator::MemGps.name(), mem_gps),
        (Indicator::Mpki.name(), mpki),
        (Indicator::NetIn.name(), net_in),
        (Indicator::NetOut.name(), net_out),
        (Indicator::DiskIoPercent.name(), disk_io),
    ])
    .expect("indicator frame")
}

/// Generate a complete container trace frame.
pub fn generate_container(cfg: &ContainerConfig) -> TimeSeriesFrame {
    let mut rng = Rng::seed_from(cfg.seed);
    let (cpu, driver) = cpu_series_with_driver(cfg, &mut rng);
    derive_indicators(&cpu, Some(&driver), cfg.diurnal_period, &mut rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensor::stats::pearson;

    fn frame(class: WorkloadClass, seed: u64) -> TimeSeriesFrame {
        generate_container(&ContainerConfig::new(class, 3000, seed).with_diurnal_period(600))
    }

    #[test]
    fn all_indicators_present_and_bounded() {
        let f = frame(WorkloadClass::HighDynamic, 1);
        assert_eq!(f.num_columns(), 8);
        assert_eq!(f.len(), 3000);
        assert!(f.is_clean());
        for j in 0..8 {
            assert!(f.column_at(j).iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn correlation_ranking_matches_fig7() {
        // Averaged over seeds, the activity indicators must out-correlate
        // the loosely-coupled ones.
        let mut top_ok = 0;
        for seed in 0..5 {
            let f = frame(WorkloadClass::HighDynamic, seed);
            let cpu = f.column("cpu_util_percent").unwrap();
            let r = |name: &str| pearson(f.column(name).unwrap(), cpu).abs();
            let strong = [r("mpki"), r("cpi"), r("mem_gps")];
            let weak = [r("mem_util_percent"), r("disk_io_percent")];
            let min_strong = strong.iter().cloned().fold(f64::MAX, f64::min);
            let max_weak = weak.iter().cloned().fold(f64::MIN, f64::max);
            if min_strong > max_weak && min_strong > 0.5 {
                top_ok += 1;
            }
        }
        assert!(
            top_ok >= 4,
            "Fig.7 correlation structure held in only {top_ok}/5 seeds"
        );
    }

    #[test]
    fn mutation_creates_persistent_shift() {
        let cfg = ContainerConfig::new(WorkloadClass::OnlineService, 1000, 7)
            .with_diurnal_period(500)
            .with_mutation(600, 0.4);
        let f = generate_container(&cfg);
        let cpu = f.column("cpu_util_percent").unwrap();
        let before = tensor::stats::mean(&cpu[300..590]);
        let after = tensor::stats::mean(&cpu[650..950]);
        assert!(
            after - before > 0.2,
            "mutation invisible: {before} -> {after}"
        );
    }

    #[test]
    fn high_dynamic_is_more_volatile_than_online() {
        let mut hd_std = 0.0;
        let mut os_std = 0.0;
        for seed in 0..4 {
            hd_std += tensor::stats::std_dev(
                frame(WorkloadClass::HighDynamic, 100 + seed)
                    .column("cpu_util_percent")
                    .unwrap(),
            );
            os_std += tensor::stats::std_dev(
                frame(WorkloadClass::OnlineService, 200 + seed)
                    .column("cpu_util_percent")
                    .unwrap(),
            );
        }
        assert!(
            hd_std > os_std,
            "high-dynamic ({hd_std}) not more volatile than online ({os_std})"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = frame(WorkloadClass::BatchJob, 42);
        let b = frame(WorkloadClass::BatchJob, 42);
        assert_eq!(a, b);
        let c = frame(WorkloadClass::BatchJob, 43);
        assert_ne!(a, c);
    }
}

#[cfg(test)]
mod lead_tests {
    use super::*;
    use tensor::stats::pearson;

    /// Cross-correlation of `xs` against `ys` shifted `lead` steps into the
    /// future: corr(xs[t], ys[t + lead]).
    fn lead_correlation(xs: &[f32], ys: &[f32], lead: usize) -> f64 {
        let n = xs.len() - lead;
        pearson(&xs[..n], &ys[lead..])
    }

    #[test]
    fn mem_gps_leads_cpu_regime_shifts() {
        // The generator gives mem_gps a 4-step preview of the abrupt
        // driver, so its correlation with *future* CPU must beat its
        // correlation with *past* CPU. Average over seeds to kill noise.
        let mut forward = 0.0;
        let mut backward = 0.0;
        for seed in 0..6 {
            let f = generate_container(
                &ContainerConfig::new(WorkloadClass::HighDynamic, 3000, 400 + seed)
                    .with_diurnal_period(600),
            );
            let cpu = f.column("cpu_util_percent").unwrap();
            let gps = f.column("mem_gps").unwrap();
            forward += lead_correlation(gps, cpu, 3);
            backward += lead_correlation(cpu, gps, 3);
        }
        assert!(
            forward > backward,
            "mem_gps does not lead cpu: forward {forward:.3} vs backward {backward:.3}"
        );
    }

    #[test]
    fn derive_without_driver_has_no_lead() {
        // Without a driver the couple() falls back to contemporaneous CPU,
        // so forward and backward correlations are symmetric within noise.
        let mut diff = 0.0;
        for seed in 0..6 {
            let mut rng = Rng::seed_from(500 + seed);
            let cfg = ContainerConfig::new(WorkloadClass::HighDynamic, 3000, 500 + seed)
                .with_diurnal_period(600);
            let cpu = cpu_series(&cfg, &mut rng);
            let f = derive_indicators(&cpu, None, 600, &mut rng);
            let gps = f.column("mem_gps").unwrap();
            let cpu_col = f.column("cpu_util_percent").unwrap();
            diff += lead_correlation(gps, cpu_col, 3) - lead_correlation(cpu_col, gps, 3);
        }
        assert!(
            diff.abs() < 0.25,
            "unexpected asymmetry without driver: {diff:.3}"
        );
    }
}
