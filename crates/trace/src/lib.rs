//! # cloudtrace — synthetic Alibaba-v2018-style cluster trace generator
//!
//! The paper evaluates on Alibaba cluster trace v2018, which is a gated
//! download. This crate generates the closest synthetic equivalent,
//! calibrated to the characteristics the paper itself establishes:
//!
//! * **Fleet statistics (§II, Figs 2–3)** — fleet-average CPU in the
//!   40–60 % band with diurnal periodicity; >80 % of machines under 50 %
//!   mean CPU.
//! * **Container dynamics (Fig 1)** — high-dynamic container CPU with
//!   regime switches, bursts and persistent mutation points; machine series
//!   smoother than container series.
//! * **Indicator set and correlations (Table I, Fig 7)** — the eight
//!   monitoring indicators with `mpki`, `cpi`, `mem_gps` tracking CPU most
//!   closely, network moderately coupled, memory/disk mostly independent.
//! * **Co-location interference (ref [19])** — CPI/MPKI inflation as a
//!   superlinear function of host load.
//!
//! Entry point: [`Trace::generate`] with a [`TraceConfig`]; individual
//! entities via [`container::generate_container`] /
//! [`machine::generate_machine`].

pub mod container;
pub mod indicators;
pub mod interference;
pub mod machine;
pub mod patterns;
#[allow(clippy::module_inception)]
mod trace;

pub use container::{ContainerConfig, WorkloadClass};
pub use indicators::Indicator;
pub use interference::InterferenceModel;
pub use machine::MachineConfig;
pub use trace::{EntityTrace, Trace, TraceConfig};
