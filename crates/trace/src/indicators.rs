//! The monitoring indicators of Alibaba trace v2018 (paper Table I).

/// One of the eight performance indicators the trace records per entity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Indicator {
    /// CPU utilisation percent (the prediction target in the paper).
    CpuUtilPercent,
    /// Memory utilisation percent.
    MemUtilPercent,
    /// Cycles per instruction.
    Cpi,
    /// Normalised memory bandwidth (GB/s).
    MemGps,
    /// Cache misses per kilo-instruction.
    Mpki,
    /// Normalised incoming network traffic.
    NetIn,
    /// Normalised outgoing network traffic.
    NetOut,
    /// Disk I/O utilisation percent.
    DiskIoPercent,
}

impl Indicator {
    /// All indicators in the canonical (Table I) order.
    pub const ALL: [Indicator; 8] = [
        Indicator::CpuUtilPercent,
        Indicator::MemUtilPercent,
        Indicator::Cpi,
        Indicator::MemGps,
        Indicator::Mpki,
        Indicator::NetIn,
        Indicator::NetOut,
        Indicator::DiskIoPercent,
    ];

    /// Column name as it appears in the trace CSVs.
    pub fn name(self) -> &'static str {
        match self {
            Indicator::CpuUtilPercent => "cpu_util_percent",
            Indicator::MemUtilPercent => "mem_util_percent",
            Indicator::Cpi => "cpi",
            Indicator::MemGps => "mem_gps",
            Indicator::Mpki => "mpki",
            Indicator::NetIn => "net_in",
            Indicator::NetOut => "net_out",
            Indicator::DiskIoPercent => "disk_io_percent",
        }
    }

    /// Human-readable meaning (Table I).
    pub fn meaning(self) -> &'static str {
        match self {
            Indicator::CpuUtilPercent => "cpu utilization percent",
            Indicator::MemUtilPercent => "memory utilization percent",
            Indicator::Cpi => "cycles per instruction",
            Indicator::MemGps => "normalized memory gigabyte per second",
            Indicator::Mpki => "misses per kilo instructions",
            Indicator::NetIn => "normalized incoming network traffic",
            Indicator::NetOut => "normalized outgoing network traffic",
            Indicator::DiskIoPercent => "disk io percent",
        }
    }
}

impl std::fmt::Display for Indicator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_unique_indicators() {
        let names: std::collections::HashSet<&str> =
            Indicator::ALL.iter().map(|i| i.name()).collect();
        assert_eq!(names.len(), 8);
    }

    #[test]
    fn cpu_is_first() {
        assert_eq!(Indicator::ALL[0], Indicator::CpuUtilPercent);
        assert_eq!(Indicator::ALL[0].name(), "cpu_util_percent");
    }

    #[test]
    fn meanings_are_nonempty() {
        for i in Indicator::ALL {
            assert!(!i.meaning().is_empty());
            assert_eq!(format!("{i}"), i.name());
        }
    }
}
