//! Per-machine indicator synthesis, calibrated to the fleet statistics the
//! paper establishes for Alibaba v2018 (§II, Figs 2–3):
//!
//! * fleet-average CPU stays in the 40–60 % band with visible diurnal
//!   periodicity;
//! * more than 80 % of machines sit below 50 % CPU most of the time;
//! * machine-level series are smoother than container series (aggregation
//!   washes out individual bursts) but still carry abrupt shifts when large
//!   batch jobs land.

use tensor::Rng;
use timeseries::TimeSeriesFrame;

use crate::container;
use crate::patterns;

/// Configuration for one synthetic machine.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    pub steps: usize,
    pub diurnal_period: usize,
    /// Long-run mean CPU utilisation target for this machine.
    pub mean_util: f32,
    /// Optional persistent step change `(at, height)`.
    pub mutation: Option<(usize, f32)>,
    pub seed: u64,
}

impl MachineConfig {
    pub fn new(steps: usize, seed: u64) -> Self {
        Self {
            steps,
            diurnal_period: 8640,
            mean_util: 0.42,
            mutation: None,
            seed,
        }
    }

    pub fn with_mean_util(mut self, mean: f32) -> Self {
        self.mean_util = mean;
        self
    }

    pub fn with_mutation(mut self, at: usize, height: f32) -> Self {
        self.mutation = Some((at, height));
        self
    }

    pub fn with_diurnal_period(mut self, period: usize) -> Self {
        self.diurnal_period = period;
        self
    }
}

/// Draw a machine's long-run mean utilisation for fleet generation. The
/// distribution (clipped normal centred at 0.40) reproduces Fig. 3's
/// ">80 % of machines below 50 % CPU".
pub fn sample_mean_util(rng: &mut Rng) -> f32 {
    rng.normal(0.40, 0.10).clamp(0.12, 0.85)
}

/// Generate the machine's CPU series along with its abrupt-component
/// driver (batch landings + mutation), which the activity indicators
/// observe slightly early — see [`container::derive_indicators`].
pub fn machine_cpu_series_with_driver(cfg: &MachineConfig, rng: &mut Rng) -> (Vec<f32>, Vec<f32>) {
    let n = cfg.steps;
    let phase = rng.uniform(0.0, std::f32::consts::TAU);
    // Aggregated load: pronounced diurnal cycle + slow AR wander + the
    // occasional sustained batch landing (regime) + light noise.
    let diurnal = patterns::diurnal(n, cfg.diurnal_period, rng.uniform(0.06, 0.12), phase);
    let wander = patterns::ar1_noise(n, 0.97, 0.012, rng);
    let batch = patterns::regime_switch(n, 0.0, rng.uniform(0.08, 0.18), 0.004, 0.01, rng);
    let noise = patterns::ar1_noise(n, 0.5, 0.012, rng);
    let mutation = match cfg.mutation {
        Some((at, height)) => patterns::mutation(n, at, height, 12),
        None => vec![0.0; n],
    };
    let cpu = patterns::compose_clamped(
        cfg.mean_util,
        &[&diurnal, &wander, &batch, &noise, &mutation],
        0.02,
        1.0,
    );
    let driver: Vec<f32> = batch
        .iter()
        .zip(&mutation)
        .map(|(&b, &m)| (b + m).clamp(0.0, 1.0))
        .collect();
    (cpu, driver)
}

/// Generate only the machine's CPU series.
pub fn machine_cpu_series(cfg: &MachineConfig, rng: &mut Rng) -> Vec<f32> {
    machine_cpu_series_with_driver(cfg, rng).0
}

/// Generate a complete machine trace frame (all eight indicators).
pub fn generate_machine(cfg: &MachineConfig) -> TimeSeriesFrame {
    let mut rng = Rng::seed_from(cfg.seed);
    let (cpu, driver) = machine_cpu_series_with_driver(cfg, &mut rng);
    container::derive_indicators(&cpu, Some(&driver), cfg.diurnal_period, &mut rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machine_frame_is_complete() {
        let f = generate_machine(&MachineConfig::new(2000, 1).with_diurnal_period(500));
        assert_eq!(f.num_columns(), 8);
        assert_eq!(f.len(), 2000);
        assert!(f.is_clean());
    }

    #[test]
    fn mean_util_is_respected() {
        let f = generate_machine(
            &MachineConfig::new(5000, 2)
                .with_mean_util(0.35)
                .with_diurnal_period(1000),
        );
        let mean = tensor::stats::mean(f.column("cpu_util_percent").unwrap());
        assert!(
            (mean - 0.35).abs() < 0.12,
            "mean {mean} far from target 0.35"
        );
    }

    #[test]
    fn fleet_distribution_matches_fig3() {
        // Generate a fleet of mean-utils and check >75 % fall below 0.5
        // (the paper reports >80 %; we leave slack for sampling noise).
        let mut rng = Rng::seed_from(3);
        let fleet: Vec<f32> = (0..500).map(|_| sample_mean_util(&mut rng)).collect();
        let below = fleet.iter().filter(|&&m| m < 0.5).count();
        assert!(
            below as f64 / 500.0 > 0.75,
            "only {below}/500 machines below 50% mean CPU"
        );
        // And the fleet average sits in the 40-60% band... actually 35-55%.
        let avg = tensor::stats::mean(&fleet);
        assert!((0.3..0.55).contains(&(avg as f32)), "fleet mean {avg}");
    }

    #[test]
    fn machines_are_smoother_than_containers() {
        use crate::container::{generate_container, ContainerConfig, WorkloadClass};
        let mut m_std = 0.0;
        let mut c_std = 0.0;
        for seed in 0..4 {
            let m = generate_machine(&MachineConfig::new(3000, seed).with_diurnal_period(600));
            m_std += tensor::stats::std_dev(m.column("cpu_util_percent").unwrap());
            let c = generate_container(
                &ContainerConfig::new(WorkloadClass::HighDynamic, 3000, seed)
                    .with_diurnal_period(600),
            );
            c_std += tensor::stats::std_dev(c.column("cpu_util_percent").unwrap());
        }
        assert!(
            m_std < c_std,
            "machines ({m_std}) not smoother than containers ({c_std})"
        );
    }

    #[test]
    fn mutation_shifts_level() {
        let f = generate_machine(
            &MachineConfig::new(1000, 5)
                .with_diurnal_period(400)
                .with_mutation(700, 0.35),
        );
        let cpu = f.column("cpu_util_percent").unwrap();
        let before = tensor::stats::mean(&cpu[400..690]);
        let after = tensor::stats::mean(&cpu[720..990]);
        assert!(
            after - before > 0.18,
            "mutation too small: {before} -> {after}"
        );
    }
}
