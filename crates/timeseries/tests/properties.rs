//! Property-based tests for the preprocessing pipeline's invariants.

use proptest::prelude::*;
use timeseries::{
    clean, expand, make_windows, metrics, split_windows, Expansion, MinMaxScaler, RepairPolicy,
    SplitRatios, TimeSeriesFrame,
};

fn series(len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-50.0f32..150.0, len)
}

fn frame2(len: usize) -> impl Strategy<Value = TimeSeriesFrame> {
    (series(len), series(len))
        .prop_map(|(a, b)| TimeSeriesFrame::from_columns(&[("cpu", a), ("mem", b)]).unwrap())
}

proptest! {
    #[test]
    fn minmax_output_in_unit_interval(f in frame2(40)) {
        let scaled = MinMaxScaler::fit(&f).transform(&f);
        for j in 0..scaled.num_columns() {
            for &v in scaled.column_at(j) {
                prop_assert!((-1e-6..=1.0 + 1e-6).contains(&v), "out of range: {v}");
            }
        }
    }

    #[test]
    fn minmax_inverse_roundtrips(f in frame2(30)) {
        let scaler = MinMaxScaler::fit(&f);
        let scaled = scaler.transform(&f);
        let back = scaler.inverse_transform_column("cpu", scaled.column("cpu").unwrap());
        let orig = f.column("cpu").unwrap();
        for (a, b) in back.iter().zip(orig) {
            // Tolerance scales with magnitude in f32.
            prop_assert!((a - b).abs() <= 1e-3 + b.abs() * 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn cleaning_always_produces_clean_frames(
        mut vals in series(30),
        nan_at in proptest::collection::vec(0usize..30, 0..8),
        policy_idx in 0usize..3,
    ) {
        for &i in &nan_at {
            vals[i] = f32::NAN;
        }
        let f = TimeSeriesFrame::from_columns(&[("x", vals)]).unwrap();
        let policy = [RepairPolicy::DropRows, RepairPolicy::Interpolate, RepairPolicy::ForwardFill][policy_idx];
        let (c, _) = clean(&f, policy);
        prop_assert!(c.is_clean());
        if policy != RepairPolicy::DropRows {
            prop_assert_eq!(c.len(), 30);
        }
    }

    #[test]
    fn horizontal_expansion_preserves_alignment(f in frame2(25), copies in 1usize..5) {
        let e = expand::expand_horizontal(&f, copies).unwrap();
        prop_assert_eq!(e.len(), 25 - copies + 1);
        prop_assert_eq!(e.num_columns(), 2 * copies);
        // lag0 of each indicator equals the original tail.
        let orig = f.column("cpu").unwrap();
        let lag0 = e.column("cpu#lag0").unwrap();
        prop_assert_eq!(lag0, &orig[copies - 1..]);
        // Each lag-k column is the lag-0 column shifted by k.
        for k in 1..copies {
            let lagk = e.column(&format!("cpu#lag{k}")).unwrap();
            prop_assert_eq!(lagk, &orig[copies - 1 - k..25 - k]);
        }
    }

    #[test]
    fn windows_never_leak_future(vals in series(40), window in 2usize..8, horizon in 1usize..4) {
        prop_assume!(40 >= window + horizon);
        let f = TimeSeriesFrame::from_columns(&[("cpu", vals.clone())]).unwrap();
        let ds = make_windows(&f, "cpu", window, horizon).unwrap();
        for i in 0..ds.len() {
            for h in 0..horizon {
                prop_assert_eq!(ds.y.at(&[i, h]), vals[i + window + h]);
            }
            for t in 0..window {
                prop_assert_eq!(ds.x.at(&[i, t, 0]), vals[i + t]);
            }
        }
    }

    #[test]
    fn split_partitions_without_overlap(vals in series(60), window in 2usize..6) {
        let f = TimeSeriesFrame::from_columns(&[("cpu", vals)]).unwrap();
        let ds = make_windows(&f, "cpu", window, 1).unwrap();
        let (tr, va, te) = split_windows(&ds, SplitRatios::PAPER);
        prop_assert_eq!(tr.len() + va.len() + te.len(), ds.len());
        // Recombining the splits reproduces the full target sequence.
        let mut all: Vec<f32> = Vec::new();
        all.extend(tr.y.as_slice());
        all.extend(va.y.as_slice());
        all.extend(te.y.as_slice());
        prop_assert_eq!(all.as_slice(), ds.y.as_slice());
    }

    #[test]
    fn mse_dominated_by_rmse_squared(a in series(20), b in series(20)) {
        let mse = metrics::mse(&a, &b);
        let rmse = metrics::rmse(&a, &b);
        prop_assert!((rmse * rmse - mse).abs() < 1e-6 * (1.0 + mse));
        prop_assert!(metrics::mae(&a, &b) <= rmse + 1e-6);
    }

    #[test]
    fn expansion_enum_never_panics_on_valid_frames(f in frame2(30)) {
        for e in [
            Expansion::None,
            Expansion::Horizontal { copies: 3 },
            Expansion::CorrelationWeighted { target: "cpu".into(), max_copies: 3 },
            Expansion::FirstDifference,
        ] {
            let out = e.apply(&f).unwrap();
            prop_assert_eq!(out.len(), 30 - e.rows_consumed());
        }
    }

    #[test]
    fn first_difference_integrates_back(vals in series(25)) {
        let f = TimeSeriesFrame::from_columns(&[("x", vals.clone())]).unwrap();
        let e = expand::add_first_differences(&f).unwrap();
        let x = e.column("x").unwrap();
        let dx = e.column("d_x").unwrap();
        // x[t] - dx[t] = original previous value.
        for t in 0..e.len() {
            prop_assert!((x[t] - dx[t] - vals[t]).abs() < 1e-4);
        }
    }
}
