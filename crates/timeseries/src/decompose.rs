//! Classical seasonal-trend decomposition by moving averages — the analysis
//! tool behind the paper's §II observations ("the average CPU usage has a
//! certain periodicity") and a diagnostic for how much of a trace a
//! periodicity-only model could ever explain.

/// Result of an additive decomposition `x = trend + seasonal + residual`.
#[derive(Debug, Clone)]
pub struct Decomposition {
    pub trend: Vec<f32>,
    pub seasonal: Vec<f32>,
    pub residual: Vec<f32>,
    pub period: usize,
}

impl Decomposition {
    /// Fraction of the (trend-removed) variance explained by seasonality:
    /// `1 − var(residual) / var(x − trend)`, clamped to `[0, 1]`.
    /// ≈1 means the series is essentially periodic; ≈0 means the paper's
    /// "high-dynamic, no regularity" regime.
    pub fn seasonal_strength(&self) -> f64 {
        let detrended: Vec<f32> = self
            .seasonal
            .iter()
            .zip(&self.residual)
            .map(|(&s, &r)| s + r)
            .collect();
        let var_det = tensor::stats::variance(&detrended);
        if var_det < 1e-15 {
            return 0.0;
        }
        (1.0 - tensor::stats::variance(&self.residual) / var_det).clamp(0.0, 1.0)
    }
}

/// Centred moving average of window `w` (odd or even, handled as in the
/// classical decomposition: even windows use a 2×w average). Edges shrink
/// the window symmetrically instead of dropping samples.
pub fn moving_average(xs: &[f32], w: usize) -> Vec<f32> {
    assert!(w >= 1, "window must be positive");
    let n = xs.len();
    let half = w / 2;
    (0..n)
        .map(|t| {
            let lo = t.saturating_sub(half);
            let hi = (t + half + 1).min(n);
            tensor::stats::mean(&xs[lo..hi]) as f32
        })
        .collect()
}

/// Additive decomposition with the given seasonal `period`.
///
/// 1. Trend = centred moving average over one period.
/// 2. Seasonal = per-phase mean of the detrended series, de-meaned.
/// 3. Residual = the rest.
pub fn decompose_additive(xs: &[f32], period: usize) -> Decomposition {
    assert!(period >= 2, "period must be at least 2");
    assert!(xs.len() >= 2 * period, "need at least two full periods");
    let n = xs.len();
    let trend = moving_average(xs, period);
    let detrended: Vec<f32> = xs.iter().zip(&trend).map(|(&x, &t)| x - t).collect();

    // Per-phase means.
    let mut phase_sum = vec![0.0f64; period];
    let mut phase_count = vec![0usize; period];
    for (t, &d) in detrended.iter().enumerate() {
        phase_sum[t % period] += d as f64;
        phase_count[t % period] += 1;
    }
    let mut phase_mean: Vec<f64> = phase_sum
        .iter()
        .zip(&phase_count)
        .map(|(&s, &c)| if c > 0 { s / c as f64 } else { 0.0 })
        .collect();
    // Seasonal components must sum to zero over a period.
    let grand = phase_mean.iter().sum::<f64>() / period as f64;
    for p in &mut phase_mean {
        *p -= grand;
    }

    let seasonal: Vec<f32> = (0..n).map(|t| phase_mean[t % period] as f32).collect();
    let residual: Vec<f32> = (0..n).map(|t| xs[t] - trend[t] - seasonal[t]).collect();
    Decomposition {
        trend,
        seasonal,
        residual,
        period,
    }
}

/// Estimate the dominant period by scanning autocorrelation peaks in
/// `[min_period, max_period]`. Returns `None` when no lag achieves an
/// autocorrelation above `threshold` (an aperiodic, high-dynamic series).
pub fn estimate_period(
    xs: &[f32],
    min_period: usize,
    max_period: usize,
    threshold: f64,
) -> Option<usize> {
    assert!(min_period >= 2 && max_period > min_period);
    if xs.len() < max_period + 2 {
        return None;
    }
    let ac = tensor::stats::autocorrelation(xs, max_period);
    let mut best: Option<(usize, f64)> = None;
    for lag in min_period..=max_period {
        let v = ac[lag];
        // Local-peak requirement keeps harmonics from winning.
        if v > threshold
            && v >= ac[lag - 1]
            && (lag + 1 > max_period || v >= ac[lag + 1])
            && best.is_none_or(|(_, bv)| v > bv)
        {
            best = Some((lag, v));
        }
    }
    best.map(|(lag, _)| lag)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn periodic_series(n: usize, period: usize, amp: f32, trend_slope: f32) -> Vec<f32> {
        (0..n)
            .map(|t| {
                0.5 + trend_slope * t as f32
                    + amp * ((t % period) as f32 / period as f32 * std::f32::consts::TAU).sin()
            })
            .collect()
    }

    #[test]
    fn moving_average_smooths_and_preserves_constants() {
        let xs = vec![3.0f32; 20];
        assert_eq!(moving_average(&xs, 5), xs);
        let noisy: Vec<f32> = (0..40)
            .map(|i| if i % 2 == 0 { 0.0 } else { 1.0 })
            .collect();
        let sm = moving_average(&noisy, 10);
        // Interior points hover near the mean.
        for &v in &sm[5..35] {
            assert!((v - 0.5).abs() < 0.06, "not smoothed: {v}");
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn decomposition_reconstructs_exactly() {
        let xs = periodic_series(120, 12, 0.2, 0.001);
        let d = decompose_additive(&xs, 12);
        for t in 0..xs.len() {
            let rebuilt = d.trend[t] + d.seasonal[t] + d.residual[t];
            assert!((rebuilt - xs[t]).abs() < 1e-5);
        }
        assert_eq!(d.period, 12);
    }

    #[test]
    fn seasonal_component_sums_to_zero_per_period() {
        let xs = periodic_series(96, 8, 0.3, 0.0);
        let d = decompose_additive(&xs, 8);
        let s: f32 = d.seasonal[..8].iter().sum();
        assert!(s.abs() < 1e-4);
    }

    #[test]
    fn strong_seasonality_detected() {
        let xs = periodic_series(240, 24, 0.3, 0.0);
        let d = decompose_additive(&xs, 24);
        assert!(
            d.seasonal_strength() > 0.8,
            "strength {}",
            d.seasonal_strength()
        );
    }

    #[test]
    fn white_noise_has_weak_seasonality() {
        let mut rng = tensor::Rng::seed_from(1);
        let xs: Vec<f32> = (0..300).map(|_| rng.uniform(0.0, 1.0)).collect();
        let d = decompose_additive(&xs, 24);
        assert!(
            d.seasonal_strength() < 0.35,
            "strength {}",
            d.seasonal_strength()
        );
    }

    #[test]
    fn period_estimation_finds_the_cycle() {
        let xs = periodic_series(400, 25, 0.3, 0.0);
        let p = estimate_period(&xs, 5, 60, 0.3).expect("period");
        assert!((24..=26).contains(&p), "estimated {p}");
    }

    #[test]
    fn period_estimation_rejects_noise() {
        let mut rng = tensor::Rng::seed_from(2);
        let xs: Vec<f32> = (0..400).map(|_| rng.uniform(0.0, 1.0)).collect();
        assert_eq!(estimate_period(&xs, 5, 60, 0.3), None);
    }

    #[test]
    #[should_panic(expected = "two full periods")]
    fn too_short_series_panics() {
        decompose_additive(&[0.0; 10], 8);
    }
}
