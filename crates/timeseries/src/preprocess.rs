//! Data cleaning and normalisation (paper §III-A, Algorithm 1 steps 1–2).

use crate::frame::TimeSeriesFrame;

/// How the cleaning stage repairs missing (`NaN`/infinite) samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepairPolicy {
    /// Drop every row containing an invalid value in any column — the
    /// paper's "screen the records with complete information".
    DropRows,
    /// Linearly interpolate between the nearest valid neighbours (edges are
    /// extended with the nearest valid value).
    Interpolate,
    /// Carry the last valid observation forward (first valid backward at
    /// the start).
    ForwardFill,
}

/// Clean a frame: repair or drop invalid samples, returning a frame for
/// which [`TimeSeriesFrame::is_clean`] holds, plus how many samples were
/// touched.
pub fn clean(frame: &TimeSeriesFrame, policy: RepairPolicy) -> (TimeSeriesFrame, usize) {
    match policy {
        RepairPolicy::DropRows => {
            let n = frame.len();
            let keep: Vec<usize> = (0..n)
                .filter(|&i| (0..frame.num_columns()).all(|j| frame.column_at(j)[i].is_finite()))
                .collect();
            let dropped = n - keep.len();
            let cols = frame
                .names()
                .iter()
                .enumerate()
                .map(|(j, name)| {
                    let col = frame.column_at(j);
                    (name.clone(), keep.iter().map(|&i| col[i]).collect())
                })
                .collect();
            (TimeSeriesFrame::new(cols).expect("clean frame"), dropped)
        }
        RepairPolicy::Interpolate | RepairPolicy::ForwardFill => {
            let mut repaired = 0usize;
            let cols = frame
                .names()
                .iter()
                .enumerate()
                .map(|(j, name)| {
                    let mut col = frame.column_at(j).to_vec();
                    repaired += match policy {
                        RepairPolicy::Interpolate => interpolate_gaps(&mut col),
                        _ => forward_fill(&mut col),
                    };
                    (name.clone(), col)
                })
                .collect();
            (TimeSeriesFrame::new(cols).expect("clean frame"), repaired)
        }
    }
}

fn interpolate_gaps(col: &mut [f32]) -> usize {
    let n = col.len();
    let mut repaired = 0;
    let mut i = 0;
    while i < n {
        if col[i].is_finite() {
            i += 1;
            continue;
        }
        // Find the invalid run [i, j).
        let mut j = i;
        while j < n && !col[j].is_finite() {
            j += 1;
        }
        let left = if i > 0 { Some(col[i - 1]) } else { None };
        let right = if j < n { Some(col[j]) } else { None };
        for (step, slot) in col[i..j].iter_mut().enumerate() {
            *slot = match (left, right) {
                (Some(l), Some(r)) => {
                    let frac = (step + 1) as f32 / (j - i + 1) as f32;
                    l + (r - l) * frac
                }
                (Some(l), None) => l,
                (None, Some(r)) => r,
                (None, None) => 0.0,
            };
            repaired += 1;
        }
        i = j;
    }
    repaired
}

fn forward_fill(col: &mut [f32]) -> usize {
    let mut repaired = 0;
    let mut last_valid: Option<f32> = None;
    for v in col.iter_mut() {
        if v.is_finite() {
            last_valid = Some(*v);
        } else if let Some(l) = last_valid {
            *v = l;
            repaired += 1;
        }
    }
    // Leading gap: backward-fill from the first valid value.
    if let Some(first_valid) = col.iter().copied().find(|v| v.is_finite()) {
        for v in col.iter_mut() {
            if !v.is_finite() {
                *v = first_valid;
                repaired += 1;
            } else {
                break;
            }
        }
    } else {
        for v in col.iter_mut() {
            *v = 0.0;
            repaired += 1;
        }
    }
    repaired
}

/// Min-max normalisation to `[0, 1]` (paper eq. 1), fit per column.
#[derive(Debug, Clone)]
pub struct MinMaxScaler {
    mins: Vec<f32>,
    maxs: Vec<f32>,
    names: Vec<String>,
}

impl MinMaxScaler {
    /// Learn per-column min/max from a frame.
    pub fn fit(frame: &TimeSeriesFrame) -> Self {
        let mut mins = Vec::with_capacity(frame.num_columns());
        let mut maxs = Vec::with_capacity(frame.num_columns());
        for j in 0..frame.num_columns() {
            let col = frame.column_at(j);
            mins.push(col.iter().copied().fold(f32::INFINITY, f32::min));
            maxs.push(col.iter().copied().fold(f32::NEG_INFINITY, f32::max));
        }
        Self {
            mins,
            maxs,
            names: frame.names().to_vec(),
        }
    }

    /// Apply `(x - min) / (max - min)`. Constant columns map to 0.
    pub fn transform(&self, frame: &TimeSeriesFrame) -> TimeSeriesFrame {
        self.apply(frame, |v, min, max| {
            let range = max - min;
            if range.abs() < 1e-12 {
                0.0
            } else {
                (v - min) / range
            }
        })
    }

    /// Undo the normalisation for the named column.
    pub fn inverse_transform_column(&self, name: &str, values: &[f32]) -> Vec<f32> {
        let j = self
            .names
            .iter()
            .position(|n| n == name)
            .unwrap_or_else(|| panic!("scaler does not know column '{name}'"));
        let (min, max) = (self.mins[j], self.maxs[j]);
        values.iter().map(|&v| v * (max - min) + min).collect()
    }

    /// `(min, max)` learned for the named column.
    pub fn bounds(&self, name: &str) -> Option<(f32, f32)> {
        let j = self.names.iter().position(|n| n == name)?;
        Some((self.mins[j], self.maxs[j]))
    }

    /// The complete fitted parameters as `(name, min, max)` triples — the
    /// checkpointable state of the scaler.
    pub fn columns(&self) -> Vec<(String, f32, f32)> {
        self.names
            .iter()
            .zip(self.mins.iter().zip(&self.maxs))
            .map(|(n, (&min, &max))| (n.clone(), min, max))
            .collect()
    }

    /// Rebuild a scaler from parameters captured by [`MinMaxScaler::columns`]
    /// — the restore half of a checkpoint round-trip.
    pub fn from_parts(columns: Vec<(String, f32, f32)>) -> Self {
        let mut names = Vec::with_capacity(columns.len());
        let mut mins = Vec::with_capacity(columns.len());
        let mut maxs = Vec::with_capacity(columns.len());
        for (name, min, max) in columns {
            names.push(name);
            mins.push(min);
            maxs.push(max);
        }
        Self { mins, maxs, names }
    }

    fn apply(&self, frame: &TimeSeriesFrame, f: impl Fn(f32, f32, f32) -> f32) -> TimeSeriesFrame {
        assert_eq!(
            frame.names(),
            self.names.as_slice(),
            "scaler/frame column mismatch"
        );
        let cols = frame
            .names()
            .iter()
            .enumerate()
            .map(|(j, name)| {
                let data = frame
                    .column_at(j)
                    .iter()
                    .map(|&v| f(v, self.mins[j], self.maxs[j]))
                    .collect();
                (name.clone(), data)
            })
            .collect();
        TimeSeriesFrame::new(cols).expect("scaled frame")
    }
}

/// Z-score standardisation, offered as the alternative normalisation for the
/// preprocessing ablation.
#[derive(Debug, Clone)]
pub struct StandardScaler {
    means: Vec<f64>,
    stds: Vec<f64>,
    names: Vec<String>,
}

impl StandardScaler {
    pub fn fit(frame: &TimeSeriesFrame) -> Self {
        let mut means = Vec::new();
        let mut stds = Vec::new();
        for j in 0..frame.num_columns() {
            let col = frame.column_at(j);
            means.push(tensor::stats::mean(col));
            stds.push(tensor::stats::std_dev(col).max(1e-12));
        }
        Self {
            means,
            stds,
            names: frame.names().to_vec(),
        }
    }

    pub fn transform(&self, frame: &TimeSeriesFrame) -> TimeSeriesFrame {
        assert_eq!(frame.names(), self.names.as_slice());
        let cols = frame
            .names()
            .iter()
            .enumerate()
            .map(|(j, name)| {
                let data = frame
                    .column_at(j)
                    .iter()
                    .map(|&v| ((v as f64 - self.means[j]) / self.stds[j]) as f32)
                    .collect();
                (name.clone(), data)
            })
            .collect();
        TimeSeriesFrame::new(cols).expect("scaled frame")
    }

    pub fn inverse_transform_column(&self, name: &str, values: &[f32]) -> Vec<f32> {
        let j = self
            .names
            .iter()
            .position(|n| n == name)
            .unwrap_or_else(|| panic!("scaler does not know column '{name}'"));
        values
            .iter()
            .map(|&v| (v as f64 * self.stds[j] + self.means[j]) as f32)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dirty() -> TimeSeriesFrame {
        TimeSeriesFrame::from_columns(&[
            ("cpu", vec![0.1, f32::NAN, 0.3, 0.4]),
            ("mem", vec![0.5, 0.6, f32::INFINITY, 0.8]),
        ])
        .unwrap()
    }

    #[test]
    fn drop_rows_removes_incomplete_records() {
        let (clean_frame, dropped) = clean(&dirty(), RepairPolicy::DropRows);
        assert_eq!(dropped, 2);
        assert_eq!(clean_frame.len(), 2);
        assert!(clean_frame.is_clean());
        assert_eq!(clean_frame.column("cpu").unwrap(), &[0.1, 0.4]);
    }

    #[test]
    fn interpolation_fills_gaps_linearly() {
        let (c, repaired) = clean(&dirty(), RepairPolicy::Interpolate);
        assert_eq!(repaired, 2);
        assert!(c.is_clean());
        assert!((c.column("cpu").unwrap()[1] - 0.2).abs() < 1e-6);
        assert!((c.column("mem").unwrap()[2] - 0.7).abs() < 1e-6);
    }

    #[test]
    fn interpolation_handles_edge_gaps() {
        let f = TimeSeriesFrame::from_columns(&[("x", vec![f32::NAN, 2.0, f32::NAN])]).unwrap();
        let (c, repaired) = clean(&f, RepairPolicy::Interpolate);
        assert_eq!(repaired, 2);
        assert_eq!(c.column("x").unwrap(), &[2.0, 2.0, 2.0]);
    }

    #[test]
    fn forward_fill_carries_values() {
        let f =
            TimeSeriesFrame::from_columns(&[("x", vec![f32::NAN, 1.0, f32::NAN, f32::NAN, 4.0])])
                .unwrap();
        let (c, repaired) = clean(&f, RepairPolicy::ForwardFill);
        assert_eq!(repaired, 3);
        assert_eq!(c.column("x").unwrap(), &[1.0, 1.0, 1.0, 1.0, 4.0]);
    }

    #[test]
    fn all_invalid_column_becomes_zero() {
        let f = TimeSeriesFrame::from_columns(&[("x", vec![f32::NAN, f32::NAN])]).unwrap();
        let (c, _) = clean(&f, RepairPolicy::ForwardFill);
        assert_eq!(c.column("x").unwrap(), &[0.0, 0.0]);
    }

    #[test]
    fn minmax_scales_to_unit_interval_and_inverts() {
        let f = TimeSeriesFrame::from_columns(&[("cpu", vec![10.0, 20.0, 30.0])]).unwrap();
        let scaler = MinMaxScaler::fit(&f);
        let s = scaler.transform(&f);
        assert_eq!(s.column("cpu").unwrap(), &[0.0, 0.5, 1.0]);
        let back = scaler.inverse_transform_column("cpu", s.column("cpu").unwrap());
        assert_eq!(back, vec![10.0, 20.0, 30.0]);
        assert_eq!(scaler.bounds("cpu"), Some((10.0, 30.0)));
    }

    #[test]
    fn minmax_parts_roundtrip() {
        let f =
            TimeSeriesFrame::from_columns(&[("cpu", vec![10.0, 30.0]), ("mem", vec![-1.0, 1.0])])
                .unwrap();
        let scaler = MinMaxScaler::fit(&f);
        let rebuilt = MinMaxScaler::from_parts(scaler.columns());
        assert_eq!(rebuilt.bounds("cpu"), Some((10.0, 30.0)));
        assert_eq!(rebuilt.bounds("mem"), Some((-1.0, 1.0)));
        let a = scaler.transform(&f);
        let b = rebuilt.transform(&f);
        assert_eq!(a.column("cpu").unwrap(), b.column("cpu").unwrap());
    }

    #[test]
    fn minmax_constant_column_maps_to_zero() {
        let f = TimeSeriesFrame::from_columns(&[("c", vec![5.0, 5.0, 5.0])]).unwrap();
        let s = MinMaxScaler::fit(&f).transform(&f);
        assert_eq!(s.column("c").unwrap(), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn minmax_transform_uses_training_bounds() {
        // Fit on train, transform test: values can leave [0, 1]; that is the
        // correct leak-free behaviour.
        let train = TimeSeriesFrame::from_columns(&[("x", vec![0.0, 10.0])]).unwrap();
        let test = TimeSeriesFrame::from_columns(&[("x", vec![20.0])]).unwrap();
        let scaler = MinMaxScaler::fit(&train);
        let s = scaler.transform(&test);
        assert_eq!(s.column("x").unwrap(), &[2.0]);
    }

    #[test]
    fn standard_scaler_zero_mean_unit_std() {
        let f = TimeSeriesFrame::from_columns(&[("x", vec![1.0, 2.0, 3.0, 4.0])]).unwrap();
        let s = StandardScaler::fit(&f).transform(&f);
        let col = s.column("x").unwrap();
        assert!(tensor::stats::mean(col).abs() < 1e-6);
        assert!((tensor::stats::std_dev(col) - 1.0).abs() < 1e-5);
        let back = StandardScaler::fit(&f).inverse_transform_column("x", col);
        for (a, b) in back.iter().zip(&[1.0, 2.0, 3.0, 4.0]) {
            assert!((a - b).abs() < 1e-5);
        }
    }
}
