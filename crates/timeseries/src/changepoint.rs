//! Online change-point detection — CUSUM and Page–Hinkley.
//!
//! The paper's central difficulty is *mutation points*: abrupt, persistent
//! level shifts in resource usage. Prediction models try to anticipate
//! them; these detectors provide the complementary capability a resource
//! manager also needs — flagging, with bounded delay, that a shift has
//! happened (e.g. to trigger an out-of-band model refit, which is exactly
//! how `rptcn::ResourcePredictor::refit` gets driven in practice).

/// A detected change point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChangePoint {
    /// Sample index at which the detector fired.
    pub at: usize,
    /// Direction of the shift.
    pub upward: bool,
    /// Detector statistic at the firing sample.
    pub score: f64,
}

/// Two-sided CUSUM detector with reference value `k` (half the shift
/// magnitude worth caring about) and decision threshold `h`, both in units
/// of the data. The detector self-centres on a running mean so it needs no
/// a-priori baseline.
#[derive(Debug, Clone)]
pub struct Cusum {
    k: f64,
    h: f64,
    pos: f64,
    neg: f64,
    mean: f64,
    count: usize,
    /// Samples used to establish the baseline before detection starts.
    warmup: usize,
}

impl Cusum {
    pub fn new(k: f64, h: f64) -> Self {
        assert!(k >= 0.0 && h > 0.0);
        Self {
            k,
            h,
            pos: 0.0,
            neg: 0.0,
            mean: 0.0,
            count: 0,
            warmup: 16,
        }
    }

    pub fn with_warmup(mut self, warmup: usize) -> Self {
        self.warmup = warmup;
        self
    }

    /// Feed one sample; returns a change point when the statistic crosses
    /// the threshold. The detector re-anchors after each detection.
    pub fn update(&mut self, index: usize, x: f64) -> Option<ChangePoint> {
        self.count += 1;
        // Running mean as the in-control reference.
        self.mean += (x - self.mean) / self.count as f64;
        if self.count <= self.warmup {
            return None;
        }
        let dev = x - self.mean;
        self.pos = (self.pos + dev - self.k).max(0.0);
        self.neg = (self.neg - dev - self.k).max(0.0);
        if self.pos > self.h || self.neg > self.h {
            let upward = self.pos > self.h;
            let score = self.pos.max(self.neg);
            // Re-anchor on the new regime.
            self.pos = 0.0;
            self.neg = 0.0;
            self.mean = x;
            self.count = 1;
            return Some(ChangePoint {
                at: index,
                upward,
                score,
            });
        }
        None
    }

    /// Run over a whole series, returning every detection.
    pub fn detect(series: &[f32], k: f64, h: f64) -> Vec<ChangePoint> {
        let mut detector = Cusum::new(k, h);
        series
            .iter()
            .enumerate()
            .filter_map(|(i, &x)| detector.update(i, x as f64))
            .collect()
    }
}

/// Page–Hinkley test for upward mean shifts: accumulates deviations from
/// the running mean minus a drift allowance `delta` and fires when the
/// excursion from the minimum exceeds `lambda`.
#[derive(Debug, Clone)]
pub struct PageHinkley {
    delta: f64,
    lambda: f64,
    cumulative: f64,
    minimum: f64,
    mean: f64,
    count: usize,
    warmup: usize,
}

impl PageHinkley {
    pub fn new(delta: f64, lambda: f64) -> Self {
        assert!(delta >= 0.0 && lambda > 0.0);
        Self {
            delta,
            lambda,
            cumulative: 0.0,
            minimum: 0.0,
            mean: 0.0,
            count: 0,
            warmup: 16,
        }
    }

    pub fn with_warmup(mut self, warmup: usize) -> Self {
        self.warmup = warmup;
        self
    }

    /// Feed one sample; fires on a sustained upward shift.
    pub fn update(&mut self, index: usize, x: f64) -> Option<ChangePoint> {
        self.count += 1;
        self.mean += (x - self.mean) / self.count as f64;
        if self.count <= self.warmup {
            return None;
        }
        self.cumulative += x - self.mean - self.delta;
        self.minimum = self.minimum.min(self.cumulative);
        let excursion = self.cumulative - self.minimum;
        if excursion > self.lambda {
            let score = excursion;
            self.cumulative = 0.0;
            self.minimum = 0.0;
            self.mean = x;
            self.count = 1;
            return Some(ChangePoint {
                at: index,
                upward: true,
                score,
            });
        }
        None
    }

    /// Run over a whole series.
    pub fn detect(series: &[f32], delta: f64, lambda: f64) -> Vec<ChangePoint> {
        let mut detector = PageHinkley::new(delta, lambda);
        series
            .iter()
            .enumerate()
            .filter_map(|(i, &x)| detector.update(i, x as f64))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Flat at `lo`, stepping to `hi` at `at` with mild noise.
    fn step_series(n: usize, at: usize, lo: f32, hi: f32) -> Vec<f32> {
        let mut rng = tensor::Rng::seed_from(9);
        (0..n)
            .map(|t| (if t < at { lo } else { hi }) + rng.normal(0.0, 0.01))
            .collect()
    }

    #[test]
    fn cusum_fires_shortly_after_a_step() {
        let series = step_series(400, 200, 0.3, 0.6);
        let hits = Cusum::detect(&series, 0.02, 0.5);
        assert!(!hits.is_empty(), "CUSUM missed a 0.3 step");
        let first = hits[0];
        assert!(first.upward);
        assert!(
            (200..225).contains(&first.at),
            "detection delay too long: fired at {}",
            first.at
        );
    }

    #[test]
    fn cusum_stays_quiet_on_stationary_noise() {
        let mut rng = tensor::Rng::seed_from(10);
        let series: Vec<f32> = (0..1000).map(|_| 0.4 + rng.normal(0.0, 0.01)).collect();
        let hits = Cusum::detect(&series, 0.02, 0.5);
        assert!(hits.is_empty(), "false alarms: {hits:?}");
    }

    #[test]
    fn cusum_detects_downward_shifts_too() {
        let series = step_series(400, 200, 0.7, 0.35);
        let hits = Cusum::detect(&series, 0.02, 0.5);
        assert!(!hits.is_empty());
        assert!(!hits[0].upward, "direction wrong: {:?}", hits[0]);
    }

    #[test]
    fn cusum_reanchors_and_finds_multiple_changes() {
        let mut series = step_series(300, 150, 0.3, 0.6);
        series.extend(step_series(300, 150, 0.6, 0.3));
        let hits = Cusum::detect(&series, 0.02, 0.5);
        assert!(hits.len() >= 2, "expected two detections, got {hits:?}");
        assert!(hits[0].upward);
        assert!(hits.iter().any(|c| !c.upward));
    }

    #[test]
    fn page_hinkley_fires_on_upward_shift_only() {
        let up = step_series(400, 200, 0.3, 0.6);
        let hits = PageHinkley::detect(&up, 0.005, 0.5);
        assert!(!hits.is_empty(), "PH missed the upward step");
        assert!((200..240).contains(&hits[0].at), "fired at {}", hits[0].at);

        let down = step_series(400, 200, 0.7, 0.4);
        let hits = PageHinkley::detect(&down, 0.005, 0.5);
        assert!(hits.is_empty(), "PH is one-sided but fired: {hits:?}");
    }

    #[test]
    fn warmup_suppresses_early_fires() {
        let series = step_series(100, 2, 0.1, 0.9);
        let mut det = Cusum::new(0.02, 0.5).with_warmup(50);
        let mut first = None;
        for (i, &x) in series.iter().enumerate() {
            if let Some(cp) = det.update(i, x as f64) {
                first = Some(cp.at);
                break;
            }
        }
        assert!(first.is_none_or(|at| at > 50));
    }

    #[test]
    fn detects_the_generators_mutation_points() {
        // End-to-end: the synthetic container's configured mutation should
        // be found within a modest delay.
        let frame = {
            use cloudtrace_stub::*;
            generate(600, 350, 0.4)
        };
        let hits = Cusum::detect(&frame, 0.02, 0.6);
        assert!(!hits.is_empty(), "missed the generator mutation");
        assert!(
            (350..395).contains(&hits[0].at),
            "fired at {} (mutation at 350)",
            hits[0].at
        );
    }

    /// Local stand-in that mimics `cloudtrace`'s mutation shape without a
    /// cyclic dev-dependency (timeseries must not depend on cloudtrace).
    mod cloudtrace_stub {
        pub fn generate(n: usize, at: usize, height: f32) -> Vec<f32> {
            let mut rng = tensor::Rng::seed_from(11);
            let mut level = 0.3f32;
            (0..n)
                .map(|t| {
                    if t == at {
                        level += height;
                    }
                    (level + rng.normal(0.0, 0.02)).clamp(0.0, 1.0)
                })
                .collect()
        }
    }
}
