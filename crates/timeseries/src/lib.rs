//! # timeseries — preprocessing pipeline primitives
//!
//! Everything between a raw trace and a trainable dataset, mirroring the
//! paper's Algorithm 1:
//!
//! 1. [`frame::TimeSeriesFrame`] — named-column table with CSV I/O.
//! 2. [`preprocess::clean`] — repair/drop missing samples
//!    (`DataClean`, step 1).
//! 3. [`preprocess::MinMaxScaler`] — eq. (1) normalisation (step 2).
//! 4. [`correlate`] — Pearson screening: rank indicators by |PCC| with the
//!    target and keep the top half (steps 3–4, Fig. 7).
//! 5. [`expand`] — feature expansion (step 5, Fig. 4): horizontal lag
//!    replication plus the correlation-weighted and first-difference
//!    extensions from the paper's discussion.
//! 6. [`window::make_windows`] — sliding supervised windows.
//! 7. [`split`] — chronological 6:2:2 train/valid/test split.
//! 8. [`metrics`] — MSE / MAE / RMSE / MAPE / sMAPE / R².

pub mod changepoint;
pub mod correlate;
pub mod decompose;
pub mod expand;
pub mod frame;
pub mod metrics;
pub mod preprocess;
pub mod split;
pub mod window;

pub use changepoint::{ChangePoint, Cusum, PageHinkley};
pub use correlate::{correlation_matrix, rank_by_correlation, screen_top_half, screen_top_k};
pub use decompose::{decompose_additive, estimate_period, Decomposition};
pub use expand::Expansion;
pub use frame::{FrameError, TimeSeriesFrame};
pub use metrics::MetricReport;
pub use preprocess::{clean, MinMaxScaler, RepairPolicy, StandardScaler};
pub use split::{split_frame, split_windows, SplitRatios};
pub use window::{make_windows, WindowedDataset};
