//! Feature-dimension expansion (paper §III-C, Fig. 4).
//!
//! *Horizontal* expansion — the paper's contribution — replicates each
//! indicator into lag-shifted columns, widening the feature axis instead of
//! lengthening the lookback window, which both injects short-term
//! dependence and raises the weight of recent samples. The
//! correlation-weighted and first-difference variants implement the
//! extensions sketched in the paper's discussion (§V-C).

use crate::correlate;
use crate::frame::{FrameError, TimeSeriesFrame};

/// Which expansion Algorithm 1 step 5 applies.
#[derive(Debug, Clone, PartialEq)]
pub enum Expansion {
    /// Feed indicators as-is.
    None,
    /// Fig. 4(b): every indicator becomes `copies` lag-shifted columns
    /// (`r_{t-copies+1} … r_t`). The paper uses 3.
    Horizontal { copies: usize },
    /// §V-C extension: indicators better correlated with the target get
    /// more lag columns (between 1 and `max_copies`, proportional to |PCC|).
    CorrelationWeighted { target: String, max_copies: usize },
    /// §V-C extension: append first-order difference columns `Δr_t`.
    FirstDifference,
}

impl Expansion {
    /// Apply the expansion, returning a (possibly shorter) frame.
    pub fn apply(&self, frame: &TimeSeriesFrame) -> Result<TimeSeriesFrame, FrameError> {
        match self {
            Expansion::None => Ok(frame.clone()),
            Expansion::Horizontal { copies } => expand_horizontal(frame, *copies),
            Expansion::CorrelationWeighted { target, max_copies } => {
                expand_correlation_weighted(frame, target, *max_copies)
            }
            Expansion::FirstDifference => add_first_differences(frame),
        }
    }

    /// Rows consumed from the start of the frame by this expansion.
    pub fn rows_consumed(&self) -> usize {
        match self {
            Expansion::None => 0,
            Expansion::Horizontal { copies } => copies.saturating_sub(1),
            Expansion::CorrelationWeighted { max_copies, .. } => max_copies.saturating_sub(1),
            Expansion::FirstDifference => 1,
        }
    }
}

/// Lag-expand every column into `copies` columns named `name#lagL`
/// (`L = copies-1 … 0`). Output has `len - copies + 1` rows.
pub fn expand_horizontal(
    frame: &TimeSeriesFrame,
    copies: usize,
) -> Result<TimeSeriesFrame, FrameError> {
    if copies == 0 {
        return Err(FrameError("horizontal expansion needs copies >= 1".into()));
    }
    if frame.len() < copies {
        return Err(FrameError(format!(
            "frame of {} rows too short for {copies} lag copies",
            frame.len()
        )));
    }
    let out_len = frame.len() - copies + 1;
    let mut cols = Vec::with_capacity(frame.num_columns() * copies);
    for (j, name) in frame.names().iter().enumerate() {
        let col = frame.column_at(j);
        for lag in (0..copies).rev() {
            // Row i of the output corresponds to time t = i + copies - 1;
            // lag L reads col[t - L].
            let data: Vec<f32> = (0..out_len).map(|i| col[i + copies - 1 - lag]).collect();
            cols.push((format!("{name}#lag{lag}"), data));
        }
    }
    TimeSeriesFrame::new(cols)
}

/// Lag-expand with a per-indicator number of copies proportional to |PCC|
/// against `target` (minimum 1, maximum `max_copies`; the target always
/// receives `max_copies`). All columns align to the same `max_copies`
/// left-trim so rows stay aligned.
pub fn expand_correlation_weighted(
    frame: &TimeSeriesFrame,
    target: &str,
    max_copies: usize,
) -> Result<TimeSeriesFrame, FrameError> {
    if max_copies == 0 {
        return Err(FrameError(
            "correlation-weighted expansion needs max_copies >= 1".into(),
        ));
    }
    if frame.len() < max_copies {
        return Err(FrameError(
            "frame too short for correlation-weighted expansion".into(),
        ));
    }
    let ranks = correlate::rank_by_correlation(frame, target)?;
    let pcc_of = |name: &str| -> f64 {
        ranks
            .iter()
            .find(|r| r.name == name)
            .map(|r| r.pcc.abs())
            .unwrap_or(0.0)
    };
    let out_len = frame.len() - max_copies + 1;
    let mut cols = Vec::new();
    for (j, name) in frame.names().iter().enumerate() {
        let col = frame.column_at(j);
        let copies = if name == target {
            max_copies
        } else {
            ((pcc_of(name) * max_copies as f64).ceil() as usize).clamp(1, max_copies)
        };
        for lag in (0..copies).rev() {
            let data: Vec<f32> = (0..out_len)
                .map(|i| col[i + max_copies - 1 - lag])
                .collect();
            cols.push((format!("{name}#lag{lag}"), data));
        }
    }
    TimeSeriesFrame::new(cols)
}

/// Append `Δname` columns holding `x_t - x_{t-1}`; the first row is dropped
/// so every column stays aligned and fully observed.
pub fn add_first_differences(frame: &TimeSeriesFrame) -> Result<TimeSeriesFrame, FrameError> {
    if frame.len() < 2 {
        return Err(FrameError(
            "need at least 2 rows for first differences".into(),
        ));
    }
    let out_len = frame.len() - 1;
    let mut cols = Vec::with_capacity(frame.num_columns() * 2);
    for (j, name) in frame.names().iter().enumerate() {
        let col = frame.column_at(j);
        cols.push((name.clone(), col[1..].to_vec()));
        let diff: Vec<f32> = (0..out_len).map(|i| col[i + 1] - col[i]).collect();
        cols.push((format!("d_{name}"), diff));
    }
    TimeSeriesFrame::new(cols)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame() -> TimeSeriesFrame {
        TimeSeriesFrame::from_columns(&[
            ("cpu", vec![1.0, 2.0, 3.0, 4.0, 5.0]),
            ("mem", vec![10.0, 20.0, 30.0, 40.0, 50.0]),
        ])
        .unwrap()
    }

    #[test]
    fn horizontal_matches_fig4b() {
        let e = expand_horizontal(&frame(), 3).unwrap();
        assert_eq!(e.len(), 3);
        assert_eq!(e.num_columns(), 6);
        // Row 0 corresponds to t=2: cpu lags are (t-2, t-1, t) = (1, 2, 3).
        assert_eq!(e.column("cpu#lag2").unwrap(), &[1.0, 2.0, 3.0]);
        assert_eq!(e.column("cpu#lag1").unwrap(), &[2.0, 3.0, 4.0]);
        assert_eq!(e.column("cpu#lag0").unwrap(), &[3.0, 4.0, 5.0]);
        assert_eq!(e.column("mem#lag0").unwrap(), &[30.0, 40.0, 50.0]);
    }

    #[test]
    fn horizontal_single_copy_is_rename_only() {
        let e = expand_horizontal(&frame(), 1).unwrap();
        assert_eq!(e.len(), 5);
        assert_eq!(
            e.column("cpu#lag0").unwrap(),
            frame().column("cpu").unwrap()
        );
    }

    #[test]
    fn horizontal_rejects_degenerate_inputs() {
        assert!(expand_horizontal(&frame(), 0).is_err());
        assert!(expand_horizontal(&frame(), 6).is_err());
    }

    #[test]
    fn correlation_weighted_gives_target_full_width() {
        // "noise" is weakly correlated with cpu, so gets fewer copies.
        let f = TimeSeriesFrame::from_columns(&[
            ("cpu", vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]),
            ("twin", vec![1.1, 2.1, 3.1, 4.1, 5.1, 6.1]),
            ("noise", vec![5.0, -5.0, 5.0, -5.0, 5.0, -5.0]),
        ])
        .unwrap();
        let e = expand_correlation_weighted(&f, "cpu", 3).unwrap();
        let cpu_cols = e.names().iter().filter(|n| n.starts_with("cpu#")).count();
        let twin_cols = e.names().iter().filter(|n| n.starts_with("twin#")).count();
        let noise_cols = e.names().iter().filter(|n| n.starts_with("noise#")).count();
        assert_eq!(cpu_cols, 3);
        assert_eq!(
            twin_cols, 3,
            "perfectly correlated indicator gets full width"
        );
        assert!(
            noise_cols < 3,
            "weak indicator must get fewer copies, got {noise_cols}"
        );
        assert!(noise_cols >= 1);
        assert_eq!(e.len(), 4);
    }

    #[test]
    fn first_differences_append_delta_columns() {
        let e = add_first_differences(&frame()).unwrap();
        assert_eq!(e.len(), 4);
        assert_eq!(e.column("cpu").unwrap(), &[2.0, 3.0, 4.0, 5.0]);
        assert_eq!(e.column("d_cpu").unwrap(), &[1.0, 1.0, 1.0, 1.0]);
        assert_eq!(e.column("d_mem").unwrap(), &[10.0, 10.0, 10.0, 10.0]);
    }

    #[test]
    fn expansion_enum_dispatch_and_rows_consumed() {
        let f = frame();
        assert_eq!(Expansion::None.apply(&f).unwrap(), f);
        assert_eq!(Expansion::None.rows_consumed(), 0);
        let h = Expansion::Horizontal { copies: 3 };
        assert_eq!(h.apply(&f).unwrap().len(), 3);
        assert_eq!(h.rows_consumed(), 2);
        assert_eq!(Expansion::FirstDifference.rows_consumed(), 1);
        let cw = Expansion::CorrelationWeighted {
            target: "cpu".into(),
            max_copies: 2,
        };
        assert_eq!(cw.apply(&f).unwrap().len(), 4);
    }
}
