//! Sliding-window supervised dataset construction: turn a multivariate frame
//! into `(X, y)` pairs where `X` is a lookback window over all features and
//! `y` is the next `horizon` values of the target column.

use crate::frame::{FrameError, TimeSeriesFrame};
use tensor::Tensor;

/// A supervised windowed dataset.
#[derive(Debug, Clone)]
pub struct WindowedDataset {
    /// `[n, window, features]` inputs.
    pub x: Tensor,
    /// `[n, horizon]` targets.
    pub y: Tensor,
    /// Feature (column) names, in the order of the feature axis.
    pub feature_names: Vec<String>,
    /// Index of the target column within the features.
    pub target_index: usize,
    pub window: usize,
    pub horizon: usize,
}

impl WindowedDataset {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.x.shape()[0]
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of input features.
    pub fn num_features(&self) -> usize {
        self.x.shape()[2]
    }

    /// Rows `[from, to)` as a new dataset (used by chronological splits).
    pub fn slice(&self, from: usize, to: usize) -> WindowedDataset {
        assert!(
            from <= to && to <= self.len(),
            "bad window slice {from}..{to}"
        );
        let rows: Vec<usize> = (from..to).collect();
        WindowedDataset {
            x: take_rows(&self.x, &rows),
            y: take_rows(&self.y, &rows),
            feature_names: self.feature_names.clone(),
            target_index: self.target_index,
            window: self.window,
            horizon: self.horizon,
        }
    }
}

fn take_rows(t: &Tensor, rows: &[usize]) -> Tensor {
    let shape = t.shape();
    let row_len: usize = shape[1..].iter().product();
    let mut out = Vec::with_capacity(rows.len() * row_len);
    for &r in rows {
        out.extend_from_slice(&t.as_slice()[r * row_len..(r + 1) * row_len]);
    }
    let mut new_shape = shape.to_vec();
    new_shape[0] = rows.len();
    Tensor::from_vec(out, &new_shape)
}

/// Build sliding windows over `frame`.
///
/// Sample `i` is `X[i] = frame[i .. i+window]` (all columns) with target
/// `y[i] = target[i+window .. i+window+horizon]`, so targets are strictly in
/// the future of their window — no leakage.
pub fn make_windows(
    frame: &TimeSeriesFrame,
    target: &str,
    window: usize,
    horizon: usize,
) -> Result<WindowedDataset, FrameError> {
    if window == 0 || horizon == 0 {
        return Err(FrameError("window and horizon must be positive".into()));
    }
    let target_index = frame
        .column_index(target)
        .ok_or_else(|| FrameError(format!("unknown target column '{target}'")))?;
    let total = frame.len();
    if total < window + horizon {
        return Err(FrameError(format!(
            "{total} rows cannot fit window {window} + horizon {horizon}"
        )));
    }
    let n = total - window - horizon + 1;
    let f = frame.num_columns();
    let mut x = vec![0.0f32; n * window * f];
    let mut y = vec![0.0f32; n * horizon];
    let tcol = frame.column_at(target_index);
    for i in 0..n {
        for t in 0..window {
            for (j, _) in frame.names().iter().enumerate() {
                x[(i * window + t) * f + j] = frame.column_at(j)[i + t];
            }
        }
        for h in 0..horizon {
            y[i * horizon + h] = tcol[i + window + h];
        }
    }
    Ok(WindowedDataset {
        x: Tensor::from_vec(x, &[n, window, f]),
        y: Tensor::from_vec(y, &[n, horizon]),
        feature_names: frame.names().to_vec(),
        target_index,
        window,
        horizon,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame() -> TimeSeriesFrame {
        TimeSeriesFrame::from_columns(&[
            ("cpu", (0..10).map(|i| i as f32).collect()),
            ("mem", (0..10).map(|i| i as f32 * 10.0).collect()),
        ])
        .unwrap()
    }

    #[test]
    fn window_contents_and_target_alignment() {
        let ds = make_windows(&frame(), "cpu", 3, 2).unwrap();
        assert_eq!(ds.len(), 6); // 10 - 3 - 2 + 1
        assert_eq!(ds.x.shape(), &[6, 3, 2]);
        assert_eq!(ds.y.shape(), &[6, 2]);
        // Sample 0: window rows 0..3, targets rows 3..5.
        assert_eq!(ds.x.at(&[0, 0, 0]), 0.0);
        assert_eq!(ds.x.at(&[0, 2, 0]), 2.0);
        assert_eq!(ds.x.at(&[0, 2, 1]), 20.0);
        assert_eq!(ds.y.at(&[0, 0]), 3.0);
        assert_eq!(ds.y.at(&[0, 1]), 4.0);
        // Sample 5: window rows 5..8, target rows 8..10.
        assert_eq!(ds.x.at(&[5, 0, 0]), 5.0);
        assert_eq!(ds.y.at(&[5, 1]), 9.0);
    }

    #[test]
    fn no_leakage_target_is_strictly_future() {
        let ds = make_windows(&frame(), "cpu", 4, 1).unwrap();
        for i in 0..ds.len() {
            let last_in_window = ds.x.at(&[i, 3, 0]);
            let target = ds.y.at(&[i, 0]);
            assert_eq!(target, last_in_window + 1.0);
        }
    }

    #[test]
    fn errors_on_bad_parameters() {
        assert!(make_windows(&frame(), "cpu", 0, 1).is_err());
        assert!(make_windows(&frame(), "cpu", 3, 0).is_err());
        assert!(make_windows(&frame(), "nope", 3, 1).is_err());
        assert!(make_windows(&frame(), "cpu", 9, 2).is_err());
    }

    #[test]
    fn exact_fit_produces_one_sample() {
        let ds = make_windows(&frame(), "cpu", 8, 2).unwrap();
        assert_eq!(ds.len(), 1);
    }

    #[test]
    fn slice_preserves_metadata() {
        let ds = make_windows(&frame(), "mem", 3, 1).unwrap();
        let s = ds.slice(2, 5);
        assert_eq!(s.len(), 3);
        assert_eq!(s.target_index, 1);
        assert_eq!(s.window, 3);
        assert_eq!(s.x.at(&[0, 0, 0]), ds.x.at(&[2, 0, 0]));
        assert_eq!(s.y.at(&[0, 0]), ds.y.at(&[2, 0]));
    }
}
