//! A minimal column-oriented time-series table with CSV I/O.
//!
//! Traces produced by `cloudtrace` and consumed by the prediction pipeline
//! travel as [`TimeSeriesFrame`]s: equal-length named `f32` columns sampled
//! at a fixed interval. Missing observations are represented as `NaN` and
//! handled by the cleaning stage.

use std::fmt;
use std::io::{BufRead, BufWriter, Write};
use std::path::Path;

use tensor::Tensor;

/// Error type for frame operations and CSV parsing.
#[derive(Debug)]
pub struct FrameError(pub String);

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "frame error: {}", self.0)
    }
}

impl std::error::Error for FrameError {}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> Self {
        FrameError(format!("io: {e}"))
    }
}

/// Equal-length named columns of `f32` samples.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeriesFrame {
    names: Vec<String>,
    columns: Vec<Vec<f32>>,
}

impl TimeSeriesFrame {
    /// Build from `(name, data)` pairs; all columns must share a length.
    pub fn new(columns: Vec<(String, Vec<f32>)>) -> Result<Self, FrameError> {
        if columns.is_empty() {
            return Err(FrameError("frame needs at least one column".into()));
        }
        let len = columns[0].1.len();
        for (name, col) in &columns {
            if col.len() != len {
                return Err(FrameError(format!(
                    "column '{name}' has {} rows, expected {len}",
                    col.len()
                )));
            }
        }
        let (names, columns) = columns.into_iter().unzip();
        Ok(Self { names, columns })
    }

    /// Convenience constructor from string slices.
    pub fn from_columns(pairs: &[(&str, Vec<f32>)]) -> Result<Self, FrameError> {
        Self::new(
            pairs
                .iter()
                .map(|(n, v)| (n.to_string(), v.clone()))
                .collect(),
        )
    }

    /// Number of rows (time steps).
    pub fn len(&self) -> usize {
        self.columns[0].len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of columns (indicators).
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// Column names in order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Column index by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }

    /// Column data by name.
    pub fn column(&self, name: &str) -> Option<&[f32]> {
        self.column_index(name).map(|i| self.columns[i].as_slice())
    }

    /// Column data by position.
    pub fn column_at(&self, idx: usize) -> &[f32] {
        &self.columns[idx]
    }

    /// Mutable column data by name.
    pub fn column_mut(&mut self, name: &str) -> Option<&mut Vec<f32>> {
        let i = self.column_index(name)?;
        Some(&mut self.columns[i])
    }

    /// Append a column.
    pub fn add_column(
        &mut self,
        name: impl Into<String>,
        data: Vec<f32>,
    ) -> Result<(), FrameError> {
        if data.len() != self.len() {
            return Err(FrameError(format!(
                "new column has {} rows, frame has {}",
                data.len(),
                self.len()
            )));
        }
        self.names.push(name.into());
        self.columns.push(data);
        Ok(())
    }

    /// A new frame with only the named columns, in the given order.
    pub fn select(&self, names: &[&str]) -> Result<TimeSeriesFrame, FrameError> {
        let mut cols = Vec::with_capacity(names.len());
        for &n in names {
            let idx = self
                .column_index(n)
                .ok_or_else(|| FrameError(format!("unknown column '{n}'")))?;
            cols.push((n.to_string(), self.columns[idx].clone()));
        }
        TimeSeriesFrame::new(cols)
    }

    /// A new frame with rows `[from, to)`.
    pub fn slice_rows(&self, from: usize, to: usize) -> Result<TimeSeriesFrame, FrameError> {
        if from > to || to > self.len() {
            return Err(FrameError(format!(
                "bad row range {from}..{to} of {}",
                self.len()
            )));
        }
        TimeSeriesFrame::new(
            self.names
                .iter()
                .zip(&self.columns)
                .map(|(n, c)| (n.clone(), c[from..to].to_vec()))
                .collect(),
        )
    }

    /// Rows-by-columns matrix view: `[len, num_columns]`.
    pub fn to_matrix(&self) -> Tensor {
        let (rows, cols) = (self.len(), self.num_columns());
        let mut data = vec![0.0f32; rows * cols];
        for (j, col) in self.columns.iter().enumerate() {
            for (i, &v) in col.iter().enumerate() {
                data[i * cols + j] = v;
            }
        }
        Tensor::from_vec(data, &[rows, cols])
    }

    /// True when no column contains NaN or infinity.
    pub fn is_clean(&self) -> bool {
        self.columns.iter().all(|c| c.iter().all(|v| v.is_finite()))
    }

    /// Write as CSV (header + rows). NaN is serialised as an empty field,
    /// matching how real traces encode missing samples.
    pub fn write_csv(&self, path: &Path) -> Result<(), FrameError> {
        let file = std::fs::File::create(path)?;
        let mut w = BufWriter::new(file);
        writeln!(w, "{}", self.names.join(","))?;
        for i in 0..self.len() {
            let row: Vec<String> = self
                .columns
                .iter()
                .map(|c| {
                    if c[i].is_nan() {
                        String::new()
                    } else {
                        format!("{}", c[i])
                    }
                })
                .collect();
            writeln!(w, "{}", row.join(","))?;
        }
        w.flush()?;
        Ok(())
    }

    /// Read a CSV written by [`TimeSeriesFrame::write_csv`] (or any
    /// header-first numeric CSV; empty fields become NaN).
    pub fn read_csv(path: &Path) -> Result<TimeSeriesFrame, FrameError> {
        let file = std::fs::File::open(path)?;
        let mut lines = std::io::BufReader::new(file).lines();
        let header = lines
            .next()
            .ok_or_else(|| FrameError("empty csv".into()))??;
        let names: Vec<String> = header.split(',').map(|s| s.trim().to_string()).collect();
        let mut columns: Vec<Vec<f32>> = vec![Vec::new(); names.len()];
        for (lineno, line) in lines.enumerate() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let fields: Vec<&str> = line.split(',').collect();
            if fields.len() != names.len() {
                return Err(FrameError(format!(
                    "row {} has {} fields, expected {}",
                    lineno + 2,
                    fields.len(),
                    names.len()
                )));
            }
            for (j, f) in fields.iter().enumerate() {
                let f = f.trim();
                let v = if f.is_empty() {
                    f32::NAN
                } else {
                    f.parse::<f32>()
                        .map_err(|e| FrameError(format!("row {}: '{f}': {e}", lineno + 2)))?
                };
                columns[j].push(v);
            }
        }
        TimeSeriesFrame::new(names.into_iter().zip(columns).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TimeSeriesFrame {
        TimeSeriesFrame::from_columns(&[("cpu", vec![0.1, 0.2, 0.3]), ("mem", vec![0.5, 0.6, 0.7])])
            .unwrap()
    }

    #[test]
    fn construction_and_access() {
        let f = sample();
        assert_eq!(f.len(), 3);
        assert_eq!(f.num_columns(), 2);
        assert_eq!(f.column("cpu").unwrap(), &[0.1, 0.2, 0.3]);
        assert_eq!(f.column_index("mem"), Some(1));
        assert!(f.column("disk").is_none());
    }

    #[test]
    fn ragged_columns_rejected() {
        assert!(
            TimeSeriesFrame::from_columns(&[("a", vec![1.0]), ("b", vec![1.0, 2.0]),]).is_err()
        );
        assert!(TimeSeriesFrame::new(vec![]).is_err());
    }

    #[test]
    fn select_reorders() {
        let f = sample();
        let g = f.select(&["mem", "cpu"]).unwrap();
        assert_eq!(g.names(), &["mem".to_string(), "cpu".to_string()]);
        assert_eq!(g.column_at(0), &[0.5, 0.6, 0.7]);
        assert!(f.select(&["nope"]).is_err());
    }

    #[test]
    fn slice_rows_bounds() {
        let f = sample();
        let g = f.slice_rows(1, 3).unwrap();
        assert_eq!(g.len(), 2);
        assert_eq!(g.column("cpu").unwrap(), &[0.2, 0.3]);
        assert!(f.slice_rows(2, 5).is_err());
    }

    #[test]
    fn matrix_layout_is_row_major_rows_by_cols() {
        let m = sample().to_matrix();
        assert_eq!(m.shape(), &[3, 2]);
        assert_eq!(m.at(&[1, 0]), 0.2);
        assert_eq!(m.at(&[1, 1]), 0.6);
    }

    #[test]
    fn add_column_checks_length() {
        let mut f = sample();
        assert!(f.add_column("disk", vec![1.0, 2.0, 3.0]).is_ok());
        assert_eq!(f.num_columns(), 3);
        assert!(f.add_column("bad", vec![1.0]).is_err());
    }

    #[test]
    fn csv_roundtrip_preserves_values_and_nans() {
        let mut f = sample();
        f.column_mut("cpu").unwrap()[1] = f32::NAN;
        let dir = std::env::temp_dir().join("rptcn_frame_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.csv");
        f.write_csv(&path).unwrap();
        let g = TimeSeriesFrame::read_csv(&path).unwrap();
        assert_eq!(g.names(), f.names());
        assert_eq!(g.len(), 3);
        assert!(g.column("cpu").unwrap()[1].is_nan());
        assert_eq!(g.column("mem").unwrap(), f.column("mem").unwrap());
        assert!(!g.is_clean());
        std::fs::remove_file(&path).ok();
    }
}
