//! Forecast-accuracy metrics (paper §IV-D plus the usual extras).

/// Mean squared error (paper eq. 9).
pub fn mse(truth: &[f32], pred: &[f32]) -> f64 {
    paired(truth, pred);
    if truth.is_empty() {
        return 0.0;
    }
    truth
        .iter()
        .zip(pred)
        .map(|(&t, &p)| ((t - p) as f64).powi(2))
        .sum::<f64>()
        / truth.len() as f64
}

/// Mean absolute error (paper eq. 10).
pub fn mae(truth: &[f32], pred: &[f32]) -> f64 {
    paired(truth, pred);
    if truth.is_empty() {
        return 0.0;
    }
    truth
        .iter()
        .zip(pred)
        .map(|(&t, &p)| ((t - p) as f64).abs())
        .sum::<f64>()
        / truth.len() as f64
}

/// Root mean squared error.
pub fn rmse(truth: &[f32], pred: &[f32]) -> f64 {
    mse(truth, pred).sqrt()
}

/// Mean absolute percentage error (%). Pairs whose true value is ~0 are
/// skipped, as is conventional for utilisation traces that touch zero.
pub fn mape(truth: &[f32], pred: &[f32]) -> f64 {
    paired(truth, pred);
    let mut total = 0.0f64;
    let mut count = 0usize;
    for (&t, &p) in truth.iter().zip(pred) {
        if t.abs() > 1e-8 {
            total += ((t - p) / t).abs() as f64;
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        100.0 * total / count as f64
    }
}

/// Symmetric MAPE (%), bounded in `[0, 200]`.
pub fn smape(truth: &[f32], pred: &[f32]) -> f64 {
    paired(truth, pred);
    let mut total = 0.0f64;
    let mut count = 0usize;
    for (&t, &p) in truth.iter().zip(pred) {
        let denom = (t.abs() + p.abs()) as f64;
        if denom > 1e-12 {
            total += 2.0 * ((t - p).abs() as f64) / denom;
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        100.0 * total / count as f64
    }
}

/// Coefficient of determination. 1 is perfect; 0 matches predicting the
/// mean; negative is worse than the mean.
pub fn r2(truth: &[f32], pred: &[f32]) -> f64 {
    paired(truth, pred);
    if truth.len() < 2 {
        return 0.0;
    }
    let mean = tensor::stats::mean(truth);
    let ss_tot: f64 = truth.iter().map(|&t| (t as f64 - mean).powi(2)).sum();
    if ss_tot < 1e-15 {
        return 0.0;
    }
    let ss_res: f64 = truth
        .iter()
        .zip(pred)
        .map(|(&t, &p)| ((t - p) as f64).powi(2))
        .sum();
    1.0 - ss_res / ss_tot
}

/// A full metric report for one model/scenario cell (as a Table II entry).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricReport {
    pub mse: f64,
    pub mae: f64,
    pub rmse: f64,
    pub mape: f64,
    pub smape: f64,
    pub r2: f64,
}

/// Compute every metric at once.
pub fn report(truth: &[f32], pred: &[f32]) -> MetricReport {
    MetricReport {
        mse: mse(truth, pred),
        mae: mae(truth, pred),
        rmse: rmse(truth, pred),
        mape: mape(truth, pred),
        smape: smape(truth, pred),
        r2: r2(truth, pred),
    }
}

fn paired(truth: &[f32], pred: &[f32]) {
    assert_eq!(truth.len(), pred.len(), "metric inputs must pair up");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction() {
        let t = [0.1f32, 0.5, 0.9];
        let r = report(&t, &t);
        assert_eq!(r.mse, 0.0);
        assert_eq!(r.mae, 0.0);
        assert_eq!(r.rmse, 0.0);
        assert_eq!(r.mape, 0.0);
        assert_eq!(r.smape, 0.0);
        assert!((r.r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn known_values() {
        let t = [1.0f32, 2.0];
        let p = [2.0f32, 4.0];
        assert!((mse(&t, &p) - 2.5).abs() < 1e-12);
        assert!((mae(&t, &p) - 1.5).abs() < 1e-12);
        assert!((rmse(&t, &p) - 2.5f64.sqrt()).abs() < 1e-12);
        assert!((mape(&t, &p) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn mape_skips_zero_truth() {
        let t = [0.0f32, 2.0];
        let p = [5.0f32, 3.0];
        assert!((mape(&t, &p) - 50.0).abs() < 1e-9);
    }

    #[test]
    fn smape_is_bounded() {
        let t = [1.0f32, -1.0, 0.5];
        let p = [-1.0f32, 1.0, -0.5];
        let s = smape(&t, &p);
        assert!((s - 200.0).abs() < 1e-9);
    }

    #[test]
    fn r2_of_mean_prediction_is_zero() {
        let t = [1.0f32, 2.0, 3.0, 4.0];
        let p = [2.5f32; 4];
        assert!(r2(&t, &p).abs() < 1e-12);
        // Worse than the mean is negative.
        let bad = [10.0f32; 4];
        assert!(r2(&t, &bad) < 0.0);
    }

    #[test]
    fn empty_inputs_are_safe() {
        assert_eq!(mse(&[], &[]), 0.0);
        assert_eq!(mae(&[], &[]), 0.0);
        assert_eq!(mape(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "pair up")]
    fn mismatched_lengths_panic() {
        mse(&[1.0], &[1.0, 2.0]);
    }
}
