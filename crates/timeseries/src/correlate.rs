//! Pearson-correlation screening (paper §III-B, Fig. 7): rank every
//! indicator by |PCC| against the prediction target and keep the top half.

use crate::frame::TimeSeriesFrame;
use tensor::stats;

/// Full correlation matrix between all columns of a frame, in column order.
/// Entry `[i][j]` is the PCC between columns `i` and `j`.
#[allow(clippy::needless_range_loop)] // symmetric matrix fill reads best indexed
pub fn correlation_matrix(frame: &TimeSeriesFrame) -> Vec<Vec<f64>> {
    let k = frame.num_columns();
    let mut m = vec![vec![0.0f64; k]; k];
    for i in 0..k {
        m[i][i] = 1.0;
        for j in (i + 1)..k {
            let r = stats::pearson(frame.column_at(i), frame.column_at(j));
            m[i][j] = r;
            m[j][i] = r;
        }
    }
    m
}

/// One indicator's correlation with the target.
#[derive(Debug, Clone, PartialEq)]
pub struct CorrelationRank {
    pub name: String,
    pub pcc: f64,
}

/// Rank every column (including the target itself, which trivially ranks
/// first with PCC 1) by absolute correlation with `target`, descending.
pub fn rank_by_correlation(
    frame: &TimeSeriesFrame,
    target: &str,
) -> Result<Vec<CorrelationRank>, crate::frame::FrameError> {
    let t = frame
        .column(target)
        .ok_or_else(|| crate::frame::FrameError(format!("unknown target column '{target}'")))?;
    let mut ranks: Vec<CorrelationRank> = frame
        .names()
        .iter()
        .enumerate()
        .map(|(j, name)| CorrelationRank {
            name: name.clone(),
            pcc: stats::pearson(frame.column_at(j), t),
        })
        .collect();
    ranks.sort_by(|a, b| {
        b.pcc
            .abs()
            .partial_cmp(&a.pcc.abs())
            .expect("NaN correlation")
            // Deterministic tie-break on name.
            .then_with(|| a.name.cmp(&b.name))
    });
    Ok(ranks)
}

/// Algorithm 1 step 4: keep the top `ceil(k/2)` indicators by |PCC| with the
/// target. The target itself always survives (it correlates perfectly with
/// itself) and is returned first.
pub fn screen_top_half(
    frame: &TimeSeriesFrame,
    target: &str,
) -> Result<Vec<String>, crate::frame::FrameError> {
    let ranks = rank_by_correlation(frame, target)?;
    let keep = frame.num_columns().div_ceil(2);
    Ok(ranks
        .into_iter()
        .take(keep.max(1))
        .map(|r| r.name)
        .collect())
}

/// Keep the `k` best-correlated indicators (target included).
pub fn screen_top_k(
    frame: &TimeSeriesFrame,
    target: &str,
    k: usize,
) -> Result<Vec<String>, crate::frame::FrameError> {
    let ranks = rank_by_correlation(frame, target)?;
    Ok(ranks.into_iter().take(k.max(1)).map(|r| r.name).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// cpu is the target; "strong" tracks it, "weak" is an alternating
    /// pattern, "anti" is its negation (strong negative correlation).
    fn frame() -> TimeSeriesFrame {
        let cpu: Vec<f32> = (0..40)
            .map(|i| (i as f32 * 0.3).sin() * 0.5 + 0.5)
            .collect();
        let strong: Vec<f32> = cpu.iter().map(|&c| c * 0.8 + 0.05).collect();
        let anti: Vec<f32> = cpu.iter().map(|&c| 1.0 - c).collect();
        let weak: Vec<f32> = (0..40)
            .map(|i| if i % 2 == 0 { 0.9 } else { 0.1 })
            .collect();
        TimeSeriesFrame::from_columns(&[
            ("cpu", cpu),
            ("strong", strong),
            ("weak", weak),
            ("anti", anti),
        ])
        .unwrap()
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn matrix_is_symmetric_with_unit_diagonal() {
        let m = correlation_matrix(&frame());
        for i in 0..4 {
            assert!((m[i][i] - 1.0).abs() < 1e-9);
            for j in 0..4 {
                assert_eq!(m[i][j], m[j][i]);
                assert!(m[i][j].abs() <= 1.0 + 1e-12);
            }
        }
    }

    #[test]
    fn ranking_puts_target_first_and_weak_last() {
        let ranks = rank_by_correlation(&frame(), "cpu").unwrap();
        assert_eq!(ranks[0].name, "cpu");
        assert!((ranks[0].pcc - 1.0).abs() < 1e-9);
        assert_eq!(ranks.last().unwrap().name, "weak");
        // Anti-correlated column ranks on |PCC|, so it beats "weak".
        let anti_pos = ranks.iter().position(|r| r.name == "anti").unwrap();
        let weak_pos = ranks.iter().position(|r| r.name == "weak").unwrap();
        assert!(anti_pos < weak_pos);
    }

    #[test]
    fn top_half_keeps_ceil_half() {
        let kept = screen_top_half(&frame(), "cpu").unwrap();
        assert_eq!(kept.len(), 2);
        assert_eq!(kept[0], "cpu");
        assert_eq!(kept[1], "strong");
    }

    #[test]
    fn top_k_is_bounded_by_columns() {
        let kept = screen_top_k(&frame(), "cpu", 10).unwrap();
        assert_eq!(kept.len(), 4);
        let kept1 = screen_top_k(&frame(), "cpu", 0).unwrap();
        assert_eq!(kept1.len(), 1);
    }

    #[test]
    fn unknown_target_errors() {
        assert!(rank_by_correlation(&frame(), "nope").is_err());
        assert!(screen_top_half(&frame(), "nope").is_err());
    }

    #[test]
    fn odd_column_count_top_half() {
        let f = TimeSeriesFrame::from_columns(&[
            ("a", vec![1.0, 2.0, 3.0]),
            ("b", vec![1.1, 2.1, 3.2]),
            ("c", vec![3.0, 1.0, 2.0]),
        ])
        .unwrap();
        let kept = screen_top_half(&f, "a").unwrap();
        assert_eq!(kept.len(), 2); // ceil(3/2)
        assert_eq!(kept[0], "a");
    }
}
