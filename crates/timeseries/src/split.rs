//! Chronological train/validation/test splitting (paper §IV-B: 6:2:2).

use crate::frame::{FrameError, TimeSeriesFrame};
use crate::window::WindowedDataset;

/// Fractions for a chronological three-way split.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SplitRatios {
    pub train: f64,
    pub valid: f64,
    pub test: f64,
}

impl SplitRatios {
    /// The paper's 6:2:2 split.
    pub const PAPER: SplitRatios = SplitRatios {
        train: 0.6,
        valid: 0.2,
        test: 0.2,
    };

    pub fn new(train: f64, valid: f64, test: f64) -> Result<Self, FrameError> {
        let s = train + valid + test;
        if !(0.999..=1.001).contains(&s) || train <= 0.0 || valid < 0.0 || test < 0.0 {
            return Err(FrameError(format!(
                "bad split ratios {train}:{valid}:{test}"
            )));
        }
        Ok(Self { train, valid, test })
    }

    /// Boundary indices `(train_end, valid_end)` for `n` samples.
    pub fn boundaries(&self, n: usize) -> (usize, usize) {
        let train_end = ((n as f64) * self.train).round() as usize;
        let valid_end = ((n as f64) * (self.train + self.valid)).round() as usize;
        (train_end.min(n), valid_end.min(n))
    }
}

impl Default for SplitRatios {
    fn default() -> Self {
        Self::PAPER
    }
}

/// Chronological split of a windowed dataset: earlier windows train, the
/// middle validates, the most recent test — windows never shuffle across the
/// boundary, so the test set is strictly in the future of the training set.
pub fn split_windows(
    ds: &WindowedDataset,
    ratios: SplitRatios,
) -> (WindowedDataset, WindowedDataset, WindowedDataset) {
    let n = ds.len();
    let (a, b) = ratios.boundaries(n);
    (ds.slice(0, a), ds.slice(a, b), ds.slice(b, n))
}

/// Chronological split of a raw frame into three row ranges.
pub fn split_frame(
    frame: &TimeSeriesFrame,
    ratios: SplitRatios,
) -> Result<(TimeSeriesFrame, TimeSeriesFrame, TimeSeriesFrame), FrameError> {
    let n = frame.len();
    let (a, b) = ratios.boundaries(n);
    Ok((
        frame.slice_rows(0, a)?,
        frame.slice_rows(a, b)?,
        frame.slice_rows(b, n)?,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::window::make_windows;

    #[test]
    fn paper_ratios_partition_exactly() {
        let (a, b) = SplitRatios::PAPER.boundaries(100);
        assert_eq!((a, b), (60, 80));
        let (a, b) = SplitRatios::PAPER.boundaries(7);
        assert!(a <= b && b <= 7);
        assert!(a >= 1);
    }

    #[test]
    fn invalid_ratios_rejected() {
        assert!(SplitRatios::new(0.5, 0.2, 0.2).is_err());
        assert!(SplitRatios::new(0.0, 0.5, 0.5).is_err());
        assert!(SplitRatios::new(0.7, 0.2, 0.1).is_ok());
    }

    #[test]
    fn window_split_is_chronological() {
        let frame = TimeSeriesFrame::from_columns(&[("cpu", (0..104).map(|i| i as f32).collect())])
            .unwrap();
        let ds = make_windows(&frame, "cpu", 4, 1).unwrap(); // 100 samples
        let (train, valid, test) = split_windows(&ds, SplitRatios::PAPER);
        assert_eq!(train.len(), 60);
        assert_eq!(valid.len(), 20);
        assert_eq!(test.len(), 20);
        // Every training target precedes every validation target, which
        // precedes every test target.
        let max_train = train.y.as_slice().iter().copied().fold(f32::MIN, f32::max);
        let min_valid = valid.y.as_slice().iter().copied().fold(f32::MAX, f32::min);
        let max_valid = valid.y.as_slice().iter().copied().fold(f32::MIN, f32::max);
        let min_test = test.y.as_slice().iter().copied().fold(f32::MAX, f32::min);
        assert!(max_train < min_valid);
        assert!(max_valid < min_test);
    }

    #[test]
    fn frame_split_partitions_rows() {
        let frame =
            TimeSeriesFrame::from_columns(&[("x", (0..10).map(|i| i as f32).collect())]).unwrap();
        let (tr, va, te) = split_frame(&frame, SplitRatios::PAPER).unwrap();
        assert_eq!(tr.len() + va.len() + te.len(), 10);
        assert_eq!(tr.column("x").unwrap()[0], 0.0);
        assert_eq!(te.column("x").unwrap().last().copied(), Some(9.0));
    }
}
