//! Property-based finite-difference gradient checks: for randomly sampled
//! parameters, the tape's analytic gradient must match a central-difference
//! estimate on every tested operation.

use autograd::{Graph, ParamStore, Var};
use proptest::prelude::*;
use tensor::{Rng, Tensor};

/// Evaluate `build` as a scalar loss and return (loss, dL/dw) for the single
/// registered parameter.
fn loss_and_grad(w: &Tensor, build: &dyn Fn(&mut Graph, Var) -> Var) -> (f32, Tensor) {
    let mut store = ParamStore::new();
    let wid = store.register("w", w.clone());
    let mut g = Graph::new(&store);
    let wv = g.param(wid);
    let loss = build(&mut g, wv);
    let lv = g.value(loss).item();
    let grads = g.backward(loss);
    (
        lv,
        grads
            .get(wid)
            .cloned()
            .unwrap_or_else(|| Tensor::zeros(w.shape())),
    )
}

/// Central-difference gradient check at a handful of coordinates.
fn check_op(w: &Tensor, build: &dyn Fn(&mut Graph, Var) -> Var) -> Result<(), TestCaseError> {
    let (_, analytic) = loss_and_grad(w, build);
    let eps = 1e-2f32;
    let idxs = [0usize, w.len() / 2, w.len() - 1];
    for &i in &idxs {
        let mut wp = w.clone();
        wp.as_mut_slice()[i] += eps;
        let mut wm = w.clone();
        wm.as_mut_slice()[i] -= eps;
        let (lp, _) = loss_and_grad(&wp, build);
        let (lm, _) = loss_and_grad(&wm, build);
        let fd = (lp - lm) / (2.0 * eps);
        let an = analytic.as_slice()[i];
        prop_assert!(
            (an - fd).abs() <= 3e-2 + 0.05 * fd.abs().max(an.abs()),
            "coord {i}: analytic {an} vs finite-diff {fd}"
        );
    }
    Ok(())
}

fn weight(seed: u64, shape: &[usize]) -> Tensor {
    let mut rng = Rng::seed_from(seed);
    // Keep away from relu/abs kinks and div-by-tiny.
    Tensor::rand_uniform(shape, 0.3, 1.7, &mut rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn grad_tanh_chain(seed in 0u64..10_000) {
        let w = weight(seed, &[6]);
        check_op(&w, &|g, w| {
            let t = g.tanh(w);
            let s = g.square(t);
            g.sum_all(s)
        })?;
    }

    #[test]
    fn grad_sigmoid_exp(seed in 0u64..10_000) {
        let w = weight(seed, &[5]);
        check_op(&w, &|g, w| {
            let s = g.sigmoid(w);
            let e = g.exp(s);
            g.mean_all(e)
        })?;
    }

    #[test]
    fn grad_matmul_quadratic(seed in 0u64..10_000) {
        let w = weight(seed, &[3, 4]);
        check_op(&w, &|g, w| {
            let x = g.input(Tensor::from_vec((1..=6).map(|v| v as f32 * 0.3).collect(), &[2, 3]));
            let y = g.matmul(x, w);
            let sq = g.square(y);
            g.sum_all(sq)
        })?;
    }

    #[test]
    fn grad_division(seed in 0u64..10_000) {
        let w = weight(seed, &[4]);
        check_op(&w, &|g, w| {
            let c = g.input(Tensor::from_vec(vec![2.0, 3.0, 4.0, 5.0], &[4]));
            let q = g.div(c, w);
            g.sum_all(q)
        })?;
    }

    #[test]
    fn grad_softmax_weighted(seed in 0u64..10_000) {
        let w = weight(seed, &[2, 5]);
        check_op(&w, &|g, w| {
            let s = g.softmax_rows(w);
            let v = g.input(Tensor::from_vec((1..=10).map(|v| v as f32).collect(), &[2, 5]));
            let gated = g.mul(s, v);
            g.sum_all(gated)
        })?;
    }

    #[test]
    fn grad_conv1d(seed in 0u64..10_000) {
        let w = weight(seed, &[2, 2, 3]);
        check_op(&w, &|g, w| {
            let mut rng = Rng::seed_from(99);
            let x = g.input(Tensor::rand_uniform(&[2, 2, 7], -1.0, 1.0, &mut rng));
            let y = g.conv1d(x, w, 2);
            let sq = g.square(y);
            g.mean_all(sq)
        })?;
    }

    #[test]
    fn grad_weight_norm_composition(seed in 0u64..10_000) {
        // The exact composition CausalConv1d builds for weight norm.
        let w = weight(seed, &[3, 4]);
        check_op(&w, &|g, w| {
            let sq = g.square(w);
            let ssum = g.sum_axis_keepdim(sq, 1);
            let norm0 = g.sqrt(ssum);
            let norm = g.add_scalar(norm0, 1e-6);
            let dir = g.div(w, norm);
            let s = g.square(dir);
            g.sum_all(s)
        })?;
    }

    #[test]
    fn grad_slice_concat(seed in 0u64..10_000) {
        let w = weight(seed, &[3, 6]);
        check_op(&w, &|g, w| {
            let a = g.slice_cols(w, 0, 3);
            let b = g.slice_cols(w, 3, 6);
            let prod = g.mul(a, b);
            let joined = g.concat_cols(&[prod, a]);
            let sq = g.square(joined);
            g.sum_all(sq)
        })?;
    }

    #[test]
    fn grad_select_time(seed in 0u64..10_000) {
        let w = weight(seed, &[2, 3, 4]);
        check_op(&w, &|g, w| {
            let last = g.select_time(w, 3);
            let first = g.select_time(w, 0);
            let d = g.sub(last, first);
            let sq = g.square(d);
            g.mean_all(sq)
        })?;
    }

    #[test]
    fn grad_huber(seed in 0u64..10_000) {
        let w = weight(seed, &[5]);
        check_op(&w, &|g, w| {
            let t = g.input(Tensor::from_vec(vec![0.0, 1.0, 2.0, 3.0, 4.0], &[5]));
            let d = g.sub(w, t);
            let h = g.huber_on_diff(d, 0.7);
            g.mean_all(h)
        })?;
    }

    #[test]
    fn grad_broadcast_bias(seed in 0u64..10_000) {
        let w = weight(seed, &[4]);
        check_op(&w, &|g, w| {
            let x = g.input(Tensor::from_vec((1..=12).map(|v| v as f32 * 0.1).collect(), &[3, 4]));
            let y = g.add(x, w);
            let sq = g.square(y);
            g.sum_all(sq)
        })?;
    }
}
