//! Concurrency stress for the pinned batch executor — the chaos-tsan CI
//! target. ThreadSanitizer watches for data races while many dispatching
//! threads hammer shared pools, workers panic mid-generation, and pools are
//! built and torn down repeatedly; the assertions pin the semantics (every
//! row exactly once, panics re-raised after the barrier, deterministic
//! partition) that `serve::forecast_many` depends on.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;

use autograd::batch_exec::{BatchExecutor, MIN_PARALLEL_ROWS};

/// Many threads dispatching onto their own pools concurrently: the
/// generation protocol must never lose or double-run a row.
#[test]
fn concurrent_pools_cover_rows_exactly_once() {
    let mut joins = Vec::new();
    for t in 0..4 {
        joins.push(thread::spawn(move || {
            let exec = BatchExecutor::new(3);
            for round in 0..50 {
                let rows = MIN_PARALLEL_ROWS + (t * 7 + round) % 23;
                let hits: Vec<AtomicUsize> = (0..rows).map(|_| AtomicUsize::new(0)).collect();
                exec.run_rows(rows, |_w, start, end| {
                    for h in &hits[start..end] {
                        h.fetch_add(1, Ordering::Relaxed);
                    }
                });
                for (i, h) in hits.iter().enumerate() {
                    assert_eq!(h.load(Ordering::Relaxed), 1, "row {i} hit count");
                }
            }
        }));
    }
    for j in joins {
        j.join().expect("dispatcher thread panicked");
    }
}

/// One shared pool, many dispatchers: dispatches serialise through the
/// pool's mutex; every dispatch still covers its rows exactly once.
#[test]
fn shared_pool_serialises_dispatches() {
    let exec = Arc::new(BatchExecutor::new(4));
    let mut joins = Vec::new();
    for _ in 0..4 {
        let exec = Arc::clone(&exec);
        joins.push(thread::spawn(move || {
            for round in 0..100 {
                let rows = MIN_PARALLEL_ROWS + round % 11;
                let sum = AtomicUsize::new(0);
                exec.run_rows(rows, |_w, start, end| {
                    sum.fetch_add(end - start, Ordering::Relaxed);
                });
                assert_eq!(sum.load(Ordering::Relaxed), rows);
            }
        }));
    }
    for j in joins {
        j.join().expect("dispatcher thread panicked");
    }
}

/// Panics in worker closures must re-raise on the dispatcher without
/// poisoning the pool for later generations — the same contract serve's
/// shard supervision relies on (TSan also verifies the unwind paths are
/// race-free).
#[test]
fn panicking_generations_do_not_poison_the_pool() {
    let exec = BatchExecutor::new(3);
    for round in 0..30 {
        let rows = MIN_PARALLEL_ROWS * 2;
        if round % 3 == 0 {
            let result = catch_unwind(AssertUnwindSafe(|| {
                exec.run_rows(rows, |w, _s, _e| {
                    if w == round % 3 {
                        panic!("injected worker fault");
                    }
                });
            }));
            assert!(result.is_err(), "round {round}: panic must re-raise");
        } else {
            let sum = AtomicUsize::new(0);
            exec.run_rows(rows, |_w, start, end| {
                sum.fetch_add(end - start, Ordering::Relaxed);
            });
            assert_eq!(sum.load(Ordering::Relaxed), rows, "round {round}");
        }
    }
}

/// Rapid construction/drop cycles: Drop must join every worker (TSan flags
/// leaks of running threads as races against test teardown state).
#[test]
fn pool_teardown_joins_workers() {
    for i in 0..20 {
        let exec = BatchExecutor::new(2 + i % 3);
        let sum = AtomicUsize::new(0);
        exec.run_rows(MIN_PARALLEL_ROWS, |_w, start, end| {
            sum.fetch_add(end - start, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), MIN_PARALLEL_ROWS);
        drop(exec);
    }
}

/// The static partition is a pure function of `(rows, workers)`: record the
/// ranges each worker saw across repeats and require them identical —
/// determinism is the executor's core design promise.
#[test]
fn partition_is_deterministic_across_dispatches() {
    let exec = BatchExecutor::new(4);
    let rows = MIN_PARALLEL_ROWS * 3 + 1;
    let reference: Vec<(usize, usize)> = (0..4)
        .map(|w| BatchExecutor::partition(rows, 4, w))
        .collect();
    for _ in 0..50 {
        let seen: Vec<std::sync::Mutex<Option<(usize, usize)>>> =
            (0..4).map(|_| std::sync::Mutex::new(None)).collect();
        exec.run_rows(rows, |w, start, end| {
            *seen[w].lock().unwrap_or_else(|p| p.into_inner()) = Some((start, end));
        });
        for (w, slot) in seen.iter().enumerate() {
            let got = slot
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .expect("every worker must run its range");
            assert_eq!(got, reference[w], "worker {w} range drifted");
        }
    }
}
