//! Bitwise parity of the fused conv fast paths against an independent
//! tap-wise reference, plus the in-place inference kernels against their
//! taped `tensor` counterparts.
//!
//! This is the suite the Miri CI job interprets: under Miri the AVX kernel
//! is replaced by a raw-pointer scalar twin with the same padded-scratch
//! layout (`cfg(miri)` in `conv_kernels.rs`), so Miri checks the bounds and
//! aliasing reasoning of the fast path while these assertions pin its
//! numerics to the reference bit for bit. Shapes are kept small enough for
//! an interpreter but large enough to cover the remainder (non-multiple-
//! of-4 output channels, non-multiple-of-8 time) lanes.

use autograd::conv1d_forward;
use autograd::infer::{
    add_channel_bias, add_row_bias, relu_in_place, sigmoid_in_place, softmax_rows_in_place,
    tanh_in_place,
};
use tensor::{Rng, Tensor};

/// Independent reference: accumulate tap-by-tap in `(out-channel,
/// in-channel, tap)` order, skipping exact-zero weights and the causal
/// warm-up region — a reimplementation of the slow path, NOT a call to it.
fn conv_reference(x: &Tensor, w: &Tensor, dilation: usize) -> Vec<f32> {
    let (batch, in_ch, time) = (x.shape()[0], x.shape()[1], x.shape()[2]);
    let (out_ch, _, k) = (w.shape()[0], w.shape()[1], w.shape()[2]);
    let dx = x.as_slice();
    let dw = w.as_slice();
    let mut out = vec![0.0f32; batch * out_ch * time];
    for b in 0..batch {
        for oc in 0..out_ch {
            let y = &mut out[(b * out_ch + oc) * time..(b * out_ch + oc + 1) * time];
            for ic in 0..in_ch {
                let xr = &dx[(b * in_ch + ic) * time..(b * in_ch + ic + 1) * time];
                let wr = &dw[(oc * in_ch + ic) * k..(oc * in_ch + ic + 1) * k];
                for (kk, &wv) in wr.iter().enumerate() {
                    if wv == 0.0 {
                        continue;
                    }
                    let shift = (k - 1 - kk) * dilation;
                    for t in shift..time {
                        y[t] += wv * xr[t - shift];
                    }
                }
            }
        }
    }
    out
}

/// Weights with no exact zeros, so the fused fast path engages.
fn nonzero_weights(shape: &[usize], rng: &mut Rng) -> Tensor {
    let mut w = Tensor::rand_normal(shape, 0.0, 0.5, rng);
    for v in w.as_mut_slice() {
        if *v == 0.0 {
            *v = 0.25;
        }
    }
    w
}

#[test]
fn fused_conv_matches_reference_bitwise_across_dilations() {
    let mut rng = Rng::seed_from(33);
    // 6 output channels exercise the 4-wide main loop plus remainder rows;
    // time=19 exercises the partial final vector lane.
    let (ic, oc, time) = (4, 6, 19);
    for &d in &[1usize, 2, 4] {
        let x = Tensor::rand_normal(&[2, ic, time], 0.0, 1.0, &mut rng);
        let w = nonzero_weights(&[oc, ic, 3], &mut rng);
        let fast = conv1d_forward(&x, &w, d);
        let reference = conv_reference(&x, &w, d);
        for (i, (a, b)) in fast.as_slice().iter().zip(&reference).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "d={d} idx={i}: {a} vs {b}");
        }
    }
}

#[test]
fn zero_weights_route_to_the_reference_path_and_agree() {
    let mut rng = Rng::seed_from(34);
    let x = Tensor::rand_normal(&[1, 3, 12], 0.0, 1.0, &mut rng);
    let mut w = Tensor::rand_normal(&[2, 3, 3], 0.0, 0.5, &mut rng);
    // An exact zero disables the fused path; results must still agree.
    w.as_mut_slice()[4] = 0.0;
    let out = conv1d_forward(&x, &w, 2);
    let reference = conv_reference(&x, &w, 2);
    for (a, b) in out.as_slice().iter().zip(&reference) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
}

#[test]
fn in_place_activations_match_taped_kernels_bitwise() {
    let mut rng = Rng::seed_from(35);
    let x = Tensor::rand_normal(&[4, 9], 0.0, 2.0, &mut rng);

    let mut buf = x.as_slice().to_vec();
    relu_in_place(&mut buf);
    assert_eq!(buf, tensor::ops::relu(&x).as_slice());

    let mut buf = x.as_slice().to_vec();
    tanh_in_place(&mut buf);
    assert_eq!(buf, tensor::ops::tanh(&x).as_slice());

    let mut buf = x.as_slice().to_vec();
    sigmoid_in_place(&mut buf);
    assert_eq!(buf, tensor::ops::sigmoid(&x).as_slice());

    let mut buf = x.as_slice().to_vec();
    softmax_rows_in_place(&mut buf, 4, 9);
    assert_eq!(buf, tensor::reduce::softmax_rows(&x).as_slice());
}

#[test]
fn bias_broadcasts_match_taped_adds_bitwise() {
    let mut rng = Rng::seed_from(36);
    let (rows, cols) = (3, 5);
    let out = Tensor::rand_normal(&[rows, cols], 0.0, 1.0, &mut rng);
    let bias = Tensor::rand_normal(&[cols], 0.0, 1.0, &mut rng);
    let mut buf = out.as_slice().to_vec();
    add_row_bias(&mut buf, bias.as_slice(), rows, cols);
    assert_eq!(buf, tensor::ops::add(&out, &bias).as_slice());

    let (batch, ch, time) = (2, 3, 7);
    let out = Tensor::rand_normal(&[batch, ch, time], 0.0, 1.0, &mut rng);
    let bias = Tensor::rand_normal(&[ch, 1], 0.0, 1.0, &mut rng);
    let mut buf = out.as_slice().to_vec();
    add_channel_bias(&mut buf, bias.as_slice(), batch, ch, time);
    assert_eq!(buf, tensor::ops::add(&out, &bias).as_slice());
}

// ---------------------------------------------------------------------------
// GEMM rerouting + batch executor parity.
//
// After routing every matmul through the runtime-dispatched GEMM microkernel
// (`tensor::gemm`), two invariants must keep holding bitwise:
//
//  1. the taped forward pass and the tape-free `infer` path agree (both call
//     the same kernel), and
//  2. a stacked batch equals the same rows forecast individually — which is
//     exactly what lets the pinned batch executor split `forecast_many`
//     batches across workers without changing a single bit.
// ---------------------------------------------------------------------------

use autograd::batch_exec::{BatchExecutor, MIN_PARALLEL_ROWS};
use autograd::infer::{predict, predict_on, with_thread_context, InferenceContext};
use autograd::layers::linear::Linear;
use autograd::{Graph, ParamStore, SequenceModel, Var};

/// Two stacked linear layers with a tanh between — enough structure to push
/// several GEMM shapes (packed and direct paths) through both the taped and
/// the tape-free drivers.
struct TwoLayer {
    store: ParamStore,
    hidden: Linear,
    out: Linear,
    time: usize,
    features: usize,
}

impl TwoLayer {
    fn new(time: usize, features: usize, hidden: usize, horizon: usize, seed: u64) -> Self {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(seed);
        let h = Linear::new(&mut store, "h", time * features, hidden, &mut rng);
        let out = Linear::new(&mut store, "out", hidden, horizon, &mut rng);
        Self {
            store,
            hidden: h,
            out,
            time,
            features,
        }
    }
}

impl SequenceModel for TwoLayer {
    fn forward(&self, g: &mut Graph, x: &Tensor, _training: bool, _rng: &mut Rng) -> Var {
        let b = x.shape()[0];
        let flat = x.reshape(&[b, self.time * self.features]).unwrap();
        let xin = g.input(flat);
        let h = self.hidden.forward(g, xin);
        let h = g.tanh(h);
        self.out.forward(g, h)
    }

    fn params(&self) -> &ParamStore {
        &self.store
    }

    fn params_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    fn horizon(&self) -> usize {
        2
    }

    fn infer(&self, ctx: &mut InferenceContext, x: &Tensor) -> Tensor {
        let rows = x.shape()[0];
        let flat = x.as_slice();
        let mut h = self.hidden.infer(&self.store, ctx, flat, rows);
        autograd::infer::tanh_in_place(&mut h);
        let y = self.out.infer(&self.store, ctx, &h, rows);
        ctx.give(h);
        let out = Tensor::from_vec(y.clone(), &[rows, self.horizon()]);
        ctx.give(y);
        out
    }
}

/// Invariant 1: taped forward == tape-free infer, bit for bit, now that both
/// route through `tensor::gemm` (packed path at this batch size).
#[test]
fn taped_and_tape_free_agree_after_gemm_rerouting() {
    let model = TwoLayer::new(6, 3, 10, 2, 91);
    let mut rng = Rng::seed_from(17);
    let x = Tensor::rand_normal(&[5, 6, 3], 0.0, 1.0, &mut rng);

    let mut g = Graph::new(model.params());
    let mut frng = Rng::seed_from(0);
    let taped = model.forward(&mut g, &x, false, &mut frng);
    let taped = g.value(taped).clone();

    let tape_free = with_thread_context(|ctx| model.infer(ctx, &x));
    assert_eq!(taped.as_slice(), tape_free.as_slice());
    assert_eq!(taped.shape(), tape_free.shape());
}

/// Invariant 2: the executor's static row partition is invisible in the
/// bits — an explicit multi-worker pool, the global-pool `predict` driver,
/// and row-at-a-time sequential inference all agree exactly. Also checks
/// stability across repeated dispatches on one warm pool.
#[test]
fn executor_partition_is_bitwise_invisible() {
    let model = TwoLayer::new(4, 2, 7, 2, 23);
    let rows = MIN_PARALLEL_ROWS + 5;
    let mut rng = Rng::seed_from(29);
    let x = Tensor::rand_normal(&[rows, 4, 2], 0.0, 1.0, &mut rng);

    // Sequential reference: one row at a time, fresh context.
    let mut seq = Vec::new();
    for i in 0..rows {
        let xi = Tensor::from_vec(x.as_slice()[i * 8..(i + 1) * 8].to_vec(), &[1, 4, 2]);
        let yi = with_thread_context(|ctx| model.infer(ctx, &xi));
        seq.extend_from_slice(yi.as_slice());
    }

    // Global-pool driver (parallel when the host has >1 core, inline
    // otherwise — both must match).
    let via_predict = with_thread_context(|ctx| predict(&model, &x, 64, ctx));
    assert_eq!(via_predict.as_slice(), seq.as_slice());

    // Explicit pools of several widths, incl. more workers than rows/chunk.
    for workers in [2, 3, 4] {
        let exec = BatchExecutor::new(workers);
        for _ in 0..3 {
            let par = predict_on(&model, &x, 64, &exec);
            assert_eq!(
                par.as_slice(),
                seq.as_slice(),
                "{workers}-worker pool diverged from sequential"
            );
        }
    }

    // Tiny batch-size caps force per-worker sub-chunking; still identical.
    let exec = BatchExecutor::new(3);
    let chunked = predict_on(&model, &x, 2, &exec);
    assert_eq!(chunked.as_slice(), seq.as_slice());
}
