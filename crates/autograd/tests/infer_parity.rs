//! Bitwise parity of the fused conv fast paths against an independent
//! tap-wise reference, plus the in-place inference kernels against their
//! taped `tensor` counterparts.
//!
//! This is the suite the Miri CI job interprets: under Miri the AVX kernel
//! is replaced by a raw-pointer scalar twin with the same padded-scratch
//! layout (`cfg(miri)` in `conv_kernels.rs`), so Miri checks the bounds and
//! aliasing reasoning of the fast path while these assertions pin its
//! numerics to the reference bit for bit. Shapes are kept small enough for
//! an interpreter but large enough to cover the remainder (non-multiple-
//! of-4 output channels, non-multiple-of-8 time) lanes.

use autograd::conv1d_forward;
use autograd::infer::{
    add_channel_bias, add_row_bias, relu_in_place, sigmoid_in_place, softmax_rows_in_place,
    tanh_in_place,
};
use tensor::{Rng, Tensor};

/// Independent reference: accumulate tap-by-tap in `(out-channel,
/// in-channel, tap)` order, skipping exact-zero weights and the causal
/// warm-up region — a reimplementation of the slow path, NOT a call to it.
fn conv_reference(x: &Tensor, w: &Tensor, dilation: usize) -> Vec<f32> {
    let (batch, in_ch, time) = (x.shape()[0], x.shape()[1], x.shape()[2]);
    let (out_ch, _, k) = (w.shape()[0], w.shape()[1], w.shape()[2]);
    let dx = x.as_slice();
    let dw = w.as_slice();
    let mut out = vec![0.0f32; batch * out_ch * time];
    for b in 0..batch {
        for oc in 0..out_ch {
            let y = &mut out[(b * out_ch + oc) * time..(b * out_ch + oc + 1) * time];
            for ic in 0..in_ch {
                let xr = &dx[(b * in_ch + ic) * time..(b * in_ch + ic + 1) * time];
                let wr = &dw[(oc * in_ch + ic) * k..(oc * in_ch + ic + 1) * k];
                for (kk, &wv) in wr.iter().enumerate() {
                    if wv == 0.0 {
                        continue;
                    }
                    let shift = (k - 1 - kk) * dilation;
                    for t in shift..time {
                        y[t] += wv * xr[t - shift];
                    }
                }
            }
        }
    }
    out
}

/// Weights with no exact zeros, so the fused fast path engages.
fn nonzero_weights(shape: &[usize], rng: &mut Rng) -> Tensor {
    let mut w = Tensor::rand_normal(shape, 0.0, 0.5, rng);
    for v in w.as_mut_slice() {
        if *v == 0.0 {
            *v = 0.25;
        }
    }
    w
}

#[test]
fn fused_conv_matches_reference_bitwise_across_dilations() {
    let mut rng = Rng::seed_from(33);
    // 6 output channels exercise the 4-wide main loop plus remainder rows;
    // time=19 exercises the partial final vector lane.
    let (ic, oc, time) = (4, 6, 19);
    for &d in &[1usize, 2, 4] {
        let x = Tensor::rand_normal(&[2, ic, time], 0.0, 1.0, &mut rng);
        let w = nonzero_weights(&[oc, ic, 3], &mut rng);
        let fast = conv1d_forward(&x, &w, d);
        let reference = conv_reference(&x, &w, d);
        for (i, (a, b)) in fast.as_slice().iter().zip(&reference).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "d={d} idx={i}: {a} vs {b}");
        }
    }
}

#[test]
fn zero_weights_route_to_the_reference_path_and_agree() {
    let mut rng = Rng::seed_from(34);
    let x = Tensor::rand_normal(&[1, 3, 12], 0.0, 1.0, &mut rng);
    let mut w = Tensor::rand_normal(&[2, 3, 3], 0.0, 0.5, &mut rng);
    // An exact zero disables the fused path; results must still agree.
    w.as_mut_slice()[4] = 0.0;
    let out = conv1d_forward(&x, &w, 2);
    let reference = conv_reference(&x, &w, 2);
    for (a, b) in out.as_slice().iter().zip(&reference) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
}

#[test]
fn in_place_activations_match_taped_kernels_bitwise() {
    let mut rng = Rng::seed_from(35);
    let x = Tensor::rand_normal(&[4, 9], 0.0, 2.0, &mut rng);

    let mut buf = x.as_slice().to_vec();
    relu_in_place(&mut buf);
    assert_eq!(buf, tensor::ops::relu(&x).as_slice());

    let mut buf = x.as_slice().to_vec();
    tanh_in_place(&mut buf);
    assert_eq!(buf, tensor::ops::tanh(&x).as_slice());

    let mut buf = x.as_slice().to_vec();
    sigmoid_in_place(&mut buf);
    assert_eq!(buf, tensor::ops::sigmoid(&x).as_slice());

    let mut buf = x.as_slice().to_vec();
    softmax_rows_in_place(&mut buf, 4, 9);
    assert_eq!(buf, tensor::reduce::softmax_rows(&x).as_slice());
}

#[test]
fn bias_broadcasts_match_taped_adds_bitwise() {
    let mut rng = Rng::seed_from(36);
    let (rows, cols) = (3, 5);
    let out = Tensor::rand_normal(&[rows, cols], 0.0, 1.0, &mut rng);
    let bias = Tensor::rand_normal(&[cols], 0.0, 1.0, &mut rng);
    let mut buf = out.as_slice().to_vec();
    add_row_bias(&mut buf, bias.as_slice(), rows, cols);
    assert_eq!(buf, tensor::ops::add(&out, &bias).as_slice());

    let (batch, ch, time) = (2, 3, 7);
    let out = Tensor::rand_normal(&[batch, ch, time], 0.0, 1.0, &mut rng);
    let bias = Tensor::rand_normal(&[ch, 1], 0.0, 1.0, &mut rng);
    let mut buf = out.as_slice().to_vec();
    add_channel_bias(&mut buf, bias.as_slice(), batch, ch, time);
    assert_eq!(buf, tensor::ops::add(&out, &bias).as_slice());
}
