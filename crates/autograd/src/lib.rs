//! # autograd — reverse-mode autodiff and neural-network toolkit
//!
//! Everything the RPTCN reproduction needs to train deep models on CPU,
//! written from scratch on top of the `tensor` crate:
//!
//! * [`Graph`] — an eager, tape-based reverse-mode autodiff engine. Building
//!   an expression *is* the forward pass; [`Graph::backward`] returns
//!   per-parameter [`Gradients`].
//! * [`layers`] — `Linear`, dilated-causal `CausalConv1d` (with weight
//!   normalisation), `Lstm`, `Dropout` (incl. the spatial variant) and the
//!   paper's attention mechanisms.
//! * [`optim`] — SGD (+momentum), Adam, RMSProp with gradient clipping.
//! * [`loss`] — MSE / MAE / Huber as tape compositions.
//! * [`train`] — mini-batch [`train::fit`] loop with validation tracking and
//!   Keras-style early stopping (`patience`), producing the
//!   [`train::TrainHistory`] the convergence figures are drawn from.
//!
//! The design decision worth knowing: one `Graph` per training step,
//! borrowing the [`ParamStore`] immutably. Gradients come back as a separate
//! value, so optimisers take `(&mut ParamStore, &Gradients)` with no interior
//! mutability anywhere.

// The SIMD conv kernels are the workspace's only unsafe code; make every
// unsafe operation inside an `unsafe fn` carry its own block + SAFETY note.
#![deny(unsafe_op_in_unsafe_fn)]

pub mod batch_exec;
mod conv_kernels;
mod graph;
pub mod infer;
pub mod init;
pub mod layers;
pub mod loss;
pub mod optim;
mod params;
pub mod train;

pub use conv_kernels::{
    conv1d_backward_input, conv1d_backward_weight, conv1d_forward, conv1d_into,
};
pub use graph::{Graph, Var};
pub use infer::InferenceContext;
pub use init::Init;
pub use loss::LossKind;
pub use params::{Gradients, ParamId, ParamStore, RestoreError};
pub use train::{fit, predict, SequenceModel, TrainConfig, TrainHistory};
