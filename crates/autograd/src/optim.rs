//! First-order optimisers operating on a [`ParamStore`] and a set of
//! [`Gradients`] returned by [`crate::Graph::backward`].

use tensor::Tensor;

use crate::params::{Gradients, ParamStore};

/// A first-order optimiser. Implementations keep their own per-parameter
/// state (moments), lazily initialised on the first step.
pub trait Optimizer {
    /// Apply one update from `grads`. Parameters without a gradient are
    /// untouched.
    fn step(&mut self, store: &mut ParamStore, grads: &Gradients);

    /// Current learning rate (useful for schedules and logging).
    fn learning_rate(&self) -> f32;

    /// Override the learning rate (e.g. for decay schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Stochastic gradient descent with optional classical momentum.
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<Option<Tensor>>,
}

impl Sgd {
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            momentum: 0.0,
            velocity: Vec::new(),
        }
    }

    pub fn with_momentum(lr: f32, momentum: f32) -> Self {
        assert!((0.0..1.0).contains(&momentum));
        Self {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, store: &mut ParamStore, grads: &Gradients) {
        self.velocity.resize(store.len(), None);
        for i in 0..store.len() {
            let id = crate::params::ParamId(i);
            let Some(g) = grads.get(id) else { continue };
            let value = store.value_mut(id);
            if self.momentum > 0.0 {
                let v = self.velocity[i].get_or_insert_with(|| Tensor::zeros(g.shape()));
                for (vs, &gs) in v.as_mut_slice().iter_mut().zip(g.as_slice()) {
                    *vs = self.momentum * *vs + gs;
                }
                for (p, &vs) in value.as_mut_slice().iter_mut().zip(v.as_slice()) {
                    *p -= self.lr * vs;
                }
            } else {
                for (p, &gs) in value.as_mut_slice().iter_mut().zip(g.as_slice()) {
                    *p -= self.lr * gs;
                }
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam (Kingma & Ba 2015) — the optimiser the paper's Keras setup defaults
/// to, and what all deep models in this reproduction train with.
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    step: u64,
    m: Vec<Option<Tensor>>,
    v: Vec<Option<Tensor>>,
}

impl Adam {
    pub fn new(lr: f32) -> Self {
        Self::with_betas(lr, 0.9, 0.999, 1e-8)
    }

    pub fn with_betas(lr: f32, beta1: f32, beta2: f32, eps: f32) -> Self {
        assert!((0.0..1.0).contains(&beta1) && (0.0..1.0).contains(&beta2));
        Self {
            lr,
            beta1,
            beta2,
            eps,
            step: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, store: &mut ParamStore, grads: &Gradients) {
        self.m.resize(store.len(), None);
        self.v.resize(store.len(), None);
        self.step += 1;
        let bc1 = 1.0 - self.beta1.powi(self.step as i32);
        let bc2 = 1.0 - self.beta2.powi(self.step as i32);
        for i in 0..store.len() {
            let id = crate::params::ParamId(i);
            let Some(g) = grads.get(id) else { continue };
            let m = self.m[i].get_or_insert_with(|| Tensor::zeros(g.shape()));
            let v = self.v[i].get_or_insert_with(|| Tensor::zeros(g.shape()));
            let value = store.value_mut(id);
            for (((p, ms), vs), &gs) in value
                .as_mut_slice()
                .iter_mut()
                .zip(m.as_mut_slice())
                .zip(v.as_mut_slice())
                .zip(g.as_slice())
            {
                *ms = self.beta1 * *ms + (1.0 - self.beta1) * gs;
                *vs = self.beta2 * *vs + (1.0 - self.beta2) * gs * gs;
                let m_hat = *ms / bc1;
                let v_hat = *vs / bc2;
                *p -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// RMSProp — kept as an alternative for the convergence-comparison ablation.
pub struct RmsProp {
    lr: f32,
    decay: f32,
    eps: f32,
    cache: Vec<Option<Tensor>>,
}

impl RmsProp {
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            decay: 0.9,
            eps: 1e-8,
            cache: Vec::new(),
        }
    }
}

impl Optimizer for RmsProp {
    fn step(&mut self, store: &mut ParamStore, grads: &Gradients) {
        self.cache.resize(store.len(), None);
        for i in 0..store.len() {
            let id = crate::params::ParamId(i);
            let Some(g) = grads.get(id) else { continue };
            let c = self.cache[i].get_or_insert_with(|| Tensor::zeros(g.shape()));
            let value = store.value_mut(id);
            for ((p, cs), &gs) in value
                .as_mut_slice()
                .iter_mut()
                .zip(c.as_mut_slice())
                .zip(g.as_slice())
            {
                *cs = self.decay * *cs + (1.0 - self.decay) * gs * gs;
                *p -= self.lr * gs / (cs.sqrt() + self.eps);
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    /// Minimise L(w) = mean((w - target)^2) and assert convergence.
    fn converges(mut opt: impl Optimizer, steps: usize, tol: f32) {
        let target = Tensor::from_vec(vec![1.0, -2.0, 0.5], &[3]);
        let mut store = ParamStore::new();
        let wid = store.register("w", Tensor::zeros(&[3]));
        for _ in 0..steps {
            let mut g = Graph::new(&store);
            let w = g.param(wid);
            let t = g.input(target.clone());
            let d = g.sub(w, t);
            let sq = g.square(d);
            let loss = g.mean_all(sq);
            let grads = g.backward(loss);
            opt.step(&mut store, &grads);
        }
        let final_w = store.value(wid);
        assert!(
            final_w.allclose(&target, tol),
            "did not converge: {:?}",
            final_w
        );
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        converges(Sgd::new(0.5), 200, 1e-3);
    }

    #[test]
    fn sgd_momentum_converges_on_quadratic() {
        converges(Sgd::with_momentum(0.1, 0.9), 300, 1e-2);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        converges(Adam::new(0.05), 600, 1e-2);
    }

    #[test]
    fn rmsprop_converges_on_quadratic() {
        converges(RmsProp::new(0.02), 800, 2e-2);
    }

    #[test]
    fn missing_gradients_leave_params_untouched() {
        let mut store = ParamStore::new();
        let a = store.register("a", Tensor::ones(&[2]));
        let b = store.register("b", Tensor::ones(&[2]));
        let mut opt = Adam::new(0.1);
        let mut g = Graph::new(&store);
        let va = g.param(a);
        let loss = g.sum_all(va);
        let grads = g.backward(loss);
        opt.step(&mut store, &grads);
        assert_ne!(store.value(a).as_slice(), &[1.0, 1.0]);
        assert_eq!(store.value(b).as_slice(), &[1.0, 1.0]);
    }

    #[test]
    fn learning_rate_adjustable() {
        let mut opt = Adam::new(0.1);
        assert_eq!(opt.learning_rate(), 0.1);
        opt.set_learning_rate(0.01);
        assert_eq!(opt.learning_rate(), 0.01);
    }
}
