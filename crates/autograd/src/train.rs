//! Mini-batch training loop with validation tracking and early stopping —
//! mirrors the paper's Keras setup (`EarlyStopping`, `patience = 10`).

use tensor::{Rng, Tensor};

use crate::graph::{Graph, Var};
use crate::infer::InferenceContext;
use crate::loss::LossKind;
use crate::optim::Optimizer;
use crate::params::ParamStore;

/// A supervised sequence model trainable by [`fit`]: windows of shape
/// `[batch, time, features]` in, predictions `[batch, horizon]` out.
pub trait SequenceModel {
    /// Build the forward pass on the tape. `training` toggles dropout.
    fn forward(&self, g: &mut Graph, x: &Tensor, training: bool, rng: &mut Rng) -> Var;

    /// The model's parameters.
    fn params(&self) -> &ParamStore;

    /// Mutable access for the optimiser.
    fn params_mut(&mut self) -> &mut ParamStore;

    /// Prediction horizon (target width).
    fn horizon(&self) -> usize;

    /// Tape-free forward pass for serving: `x: [batch, time, features]` to
    /// `[batch, horizon]` predictions, with scratch drawn from `ctx`.
    ///
    /// The default falls back to building a throwaway tape (correct but
    /// slow); models override it with an arena-based implementation. The
    /// RNG seed matches `models`' deterministic predict path — dropout is
    /// off during inference, so the RNG is never actually consumed.
    fn infer(&self, ctx: &mut InferenceContext, x: &Tensor) -> Tensor {
        let _ = ctx;
        let mut rng = Rng::seed_from(0);
        let mut g = Graph::new(self.params());
        let pred = self.forward(&mut g, x, false, &mut rng);
        g.value(pred).clone()
    }
}

/// Hyper-parameters for one [`fit`] call.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    pub epochs: usize,
    pub batch_size: usize,
    pub loss: LossKind,
    /// Clip the global gradient norm when set.
    pub clip_norm: Option<f32>,
    /// Early-stopping patience in epochs (paper: 10). `None` disables it.
    pub patience: Option<usize>,
    pub shuffle: bool,
    pub seed: u64,
    /// Divergence guard: an epoch whose training loss is non-finite,
    /// exceeds `spike_factor ×` the previous epoch's loss, or leaves
    /// non-finite weights behind is rolled back to the last good parameter
    /// snapshot. `None` disables the guard (and the per-epoch snapshot).
    pub spike_factor: Option<f64>,
    /// Rollbacks tolerated before training aborts with
    /// [`TrainHistory::diverged`] set — bounds how long a hopeless run can
    /// thrash.
    pub max_rollbacks: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 30,
            batch_size: 64,
            loss: LossKind::Mse,
            clip_norm: Some(5.0),
            patience: Some(10),
            shuffle: true,
            seed: 0,
            spike_factor: Some(1e3),
            max_rollbacks: 2,
        }
    }
}

/// Per-epoch record of a training run; the raw material for the paper's
/// convergence figures (Figs 9–10).
#[derive(Debug, Clone, Default)]
pub struct TrainHistory {
    pub train_loss: Vec<f64>,
    pub valid_loss: Vec<f64>,
    pub best_epoch: usize,
    pub stopped_early: bool,
    /// Epochs undone by the divergence guard (non-finite or spiking loss).
    pub rollbacks: usize,
    /// Training aborted because the rollback budget was exhausted. The
    /// model holds the last good (finite) weights, not the diverged ones.
    pub diverged: bool,
}

impl TrainHistory {
    pub fn epochs_run(&self) -> usize {
        self.train_loss.len()
    }

    pub fn final_train_loss(&self) -> f64 {
        self.train_loss.last().copied().unwrap_or(f64::NAN)
    }

    pub fn best_valid_loss(&self) -> f64 {
        self.valid_loss
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
    }
}

/// Gather rows (axis 0) of a tensor into a new tensor.
pub fn take_rows(t: &Tensor, rows: &[usize]) -> Tensor {
    let shape = t.shape();
    assert!(!shape.is_empty());
    let row_len: usize = shape[1..].iter().product();
    let mut out = Vec::with_capacity(rows.len() * row_len);
    for &r in rows {
        assert!(r < shape[0], "row {r} out of {}", shape[0]);
        out.extend_from_slice(&t.as_slice()[r * row_len..(r + 1) * row_len]);
    }
    let mut new_shape = shape.to_vec();
    new_shape[0] = rows.len();
    Tensor::from_vec(out, &new_shape)
}

/// Train `model` on `(x, y)` with optional validation data.
///
/// * `x`: `[n, time, features]`, `y`: `[n, horizon]`.
/// * With validation and patience set, training stops after `patience`
///   epochs without improvement and the best weights are restored.
pub fn fit<M: SequenceModel>(
    model: &mut M,
    x: &Tensor,
    y: &Tensor,
    valid: Option<(&Tensor, &Tensor)>,
    opt: &mut dyn Optimizer,
    cfg: &TrainConfig,
) -> TrainHistory {
    assert_eq!(x.shape()[0], y.shape()[0], "x/y row mismatch");
    assert!(x.shape()[0] > 0, "empty training set");
    let n = x.shape()[0];
    let mut rng = Rng::seed_from(cfg.seed);
    let mut order: Vec<usize> = (0..n).collect();

    let mut history = TrainHistory::default();
    let mut best_valid = f64::INFINITY;
    let mut best_snapshot: Option<Vec<Tensor>> = None;
    let mut epochs_since_best = 0usize;
    // Divergence guard: the last parameter snapshot known to be finite and
    // non-spiking, plus the loss it achieved.
    let mut last_good: Option<(Vec<Tensor>, f64)> = cfg
        .spike_factor
        .map(|_| (model.params().snapshot(), f64::INFINITY));

    for _epoch in 0..cfg.epochs {
        if cfg.shuffle {
            rng.shuffle(&mut order);
        }
        let mut epoch_loss = 0.0f64;
        let mut batches = 0usize;
        for chunk in order.chunks(cfg.batch_size.max(1)) {
            let xb = take_rows(x, chunk);
            let yb = take_rows(y, chunk);
            let mut g = Graph::new(model.params());
            let pred = model.forward(&mut g, &xb, true, &mut rng);
            let loss = cfg.loss.build(&mut g, pred, &yb);
            epoch_loss += g.value(loss).item() as f64;
            batches += 1;
            let mut grads = g.backward(loss);
            if let Some(max_norm) = cfg.clip_norm {
                grads.clip_global_norm(max_norm);
            }
            if !grads.all_finite() {
                // A diverged batch (NaN/inf) would poison the weights; skip
                // the update and let the next batches recover.
                continue;
            }
            opt.step(model.params_mut(), &grads);
        }
        let epoch_mean = epoch_loss / batches.max(1) as f64;
        history.train_loss.push(epoch_mean);

        if let Some(factor) = cfg.spike_factor {
            let (snapshot, prev_loss) = last_good
                .as_mut()
                .expect("guard snapshot exists when spike_factor is set");
            let spiked = prev_loss.is_finite() && epoch_mean > prev_loss.abs() * factor + 1e-12;
            if !epoch_mean.is_finite() || spiked || !model.params().all_finite() {
                // Undo the whole epoch: diverged weights would poison every
                // later epoch (and, in serving, every later forecast).
                model
                    .params_mut()
                    .restore(snapshot)
                    .expect("last-good snapshot was taken from this very store");
                history.rollbacks += 1;
                if history.rollbacks > cfg.max_rollbacks {
                    history.diverged = true;
                    break;
                }
                continue; // skip validation: the epoch never happened
            }
            *snapshot = model.params().snapshot();
            *prev_loss = epoch_mean;
        }

        if let Some((xv, yv)) = valid {
            let pv = predict(model, xv, cfg.batch_size, &mut rng);
            let vl = cfg.loss.eval(&pv, yv);
            history.valid_loss.push(vl);
            if vl < best_valid {
                best_valid = vl;
                history.best_epoch = history.valid_loss.len() - 1;
                best_snapshot = Some(model.params().snapshot());
                epochs_since_best = 0;
            } else {
                epochs_since_best += 1;
                if let Some(patience) = cfg.patience {
                    if epochs_since_best >= patience {
                        history.stopped_early = true;
                        break;
                    }
                }
            }
        }
    }
    if let Some(snap) = best_snapshot {
        model
            .params_mut()
            .restore(&snap)
            .expect("early-stopping snapshot was taken from this very store");
    }
    history
}

/// Run inference over `x` in batches (dropout disabled), returning
/// `[n, horizon]` predictions.
pub fn predict<M: SequenceModel>(
    model: &M,
    x: &Tensor,
    batch_size: usize,
    rng: &mut Rng,
) -> Tensor {
    let n = x.shape()[0];
    let horizon = model.horizon();
    let mut out = Vec::with_capacity(n * horizon);
    let rows: Vec<usize> = (0..n).collect();
    for chunk in rows.chunks(batch_size.max(1)) {
        let xb = take_rows(x, chunk);
        let mut g = Graph::new(model.params());
        let pred = model.forward(&mut g, &xb, false, rng);
        out.extend_from_slice(g.value(pred).as_slice());
    }
    Tensor::from_vec(out, &[n, horizon])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::linear::Linear;
    use crate::optim::Adam;

    /// Minimal model: flatten the window and apply one linear layer.
    struct FlatLinear {
        store: ParamStore,
        layer: Linear,
        time: usize,
        features: usize,
    }

    impl FlatLinear {
        fn new(time: usize, features: usize, horizon: usize, seed: u64) -> Self {
            let mut store = ParamStore::new();
            let mut rng = Rng::seed_from(seed);
            let layer = Linear::new(&mut store, "out", time * features, horizon, &mut rng);
            Self {
                store,
                layer,
                time,
                features,
            }
        }
    }

    impl SequenceModel for FlatLinear {
        fn forward(&self, g: &mut Graph, x: &Tensor, _training: bool, _rng: &mut Rng) -> Var {
            let b = x.shape()[0];
            let flat = x.reshape(&[b, self.time * self.features]).unwrap();
            let xin = g.input(flat);
            self.layer.forward(g, xin)
        }

        fn params(&self) -> &ParamStore {
            &self.store
        }

        fn params_mut(&mut self) -> &mut ParamStore {
            &mut self.store
        }

        fn horizon(&self) -> usize {
            1
        }
    }

    /// y = mean of the window: exactly representable by the linear model.
    fn toy_dataset(n: usize, time: usize, features: usize, seed: u64) -> (Tensor, Tensor) {
        let mut rng = Rng::seed_from(seed);
        let x = Tensor::rand_uniform(&[n, time, features], 0.0, 1.0, &mut rng);
        let ys: Vec<f32> = (0..n)
            .map(|i| {
                let row = &x.as_slice()[i * time * features..(i + 1) * time * features];
                row.iter().sum::<f32>() / row.len() as f32
            })
            .collect();
        (x, Tensor::from_vec(ys, &[n, 1]))
    }

    #[test]
    fn take_rows_gathers() {
        let t = Tensor::arange(12).into_reshape(&[4, 3]).unwrap();
        let picked = take_rows(&t, &[2, 0]);
        assert_eq!(picked.shape(), &[2, 3]);
        assert_eq!(picked.as_slice(), &[6.0, 7.0, 8.0, 0.0, 1.0, 2.0]);
    }

    #[test]
    fn training_reduces_loss() {
        let (x, y) = toy_dataset(256, 4, 2, 1);
        let mut model = FlatLinear::new(4, 2, 1, 2);
        let mut opt = Adam::new(0.01);
        let cfg = TrainConfig {
            epochs: 40,
            patience: None,
            ..Default::default()
        };
        let hist = fit(&mut model, &x, &y, None, &mut opt, &cfg);
        assert_eq!(hist.epochs_run(), 40);
        assert!(
            hist.final_train_loss() < hist.train_loss[0] * 0.05,
            "loss barely moved: {:?} -> {:?}",
            hist.train_loss[0],
            hist.final_train_loss()
        );
    }

    #[test]
    fn early_stopping_halts_and_restores_best() {
        let (x, y) = toy_dataset(128, 3, 2, 3);
        let (xv, yv) = toy_dataset(64, 3, 2, 4);
        let mut model = FlatLinear::new(3, 2, 1, 5);
        let mut opt = Adam::new(0.02);
        let cfg = TrainConfig {
            epochs: 200,
            patience: Some(5),
            ..Default::default()
        };
        let hist = fit(&mut model, &x, &y, Some((&xv, &yv)), &mut opt, &cfg);
        assert!(hist.epochs_run() < 200, "early stopping never fired");
        // Restored weights reproduce the best validation loss.
        let mut rng = Rng::seed_from(0);
        let pv = predict(&model, &xv, 32, &mut rng);
        let vl = LossKind::Mse.eval(&pv, &yv);
        assert!((vl - hist.best_valid_loss()).abs() < 1e-9);
    }

    #[test]
    fn divergence_guard_rolls_back_and_aborts() {
        let (x, y) = toy_dataset(64, 3, 2, 11);
        let mut model = FlatLinear::new(3, 2, 1, 12);
        // An absurd learning rate overflows the weights within one epoch:
        // every epoch ends non-finite and is rolled back.
        let mut opt = Adam::new(1e30);
        let cfg = TrainConfig {
            epochs: 20,
            batch_size: 16,
            patience: None,
            max_rollbacks: 2,
            ..Default::default()
        };
        let hist = fit(&mut model, &x, &y, None, &mut opt, &cfg);
        assert!(hist.diverged, "guard never fired: {:?}", hist.train_loss);
        assert_eq!(hist.rollbacks, 3, "stops right after the budget");
        assert!(
            hist.epochs_run() < 20,
            "aborted early instead of thrashing all epochs"
        );
        // The model holds the last good snapshot, not the exploded weights.
        assert!(model.params().all_finite());
        let mut rng = Rng::seed_from(0);
        let p = predict(&model, &x, 16, &mut rng);
        assert!(p.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn disabled_guard_keeps_legacy_behaviour() {
        let (x, y) = toy_dataset(64, 3, 2, 13);
        let mut model = FlatLinear::new(3, 2, 1, 14);
        let mut opt = Adam::new(0.01);
        let cfg = TrainConfig {
            epochs: 5,
            patience: None,
            spike_factor: None,
            ..Default::default()
        };
        let hist = fit(&mut model, &x, &y, None, &mut opt, &cfg);
        assert_eq!(hist.epochs_run(), 5);
        assert_eq!(hist.rollbacks, 0);
        assert!(!hist.diverged);
    }

    #[test]
    fn spike_guard_undoes_loss_explosions() {
        let (x, y) = toy_dataset(64, 3, 2, 15);
        let mut model = FlatLinear::new(3, 2, 1, 16);
        let mut opt = Adam::new(0.01);
        // First fit normally so the loss is small and stable.
        let warm = TrainConfig {
            epochs: 30,
            patience: None,
            ..Default::default()
        };
        fit(&mut model, &x, &y, None, &mut opt, &warm);
        // Now continue with a step size large enough to spike the loss;
        // a tight spike factor must catch and undo it.
        let mut wild = Adam::new(10.0);
        let cfg = TrainConfig {
            epochs: 10,
            patience: None,
            spike_factor: Some(10.0),
            max_rollbacks: 1,
            ..Default::default()
        };
        let hist = fit(&mut model, &x, &y, None, &mut wild, &cfg);
        assert!(
            hist.rollbacks >= 1,
            "spike never detected: {:?}",
            hist.train_loss
        );
        assert!(model.params().all_finite());
    }

    #[test]
    fn predict_shape_and_determinism() {
        let (x, _) = toy_dataset(10, 3, 2, 6);
        let model = FlatLinear::new(3, 2, 1, 7);
        let mut rng = Rng::seed_from(0);
        let p1 = predict(&model, &x, 4, &mut rng);
        let p2 = predict(&model, &x, 10, &mut rng);
        assert_eq!(p1.shape(), &[10, 1]);
        assert!(p1.allclose(&p2, 1e-6), "batch size changed predictions");
    }

    #[test]
    fn history_tracks_validation() {
        let (x, y) = toy_dataset(64, 3, 2, 8);
        let mut model = FlatLinear::new(3, 2, 1, 9);
        let mut opt = Adam::new(0.01);
        let cfg = TrainConfig {
            epochs: 5,
            patience: None,
            ..Default::default()
        };
        let hist = fit(&mut model, &x, &y, Some((&x, &y)), &mut opt, &cfg);
        assert_eq!(hist.train_loss.len(), 5);
        assert_eq!(hist.valid_loss.len(), 5);
        assert!(hist.best_epoch < 5);
    }
}
