//! Loss functions expressed as tape compositions.

use tensor::Tensor;

use crate::graph::{Graph, Var};

/// Mean squared error (paper eq. 9) between `pred` and a constant `target`.
pub fn mse(g: &mut Graph, pred: Var, target: &Tensor) -> Var {
    let t = g.input(target.clone());
    let d = g.sub(pred, t);
    let sq = g.square(d);
    g.mean_all(sq)
}

/// Mean absolute error (paper eq. 10).
pub fn mae(g: &mut Graph, pred: Var, target: &Tensor) -> Var {
    let t = g.input(target.clone());
    let d = g.sub(pred, t);
    let a = g.abs(d);
    g.mean_all(a)
}

/// Huber loss with threshold `delta` — quadratic near zero, linear in the
/// tails; robust to the usage spikes high-dynamic traces contain.
pub fn huber(g: &mut Graph, pred: Var, target: &Tensor, delta: f32) -> Var {
    let t = g.input(target.clone());
    let d = g.sub(pred, t);
    let h = g.huber_on_diff(d, delta);
    g.mean_all(h)
}

/// Pinball (quantile) loss at level `tau`: for `u = target − pred`,
/// `mean(τ·max(u, 0) + (1−τ)·max(−u, 0))`. Minimised in expectation when
/// `pred` is the `τ`-quantile of the target distribution — the head loss
/// that turns a point forecaster into an interval forecaster.
pub fn pinball(g: &mut Graph, pred: Var, target: &Tensor, tau: f32) -> Var {
    let t = g.input(target.clone());
    let u = g.sub(t, pred);
    let over = g.relu(u); // u > 0: target above the quantile estimate
    let neg_u = g.neg(u);
    let under = g.relu(neg_u); // u < 0: estimate above the target
    let w_over = g.scale(over, tau);
    let w_under = g.scale(under, 1.0 - tau);
    let total = g.add(w_over, w_under);
    g.mean_all(total)
}

/// Pinball loss on plain tensors, for validation.
fn pinball_eval(pred: &[f32], target: &[f32], tau: f64) -> f64 {
    let n = pred.len().max(1) as f64;
    pred.iter()
        .zip(target)
        .map(|(&p, &t)| {
            let u = (t - p) as f64;
            if u >= 0.0 {
                tau * u
            } else {
                (tau - 1.0) * u
            }
        })
        .sum::<f64>()
        / n
}

/// Which loss a trainer should build.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LossKind {
    Mse,
    Mae,
    Huber(f32),
    /// Pinball (quantile) loss at one level; `pred` estimates the
    /// `τ`-quantile of the target.
    Pinball(f32),
    /// Composite point + interval loss for a multi-head model emitting
    /// `[n, 3·horizon]` predictions laid out as `[point | q_lo | q_hi]`
    /// column blocks against an `[n, horizon]` target: MSE on the point
    /// block plus pinball at `lo`/`hi` on the quantile blocks.
    PointInterval {
        lo: f32,
        hi: f32,
    },
}

impl LossKind {
    /// Build this loss on the tape.
    pub fn build(self, g: &mut Graph, pred: Var, target: &Tensor) -> Var {
        match self {
            LossKind::Mse => mse(g, pred, target),
            LossKind::Mae => mae(g, pred, target),
            LossKind::Huber(delta) => huber(g, pred, target, delta),
            LossKind::Pinball(tau) => pinball(g, pred, target, tau),
            LossKind::PointInterval { lo, hi } => {
                let h = target.shape()[target.shape().len() - 1];
                let point = g.slice_cols(pred, 0, h);
                let q_lo = g.slice_cols(pred, h, 2 * h);
                let q_hi = g.slice_cols(pred, 2 * h, 3 * h);
                let l_point = mse(g, point, target);
                let l_lo = pinball(g, q_lo, target, lo);
                let l_hi = pinball(g, q_hi, target, hi);
                let partial = g.add(l_point, l_lo);
                g.add(partial, l_hi)
            }
        }
    }

    /// Evaluate the loss on plain tensors (no tape), for validation.
    /// [`LossKind::PointInterval`] accepts the wide `[n, 3·horizon]`
    /// prediction its tape form trains; every other variant requires
    /// matching shapes.
    pub fn eval(self, pred: &Tensor, target: &Tensor) -> f64 {
        if let LossKind::PointInterval { lo, hi } = self {
            return point_interval_eval(pred, target, lo as f64, hi as f64);
        }
        assert_eq!(pred.shape(), target.shape(), "loss eval shape mismatch");
        let n = pred.len().max(1) as f64;
        match self {
            LossKind::Mse => {
                pred.as_slice()
                    .iter()
                    .zip(target.as_slice())
                    .map(|(&p, &t)| ((p - t) as f64).powi(2))
                    .sum::<f64>()
                    / n
            }
            LossKind::Mae => {
                pred.as_slice()
                    .iter()
                    .zip(target.as_slice())
                    .map(|(&p, &t)| ((p - t) as f64).abs())
                    .sum::<f64>()
                    / n
            }
            LossKind::Huber(delta) => {
                let delta = delta as f64;
                pred.as_slice()
                    .iter()
                    .zip(target.as_slice())
                    .map(|(&p, &t)| {
                        let d = (p - t) as f64;
                        if d.abs() <= delta {
                            0.5 * d * d
                        } else {
                            delta * (d.abs() - 0.5 * delta)
                        }
                    })
                    .sum::<f64>()
                    / n
            }
            LossKind::Pinball(tau) => pinball_eval(pred.as_slice(), target.as_slice(), tau as f64),
            LossKind::PointInterval { .. } => unreachable!("handled above"),
        }
    }
}

/// [`LossKind::PointInterval`] on plain tensors: slice the `[n, 3h]`
/// prediction into its `[point | q_lo | q_hi]` blocks and sum MSE on the
/// point with pinball on the two quantile heads.
fn point_interval_eval(pred: &Tensor, target: &Tensor, lo: f64, hi: f64) -> f64 {
    let h = target.shape()[target.shape().len() - 1];
    let rows = target.len() / h.max(1);
    assert_eq!(
        pred.shape().last().copied(),
        Some(3 * h),
        "PointInterval eval needs [n, 3·horizon] predictions"
    );
    let (p, t) = (pred.as_slice(), target.as_slice());
    let mut mse_sum = 0.0f64;
    let mut lo_sum = 0.0f64;
    let mut hi_sum = 0.0f64;
    for r in 0..rows {
        let row = &p[r * 3 * h..(r + 1) * 3 * h];
        let truth = &t[r * h..(r + 1) * h];
        for i in 0..h {
            let d = (row[i] - truth[i]) as f64;
            mse_sum += d * d;
            let u_lo = (truth[i] - row[h + i]) as f64;
            lo_sum += if u_lo >= 0.0 {
                lo * u_lo
            } else {
                (lo - 1.0) * u_lo
            };
            let u_hi = (truth[i] - row[2 * h + i]) as f64;
            hi_sum += if u_hi >= 0.0 {
                hi * u_hi
            } else {
                (hi - 1.0) * u_hi
            };
        }
    }
    let n = (rows * h).max(1) as f64;
    (mse_sum + lo_sum + hi_sum) / n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ParamStore;

    fn loss_value(kind: LossKind, pred: Vec<f32>, target: Vec<f32>) -> (f32, f64) {
        let n = pred.len();
        let store = ParamStore::new();
        let mut g = Graph::new(&store);
        let p = g.input(Tensor::from_vec(pred.clone(), &[n]));
        let t = Tensor::from_vec(target, &[n]);
        let l = kind.build(&mut g, p, &t);
        let tape_val = g.value(l).item();
        let eval_val = kind.eval(&Tensor::from_vec(pred, &[n]), &t);
        (tape_val, eval_val)
    }

    #[test]
    fn mse_matches_hand_computation() {
        let (tape, eval) = loss_value(LossKind::Mse, vec![1.0, 2.0], vec![0.0, 4.0]);
        assert!((tape - 2.5).abs() < 1e-6);
        assert!((eval - 2.5).abs() < 1e-9);
    }

    #[test]
    fn mae_matches_hand_computation() {
        let (tape, eval) = loss_value(LossKind::Mae, vec![1.0, 2.0], vec![0.0, 4.0]);
        assert!((tape - 1.5).abs() < 1e-6);
        assert!((eval - 1.5).abs() < 1e-9);
    }

    #[test]
    fn huber_is_quadratic_then_linear() {
        // |d| = 0.5 <= 1 -> 0.125 ; |d| = 3 > 1 -> 1*(3-0.5) = 2.5
        let (tape, eval) = loss_value(LossKind::Huber(1.0), vec![0.5, 3.0], vec![0.0, 0.0]);
        let expected = (0.125 + 2.5) / 2.0;
        assert!((tape - expected).abs() < 1e-6);
        assert!((eval - expected as f64).abs() < 1e-9);
    }

    #[test]
    fn perfect_prediction_has_zero_loss() {
        for kind in [
            LossKind::Mse,
            LossKind::Mae,
            LossKind::Huber(1.0),
            LossKind::Pinball(0.9),
        ] {
            let (tape, eval) = loss_value(kind, vec![1.0, -2.0, 3.0], vec![1.0, -2.0, 3.0]);
            assert_eq!(tape, 0.0);
            assert_eq!(eval, 0.0);
        }
    }

    #[test]
    fn pinball_penalises_undercoverage_more_at_high_tau() {
        // u = target − pred = +1 (under-prediction) costs τ; −1 costs 1−τ.
        let (under_tape, under_eval) = loss_value(LossKind::Pinball(0.9), vec![0.0], vec![1.0]);
        let (over_tape, over_eval) = loss_value(LossKind::Pinball(0.9), vec![1.0], vec![0.0]);
        assert!((under_tape - 0.9).abs() < 1e-6);
        assert!((under_eval - 0.9).abs() < 1e-6);
        assert!((over_tape - 0.1).abs() < 1e-6);
        assert!((over_eval - 0.1).abs() < 1e-6);
    }

    #[test]
    fn pinball_gradient_pushes_towards_quantile() {
        // A constant scalar prediction trained with pinball loss on a known
        // sample converges (in gradient sign) towards the τ-quantile: below
        // the quantile the gradient must be negative (increase pred).
        let mut store = ParamStore::new();
        let id = store.register("q", Tensor::from_vec(vec![0.0, 0.0, 0.0, 0.0], &[4]));
        let mut g = Graph::new(&store);
        let p = g.param(id);
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[4]);
        let l = pinball(&mut g, p, &t, 0.9);
        let grads = g.backward(l);
        let gp = grads.get(id).expect("param grad");
        assert!(
            gp.as_slice().iter().all(|&v| v < 0.0),
            "pinball gradient should push the estimate up: {:?}",
            gp.as_slice()
        );
    }

    #[test]
    fn point_interval_composes_its_blocks() {
        // pred rows laid out [point | q_lo | q_hi], target width 2.
        let pred = vec![1.0, 2.0, 0.5, 1.5, 1.5, 2.5];
        let target = vec![1.0, 2.0];
        let kind = LossKind::PointInterval { lo: 0.1, hi: 0.9 };
        let store = ParamStore::new();
        let mut g = Graph::new(&store);
        let p = g.input(Tensor::from_vec(pred.clone(), &[1, 6]));
        let t = Tensor::from_vec(target.clone(), &[1, 2]);
        let l = kind.build(&mut g, p, &t);
        let tape = g.value(l).item() as f64;
        let eval = kind.eval(
            &Tensor::from_vec(pred, &[1, 6]),
            &Tensor::from_vec(target, &[1, 2]),
        );
        // point block is exact (mse 0); q_lo under-shoots by 0.5 on both
        // columns (u = +0.5, cost 0.1·0.5 each); q_hi over-shoots by 0.5
        // (u = −0.5, cost 0.1·0.5 each) → total mean = 0.05 + 0.05.
        assert!((eval - 0.1).abs() < 1e-6, "eval {eval}");
        assert!(
            (tape as f64 - eval).abs() < 1e-6,
            "tape {tape} vs eval {eval}"
        );
    }
}
