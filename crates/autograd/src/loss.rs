//! Loss functions expressed as tape compositions.

use tensor::Tensor;

use crate::graph::{Graph, Var};

/// Mean squared error (paper eq. 9) between `pred` and a constant `target`.
pub fn mse(g: &mut Graph, pred: Var, target: &Tensor) -> Var {
    let t = g.input(target.clone());
    let d = g.sub(pred, t);
    let sq = g.square(d);
    g.mean_all(sq)
}

/// Mean absolute error (paper eq. 10).
pub fn mae(g: &mut Graph, pred: Var, target: &Tensor) -> Var {
    let t = g.input(target.clone());
    let d = g.sub(pred, t);
    let a = g.abs(d);
    g.mean_all(a)
}

/// Huber loss with threshold `delta` — quadratic near zero, linear in the
/// tails; robust to the usage spikes high-dynamic traces contain.
pub fn huber(g: &mut Graph, pred: Var, target: &Tensor, delta: f32) -> Var {
    let t = g.input(target.clone());
    let d = g.sub(pred, t);
    let h = g.huber_on_diff(d, delta);
    g.mean_all(h)
}

/// Which loss a trainer should build.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LossKind {
    Mse,
    Mae,
    Huber(f32),
}

impl LossKind {
    /// Build this loss on the tape.
    pub fn build(self, g: &mut Graph, pred: Var, target: &Tensor) -> Var {
        match self {
            LossKind::Mse => mse(g, pred, target),
            LossKind::Mae => mae(g, pred, target),
            LossKind::Huber(delta) => huber(g, pred, target, delta),
        }
    }

    /// Evaluate the loss on plain tensors (no tape), for validation.
    pub fn eval(self, pred: &Tensor, target: &Tensor) -> f64 {
        assert_eq!(pred.shape(), target.shape(), "loss eval shape mismatch");
        let n = pred.len().max(1) as f64;
        match self {
            LossKind::Mse => {
                pred.as_slice()
                    .iter()
                    .zip(target.as_slice())
                    .map(|(&p, &t)| ((p - t) as f64).powi(2))
                    .sum::<f64>()
                    / n
            }
            LossKind::Mae => {
                pred.as_slice()
                    .iter()
                    .zip(target.as_slice())
                    .map(|(&p, &t)| ((p - t) as f64).abs())
                    .sum::<f64>()
                    / n
            }
            LossKind::Huber(delta) => {
                let delta = delta as f64;
                pred.as_slice()
                    .iter()
                    .zip(target.as_slice())
                    .map(|(&p, &t)| {
                        let d = (p - t) as f64;
                        if d.abs() <= delta {
                            0.5 * d * d
                        } else {
                            delta * (d.abs() - 0.5 * delta)
                        }
                    })
                    .sum::<f64>()
                    / n
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ParamStore;

    fn loss_value(kind: LossKind, pred: Vec<f32>, target: Vec<f32>) -> (f32, f64) {
        let n = pred.len();
        let store = ParamStore::new();
        let mut g = Graph::new(&store);
        let p = g.input(Tensor::from_vec(pred.clone(), &[n]));
        let t = Tensor::from_vec(target, &[n]);
        let l = kind.build(&mut g, p, &t);
        let tape_val = g.value(l).item();
        let eval_val = kind.eval(&Tensor::from_vec(pred, &[n]), &t);
        (tape_val, eval_val)
    }

    #[test]
    fn mse_matches_hand_computation() {
        let (tape, eval) = loss_value(LossKind::Mse, vec![1.0, 2.0], vec![0.0, 4.0]);
        assert!((tape - 2.5).abs() < 1e-6);
        assert!((eval - 2.5).abs() < 1e-9);
    }

    #[test]
    fn mae_matches_hand_computation() {
        let (tape, eval) = loss_value(LossKind::Mae, vec![1.0, 2.0], vec![0.0, 4.0]);
        assert!((tape - 1.5).abs() < 1e-6);
        assert!((eval - 1.5).abs() < 1e-9);
    }

    #[test]
    fn huber_is_quadratic_then_linear() {
        // |d| = 0.5 <= 1 -> 0.125 ; |d| = 3 > 1 -> 1*(3-0.5) = 2.5
        let (tape, eval) = loss_value(LossKind::Huber(1.0), vec![0.5, 3.0], vec![0.0, 0.0]);
        let expected = (0.125 + 2.5) / 2.0;
        assert!((tape - expected).abs() < 1e-6);
        assert!((eval - expected as f64).abs() < 1e-9);
    }

    #[test]
    fn perfect_prediction_has_zero_loss() {
        for kind in [LossKind::Mse, LossKind::Mae, LossKind::Huber(1.0)] {
            let (tape, eval) = loss_value(kind, vec![1.0, -2.0, 3.0], vec![1.0, -2.0, 3.0]);
            assert_eq!(tape, 0.0);
            assert_eq!(eval, 0.0);
        }
    }
}
